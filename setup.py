"""Setuptools entry point for the LifeRaft reproduction.

A classic ``setup.py`` (rather than a PEP 517 ``pyproject.toml`` build) is
used so that ``pip install -e .`` works in fully offline environments:
PEP 517 editable installs require pip to download build backends, which is
not possible without network access.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of LifeRaft: data-driven, batch processing for the "
        "exploration of scientific databases (CIDR 2009)"
    ),
    author="LifeRaft Reproduction Authors",
    license="MIT",
    python_requires=">=3.10",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    install_requires=["numpy>=1.23"],
    extras_require={"test": ["pytest", "pytest-benchmark", "hypothesis"]},
    entry_points={"console_scripts": ["liferaft = repro.cli:main"]},
)
