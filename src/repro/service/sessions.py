"""Per-client sessions: identity, offered-rate measurement and accounting.

The serving front-end multiplexes many clients over one archive.  A
:class:`ClientSession` tracks what one client has offered and what became
of it (admitted / deferred / rejected) plus a sliding-window measurement
of the client's offered rate in virtual time — the quantity per-client
admission limits gate on.  The :class:`SessionRegistry` owns the sessions
and the client-assignment rule: a query carrying a recorded
:attr:`~repro.workload.query.CrossMatchQuery.client_id` keeps it,
anything else hashes onto a fixed pool of synthetic clients, and callers
can still inject their own assignment function.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional

from repro.workload.query import CrossMatchQuery

__all__ = ["ClientSession", "SessionRegistry"]

#: Width of the sliding window used to measure a client's offered rate.
RATE_WINDOW_MS = 60_000.0


@dataclass
class ClientSession:
    """One client's view of the serving front-end."""

    client_id: int
    window_ms: float = RATE_WINDOW_MS
    offered: int = 0
    admitted: int = 0
    deferred: int = 0
    rejected: int = 0
    _offer_times: Deque[float] = field(default_factory=deque)

    def observe_offer(self, now_ms: float) -> None:
        """Record one query offered by this client at *now_ms*."""
        self.offered += 1
        self._offer_times.append(now_ms)
        self._prune(now_ms)

    def offered_rate_qps(self, now_ms: float) -> float:
        """Offered queries per second over the trailing window."""
        self._prune(now_ms)
        if not self._offer_times:
            return 0.0
        return len(self._offer_times) / (self.window_ms / 1000.0)

    def _prune(self, now_ms: float) -> None:
        horizon = now_ms - self.window_ms
        while self._offer_times and self._offer_times[0] <= horizon:
            self._offer_times.popleft()


class SessionRegistry:
    """Owns the client sessions and the query-to-client assignment."""

    def __init__(
        self,
        clients: int = 4,
        client_of: Optional[Callable[[CrossMatchQuery], int]] = None,
        window_ms: float = RATE_WINDOW_MS,
    ) -> None:
        if clients <= 0:
            raise ValueError("clients must be positive")
        self.clients = clients
        self.window_ms = window_ms
        self._client_of = client_of or self._default_client_of
        self._sessions: Dict[int, ClientSession] = {}

    def _default_client_of(self, query: CrossMatchQuery) -> int:
        """Recorded client id when the trace carries one, else a hash."""
        if query.client_id is not None:
            return query.client_id
        return query.query_id % self.clients

    def client_of(self, query: CrossMatchQuery) -> int:
        """The client a query belongs to."""
        return self._client_of(query)

    def session(self, client_id: int) -> ClientSession:
        """The session of *client_id* (created on first use)."""
        session = self._sessions.get(client_id)
        if session is None:
            session = ClientSession(client_id, window_ms=self.window_ms)
            self._sessions[client_id] = session
        return session

    def session_for(self, query: CrossMatchQuery) -> ClientSession:
        """The session owning *query*."""
        return self.session(self.client_of(query))

    def sessions(self) -> List[ClientSession]:
        """Every session that has seen at least one offer, by client id."""
        return [self._sessions[cid] for cid in sorted(self._sessions)]

    def totals(self) -> Dict[str, int]:
        """Aggregate intake accounting over all sessions."""
        sessions = self._sessions.values()
        return {
            "offered": sum(s.offered for s in sessions),
            "admitted": sum(s.admitted for s in sessions),
            "deferred": sum(s.deferred for s in sessions),
            "rejected": sum(s.rejected for s in sessions),
        }
