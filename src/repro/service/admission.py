"""Admission control: reject-or-defer policies over the intake state.

The front-end gates every arrival against three bounds before the engines
ever see it:

* the **bounded intake queue** — queries admitted but (by the intake
  capacity model's estimate) not yet drained; its depth may not exceed
  ``intake_bound``;
* the **pending-bucket backlog** — distinct buckets the admitted-but-not-
  drained queries still reference, bounded by ``max_pending_buckets``;
* the **per-client offered rate**, bounded by ``max_client_qps``.

The capacity model (:class:`IntakeModel`) estimates drain times with the
engine's own :class:`~repro.core.metrics.CostModel` — one bucket read plus
one in-memory match per object, no sharing — which makes it conservative
and, crucially, a *pure function of the admitted arrival stream*.  That
purity is what keeps admission decisions identical across the serial
engine and both execution backends: no live engine state leaks into the
gate, so one intake pass produces one admitted schedule that every
backend replays bit-for-bit.

Three policies interpret a breached bound: :class:`AdmitAll` waves the
query through (measurement mode), :class:`RejectPolicy` refuses it, and
:class:`DeferPolicy` applies backpressure — the arrival is re-enqueued as
a ``CONTROL`` retry event and re-evaluated after a configured delay, up
to a retry budget, after which it is rejected.
"""

from __future__ import annotations

import enum
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple, Type, Union

from repro.core.metrics import CostModel

__all__ = [
    "ADMISSION_POLICIES",
    "AdmissionDecision",
    "AdmissionLimits",
    "AdmissionPolicy",
    "AdmitAll",
    "DeferPolicy",
    "IntakeModel",
    "IntakeSnapshot",
    "RejectPolicy",
    "make_admission_policy",
]


class AdmissionDecision(enum.Enum):
    """What the gate decided for one arrival."""

    ADMIT = "admit"
    REJECT = "reject"
    DEFER = "defer"


@dataclass(frozen=True)
class AdmissionLimits:
    """The configured bounds the gate enforces (``None`` = unbounded)."""

    intake_bound: Optional[int] = None
    max_pending_buckets: Optional[int] = None
    max_client_qps: Optional[float] = None

    def __post_init__(self) -> None:
        if self.intake_bound is not None and self.intake_bound <= 0:
            raise ValueError("intake_bound must be positive when set")
        if self.max_pending_buckets is not None and self.max_pending_buckets <= 0:
            raise ValueError("max_pending_buckets must be positive when set")
        if self.max_client_qps is not None and self.max_client_qps <= 0:
            raise ValueError("max_client_qps must be positive when set")


@dataclass(frozen=True)
class IntakeSnapshot:
    """The intake state one admission decision is made against."""

    now_ms: float
    #: Admitted queries the capacity model estimates are still in flight.
    queue_depth: int
    #: Distinct buckets those in-flight queries reference.
    pending_buckets: int
    #: The offering client's measured rate over the trailing window.
    client_rate_qps: float

    def breached(self, limits: AdmissionLimits) -> List[str]:
        """Names of the limits this snapshot exceeds (empty = admissible)."""
        breached: List[str] = []
        if limits.intake_bound is not None and self.queue_depth >= limits.intake_bound:
            breached.append("intake_bound")
        if (
            limits.max_pending_buckets is not None
            and self.pending_buckets >= limits.max_pending_buckets
        ):
            breached.append("max_pending_buckets")
        if limits.max_client_qps is not None and self.client_rate_qps > limits.max_client_qps:
            breached.append("max_client_qps")
        return breached


class AdmissionPolicy(ABC):
    """Strategy interface: turn a snapshot plus limits into a decision."""

    name: str = "abstract"

    @abstractmethod
    def decide(self, snapshot: IntakeSnapshot, limits: AdmissionLimits) -> AdmissionDecision:
        """Decide what happens to the arrival described by *snapshot*."""


class AdmitAll(AdmissionPolicy):
    """No gate: every arrival is admitted (the measurement default)."""

    name = "admit"

    def decide(self, snapshot: IntakeSnapshot, limits: AdmissionLimits) -> AdmissionDecision:
        return AdmissionDecision.ADMIT


class RejectPolicy(AdmissionPolicy):
    """Load shedding: refuse arrivals that breach any limit."""

    name = "reject"

    def decide(self, snapshot: IntakeSnapshot, limits: AdmissionLimits) -> AdmissionDecision:
        if snapshot.breached(limits):
            return AdmissionDecision.REJECT
        return AdmissionDecision.ADMIT


class DeferPolicy(AdmissionPolicy):
    """Backpressure: retry breached arrivals later instead of shedding."""

    name = "defer"

    def decide(self, snapshot: IntakeSnapshot, limits: AdmissionLimits) -> AdmissionDecision:
        if snapshot.breached(limits):
            return AdmissionDecision.DEFER
        return AdmissionDecision.ADMIT


#: Registry of admission policies by name.
ADMISSION_POLICIES: Dict[str, Type[AdmissionPolicy]] = {
    AdmitAll.name: AdmitAll,
    RejectPolicy.name: RejectPolicy,
    DeferPolicy.name: DeferPolicy,
}


def make_admission_policy(policy: Union[str, AdmissionPolicy]) -> AdmissionPolicy:
    """Resolve a policy instance from a name or pass an instance through."""
    if isinstance(policy, AdmissionPolicy):
        return policy
    if policy not in ADMISSION_POLICIES:
        raise ValueError(
            f"unknown admission policy {policy!r}; available: {sorted(ADMISSION_POLICIES)}"
        )
    return ADMISSION_POLICIES[policy]()


class IntakeModel:
    """Gateway-side capacity model estimating backlog from admissions.

    Each admitted query charges its estimated no-sharing service cost
    (``Tb`` per distinct bucket plus ``Tm`` per object) to a single
    virtual service lane; the query counts as *in flight* until the
    lane's clock passes its estimated drain time, and every bucket it
    references counts as *pending* until the same moment.  Deliberately
    engine-free: an intake gate that consulted live engine state would
    make admission depend on the execution backend.
    """

    def __init__(self, cost: CostModel) -> None:
        self.cost = cost
        self._busy_until_ms = 0.0
        #: (estimated drain time, query id) of each in-flight admission.
        self._in_flight: List[Tuple[float, int]] = []
        #: Estimated drain time per referenced bucket.
        self._bucket_drain_ms: Dict[int, float] = {}

    def estimate_cost_ms(self, footprint: Mapping[int, int]) -> float:
        """No-sharing service estimate of one query's footprint."""
        buckets = len(footprint)
        objects = sum(footprint.values())
        return buckets * self.cost.tb_ms + objects * self.cost.tm_ms

    def advance(self, now_ms: float) -> None:
        """Retire in-flight work whose estimated drain time has passed."""
        if self._in_flight:
            self._in_flight = [item for item in self._in_flight if item[0] > now_ms]
        if self._bucket_drain_ms:
            self._bucket_drain_ms = {
                bucket: drain
                for bucket, drain in self._bucket_drain_ms.items()
                if drain > now_ms
            }

    def pending_admissions(self) -> int:
        """Admitted queries the model still counts as in flight."""
        return len(self._in_flight)

    def snapshot(self, now_ms: float, client_rate_qps: float) -> IntakeSnapshot:
        """The intake state an arrival at *now_ms* is gated against."""
        self.advance(now_ms)
        return IntakeSnapshot(
            now_ms=now_ms,
            queue_depth=len(self._in_flight),
            pending_buckets=len(self._bucket_drain_ms),
            client_rate_qps=client_rate_qps,
        )

    def admit(self, query_id: int, footprint: Mapping[int, int], now_ms: float) -> float:
        """Charge one admitted query to the lane; returns its drain estimate."""
        self._busy_until_ms = max(self._busy_until_ms, now_ms) + self.estimate_cost_ms(footprint)
        self._in_flight.append((self._busy_until_ms, query_id))
        for bucket in footprint:
            drain = self._bucket_drain_ms.get(bucket)
            if drain is None or drain < self._busy_until_ms:
                self._bucket_drain_ms[bucket] = self._busy_until_ms
        return self._busy_until_ms
