"""Incremental result streams: partial answers as buckets drain.

A cross-match answer is the union of per-bucket sub-query results, so it
accrues incrementally: every time a bucket a query needs is serviced, the
query's answer grows by that bucket's matches.  The serving layer turns
that property into a first-class interface — a :class:`ResultStream` per
query that emits one :class:`ResultChunk` per drained bucket, carrying the
progress fraction, the drained object count and the virtual timestamp.
Time-to-first-result (the stream's first chunk) becomes a measured
quantity alongside time-to-completion (its final chunk).

The :class:`StreamHub` is the single chunk-derivation rule every execution
path shares.  The serial engine feeds it live, one
:class:`~repro.core.engine.BatchResult` at a time; the execution backends
feed it the :class:`~repro.parallel.ipc.BatchRecord` stream their shard
workers emitted (for the process backend those records literally rode the
IPC pipe).  Records are ingested in global finish-time order, so the
chunks of one query are non-decreasing in virtual time on every backend —
the serving parity tests pin this down.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple

__all__ = ["ResultChunk", "ResultStream", "StreamCursor", "StreamHub"]


@dataclass(frozen=True)
class ResultChunk:
    """One partial-answer increment of one query's result stream."""

    query_id: int
    #: 0-based position of the chunk within its query's stream.
    seq: int
    #: Bucket whose service produced this increment.
    bucket_index: int
    #: The query's objects cross-matched by this service.
    objects_matched: int
    #: Buckets drained so far divided by buckets needed (ends at 1.0).
    progress: float
    #: Virtual timestamp of the service completion that emitted the chunk.
    time_ms: float
    #: ``True`` on the chunk that completes the query.
    final: bool


@dataclass(frozen=True)
class StreamCursor:
    """A resumable position over a :class:`StreamHub`'s emitted chunks.

    The serving-side half of crash recovery: chunks already delivered to
    clients must never be re-emitted when a hub is rebuilt after a
    failure.  The cursor records, per query, exactly what each stream has
    emitted — ``(bucket, objects, time_ms)`` triples in sequence order —
    so :meth:`StreamHub.restore` can silently replay them into fresh
    streams (no subscriber callbacks fire) and subsequent record
    ingestion resumes exactly once from the cut.
    """

    total_chunks: int
    #: Per query id: the emitted chunks as (bucket, objects, time_ms).
    emitted: Tuple[Tuple[int, Tuple[Tuple[int, int, float], ...]], ...]


class ResultStream:
    """The incremental answer of one query, as an ordered chunk sequence."""

    def __init__(self, query_id: int, needed_buckets: Iterable[int], arrival_ms: float) -> None:
        self.query_id = query_id
        self.arrival_ms = arrival_ms
        self._needed: Set[int] = set(needed_buckets)
        if not self._needed:
            raise ValueError(f"query {query_id} needs at least one bucket to stream")
        self.total_buckets = len(self._needed)
        self.chunks: List[ResultChunk] = []

    @property
    def is_complete(self) -> bool:
        """``True`` once every needed bucket has produced a chunk."""
        return not self._needed

    @property
    def progress(self) -> float:
        """Fraction of the query's buckets drained so far."""
        return (self.total_buckets - len(self._needed)) / self.total_buckets

    @property
    def first_chunk_ms(self) -> Optional[float]:
        """Virtual time of the first partial answer, or ``None`` before it."""
        if not self.chunks:
            return None
        return self.chunks[0].time_ms

    @property
    def completion_ms(self) -> Optional[float]:
        """Virtual time of the final chunk, or ``None`` while streaming."""
        if not self.chunks or not self.chunks[-1].final:
            return None
        return self.chunks[-1].time_ms

    @property
    def time_to_first_result_ms(self) -> Optional[float]:
        """Client-perceived latency of the first partial answer."""
        first = self.first_chunk_ms
        if first is None:
            return None
        return first - self.arrival_ms

    @property
    def time_to_completion_ms(self) -> Optional[float]:
        """Client-perceived latency of the full answer."""
        done = self.completion_ms
        if done is None:
            return None
        return done - self.arrival_ms

    @property
    def objects_matched(self) -> int:
        """Total objects cross-matched for this query so far."""
        return sum(chunk.objects_matched for chunk in self.chunks)

    def emit(self, bucket_index: int, objects: int, time_ms: float) -> Optional[ResultChunk]:
        """Record one drained bucket; returns the chunk, or ``None`` when
        the bucket is not (or no longer) needed by this query."""
        if bucket_index not in self._needed:
            return None
        self._needed.discard(bucket_index)
        chunk = ResultChunk(
            query_id=self.query_id,
            seq=len(self.chunks),
            bucket_index=bucket_index,
            objects_matched=objects,
            progress=self.progress,
            time_ms=time_ms,
            final=self.is_complete,
        )
        self.chunks.append(chunk)
        return chunk


class StreamHub:
    """All live result streams of one serving run, fed by service records.

    The hub is execution-agnostic: anything that can say "this service
    drained these objects of these queries from this bucket at this
    virtual time" can feed it.  Subscribers (the serving demo, tests)
    receive every chunk in emission order.
    """

    def __init__(self) -> None:
        self._streams: Dict[int, ResultStream] = {}
        self._subscribers: List[Callable[[ResultChunk], None]] = []
        self.total_chunks = 0

    def register(self, query_id: int, needed_buckets: Iterable[int], arrival_ms: float) -> None:
        """Open the stream of one admitted query."""
        if query_id in self._streams:
            raise ValueError(f"query {query_id} already has a result stream")
        self._streams[query_id] = ResultStream(query_id, needed_buckets, arrival_ms)

    def subscribe(self, callback: Callable[[ResultChunk], None]) -> None:
        """Invoke *callback* for every chunk emitted from now on."""
        self._subscribers.append(callback)

    def stream(self, query_id: int) -> ResultStream:
        """The stream of one registered query."""
        return self._streams[query_id]

    def streams(self) -> List[ResultStream]:
        """Every registered stream, by query id."""
        return [self._streams[qid] for qid in sorted(self._streams)]

    def known(self, query_id: int) -> bool:
        """``True`` once the query's stream is open."""
        return query_id in self._streams

    def open_stream_count(self) -> int:
        """Streams registered but not yet complete (serving occupancy).

        The live wall-clock sampler reads this per tick; it is O(streams)
        but serving runs hold at most the admitted-query count of streams.
        """
        return sum(1 for stream in self._streams.values() if not stream.is_complete)

    def cursor(self) -> StreamCursor:
        """Snapshot the emitted-chunk position of every stream."""
        emitted = []
        for query_id in sorted(self._streams):
            chunks = self._streams[query_id].chunks
            if chunks:
                emitted.append(
                    (
                        query_id,
                        tuple(
                            (c.bucket_index, c.objects_matched, c.time_ms)
                            for c in chunks
                        ),
                    )
                )
        return StreamCursor(total_chunks=self.total_chunks, emitted=tuple(emitted))

    def restore(self, cursor: StreamCursor) -> None:
        """Replay a cursor into freshly registered streams, silently.

        Every stream named by the cursor must be registered and must not
        have emitted anything yet; the replayed chunks do **not** reach
        subscribers — the clients already received them before the
        failure.  After this call, :meth:`ingest_records` resumes
        exactly-once: replaying a record whose bucket the cursor already
        covers is a no-op.
        """
        for query_id, chunks in cursor.emitted:
            stream = self._streams.get(query_id)
            if stream is None:
                raise ValueError(
                    f"cursor names query {query_id}, which has no registered stream"
                )
            if stream.chunks:
                raise ValueError(
                    f"query {query_id}'s stream already emitted chunks; "
                    "cursors restore into fresh streams only"
                )
            for bucket_index, objects, time_ms in chunks:
                stream.emit(bucket_index, objects, time_ms)
        self.total_chunks = cursor.total_chunks

    def on_service(
        self,
        bucket_index: int,
        queries_served: Sequence[int],
        objects_served: Sequence[int],
        time_ms: float,
    ) -> List[ResultChunk]:
        """Fan one bucket service out to the streams it advances.

        *objects_served* may be empty (older records without per-query
        counts); chunks then report zero objects but correct progress.
        """
        chunks: List[ResultChunk] = []
        counts = dict(zip(queries_served, objects_served))
        for query_id in queries_served:
            stream = self._streams.get(query_id)
            if stream is None:
                continue
            chunk = stream.emit(bucket_index, counts.get(query_id, 0), time_ms)
            if chunk is None:
                continue
            chunks.append(chunk)
            self.total_chunks += 1
            for callback in self._subscribers:
                callback(chunk)
        return chunks

    def ingest_records(self, records: Iterable) -> int:
        """Feed a whole run's service records, in global finish-time order.

        Accepts anything shaped like :class:`~repro.parallel.ipc.BatchRecord`
        (``bucket_index`` / ``queries_served`` / ``objects_served`` /
        ``finished_at_ms``).  Sorting by finish time keeps every per-query
        chunk sequence non-decreasing in virtual time even when services of
        different shard workers overlap.
        """
        ordered = sorted(
            records,
            key=lambda r: (r.finished_at_ms, getattr(r, "worker_id", 0), getattr(r, "seq", 0)),
        )
        emitted = 0
        for record in ordered:
            emitted += len(
                self.on_service(
                    record.bucket_index,
                    record.queries_served,
                    record.objects_served,
                    record.finished_at_ms,
                )
            )
        return emitted

    def completed_queries(self) -> List[int]:
        """Queries whose stream has emitted its final chunk, by id."""
        return [qid for qid, stream in sorted(self._streams.items()) if stream.is_complete]

    def time_to_first_result_s(self) -> List[float]:
        """TTFR of every stream that produced at least one chunk, in seconds."""
        values = [
            stream.time_to_first_result_ms
            for stream in self._streams.values()
            if stream.first_chunk_ms is not None
        ]
        return [ms / 1000.0 for ms in sorted(values)]

    def time_to_completion_s(self) -> List[float]:
        """Client-perceived completion latency of every finished stream."""
        values = [
            stream.time_to_completion_ms
            for stream in self._streams.values()
            if stream.completion_ms is not None
        ]
        return [ms / 1000.0 for ms in sorted(values)]
