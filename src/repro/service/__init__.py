"""The query-serving front-end above the execution engines.

LifeRaft's engines answer "which bucket should be serviced next"; this
package answers "what happens between a client and those engines".  It
adds the serving concerns of a production archive as one layer:

* :mod:`repro.service.admission` — admission control over a bounded
  intake queue, a pending-bucket backlog estimate and per-client rates,
  with reject (load shedding) and defer (backpressure) policies;
* :mod:`repro.service.sessions` — per-client sessions with sliding-window
  offered-rate measurement;
* :mod:`repro.service.deadline` — deadline classes and SLA scoring
  (first-result and completion targets per class);
* :mod:`repro.service.streams` — incremental result streams: one
  partial-answer chunk per drained bucket, making time-to-first-result a
  first-class measured quantity;
* :mod:`repro.service.frontend` — the :class:`ServingFrontEnd` tying it
  together: arrivals drive an event queue, deferred arrivals re-enter as
  ``CONTROL`` retries, and the admitted schedule is what the engines
  replay — on the serial engine and on both execution backends, with
  identical decisions by construction.
"""

from repro.service.admission import (
    ADMISSION_POLICIES,
    AdmissionDecision,
    AdmissionLimits,
    AdmissionPolicy,
    AdmitAll,
    DeferPolicy,
    IntakeModel,
    IntakeSnapshot,
    RejectPolicy,
    make_admission_policy,
)
from repro.service.deadline import (
    DEADLINE_CLASSES,
    DeadlineClass,
    DeadlineTracker,
    assign_deadline_class,
    parse_deadline_mix,
)
from repro.service.frontend import (
    AdmittedQuery,
    IntakeOutcome,
    RejectedQuery,
    ServiceConfig,
    ServingFrontEnd,
    ServingReport,
)
from repro.service.sessions import ClientSession, SessionRegistry
from repro.service.streams import ResultChunk, ResultStream, StreamHub

__all__ = [
    "ADMISSION_POLICIES",
    "AdmissionDecision",
    "AdmissionLimits",
    "AdmissionPolicy",
    "AdmitAll",
    "AdmittedQuery",
    "ClientSession",
    "DEADLINE_CLASSES",
    "DeadlineClass",
    "DeadlineTracker",
    "DeferPolicy",
    "IntakeModel",
    "IntakeOutcome",
    "IntakeSnapshot",
    "RejectPolicy",
    "RejectedQuery",
    "ResultChunk",
    "ResultStream",
    "ServiceConfig",
    "ServingFrontEnd",
    "ServingReport",
    "SessionRegistry",
    "StreamHub",
    "assign_deadline_class",
    "make_admission_policy",
    "parse_deadline_mix",
]
