"""Deadline classes and SLA tracking for served queries.

Exploration workloads are not uniform: an interactive session wants its
first rows in seconds, a batch cross-match can wait an hour.  The serving
layer assigns every admitted query a :class:`DeadlineClass` — a named
latency target — and the :class:`DeadlineTracker` scores each class after
the run: completions that met the deadline, completions that missed it,
and queries the admission gate rejected outright.  Two SLA notions are
scored per class, matching the streaming model: the *first-result*
deadline (a partial answer arrived in time) and the *completion* deadline
(the full answer did).

Class assignment is deterministic: a seeded hash of the query id draws
from the configured class mix, so every execution backend serves the same
class schedule and the per-class numbers are backend-invariant.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

__all__ = [
    "DEADLINE_CLASSES",
    "DeadlineClass",
    "DeadlineTracker",
    "assign_deadline_class",
    "parse_deadline_mix",
]


@dataclass(frozen=True)
class DeadlineClass:
    """A named latency target.

    ``first_result_s`` bounds the time to the first partial-answer chunk;
    ``completion_s`` bounds the time to the full answer.  ``None`` means
    best-effort (always met).
    """

    name: str
    first_result_s: Optional[float] = None
    completion_s: Optional[float] = None

    def first_result_met(self, ttfr_s: Optional[float]) -> bool:
        """Whether a measured time-to-first-result satisfies the class."""
        if self.first_result_s is None:
            return True
        return ttfr_s is not None and ttfr_s <= self.first_result_s

    def completion_met(self, ttc_s: Optional[float]) -> bool:
        """Whether a measured time-to-completion satisfies the class."""
        if self.completion_s is None:
            return True
        return ttc_s is not None and ttc_s <= self.completion_s


#: The standard deadline classes.  Targets are expressed in virtual
#: seconds against the paper's cost constants (one cold bucket read is
#: 1.2 s): "interactive" wants a first chunk within a few bucket reads,
#: "standard" a complete answer within minutes, "batch" is best-effort.
DEADLINE_CLASSES: Dict[str, DeadlineClass] = {
    "interactive": DeadlineClass("interactive", first_result_s=30.0, completion_s=300.0),
    "standard": DeadlineClass("standard", first_result_s=120.0, completion_s=1_800.0),
    "batch": DeadlineClass("batch", first_result_s=None, completion_s=None),
}


def parse_deadline_mix(text: str) -> Dict[str, float]:
    """Parse a ``name=weight,name=weight`` class-mix specification.

    Weights are normalised to sum to one; unknown class names raise so a
    CLI typo cannot silently serve everything best-effort.
    """
    mix: Dict[str, float] = {}
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        name, _, weight_text = part.partition("=")
        name = name.strip()
        if name not in DEADLINE_CLASSES:
            raise ValueError(
                f"unknown deadline class {name!r}; available: {sorted(DEADLINE_CLASSES)}"
            )
        try:
            weight = float(weight_text)
        except ValueError as error:
            raise ValueError(f"bad weight for deadline class {name!r}: {weight_text!r}") from error
        if weight < 0:
            raise ValueError(f"deadline class {name!r} has a negative weight")
        mix[name] = mix.get(name, 0.0) + weight
    total = sum(mix.values())
    if not mix or total <= 0:
        raise ValueError(f"deadline mix {text!r} selects no classes")
    return {name: weight / total for name, weight in mix.items()}


def assign_deadline_class(query_id: int, mix: Mapping[str, float], seed: int) -> str:
    """Deterministically draw a class name for *query_id* from *mix*.

    The draw is a pure function of ``(seed, query_id)``, so the class
    schedule is identical on every execution backend.
    """
    names = sorted(mix)
    draw = random.Random(seed * 1_000_003 + query_id).random()
    cumulative = 0.0
    total = sum(mix[name] for name in names)
    for name in names:
        cumulative += mix[name] / total
        if draw <= cumulative:
            return name
    return names[-1]


@dataclass
class _ClassScore:
    """Mutable per-class tally."""

    admitted: int = 0
    rejected: int = 0
    completed: int = 0
    first_result_met: int = 0
    completion_met: int = 0


class DeadlineTracker:
    """Scores every served query against its deadline class."""

    def __init__(self, classes: Optional[Mapping[str, DeadlineClass]] = None) -> None:
        self.classes: Dict[str, DeadlineClass] = dict(classes or DEADLINE_CLASSES)
        self._assigned: Dict[int, str] = {}
        self._scores: Dict[str, _ClassScore] = {}

    def assign(self, query_id: int, class_name: str) -> DeadlineClass:
        """Bind a query to a deadline class (at admission time)."""
        if class_name not in self.classes:
            raise ValueError(f"unknown deadline class {class_name!r}")
        self._assigned[query_id] = class_name
        return self.classes[class_name]

    def class_of(self, query_id: int) -> Optional[str]:
        """The class a query was bound to, or ``None`` if never assigned."""
        return self._assigned.get(query_id)

    def _score(self, class_name: str) -> _ClassScore:
        score = self._scores.get(class_name)
        if score is None:
            score = _ClassScore()
            self._scores[class_name] = score
        return score

    def on_admitted(self, query_id: int) -> None:
        """Count one admitted query against its class."""
        self._score(self._assigned[query_id]).admitted += 1

    def on_rejected(self, query_id: int) -> None:
        """Count one rejected query against its class."""
        self._score(self._assigned[query_id]).rejected += 1

    def on_completed(
        self, query_id: int, ttfr_s: Optional[float], ttc_s: Optional[float]
    ) -> None:
        """Score one completed query's measured latencies."""
        class_name = self._assigned[query_id]
        deadline = self.classes[class_name]
        score = self._score(class_name)
        score.completed += 1
        if deadline.first_result_met(ttfr_s):
            score.first_result_met += 1
        if deadline.completion_met(ttc_s):
            score.completion_met += 1

    def class_counts(self) -> Dict[str, Dict[str, int]]:
        """Raw per-class tallies keyed by class name (sorted), as plain ints.

        Unlike :meth:`rows` this exposes counts rather than hit rates, so
        the numbers can feed counters and envelope fixtures that must
        compare exactly.
        """
        return {
            name: {
                "admitted": score.admitted,
                "rejected": score.rejected,
                "completed": score.completed,
                "first_result_met": score.first_result_met,
                "completion_met": score.completion_met,
            }
            for name, score in sorted(self._scores.items())
        }

    def rows(self) -> List[Tuple[str, int, int, int, float, float]]:
        """Per-class SLA table: (class, admitted, rejected, completed,
        first-result hit rate, completion hit rate)."""
        rows = []
        for name in sorted(self._scores):
            score = self._scores[name]
            completed = score.completed
            rows.append(
                (
                    name,
                    score.admitted,
                    score.rejected,
                    completed,
                    (score.first_result_met / completed) if completed else 0.0,
                    (score.completion_met / completed) if completed else 0.0,
                )
            )
        return rows

    def summary(self) -> Dict[str, float]:
        """Aggregate SLA hit rates over every class (zero-safe)."""
        completed = sum(score.completed for score in self._scores.values())
        first_met = sum(score.first_result_met for score in self._scores.values())
        completion_met = sum(score.completion_met for score in self._scores.values())
        return {
            "completed": float(completed),
            "first_result_hit_rate": (first_met / completed) if completed else 0.0,
            "completion_hit_rate": (completion_met / completed) if completed else 0.0,
        }
