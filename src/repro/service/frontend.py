"""The serving front-end: async intake above the execution engines.

The front-end decouples *arrival* from *service*.  Clients submit queries
into an :class:`~repro.sim.events.EventQueue`; the intake loop pops
arrivals in virtual-time order, gates each one through admission control
(:mod:`repro.service.admission`), applies backpressure by re-enqueueing
deferred arrivals as ``CONTROL`` retry events, and emits the **admitted
schedule** — each admitted query with the virtual time at which intake
handed it to the engines.  The engines never see the raw trace any more;
they replay the admitted schedule, which is what makes every admission
decision identical across the serial engine and both execution backends.

Dataflow::

    clients ──► EventQueue ──► admission gate ──► admitted schedule
                   ▲                │                    │
                   └── CONTROL ─────┘ (defer)            ▼
                        retries                 engine / backends
                                                        │  bucket drains
                                                        ▼
                                                  StreamHub ──► ResultChunks
                                                        │
                                                        ▼
                                         deadline scoring + ServingReport

Completion of the pipeline is the :class:`ServingReport`: intake
accounting (offered / admitted / rejected / deferrals), client-perceived
time-to-first-result and time-to-completion distributions, and the
per-class SLA table.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from repro.core.engine import (
    _SERIES_TIME_EPS,
    DEFAULT_SERIES_WINDOW_BUCKET_READS,
    BatchResult,
)
from repro.core.metrics import CostModel
from repro.core.preprocessor import QueryPreProcessor
from repro.service.admission import (
    AdmissionDecision,
    AdmissionLimits,
    AdmissionPolicy,
    IntakeModel,
    make_admission_policy,
)
from repro.service.deadline import (
    DEADLINE_CLASSES,
    DeadlineTracker,
    assign_deadline_class,
)
from repro.service.sessions import RATE_WINDOW_MS, SessionRegistry
from repro.service.streams import ResultChunk, StreamCursor, StreamHub
from repro.sim.events import Event, EventKind, EventQueue
from repro.sim.stats import ResponseTimeStats, summarize_response_times
from repro.storage.partitioner import PartitionLayout
from repro.telemetry.registry import REAL_DOMAIN, MetricsRegistry
from repro.workload.query import CrossMatchQuery

__all__ = [
    "AdmissionInstant",
    "AdmittedQuery",
    "IntakeOutcome",
    "LiveServingSampler",
    "RejectedQuery",
    "ServiceConfig",
    "ServingFrontEnd",
    "ServingReport",
]

#: Default deadline-class mix of a serving run.
DEFAULT_DEADLINE_MIX: Dict[str, float] = {
    "interactive": 0.25,
    "standard": 0.5,
    "batch": 0.25,
}


@dataclass(frozen=True)
class ServiceConfig:
    """Tunables of the serving front-end."""

    #: Admission policy name ("admit", "reject", "defer") or an instance.
    admission: Union[str, AdmissionPolicy] = "admit"
    #: Max admitted-but-undrained queries (``None`` = unbounded).
    intake_bound: Optional[int] = None
    #: Max distinct pending buckets across in-flight admissions.
    max_pending_buckets: Optional[int] = None
    #: Max per-client offered rate over the trailing window.
    max_client_qps: Optional[float] = None
    #: Synthetic client pool size (queries hash onto it).
    clients: int = 4
    #: Backpressure delay before a deferred arrival is retried.
    defer_delay_ms: float = 5_000.0
    #: Retry budget of a deferred arrival before it is rejected.
    max_defers: int = 4
    #: Deadline-class mix (normalised at use).
    deadline_mix: Mapping[str, float] = field(
        default_factory=lambda: dict(DEFAULT_DEADLINE_MIX)
    )
    #: Seed of the deterministic class-assignment hash.
    seed: int = 8675309
    #: Sliding window of the per-client rate measurement.
    rate_window_ms: float = RATE_WINDOW_MS
    #: Optional subscriber invoked for every emitted result chunk.  On the
    #: serial engine chunks fire live, mid-run; on the execution backends
    #: they fire when the run's service records are ingested — in the same
    #: global finish-time order either way.
    on_chunk: Optional[Callable[[ResultChunk], None]] = None
    #: Enable the live wall-clock sampler with this window (real ms):
    #: REAL-domain occupancy/pending-admission series captured while the
    #: run serves.  Wall-clock profile — never parity-asserted, and
    #: excluded from the virtual-domain parity filters by construction.
    live_series_window_ms: Optional[float] = None
    #: Injectable wall clock for the live sampler (seconds; defaults to
    #: ``time.perf_counter``) — tests drive it deterministically.
    live_clock: Optional[Callable[[], float]] = None

    def __post_init__(self) -> None:
        if self.clients <= 0:
            raise ValueError("clients must be positive")
        if self.defer_delay_ms <= 0:
            raise ValueError("defer_delay_ms must be positive")
        if self.live_series_window_ms is not None and self.live_series_window_ms <= 0:
            raise ValueError("live_series_window_ms must be positive")
        if self.max_defers < 0:
            raise ValueError("max_defers cannot be negative")
        total = sum(self.deadline_mix.values())
        if not self.deadline_mix or total <= 0:
            raise ValueError("deadline_mix must have positive total weight")
        unknown = [name for name in self.deadline_mix if name not in DEADLINE_CLASSES]
        if unknown:
            raise ValueError(f"unknown deadline classes in mix: {sorted(unknown)}")

    def limits(self) -> AdmissionLimits:
        """The admission limits this config describes."""
        return AdmissionLimits(
            intake_bound=self.intake_bound,
            max_pending_buckets=self.max_pending_buckets,
            max_client_qps=self.max_client_qps,
        )


@dataclass(frozen=True)
class AdmittedQuery:
    """One admitted arrival: the query plus its intake timing."""

    query: CrossMatchQuery
    #: Per-bucket object counts at this site (the stream's denominator).
    footprint: Mapping[int, int]
    #: Original client arrival (client-perceived latencies start here).
    arrival_ms: float
    #: When intake handed the query to the engines (>= arrival when deferred).
    submit_ms: float
    #: How many backpressure rounds the arrival went through.
    defers: int


@dataclass(frozen=True)
class AdmissionInstant:
    """One gate decision pinned to its virtual-time instant.

    These feed the query-trace flow events: the decision instant is where
    a query's causal chain starts (admit) or ends (reject), with deferred
    attempts marking the backpressure rounds in between.
    """

    time_ms: float
    query_id: int
    #: "admit", "defer" or "reject".
    outcome: str
    #: Which backpressure round produced the decision (0 = first arrival).
    attempt: int


@dataclass(frozen=True)
class RejectedQuery:
    """One shed arrival and why the gate refused it."""

    query: CrossMatchQuery
    arrival_ms: float
    reason: str
    defers: int


@dataclass
class IntakeOutcome:
    """Everything the intake pass produced."""

    admitted: List[AdmittedQuery]
    rejected: List[RejectedQuery]
    #: Arrivals that overlapped no bucket at this site (complete trivially).
    no_overlap: int
    #: Total CONTROL retry events the backpressure path scheduled.
    deferrals: int

    @property
    def offered(self) -> int:
        """Queries clients offered (excluding no-overlap passthroughs)."""
        return len(self.admitted) + len(self.rejected)

    def admitted_queries(self) -> List[CrossMatchQuery]:
        """The admitted schedule as engine-ready queries.

        Arrival times are rewritten to the intake hand-off time, so the
        engines replay exactly what the gate let through, when it let it
        through.
        """
        ordered = sorted(self.admitted, key=lambda a: (a.submit_ms, a.query.query_id))
        return [a.query.with_arrival_time(a.submit_ms / 1000.0) for a in ordered]


@dataclass
class ServingReport:
    """Outcome of one serving run, from the client's point of view."""

    admission_policy: str
    clients: int
    offered: int
    admitted: int
    rejected: int
    deferrals: int
    completed: int
    chunks: int
    #: Client-perceived time-to-first-result distribution (seconds).
    ttfr_stats: ResponseTimeStats
    #: Client-perceived time-to-completion distribution (seconds).
    completion_stats: ResponseTimeStats
    #: Per-class SLA table (class, admitted, rejected, completed,
    #: first-result hit rate, completion hit rate).
    deadline_rows: List[Tuple[str, int, int, int, float, float]]
    #: Aggregate SLA hit rates (zero-safe on empty runs).
    deadline_summary: Dict[str, float]

    @property
    def rejection_rate(self) -> float:
        """Fraction of offered queries the gate shed (0 for an empty run)."""
        if self.offered <= 0:
            return 0.0
        return self.rejected / self.offered

    @property
    def avg_time_to_first_result_s(self) -> float:
        """Mean TTFR over streamed queries (0 when nothing streamed)."""
        return self.ttfr_stats.mean_s

    @property
    def avg_time_to_completion_s(self) -> float:
        """Mean client-perceived completion latency (0 when none completed)."""
        return self.completion_stats.mean_s


class LiveServingSampler:
    """Real-domain wall-clock sampler over a live serving run.

    The PR-9 series layer samples in *virtual* time at deterministic
    barriers; this is its real-time twin.  While a run serves, the
    sampler captures occupancy series against the **wall clock** —
    ``series.live_open_streams`` (streams registered but incomplete),
    ``series.live_pending_admissions`` (in-flight admitted work) and
    ``series.live_chunks_emitted`` (cumulative chunks) — into the
    front-end's registry under the REAL domain, so they ride the normal
    snapshot/merge/export seams but are never parity-asserted (two runs
    of the same spec legitimately produce different wall profiles).

    Ticks are driven by chunk emission (the hub subscription) plus one
    final flush at ``finish()``; the window cursor is the series' own
    sample count against elapsed wall milliseconds — the same barrier
    rule as the virtual series, just on a different clock.  The clock is
    injectable so tests can drive it deterministically.
    """

    def __init__(
        self,
        frontend: "ServingFrontEnd",
        window_ms: float,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        if window_ms <= 0:
            raise ValueError("live sampler window_ms must be positive")
        self._frontend = frontend
        self.window_ms = window_ms
        self._clock = clock if clock is not None else time.perf_counter
        self._origin_s: Optional[float] = None
        registry = frontend.telemetry
        self._s_open = registry.series(
            "series.live_open_streams", window_ms, domain=REAL_DOMAIN
        )
        self._s_pending = registry.series(
            "series.live_pending_admissions", window_ms, domain=REAL_DOMAIN
        )
        self._s_chunks = registry.series(
            "series.live_chunks_emitted", window_ms, domain=REAL_DOMAIN
        )
        frontend.hub.subscribe(self._on_chunk)

    def elapsed_ms(self) -> float:
        """Wall milliseconds since the first tick (0 before it)."""
        if self._origin_s is None:
            return 0.0
        return (self._clock() - self._origin_s) * 1000.0

    def _on_chunk(self, _chunk: ResultChunk) -> None:
        self.tick()

    def tick(self) -> None:
        """Close every wall window that elapsed since the last tick."""
        if self._origin_s is None:
            self._origin_s = self._clock()
        elapsed_ms = self.elapsed_ms()
        count = self._s_open.sample_count
        while (count + 1) * self.window_ms <= elapsed_ms + _SERIES_TIME_EPS:
            self._record(count)
            count += 1

    def finish(self) -> None:
        """Flush pending windows and stamp one final end-of-run sample."""
        self.tick()
        self._record(self._s_open.sample_count)

    def _record(self, index: int) -> None:
        frontend = self._frontend
        self._s_open.record(index, float(frontend.hub.open_stream_count()))
        self._s_pending.record(index, float(frontend.model.pending_admissions()))
        self._s_chunks.record(index, float(frontend.hub.total_chunks))


class ServingFrontEnd:
    """Async intake, admission control and result streaming over one run."""

    def __init__(
        self,
        config: ServiceConfig,
        layout: PartitionLayout,
        cost: CostModel,
        series_window_ms: Optional[float] = None,
    ) -> None:
        self.config = config
        self.preprocessor = QueryPreProcessor(layout)
        self.policy = make_admission_policy(config.admission)
        self.limits = config.limits()
        self.model = IntakeModel(cost)
        self.sessions = SessionRegistry(
            clients=config.clients, window_ms=config.rate_window_ms
        )
        self.deadlines = DeadlineTracker()
        self.hub = StreamHub()
        if config.on_chunk is not None:
            self.hub.subscribe(config.on_chunk)
        self.intake: Optional[IntakeOutcome] = None
        self._finalized = False
        #: Admission is a pure function of the arrival stream, so these
        #: counters live in the virtual domain (backend-invariant).
        self.telemetry = MetricsRegistry()
        self._t_admitted = self.telemetry.counter(
            "admission.decisions", labels={"outcome": "admitted"}
        )
        self._t_rejected = self.telemetry.counter(
            "admission.decisions", labels={"outcome": "rejected"}
        )
        self._t_deferred = self.telemetry.counter(
            "admission.decisions", labels={"outcome": "deferred"}
        )
        self._t_no_overlap = self.telemetry.counter("admission.no_overlap")
        #: The intake loop runs coordinator-side on every backend, so its
        #: windowed pending-admissions series is virtual-domain too.
        self._series_window_ms = (
            series_window_ms
            if series_window_ms is not None
            else cost.tb_ms * DEFAULT_SERIES_WINDOW_BUCKET_READS
        )
        self._s_pending = self.telemetry.series(
            "series.pending_admissions", self._series_window_ms
        )
        #: Every gate decision, in virtual-time order (trace flow events).
        self._admission_instants: List[AdmissionInstant] = []
        #: Wall-clock occupancy sampler (real domain, never parity-asserted);
        #: enabled by :attr:`ServiceConfig.live_series_window_ms`.
        self.live_sampler: Optional[LiveServingSampler] = None
        if config.live_series_window_ms is not None:
            self.live_sampler = LiveServingSampler(
                self, config.live_series_window_ms, clock=config.live_clock
            )

    # ------------------------------------------------------------------ #
    # intake
    # ------------------------------------------------------------------ #

    def admit(self, queries: Sequence[CrossMatchQuery]) -> IntakeOutcome:
        """Run the intake loop over one arrival stream.

        Arrivals are driven through the event queue in virtual-time order;
        deferred arrivals re-enter as ``CONTROL`` retry events (FIFO within
        a timestamp, so a retry racing a fresh arrival is resolved by
        enqueue order — deterministically).
        """
        if self.intake is not None:
            raise RuntimeError("the front-end has already run its intake pass")
        events = EventQueue()
        ordered = sorted(queries, key=lambda q: (q.arrival_time_s, q.query_id))
        no_overlap = 0
        for query in ordered:
            footprint = self.preprocessor.footprint(query)
            if not footprint:
                # No overlap at this site: completes immediately, bypassing
                # both the gate and the engines (as in the plain replay).
                no_overlap += 1
                self._t_no_overlap.inc()
                continue
            arrival_ms = query.arrival_time_s * 1000.0
            events.push(
                Event(
                    arrival_ms,
                    EventKind.QUERY_ARRIVAL,
                    payload=(query, footprint, arrival_ms, 0),
                )
            )
        admitted: List[AdmittedQuery] = []
        rejected: List[RejectedQuery] = []
        deferrals = 0
        while events:
            event = events.pop()
            query, footprint, arrival_ms, attempt = event.payload
            now_ms = event.time_ms
            self._flush_pending_series(now_ms)
            session = self.sessions.session_for(query)
            if attempt == 0:
                session.observe_offer(now_ms)
                # A class recorded on the query itself (scenario traces)
                # wins over the configured mix draw; both are pure
                # functions of the arrival stream, so admission stays
                # backend-invariant either way.
                if query.deadline_class is not None:
                    if query.deadline_class not in DEADLINE_CLASSES:
                        raise ValueError(
                            f"query {query.query_id} carries unknown deadline "
                            f"class {query.deadline_class!r}; available: "
                            f"{sorted(DEADLINE_CLASSES)}"
                        )
                    class_name = query.deadline_class
                else:
                    class_name = assign_deadline_class(
                        query.query_id, self.config.deadline_mix, self.config.seed
                    )
                self.deadlines.assign(query.query_id, class_name)
            snapshot = self.model.snapshot(now_ms, session.offered_rate_qps(now_ms))
            decision = self.policy.decide(snapshot, self.limits)
            if decision is AdmissionDecision.DEFER and attempt >= self.config.max_defers:
                decision = AdmissionDecision.REJECT
            if decision is AdmissionDecision.ADMIT:
                self._t_admitted.inc()
                self._admission_instants.append(
                    AdmissionInstant(now_ms, query.query_id, "admit", attempt)
                )
                self.model.admit(query.query_id, footprint, now_ms)
                session.admitted += 1
                self.deadlines.on_admitted(query.query_id)
                admitted.append(
                    AdmittedQuery(
                        query=query,
                        footprint=footprint,
                        arrival_ms=arrival_ms,
                        submit_ms=now_ms,
                        defers=attempt,
                    )
                )
            elif decision is AdmissionDecision.DEFER:
                self._t_deferred.inc()
                self._admission_instants.append(
                    AdmissionInstant(now_ms, query.query_id, "defer", attempt)
                )
                session.deferred += 1
                deferrals += 1
                events.push(
                    Event(
                        now_ms + self.config.defer_delay_ms,
                        EventKind.CONTROL,
                        payload=(query, footprint, arrival_ms, attempt + 1),
                    )
                )
            else:
                self._t_rejected.inc()
                self._admission_instants.append(
                    AdmissionInstant(now_ms, query.query_id, "reject", attempt)
                )
                session.rejected += 1
                self.deadlines.on_rejected(query.query_id)
                reason = ",".join(snapshot.breached(self.limits)) or "rejected"
                rejected.append(RejectedQuery(query, arrival_ms, reason, attempt))
        self.intake = IntakeOutcome(
            admitted=admitted,
            rejected=rejected,
            no_overlap=no_overlap,
            deferrals=deferrals,
        )
        for admission in admitted:
            self.hub.register(
                admission.query.query_id, admission.footprint.keys(), admission.arrival_ms
            )
        return self.intake

    def _flush_pending_series(self, now_ms: float) -> None:
        """Sample in-flight admissions at every barrier ``(k+1)·W ≤ now``.

        ``IntakeModel.advance`` is monotone (it only retires work whose
        estimated drain time has passed), so advancing to an earlier
        barrier before processing the event at *now_ms* never perturbs
        admission decisions — and admissions only change at events, so
        the barrier value is exact, not an approximation.
        """
        window_ms = self._series_window_ms
        count = self._s_pending.sample_count
        while (count + 1) * window_ms <= now_ms + _SERIES_TIME_EPS:
            boundary_ms = (count + 1) * window_ms
            self.model.advance(boundary_ms)
            self._s_pending.record(count, self.model.pending_admissions())
            count += 1

    def admission_records(self) -> Tuple[AdmissionInstant, ...]:
        """Every gate decision with its virtual-time instant, in order."""
        return tuple(self._admission_instants)

    # ------------------------------------------------------------------ #
    # streaming
    # ------------------------------------------------------------------ #

    def on_batch(self, batch: BatchResult) -> List[ResultChunk]:
        """Feed one serial-engine bucket service into the result streams."""
        return self.hub.on_service(
            batch.work_item.bucket_index,
            batch.queries_served,
            batch.objects_served,
            batch.finished_at_ms,
        )

    def ingest_records(self, records: Iterable) -> int:
        """Feed a backend's service records (global finish-time order)."""
        return self.hub.ingest_records(records)

    def cursor(self) -> StreamCursor:
        """Snapshot the emitted-chunk position (for durable recovery)."""
        return self.hub.cursor()

    def restore_cursor(self, cursor: StreamCursor) -> None:
        """Resume a front-end's streams from a checkpointed cursor.

        The front-end must have admitted the same schedule that produced
        the cursor (streams registered, nothing emitted); delivered chunks
        are replayed silently and ingestion continues exactly-once.
        """
        self.hub.restore(cursor)

    # ------------------------------------------------------------------ #
    # reporting
    # ------------------------------------------------------------------ #

    def finalize(self) -> None:
        """Score every completed stream against its deadline class."""
        if self._finalized:
            return
        self._finalized = True
        if self.live_sampler is not None:
            self.live_sampler.finish()
        for stream in self.hub.streams():
            if not stream.is_complete:
                continue
            ttfr = stream.time_to_first_result_ms
            ttc = stream.time_to_completion_ms
            self.deadlines.on_completed(
                stream.query_id,
                ttfr / 1000.0 if ttfr is not None else None,
                ttc / 1000.0 if ttc is not None else None,
            )
        # Per-class SLA tallies become counters exactly once, after the
        # streams are scored, so they ride the same snapshot/merge seam
        # as the admission counters (and stay backend-invariant).
        for class_name, counts in self.deadlines.class_counts().items():
            for field_name, value in counts.items():
                self.telemetry.counter(
                    f"sla.{field_name}", labels={"class": class_name}
                ).inc(value)

    def report(self) -> ServingReport:
        """Summarise the run (intake, streaming latencies, SLA table)."""
        if self.intake is None:
            raise RuntimeError("report() requires an intake pass first")
        self.finalize()
        return ServingReport(
            admission_policy=self.policy.name,
            clients=self.config.clients,
            offered=self.intake.offered,
            admitted=len(self.intake.admitted),
            rejected=len(self.intake.rejected),
            deferrals=self.intake.deferrals,
            completed=len(self.hub.completed_queries()),
            chunks=self.hub.total_chunks,
            ttfr_stats=summarize_response_times(self.hub.time_to_first_result_s()),
            completion_stats=summarize_response_times(self.hub.time_to_completion_s()),
            deadline_rows=self.deadlines.rows(),
            deadline_summary=self.deadlines.summary(),
        )
