"""Serving experiment: time-to-first-result under the starvation knob.

Beyond the paper's batch evaluation: the trace is replayed through the
serving front-end — admission control at the door, incremental result
streams at the back — while the LifeRaft scheduler's age bias alpha
sweeps from pure contention (0) to pure arrival order (1).  Three served
quantities are reported per alpha:

* **time-to-first-result** — how long until the first partial-answer
  chunk of a query arrives (the serving promise of data-driven
  evaluation: answers accrue long before completion);
* **time-to-completion** — the classical response time, client-perceived;
* **rejection rate** — the fraction of offered queries the admission
  gate shed to keep the backlog bounded.

The replay runs above the serial capacity so the gate has real work to
do; admission decisions are a pure function of the arrival stream, so the
same schedule is served at every alpha and across execution backends —
the alpha knob changes *when* chunks arrive, never *which* queries run.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.experiments.common import (
    ExperimentResult,
    build_simulator,
    build_trace,
    estimate_capacity_qps,
)
from repro.service.frontend import ServiceConfig
from repro.sim.runspec import RunSpec
from repro.sim.simulator import SimulationResult, Simulator
from repro.workload.generator import QueryTrace

#: Age-bias values on the experiment's x axis.
ALPHA_SWEEP = (0.0, 0.25, 0.5, 0.75, 1.0)
#: Replay rate as a multiple of the serial capacity: saturated enough
#: that the admission gate sheds a measurable fraction of the offers.
SATURATION_FACTOR = 4.0
#: Default bound on admitted-but-undrained queries (the intake queue).
DEFAULT_INTAKE_BOUND = 64


def run(
    scale: str = "small",
    trace: Optional[QueryTrace] = None,
    simulator: Optional[Simulator] = None,
    alphas: Sequence[float] = ALPHA_SWEEP,
    admission: str = "reject",
    intake_bound: Optional[int] = DEFAULT_INTAKE_BOUND,
    max_pending_buckets: Optional[int] = None,
    workers: Optional[Sequence[int]] = None,
    backend: str = "virtual",
    saturation_factor: float = SATURATION_FACTOR,
) -> ExperimentResult:
    """Measure served latencies and shed load across the alpha sweep."""
    trace = trace or build_trace(scale)
    simulator = simulator or build_simulator(scale)
    capacity = estimate_capacity_qps(trace, simulator)
    saturation = capacity * saturation_factor
    replayed = trace.with_saturation(saturation)
    service = ServiceConfig(
        admission=admission,
        intake_bound=intake_bound,
        max_pending_buckets=max_pending_buckets,
    )
    worker_count = max(workers) if workers else 1

    results: List[Tuple[float, SimulationResult]] = []
    for alpha in alphas:
        if worker_count > 1:
            result = simulator.execute(
                replayed.queries,
                RunSpec(
                    policy="liferaft",
                    workers=worker_count,
                    alpha=alpha,
                    backend=backend,
                    label=f"serve(alpha={alpha:g})",
                    saturation_qps=saturation,
                    service=service,
                ),
            )
        else:
            result = simulator.execute(
                replayed.queries,
                RunSpec(
                    policy="liferaft",
                    alpha=alpha,
                    label=f"serve(alpha={alpha:g})",
                    saturation_qps=saturation,
                    service=service,
                ),
            )
        results.append((alpha, result))

    rows = []
    headline = {"saturation_qps": saturation, "capacity_qps": capacity}
    for alpha, result in results:
        serving = result.serving
        assert serving is not None
        rows.append(
            (
                alpha,
                serving.admitted,
                serving.rejection_rate,
                serving.avg_time_to_first_result_s,
                serving.ttfr_stats.p95_s,
                serving.avg_time_to_completion_s,
                serving.chunks,
                serving.deadline_summary["first_result_hit_rate"],
            )
        )
        suffix = f"alpha{alpha:g}"
        headline[f"ttfr_s_{suffix}"] = serving.avg_time_to_first_result_s
        headline[f"ttc_s_{suffix}"] = serving.avg_time_to_completion_s
        headline[f"rejection_rate_{suffix}"] = serving.rejection_rate
    return ExperimentResult(
        name="serving",
        title=(
            f"Served latencies vs the starvation knob "
            f"({admission} admission, intake bound {intake_bound})"
        ),
        paper_expectation=(
            "beyond the paper: incremental evaluation delivers first results "
            "well before completion at every alpha, and the gap is widest for "
            "contention-driven scheduling (low alpha), which drains popular "
            "buckets — and therefore many queries' first chunks — soonest"
        ),
        headers=(
            "alpha",
            "admitted",
            "rejection rate",
            "avg TTFR (s)",
            "p95 TTFR (s)",
            "avg completion (s)",
            "chunks",
            "first-result SLA",
        ),
        rows=rows,
        headline=headline,
        notes=(
            f"trace replayed at {saturation_factor:g}x the serial capacity; "
            f"admission is a pure function of the arrival stream, so every "
            f"alpha serves the same admitted schedule "
            f"(workers={worker_count}, backend={backend if worker_count > 1 else 'serial'})"
        ),
    )
