"""Figure 7: throughput and response time by scheduling algorithm.

The paper's central result: replaying the cross-match trace under NoShare,
LifeRaft with age bias α ∈ {1.0, 0.75, 0.5, 0.25, 0.0} and the Round Robin
batch scheduler.  Figure 7(a) shows over a two-fold throughput improvement
of the greedy (α = 0) scheduler over NoShare, with RR landing near α = 1;
Figure 7(b) shows NoShare with the worst response time and the greedy
scheduler with the highest response-time variance.

The trace is replayed at an arrival rate equal to the greedy scheduler's
measured service capacity, which puts every policy in the saturated regime
the original trace produced on the paper's hardware.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.experiments.common import (
    ExperimentResult,
    build_simulator,
    build_trace,
    estimate_capacity_qps,
    result_rows,
)
from repro.sim.runspec import RunSpec
from repro.sim.simulator import SimulationResult, Simulator
from repro.workload.generator import QueryTrace

#: α values on the figure's x axis, in the paper's order.
ALPHA_SWEEP = (1.0, 0.75, 0.5, 0.25, 0.0)


def run(
    scale: str = "small",
    trace: Optional[QueryTrace] = None,
    simulator: Optional[Simulator] = None,
    saturation_qps: Optional[float] = None,
) -> ExperimentResult:
    """Reproduce the scheduling-algorithm comparison of Figure 7."""
    trace = trace or build_trace(scale)
    simulator = simulator or build_simulator(scale)
    if saturation_qps is None:
        saturation_qps = estimate_capacity_qps(trace, simulator)
    replayed = trace.with_saturation(saturation_qps)

    results: Dict[str, SimulationResult] = {}
    results["NoShare"] = simulator.execute(
        replayed.queries,
        RunSpec(policy="noshare", label="NoShare", saturation_qps=saturation_qps),
    )
    for alpha in ALPHA_SWEEP:
        label = f"alpha={alpha:g}"
        results[label] = simulator.execute(
            replayed.queries,
            RunSpec(policy="liferaft", alpha=alpha, label=label, saturation_qps=saturation_qps),
        )
    results["RR"] = simulator.execute(
        replayed.queries,
        RunSpec(policy="round_robin", label="RR", saturation_qps=saturation_qps),
    )

    noshare_tp = results["NoShare"].throughput_qps
    greedy_tp = results["alpha=0"].throughput_qps
    age_tp = results["alpha=1"].throughput_qps
    rr_tp = results["RR"].throughput_qps
    return ExperimentResult(
        name="figure7",
        title="Throughput and response time by scheduling algorithm",
        paper_expectation=(
            "greedy LifeRaft (alpha=0) achieves >2x the throughput of NoShare; "
            "RR performs like alpha=1; NoShare has the worst response time; the "
            "greedy scheduler has the highest response-time variance"
        ),
        headers=(
            "scheduler",
            "throughput (q/s)",
            "avg response (s)",
            "response / NoShare",
            "response CoV",
            "cache hit rate",
            "bucket reads",
        ),
        rows=result_rows(results, reference="NoShare"),
        headline={
            "saturation_qps": saturation_qps,
            "greedy_vs_noshare_throughput": greedy_tp / noshare_tp if noshare_tp else float("inf"),
            "alpha1_vs_greedy_throughput": age_tp / greedy_tp if greedy_tp else float("inf"),
            "rr_vs_alpha1_throughput": rr_tp / age_tp if age_tp else float("inf"),
            "noshare_response_s": results["NoShare"].avg_response_time_s,
            "greedy_response_cov": results["alpha=0"].response_time_cov,
            "alpha1_response_cov": results["alpha=1"].response_time_cov,
        },
        notes="trace replayed at the greedy scheduler's measured capacity",
    )
