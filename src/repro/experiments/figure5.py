"""Figure 5: top ten buckets by reuse across the query trace.

The paper's Figure 5 scatters, for each query in arrival order, which of
the ten most-reused buckets it touches; the visible verticals show that
queries overlapping in data access arrive close together in time, and the
text notes the top ten buckets are accessed by 61 % of all queries.  This
experiment reports the same data in tabular form: per top-bucket reuse
counts, the span of query numbers touching it, and the headline fraction.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.experiments.common import ExperimentResult, build_trace
from repro.workload.generator import QueryTrace
from repro.workload.stats import TraceStatistics


def run(
    scale: str = "small",
    trace: Optional[QueryTrace] = None,
    top_n: int = 10,
) -> ExperimentResult:
    """Characterise bucket reuse in the trace (the paper's Figure 5)."""
    trace = trace or build_trace(scale)
    stats = TraceStatistics(trace.queries)
    timeline = stats.reuse_timeline(top_n)
    top = stats.top_buckets_by_reuse(top_n)
    rows: List[Sequence[object]] = []
    for rank, (bucket, reuse_count) in enumerate(top, start=1):
        touches = [query_number for query_number, r in timeline if r == rank]
        first = min(touches) if touches else 0
        last = max(touches) if touches else 0
        rows.append((rank, bucket, reuse_count, reuse_count / len(trace), first, last))
    fraction = stats.fraction_of_queries_touching(bucket for bucket, _count in top)
    return ExperimentResult(
        name="figure5",
        title=f"Top {top_n} buckets by reuse over the query trace",
        paper_expectation=(
            "the top ten buckets are reused frequently and accessed by ~61% of "
            "queries; reuse clusters in time (temporal locality)"
        ),
        headers=(
            "rank",
            "bucket",
            "queries touching",
            "fraction of trace",
            "first query #",
            "last query #",
        ),
        rows=rows,
        headline={
            "fraction_queries_touching_top10": fraction,
            "trace_queries": float(len(trace)),
        },
    )
