"""Ablations over LifeRaft's design choices (not in the paper's figures).

DESIGN.md calls out four design decisions worth isolating; each sub-
experiment here holds everything else fixed and varies one of them:

* ``cache_size``   — the paper fixes the bucket cache at 20 buckets; how
  much of the greedy scheduler's advantage depends on that cache?
* ``hybrid_join``  — disable the indexed path entirely (always scan), the
  configuration the break-even threshold of §3.4 argues against.
* ``policy``       — most-contentious-data-first (LifeRaft, α = 0) versus
  the least-sharable-first policy of Agrawal et al. discussed in §6,
  including the buffering (pending objects) it forces the system to hold.
* ``metric_form``  — the normalised Ua combination used by this
  reproduction versus the paper's raw (unit-mismatched) formula.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.metrics import CostModel
from repro.core.scheduler import LifeRaftScheduler, SchedulerConfig
from repro.experiments.common import (
    ExperimentResult,
    build_simulator,
    build_trace,
    estimate_capacity_qps,
)
from repro.sim.runspec import RunSpec
from repro.sim.simulator import SimulationConfig, Simulator
from repro.workload.generator import QueryTrace

DEFAULT_CACHE_SIZES = (5, 20, 80)


def run(
    scale: str = "small",
    trace: Optional[QueryTrace] = None,
    cache_sizes: Sequence[int] = DEFAULT_CACHE_SIZES,
) -> ExperimentResult:
    """Run the four ablations and collect one comparison table."""
    trace = trace or build_trace(scale)
    base_simulator = build_simulator(scale)
    saturation = estimate_capacity_qps(trace, base_simulator)
    replayed = trace.with_saturation(saturation)
    bucket_count = trace.config.bucket_count

    rows: List[Sequence[object]] = []
    headline: Dict[str, float] = {"saturation_qps": saturation}

    # -- cache size sweep (greedy scheduler) -------------------------------
    for cache_buckets in cache_sizes:
        simulator = Simulator(
            SimulationConfig(bucket_count=bucket_count, cache_buckets=cache_buckets)
        )
        result = simulator.execute(replayed.queries, RunSpec(policy="liferaft", alpha=0.0))
        rows.append(
            (
                f"cache={cache_buckets}",
                result.throughput_qps,
                result.avg_response_time_s,
                result.cache_hit_rate,
                result.bucket_reads,
            )
        )
        headline[f"throughput_cache_{cache_buckets}"] = result.throughput_qps

    # -- hybrid join on/off -------------------------------------------------
    for enable_hybrid in (True, False):
        simulator = Simulator(
            SimulationConfig(bucket_count=bucket_count, enable_hybrid=enable_hybrid)
        )
        result = simulator.execute(replayed.queries, RunSpec(policy="liferaft", alpha=0.5))
        label = "hybrid=on" if enable_hybrid else "hybrid=off"
        rows.append(
            (
                label,
                result.throughput_qps,
                result.avg_response_time_s,
                result.cache_hit_rate,
                result.bucket_reads,
            )
        )
        headline[f"throughput_{label.replace('=', '_')}"] = result.throughput_qps

    # -- most-contentious-first vs least-sharable-first ----------------------
    for policy in ("liferaft", "least_sharable_first"):
        result = base_simulator.execute(replayed.queries, RunSpec(policy=policy, alpha=0.0))
        rows.append(
            (
                policy,
                result.throughput_qps,
                result.avg_response_time_s,
                result.cache_hit_rate,
                result.bucket_reads,
            )
        )
        headline[f"throughput_{policy}"] = result.throughput_qps

    # -- normalised vs raw aged-throughput metric ----------------------------
    for normalize in (True, False):
        scheduler = LifeRaftScheduler(
            SchedulerConfig(alpha=0.5, cost=CostModel.paper_defaults(), normalize_metric=normalize)
        )
        result = base_simulator.execute(replayed.queries, RunSpec(policy=scheduler))
        label = "metric=normalised" if normalize else "metric=raw"
        rows.append(
            (
                label,
                result.throughput_qps,
                result.avg_response_time_s,
                result.cache_hit_rate,
                result.bucket_reads,
            )
        )
        headline[f"throughput_{'normalised' if normalize else 'raw'}_metric"] = (
            result.throughput_qps
        )

    return ExperimentResult(
        name="ablations",
        title="Design-choice ablations (cache size, hybrid join, policy, metric form)",
        paper_expectation=(
            "larger caches and the hybrid join both contribute to the greedy "
            "scheduler's advantage; most-contentious-first beats least-sharable-first "
            "on throughput for this workload (the §6 argument)"
        ),
        headers=(
            "configuration",
            "throughput (q/s)",
            "avg response (s)",
            "cache hit rate",
            "bucket reads",
        ),
        rows=rows,
        headline=headline,
    )
