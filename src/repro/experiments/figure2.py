"""Figure 2: speed-up of a non-indexed scan over an indexed join.

The paper plots, for a 40 MB / 10,000-object bucket, the speed-up of the
non-indexed sequential scan relative to an indexed join as a function of
the workload-queue-size / bucket-size ratio.  The indexed join wins for
tiny queues (the scan is up to ~20× slower there), the scan wins for large
ones, and the break-even sits near 3 % of the bucket — the threshold the
hybrid join strategy uses (§3.4).

This experiment regenerates the curve directly from the cost model (the
same code path the hybrid strategy consults at run time) and reports the
measured break-even fraction.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.core.metrics import CostModel
from repro.experiments.common import ExperimentResult

#: Workload-queue-to-bucket ratios matching the figure's log-scale x axis.
DEFAULT_RATIOS = (
    0.001,
    0.002,
    0.003,
    0.005,
    0.01,
    0.02,
    0.03,
    0.05,
    0.1,
    0.2,
    0.3,
    0.5,
    1.0,
)


def run(
    scale: str = "small",
    ratios: Sequence[float] = DEFAULT_RATIOS,
    cost: Optional[CostModel] = None,
) -> ExperimentResult:
    """Regenerate the scan-vs-index speed-up curve.

    *scale* is accepted for interface uniformity; the curve is analytic in
    the cost model and does not depend on the trace size.
    """
    cost = cost or CostModel.paper_defaults()
    rows: List[Sequence[object]] = []
    for ratio in ratios:
        queue_objects = max(1, int(round(ratio * cost.bucket_objects)))
        scan_ms = cost.scan_cost_ms(queue_objects, in_memory=False)
        index_ms = cost.index_cost_ms(queue_objects)
        speedup = index_ms / scan_ms
        rows.append((ratio, queue_objects, scan_ms / 1000.0, index_ms / 1000.0, speedup))
    breakeven = cost.breakeven_fraction()
    max_gap = max(max(r[4] for r in rows), max(1.0 / r[4] for r in rows))
    return ExperimentResult(
        name="figure2",
        title="Speed-up of non-indexed scan vs. spatial index by workload-queue ratio",
        paper_expectation=(
            "speed-up crosses 1.0 near a queue/bucket ratio of 3%; up to a "
            "twenty-fold gap between the strategies at the extremes"
        ),
        headers=("queue/bucket ratio", "queue objects", "scan (s)", "index (s)", "scan speed-up"),
        rows=rows,
        headline={
            "breakeven_fraction": breakeven,
            "max_strategy_gap": max_gap,
        },
        notes=(
            "computed from the cost model used by the hybrid join strategy "
            f"(Tb={cost.tb_ms:.0f} ms, Tm={cost.tm_ms} ms, probe={cost.index_probe_ms} ms)"
        ),
    )
