"""Experiment registry: one module per figure/claim of the paper's evaluation.

Every experiment module exposes ``run(scale=..., **kwargs)`` returning an
:class:`~repro.experiments.common.ExperimentResult` that carries the table
the paper's figure plots, the paper's expectation, and our measured
headline numbers.  ``run_all`` executes the full suite (the CLI and the
benchmark harness call the same functions).
"""

import inspect
from typing import Callable, Dict, List, Optional

from repro.experiments.common import ExperimentResult, SCALES
from repro.experiments import (
    figure2,
    figure4,
    figure5,
    figure6,
    figure7,
    figure8,
    index_only,
    cache_hits,
    cache_ablation,
    ablations,
    elasticity,
    recovery,
    scaling,
    serving,
)

#: Registry mapping experiment name to its ``run`` callable.
EXPERIMENTS: Dict[str, Callable[..., ExperimentResult]] = {
    "figure2": figure2.run,
    "figure4": figure4.run,
    "figure5": figure5.run,
    "figure6": figure6.run,
    "figure7": figure7.run,
    "figure8": figure8.run,
    "index_only": index_only.run,
    "cache_hits": cache_hits.run,
    "cache_ablation": cache_ablation.run,
    "ablations": ablations.run,
    "elasticity": elasticity.run,
    "recovery": recovery.run,
    "scaling": scaling.run,
    "serving": serving.run,
}


def run_all(
    scale: str = "small", names: Optional[List[str]] = None, **kwargs
) -> List[ExperimentResult]:
    """Run every registered experiment (or the named subset) at *scale*.

    Extra keyword arguments (e.g. ``workers`` from the CLI's ``--workers``
    flag) are forwarded to each experiment that accepts them and silently
    dropped for those that do not, so one flag can steer the subset of
    experiments it applies to.
    """
    selected = names or list(EXPERIMENTS)
    unknown = [name for name in selected if name not in EXPERIMENTS]
    if unknown:
        raise KeyError(f"unknown experiments: {unknown}; available: {sorted(EXPERIMENTS)}")
    results = []
    for name in selected:
        runner = EXPERIMENTS[name]
        accepted = inspect.signature(runner).parameters
        forwarded = {
            key: value
            for key, value in kwargs.items()
            if key in accepted and value is not None
        }
        results.append(runner(scale=scale, **forwarded))
    return results


__all__ = ["EXPERIMENTS", "ExperimentResult", "SCALES", "run_all"]
