"""Figure 6: cumulative workload captured by buckets ranked by workload.

The paper plots the cumulative fraction of the total workload (number of
cross-match objects) against buckets ranked from largest to smallest
workload: roughly 2 % of the buckets capture 50 % of the workload while a
long tail of buckets carries little work and is "susceptible to starvation
by the scheduler".  This experiment reports the same cumulative curve at a
set of rank fractions plus the two headline statistics.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.experiments.common import ExperimentResult, build_trace
from repro.workload.generator import QueryTrace
from repro.workload.stats import TraceStatistics

#: Fractions of the (touched) bucket population at which the curve is read.
DEFAULT_RANK_FRACTIONS = (0.005, 0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1.0)


def run(
    scale: str = "small",
    trace: Optional[QueryTrace] = None,
    rank_fractions: Sequence[float] = DEFAULT_RANK_FRACTIONS,
) -> ExperimentResult:
    """Report the cumulative workload distribution over buckets (Figure 6)."""
    trace = trace or build_trace(scale)
    stats = TraceStatistics(trace.queries)
    curve = stats.cumulative_workload_curve()
    touched = stats.touched_bucket_count
    rows: List[Sequence[object]] = []
    for fraction in rank_fractions:
        rank = max(1, min(touched, int(round(fraction * touched))))
        cumulative_pct = curve[rank - 1][1]
        rows.append((fraction, rank, cumulative_pct))
    half_rank = stats.buckets_for_workload_fraction(0.5)
    return ExperimentResult(
        name="figure6",
        title="Cumulative workload by bucket rank",
        paper_expectation="~2% of the buckets capture ~50% of the workload; long, light tail",
        headers=("bucket fraction", "bucket rank", "cumulative workload (%)"),
        rows=rows,
        headline={
            "workload_fraction_in_top_2pct": stats.fraction_of_workload_in_top_fraction(0.02),
            "buckets_for_half_workload": float(half_rank),
            "bucket_fraction_for_half_workload": half_rank / max(1, touched),
            "touched_buckets": float(touched),
        },
    )
