"""§6 claim: cache hit rates of the contention-based vs. age-based scheduler.

"In comparing the most data-sharing (α = 0) policy with a purely age-based
scheduler (α = 1), we found 40 % and 7 % of requests serviced from the
cache respectively.  This is because an age-based scheduler may evict
contentious data regions to maintain completion order."  This experiment
replays the trace under both extremes of the age bias with the paper's
20-bucket cache and reports the measured hit rates.
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.common import (
    ExperimentResult,
    build_simulator,
    build_trace,
    estimate_capacity_qps,
)
from repro.sim.runspec import RunSpec
from repro.sim.simulator import Simulator
from repro.workload.generator import QueryTrace


def run(
    scale: str = "small",
    trace: Optional[QueryTrace] = None,
    simulator: Optional[Simulator] = None,
    saturation_qps: Optional[float] = None,
) -> ExperimentResult:
    """Measure cache hit rates at α = 0 and α = 1."""
    trace = trace or build_trace(scale)
    simulator = simulator or build_simulator(scale)
    if saturation_qps is None:
        saturation_qps = estimate_capacity_qps(trace, simulator)
    replayed = trace.with_saturation(saturation_qps)

    greedy = simulator.execute(
        replayed.queries, RunSpec(policy="liferaft", alpha=0.0, label="alpha=0")
    )
    aged = simulator.execute(
        replayed.queries, RunSpec(policy="liferaft", alpha=1.0, label="alpha=1")
    )
    rows = [
        (result.label, result.cache_hit_rate, result.bucket_reads, result.bucket_services)
        for result in (greedy, aged)
    ]
    return ExperimentResult(
        name="cache_hits",
        title="Cache hit rate: contention-based (alpha=0) vs. age-based (alpha=1)",
        paper_expectation="about 40% of requests served from cache at alpha=0 vs. 7% at alpha=1",
        headers=("policy", "cache hit rate", "bucket reads", "bucket services"),
        rows=rows,
        headline={
            "hit_rate_alpha0": greedy.cache_hit_rate,
            "hit_rate_alpha1": aged.cache_hit_rate,
            "hit_rate_ratio": (
                greedy.cache_hit_rate / aged.cache_hit_rate
                if aged.cache_hit_rate
                else float("inf")
            ),
        },
    )
