"""Figure 4: normalised trade-off curves and tolerance-threshold α selection.

For a low-saturation and a high-saturation replay of the trace, the paper
plots throughput (normalised to the maximum over all α) against average
response time (also normalised) and picks, per curve, the α that minimises
response time while giving up no more than a 20 % tolerance of the maximum
throughput.  This experiment regenerates both curves, applies the same
selection rule through :class:`~repro.core.adaptive.TradeoffCurve`, and
reports the chosen α per saturation.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.adaptive import AlphaController, TradeoffCurve, TradeoffPoint
from repro.experiments.common import (
    ExperimentResult,
    build_simulator,
    build_trace,
    estimate_capacity_qps,
)
from repro.sim.runspec import RunSpec
from repro.sim.simulator import Simulator
from repro.workload.generator import QueryTrace

ALPHA_SWEEP = (0.0, 0.25, 0.5, 0.75, 1.0)

#: Low / high saturation as fractions of the greedy scheduler's capacity,
#: mirroring the paper's 0.1 vs 0.5 q/s curves.
DEFAULT_SATURATION_FRACTIONS = {"low": 0.45, "high": 2.2}


def build_tradeoff_curves(
    trace: QueryTrace,
    simulator: Simulator,
    saturation_fractions: Dict[str, float],
    alphas: Sequence[float] = ALPHA_SWEEP,
) -> Dict[str, TradeoffCurve]:
    """Measure one trade-off curve per saturation label."""
    capacity = estimate_capacity_qps(trace, simulator)
    curves: Dict[str, TradeoffCurve] = {}
    for label, fraction in saturation_fractions.items():
        saturation = capacity * fraction
        curve = TradeoffCurve(saturation_qps=saturation)
        replayed = trace.with_saturation(saturation)
        for alpha in alphas:
            result = simulator.execute(
                replayed.queries,
                RunSpec(policy="liferaft", alpha=alpha, saturation_qps=saturation),
            )
            curve.add(
                TradeoffPoint(
                    alpha=alpha,
                    throughput_qps=result.throughput_qps,
                    avg_response_time_s=result.avg_response_time_s,
                )
            )
        curves[label] = curve
    return curves


def run(
    scale: str = "small",
    trace: Optional[QueryTrace] = None,
    simulator: Optional[Simulator] = None,
    tolerance: float = 0.2,
    saturation_fractions: Optional[Dict[str, float]] = None,
) -> ExperimentResult:
    """Reproduce the trade-off curves and the tolerance-threshold α choice."""
    trace = trace or build_trace(scale)
    simulator = simulator or build_simulator(scale)
    fractions = saturation_fractions or dict(DEFAULT_SATURATION_FRACTIONS)
    curves = build_tradeoff_curves(trace, simulator, fractions)

    rows: List[Sequence[object]] = []
    headline: Dict[str, float] = {"tolerance": tolerance}
    for label, curve in curves.items():
        chosen = curve.select_alpha(tolerance)
        headline[f"alpha_selected_{label}"] = chosen
        headline[f"saturation_{label}_qps"] = curve.saturation_qps
        for alpha, throughput_norm, response_norm in curve.normalized():
            rows.append((label, curve.saturation_qps, alpha, throughput_norm, response_norm))
    controller = AlphaController(list(curves.values()), tolerance=tolerance)
    headline["controller_alpha_at_low"] = controller.alpha_for_saturation(
        curves["low"].saturation_qps
    )
    headline["controller_alpha_at_high"] = controller.alpha_for_saturation(
        curves["high"].saturation_qps
    )
    return ExperimentResult(
        name="figure4",
        title="Normalised throughput / response-time trade-off curves by saturation",
        paper_expectation=(
            "per-saturation curves normalised to their maxima; with a 20% tolerance "
            "threshold the controller picks a larger alpha at low saturation than at "
            "high saturation"
        ),
        headers=(
            "saturation label",
            "saturation (q/s)",
            "alpha",
            "throughput / max",
            "response / max",
        ),
        rows=rows,
        headline=headline,
    )
