"""Elasticity experiment: planned scale-down/scale-up vs a static pool.

Beyond the paper's single-machine evaluation: the multi-level batching
that makes LifeRaft's shards pure functions of their schedules also makes
the worker pool *elastic* — a shard can leave at a window barrier by
evacuating its queues over the stealing seam, and a cold shard can join
and acquire work through ordinary steal rounds.  This experiment replays
one saturated trace through the reliability coordinator under a set of
scale plans (shrink, grow, shrink-then-grow) and reports:

* the **completion contract** — an elastic run completes exactly the
  queries the static run completes (the parity tests additionally pin the
  id-level set; cache-dependent totals like bucket reads legitimately
  shift when a queue is serviced by a different worker's cache);
* the **cost of the membership change** — queues and entries migrated at
  the departure barriers, and how the makespan moves as capacity shifts.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.experiments.common import (
    ExperimentResult,
    build_simulator,
    build_trace,
    estimate_capacity_qps,
)
from repro.reliability import ReliabilityConfig, ScalePlan
from repro.sim.runspec import RunSpec
from repro.sim.simulator import Simulator
from repro.workload.generator import QueryTrace

#: Shards of the static baseline.
WORKERS = 3
#: The scale plans on the experiment's x axis: (label, downs, ups).
PLAN_SWEEP: Tuple[Tuple[str, str, str], ...] = (
    ("static", "", ""),
    ("shrink 3->2", "1@2", ""),
    ("grow 3->4", "", "2"),
    ("shrink+grow", "1@2", "4"),
)
#: What the elastic run must conserve exactly: every admitted query still
#: completes.  (Batch counts, bucket reads and busy/IO time legitimately
#: shift — a migrated queue is serviced through a different worker's
#: cache and batching; the integration tests pin the id-level set.)
CONSERVED_FIELDS = ("completed_queries",)
#: Window quantum in bucket reads: fine enough that the plans' windows
#: exist at every scale.
WINDOW_BUCKET_READS = 4.0
#: Replay rate as a multiple of serial capacity (service-bound run).
SATURATION_FACTOR = 8.0


def run(
    scale: str = "small",
    trace: Optional[QueryTrace] = None,
    simulator: Optional[Simulator] = None,
    plans: Sequence[Tuple[str, str, str]] = PLAN_SWEEP,
    backend: str = "virtual",
) -> ExperimentResult:
    """Compare elastic scale plans against a static pool on one trace."""
    simulator = simulator or build_simulator(scale)
    trace = trace or build_trace(scale, bucket_count=len(simulator.layout))
    capacity = estimate_capacity_qps(trace, simulator)
    saturation = capacity * SATURATION_FACTOR
    replayed = trace.with_saturation(saturation)
    quantum_ms = simulator.config.cost.tb_ms * WINDOW_BUCKET_READS

    static = None
    rows = []
    headline = {"saturation_qps": saturation, "workers": float(WORKERS)}
    for label, downs, ups in plans:
        plan = ScalePlan.parse(downs, ups)
        result = simulator.execute(
            replayed.queries,
            RunSpec(
                policy="liferaft",
                workers=WORKERS,
                label=label,
                backend=backend,
                reliability=ReliabilityConfig(
                    cadence="windows:2",
                    scale=plan if plan else None,
                    window_quantum_ms=quantum_ms,
                ),
            ),
        )
        if static is None:
            static = result  # the sweep's first row is the baseline
        report = result.reliability
        assert report is not None
        conserved = all(
            getattr(result, field) == getattr(static, field)
            for field in CONSERVED_FIELDS
        )
        rows.append(
            (
                label,
                report.scale_downs,
                report.scale_ups,
                sum(event.buckets_migrated for event in report.scale_events),
                sum(event.entries_migrated for event in report.scale_events),
                result.completed_queries,
                f"{result.makespan_s:.1f}",
                "yes" if conserved else "NO",
            )
        )
        if plan:
            headline[f"makespan_{label.replace(' ', '_').replace('->', 'to')}_s"] = (
                result.makespan_s
            )
        else:
            headline["makespan_static_s"] = result.makespan_s
    return ExperimentResult(
        name="elasticity",
        title=f"Planned scale-down/scale-up vs a static pool ({backend} backend)",
        paper_expectation=(
            "beyond the paper: schedule-pure shards make the pool elastic — "
            "a departing shard evacuates its queues over the stealing seam "
            "and a joining shard steals its way to work, while the run "
            "completes exactly the static run's query set; makespan tracks "
            "the capacity change"
        ),
        headers=(
            "plan",
            "downs",
            "ups",
            "buckets moved",
            "entries moved",
            "completed",
            "makespan (s)",
            "conserved",
        ),
        rows=rows,
        headline=headline,
        notes=(
            f"{WORKERS} shard workers, window quantum "
            f"{WINDOW_BUCKET_READS:g} bucket reads, stealing on; trace "
            f"replayed at {SATURATION_FACTOR:g}x serial capacity; "
            "scale-down specs are worker@window, scale-ups are windows"
        ),
    )
