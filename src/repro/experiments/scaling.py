"""Worker-scaling experiment: throughput speedup from parallel shards.

Beyond the paper's single-server setup: the trace is replayed against the
:class:`~repro.parallel.ParallelEngine` at 1, 2, 4 (and optionally more)
workers, with the bucket range sharded across them and work stealing
enabled.  Total service work is invariant (the same batches run, just
distributed), so the makespan — and therefore the query throughput —
should improve monotonically with the worker count until the arrival
stream or shard imbalance becomes the bottleneck.

The trace is replayed well above the serial capacity so the run is
service-bound at every worker count; an under-saturated run would hide the
speedup behind arrival gaps.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.experiments.common import (
    ExperimentResult,
    build_simulator,
    build_trace,
    estimate_capacity_qps,
)
from repro.sim.simulator import SimulationResult, Simulator
from repro.workload.generator import QueryTrace

#: Worker counts on the experiment's x axis.
WORKER_SWEEP = (1, 2, 4, 8)
#: Replay rate as a multiple of the serial capacity: deep saturation, so
#: every worker count is service-bound and the speedup is visible.
SATURATION_FACTOR = 16.0


def run(
    scale: str = "small",
    trace: Optional[QueryTrace] = None,
    simulator: Optional[Simulator] = None,
    workers: Optional[Sequence[int]] = None,
    shard_strategy: str = "round_robin",
    alpha: float = 0.25,
) -> ExperimentResult:
    """Measure throughput speedup versus worker count."""
    trace = trace or build_trace(scale)
    simulator = simulator or build_simulator(scale)
    sweep: Tuple[int, ...] = tuple(workers) if workers else WORKER_SWEEP
    if 1 not in sweep:
        # Speedups are always reported against the serial (1-worker)
        # baseline, so make sure it is part of the sweep.
        sweep = (1,) + sweep
    sweep = tuple(sorted(set(sweep)))
    capacity = estimate_capacity_qps(trace, simulator)
    saturation = capacity * SATURATION_FACTOR
    replayed = trace.with_saturation(saturation)

    results: List[SimulationResult] = []
    for count in sweep:
        results.append(
            simulator.run_parallel(
                replayed.queries,
                "liferaft",
                workers=count,
                alpha=alpha,
                shard_strategy=shard_strategy,
                label=f"workers={count}",
                saturation_qps=saturation,
            )
        )

    base_tp = results[0].throughput_qps
    rows = []
    for result in results:
        speedup = result.throughput_qps / base_tp if base_tp else float("inf")
        rows.append(
            (
                result.workers,
                result.throughput_qps,
                speedup,
                result.avg_response_time_s,
                result.cache_hit_rate,
                result.steals,
                result.wall_clock_s,
            )
        )

    by_workers = {result.workers: result for result in results}
    headline = {
        "saturation_qps": saturation,
        "serial_throughput_qps": base_tp,
    }
    for count in (2, 4, 8):
        if count in by_workers and base_tp:
            headline[f"speedup_{count}x"] = by_workers[count].throughput_qps / base_tp
    return ExperimentResult(
        name="scaling",
        title=f"Throughput scaling with parallel workers ({shard_strategy} sharding)",
        paper_expectation=(
            "beyond the paper: with bucket ownership sharded across N workers "
            "and work stealing, throughput should rise monotonically from 1 to "
            "4 workers on the saturated synthetic trace"
        ),
        headers=(
            "workers",
            "throughput (q/s)",
            "speedup",
            "avg response (s)",
            "cache hit rate",
            "steals",
            "virtual wall clock (s)",
        ),
        rows=rows,
        headline=headline,
        notes=(
            f"trace replayed at {SATURATION_FACTOR:g}x the serial capacity so "
            "every worker count is service-bound"
        ),
    )
