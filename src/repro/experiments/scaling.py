"""Worker-scaling experiment: throughput speedup from parallel shards.

Beyond the paper's single-server setup: the trace is replayed against the
sharded engine at 1, 2, 4 (and optionally more) workers, with the bucket
range sharded across them and work stealing enabled.  Total service work
is invariant (the same batches run, just distributed), so the makespan —
and therefore the query throughput — should improve monotonically with
the worker count until the arrival stream or shard imbalance becomes the
bottleneck.

The *backend* knob selects where the shard workers run: ``"virtual"``
interleaves them deterministically in one OS process (virtual-time
speedup only), ``"process"`` runs one OS process per shard so the table
additionally shows **real** wall-clock speedup on the host's cores.
Virtual-clock columns are identical across backends by construction (the
cross-backend parity tests pin this down).

The trace is replayed well above the serial capacity so the run is
service-bound at every worker count; an under-saturated run would hide the
speedup behind arrival gaps.
"""

from __future__ import annotations

import os
from typing import List, Optional, Sequence, Tuple, Union

from repro.experiments.common import (
    ExperimentResult,
    build_simulator,
    build_trace,
    estimate_capacity_qps,
)
from repro.sim.runspec import RunSpec
from repro.sim.simulator import SimulationResult, Simulator
from repro.workload.generator import QueryTrace

#: Worker counts on the experiment's x axis.
WORKER_SWEEP = (1, 2, 4, 8)
#: Replay rate as a multiple of the serial capacity: deep saturation, so
#: every worker count is service-bound and the speedup is visible.
SATURATION_FACTOR = 16.0


def run(
    scale: str = "small",
    trace: Optional[QueryTrace] = None,
    simulator: Optional[Simulator] = None,
    workers: Optional[Sequence[int]] = None,
    shard_strategy: str = "round_robin",
    alpha: float = 0.25,
    backend: str = "virtual",
    store_path: Optional[Union[str, os.PathLike]] = None,
) -> ExperimentResult:
    """Measure throughput speedup versus worker count.

    With *store_path* set (an ingested ``.lrbs`` file), every worker
    count replays against the materialised on-disk buckets: each bucket
    service performs real seeks, reads and columnar decoding, so the
    wall-clock columns measure real storage work rather than cost-model
    arithmetic.  Virtual-clock columns are identical either way.
    """
    if simulator is None:
        simulator = (
            Simulator.from_store(store_path)
            if store_path is not None
            else build_simulator(scale)
        )
    elif store_path is not None:
        simulator = Simulator(simulator.config, store_path=store_path)
    trace = trace or build_trace(scale, bucket_count=len(simulator.layout))
    sweep: Tuple[int, ...] = tuple(workers) if workers else WORKER_SWEEP
    if 1 not in sweep:
        # Speedups are always reported against the serial (1-worker)
        # baseline, so make sure it is part of the sweep.
        sweep = (1,) + sweep
    sweep = tuple(sorted(set(sweep)))
    capacity = estimate_capacity_qps(trace, simulator)
    saturation = capacity * SATURATION_FACTOR
    replayed = trace.with_saturation(saturation)

    results: List[SimulationResult] = []
    for count in sweep:
        results.append(
            simulator.execute(
                replayed.queries,
                RunSpec(
                    policy="liferaft",
                    workers=count,
                    alpha=alpha,
                    shard_strategy=shard_strategy,
                    label=f"workers={count}",
                    saturation_qps=saturation,
                    backend=backend,
                ),
            )
        )

    base_tp = results[0].throughput_qps
    base_elapsed = results[0].real_elapsed_s
    rows = []
    for result in results:
        speedup = result.throughput_qps / base_tp if base_tp else float("inf")
        wall_speedup = (
            base_elapsed / result.real_elapsed_s if result.real_elapsed_s else float("inf")
        )
        rows.append(
            (
                result.workers,
                result.throughput_qps,
                speedup,
                result.avg_response_time_s,
                result.cache_hit_rate,
                result.steals,
                result.wall_clock_s,
                result.real_elapsed_s,
                wall_speedup,
                result.real_read_s,
            )
        )

    by_workers = {result.workers: result for result in results}
    headline = {
        "saturation_qps": saturation,
        "serial_throughput_qps": base_tp,
        "serial_elapsed_s": base_elapsed,
    }
    for count in (2, 4, 8):
        result = by_workers.get(count)
        if result is None:
            continue
        if base_tp:
            headline[f"speedup_{count}x"] = result.throughput_qps / base_tp
        if result.real_elapsed_s:
            headline[f"wall_speedup_{count}x"] = base_elapsed / result.real_elapsed_s
    return ExperimentResult(
        name="scaling",
        title=(
            f"Throughput scaling with parallel workers "
            f"({shard_strategy} sharding, {backend} backend)"
        ),
        paper_expectation=(
            "beyond the paper: with bucket ownership sharded across N workers "
            "and work stealing, throughput should rise monotonically from 1 to "
            "4 workers on the saturated synthetic trace"
        ),
        headers=(
            "workers",
            "throughput (q/s)",
            "speedup",
            "avg response (s)",
            "cache hit rate",
            "steals",
            "virtual wall clock (s)",
            "real elapsed (s)",
            "wall speedup",
            "real read (s)",
        ),
        rows=rows,
        headline=headline,
        notes=(
            f"trace replayed at {SATURATION_FACTOR:g}x the serial capacity so "
            f"every worker count is service-bound; backend={backend}, "
            f"store={'file-backed (' + os.fspath(store_path) + ')' if store_path else 'in-memory'} "
            "(wall speedup is only meaningful on the process backend with "
            "multiple cores)"
        ),
    )
