"""Shared experiment infrastructure: scales, traces, result tables.

The paper's testbed is a 6 TB SDSS archive partitioned into ~20,000 buckets
and a 2,000-query trace; the reproduction exposes three scales so the full
figure suite runs in seconds ("small"), minutes ("default"), or at the
paper's trace size ("full").  The cost constants (Tb, Tm, bucket size,
cache size) are the paper's at every scale — only the number of buckets and
queries shrinks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from repro.sim.runspec import RunSpec
from repro.sim.simulator import SimulationConfig, SimulationResult, Simulator
from repro.workload.generator import QueryTrace, TraceConfig, TraceGenerator


@dataclass(frozen=True)
class ScalePreset:
    """One experiment scale: trace size and partition size."""

    name: str
    query_count: int
    bucket_count: int
    description: str


#: The three supported scales.  "full" matches the paper's 2,000-query trace
#: (the bucket count stays below the paper's ~20,000 to keep pure-Python
#: runtimes tolerable; the workload skew statistics are scale-free).
SCALES: Dict[str, ScalePreset] = {
    "small": ScalePreset("small", 300, 512, "seconds-long runs for tests and benchmarks"),
    "default": ScalePreset("default", 1000, 1024, "minutes-long runs for routine reproduction"),
    "full": ScalePreset("full", 2000, 4096, "paper-sized trace (longest runs)"),
}


def scale_preset(scale: str) -> ScalePreset:
    """Look up a scale preset by name."""
    if scale not in SCALES:
        raise KeyError(f"unknown scale {scale!r}; available: {sorted(SCALES)}")
    return SCALES[scale]


def build_trace(scale: str = "small", seed: int = 8675309, **overrides) -> QueryTrace:
    """Generate the standard trace for *scale* (optionally overriding knobs).

    When *bucket_count* is overridden below the generator's default query
    span (e.g. a trace for a small ingested store file), the span is
    clamped to the partition size; at every standard scale the clamp is a
    no-op, so existing traces are unchanged.
    """
    preset = scale_preset(scale)
    bucket_count = overrides.pop("bucket_count", preset.bucket_count)
    if "max_span" not in overrides:
        default_span = TraceConfig.__dataclass_fields__["max_span"].default
        overrides["max_span"] = min(default_span, bucket_count)
    config = TraceConfig(
        query_count=overrides.pop("query_count", preset.query_count),
        bucket_count=bucket_count,
        seed=seed,
        **overrides,
    )
    return TraceGenerator(config).generate()


def build_simulator(scale: str = "small", **overrides) -> Simulator:
    """Build the simulator matching the trace scale."""
    preset = scale_preset(scale)
    config = SimulationConfig(
        bucket_count=overrides.pop("bucket_count", preset.bucket_count), **overrides
    )
    return Simulator(config)


def estimate_capacity_qps(
    trace: QueryTrace, simulator: Simulator, alpha: float = 0.0
) -> float:
    """Service capacity (queries/second) of the greedy scheduler on this trace.

    Measured by replaying the trace at an arrival rate far above capacity so
    the run is service-bound, then dividing completions by busy time.  The
    saturation sweeps of Figures 4 and 8 are expressed relative to this
    capacity so the experiments probe the same under/over-saturated regimes
    at every scale.
    """
    flooded = trace.with_saturation(1000.0)
    # Always probe capacity in memory: the number is store-invariant (the
    # file-backed parity tests pin this), so a physical replay of the
    # flooded trace would be pure wasted I/O on store-backed simulators.
    result = simulator.execute(
        flooded.queries, RunSpec(policy="liferaft", alpha=alpha, store_path=None)
    )
    if result.busy_time_s <= 0:
        return 1.0
    return result.completed_queries / result.busy_time_s


@dataclass
class ExperimentResult:
    """A rendered experiment: the measured table plus context."""

    name: str
    title: str
    paper_expectation: str
    headers: Sequence[str]
    rows: List[Sequence[object]]
    headline: Dict[str, float] = field(default_factory=dict)
    notes: str = ""

    def render(self) -> str:
        """Render the result as a fixed-width text report."""
        lines = [f"== {self.name}: {self.title} ==", f"paper: {self.paper_expectation}"]
        if self.notes:
            lines.append(f"note: {self.notes}")
        lines.append(render_table(self.headers, self.rows))
        if self.headline:
            summary = ", ".join(f"{key}={value:.4g}" for key, value in self.headline.items())
            lines.append(f"headline: {summary}")
        return "\n".join(lines)


def render_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render a list of rows as an aligned, pipe-separated text table."""
    formatted_rows: List[List[str]] = []
    for row in rows:
        formatted_rows.append([_format_cell(cell) for cell in row])
    widths = [len(str(h)) for h in headers]
    for row in formatted_rows:
        for column, cell in enumerate(row):
            widths[column] = max(widths[column], len(cell))

    def line(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    output = [line([str(h) for h in headers]), line(["-" * w for w in widths])]
    output.extend(line(row) for row in formatted_rows)
    return "\n".join(output)


def _format_cell(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.4g}"
    return str(cell)


def result_rows(
    results: Mapping[str, SimulationResult], reference: Optional[str] = None
) -> List[Sequence[object]]:
    """Standard policy-comparison rows (used by Figures 7 and the ablations).

    When *reference* names one of the results, response times are also
    reported normalised to it (the paper normalises to NoShare).
    """
    reference_response = (
        results[reference].avg_response_time_s if reference and reference in results else None
    )
    rows: List[Sequence[object]] = []
    for label, result in results.items():
        normalized = (
            result.avg_response_time_s / reference_response
            if reference_response
            else float("nan")
        )
        rows.append(
            (
                label,
                result.throughput_qps,
                result.avg_response_time_s,
                normalized,
                result.response_time_cov,
                result.cache_hit_rate,
                result.bucket_reads,
            )
        )
    return rows
