"""Recovery experiment: lost work and recovery latency vs checkpoint cadence.

Beyond the paper's single-machine evaluation: once shard workers run on
real (unreliable) hardware, the checkpoint cadence becomes a first-class
operating knob.  This experiment replays one saturated trace through the
reliability coordinator under a deterministic crash plan, sweeping the
cadence from every-window to sparse and a virtual-time interval, and
reports the two costs the cadence trades against each other:

* **steady-state overhead** — checkpoints written, bytes, real seconds
  spent capturing and writing them;
* **crash cost** — bucket services re-executed after each recovery (the
  lost work a sparser cadence exposes) and the real recovery latency.

Every row also re-verifies the headline invariant: the crash-injected
run's virtual-clock totals are identical to an uninterrupted run's, at
every cadence.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.common import (
    ExperimentResult,
    build_simulator,
    build_trace,
    estimate_capacity_qps,
)
from repro.reliability import FaultPlan, ReliabilityConfig
from repro.sim.runspec import RunSpec
from repro.sim.simulator import VIRTUAL_CLOCK_PARITY_FIELDS, Simulator
from repro.workload.generator import QueryTrace

#: Cadences on the experiment's x axis (finest to sparsest, then a
#: virtual-time interval roughly equal to four windows).
CADENCE_SWEEP = ("windows:1", "windows:2", "windows:4", "windows:8", "interval:19200")
#: Shards of the crash-injected run.
WORKERS = 2
#: Deterministic crash plan: the same kills at every cadence.
CRASH_PLAN = "1@2,0@5"
#: Window quantum in bucket reads: fine enough that the plan's windows
#: exist at every scale.
WINDOW_BUCKET_READS = 4.0
#: Replay rate as a multiple of serial capacity (service-bound run).
SATURATION_FACTOR = 8.0


def run(
    scale: str = "small",
    trace: Optional[QueryTrace] = None,
    simulator: Optional[Simulator] = None,
    cadences: Sequence[str] = CADENCE_SWEEP,
    backend: str = "virtual",
) -> ExperimentResult:
    """Sweep the checkpoint cadence under a fixed deterministic crash plan."""
    simulator = simulator or build_simulator(scale)
    trace = trace or build_trace(scale, bucket_count=len(simulator.layout))
    capacity = estimate_capacity_qps(trace, simulator)
    saturation = capacity * SATURATION_FACTOR
    replayed = trace.with_saturation(saturation)
    quantum_ms = simulator.config.cost.tb_ms * WINDOW_BUCKET_READS

    clean = simulator.execute(
        replayed.queries,
        RunSpec(
            policy="liferaft",
            workers=WORKERS,
            enable_stealing=False,
            label="clean",
            backend=backend,
        ),
    )

    rows = []
    headline = {
        "saturation_qps": saturation,
        "crashes_per_run": float(len(FaultPlan.parse(CRASH_PLAN))),
    }
    for cadence in cadences:
        config = ReliabilityConfig(
            cadence=cadence,
            faults=FaultPlan.parse(CRASH_PLAN),
            window_quantum_ms=quantum_ms,
        )
        result = simulator.execute(
            replayed.queries,
            RunSpec(
                policy="liferaft",
                workers=WORKERS,
                enable_stealing=False,
                label=f"cadence={cadence}",
                backend=backend,
                reliability=config,
            ),
        )
        report = result.reliability
        assert report is not None
        parity = all(
            getattr(result, field) == getattr(clean, field)
            for field in VIRTUAL_CLOCK_PARITY_FIELDS
        )
        rows.append(
            (
                cadence,
                report.checkpoints_written,
                report.checkpoint_bytes / 1024.0,
                report.checkpoint_real_s,
                report.recovery_count,
                report.services_replayed,
                report.recovery_real_s,
                "yes" if parity else "NO",
            )
        )
    if rows:
        headline["lost_services_finest"] = float(rows[0][5])
        headline["lost_services_sparsest"] = float(rows[-1][5])
        headline["checkpoint_s_finest"] = float(rows[0][3])
    return ExperimentResult(
        name="recovery",
        title=f"Checkpoint cadence vs lost work and recovery latency ({backend} backend)",
        paper_expectation=(
            "beyond the paper: finer checkpoint cadences bound the work a "
            "crash loses (fewer services re-executed) at the price of more "
            "checkpoint I/O; virtual-clock results are identical to an "
            "uninterrupted run at every cadence"
        ),
        headers=(
            "cadence",
            "checkpoints",
            "ckpt KiB",
            "ckpt real (s)",
            "recoveries",
            "services replayed",
            "recovery real (s)",
            "parity",
        ),
        rows=rows,
        headline=headline,
        notes=(
            f"{WORKERS} shard workers, crash plan {CRASH_PLAN} (worker@window), "
            f"window quantum {WINDOW_BUCKET_READS:g} bucket reads, stealing off; "
            f"trace replayed at {SATURATION_FACTOR:g}x serial capacity"
        ),
    )
