"""Figure 8: throughput/response-time trade-offs across workload saturation.

The paper sweeps the arrival rate (0.1 – 0.5 queries/second on their
hardware) and, for each saturation, the age bias α.  Figure 8(a) shows the
throughput gap between the α values widening as saturation grows; Figure
8(b) shows how response time moves, which is what drives the adaptive
choice of α (increase α at low saturation, keep it small when saturated).

Because the reproduction's absolute capacity differs from the paper's
testbed, the sweep is expressed as multiples of the greedy scheduler's
measured capacity, spanning the same under-saturated to over-saturated
range as the paper's 0.1 – 0.5 q/s sweep spans relative to its ~0.22 q/s
peak throughput.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.experiments.common import (
    ExperimentResult,
    build_simulator,
    build_trace,
    estimate_capacity_qps,
)
from repro.sim.runspec import RunSpec
from repro.sim.simulator import Simulator
from repro.workload.generator import QueryTrace

#: α values swept at each saturation, matching the figure's legend.
ALPHA_SWEEP = (0.0, 0.25, 0.5, 0.75, 1.0)

#: Saturation levels as fractions of the greedy scheduler's capacity.  The
#: paper's 0.1/0.13/0.17/0.25/0.5 q/s correspond to roughly 0.45x – 2.3x of
#: its ~0.22 q/s peak throughput.
DEFAULT_CAPACITY_FRACTIONS = (0.45, 0.6, 0.8, 1.1, 2.2)


def run(
    scale: str = "small",
    trace: Optional[QueryTrace] = None,
    simulator: Optional[Simulator] = None,
    capacity_fractions: Sequence[float] = DEFAULT_CAPACITY_FRACTIONS,
    alphas: Sequence[float] = ALPHA_SWEEP,
) -> ExperimentResult:
    """Reproduce the saturation sweep of Figure 8 (both panels)."""
    trace = trace or build_trace(scale)
    simulator = simulator or build_simulator(scale)
    capacity = estimate_capacity_qps(trace, simulator)

    rows: List[Sequence[object]] = []
    throughput_gap_low = throughput_gap_high = 0.0
    for fraction in capacity_fractions:
        saturation = capacity * fraction
        replayed = trace.with_saturation(saturation)
        per_alpha = {}
        for alpha in alphas:
            result = simulator.execute(
                replayed.queries,
                RunSpec(
                    policy="liferaft",
                    alpha=alpha,
                    label=f"sat={saturation:.3f},alpha={alpha:g}",
                    saturation_qps=saturation,
                ),
            )
            per_alpha[alpha] = result
            rows.append(
                (
                    fraction,
                    saturation,
                    alpha,
                    result.throughput_qps,
                    result.avg_response_time_s,
                    result.cache_hit_rate,
                )
            )
        gap = (
            per_alpha[min(alphas)].throughput_qps - per_alpha[max(alphas)].throughput_qps
        )
        if fraction == min(capacity_fractions):
            throughput_gap_low = gap
        if fraction == max(capacity_fractions):
            throughput_gap_high = gap

    return ExperimentResult(
        name="figure8",
        title="Throughput and response time vs. workload saturation, per age bias",
        paper_expectation=(
            "the throughput gap between alpha values widens as saturation grows; "
            "response-time differences guide the choice of alpha per saturation"
        ),
        headers=(
            "capacity fraction",
            "saturation (q/s)",
            "alpha",
            "throughput (q/s)",
            "avg response (s)",
            "cache hit rate",
        ),
        rows=rows,
        headline={
            "greedy_capacity_qps": capacity,
            "throughput_gap_at_lowest_saturation": throughput_gap_low,
            "throughput_gap_at_highest_saturation": throughput_gap_high,
        },
        notes="saturations are expressed relative to the greedy scheduler's capacity",
    )
