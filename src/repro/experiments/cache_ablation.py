"""Cache ablation: the tier-2 decoded-page cache, off versus on.

The ROADMAP's PR 4 follow-up: the storage subsystem layers a decoded-page
LRU (tier 2, keyed by store generation) under the engine's bucket cache
(tier 1).  A tier-2 hit skips the physical read and columnar decode but
still charges the full virtual sequential-read cost — so the tiers must
change *only* real time, never a virtual-clock number.  This experiment
materialises a store file, replays the same trace with the page cache
disabled, at the paper-sized default, and doubled, and reports what the
tier actually buys: physical page reads avoided and real read+decode
seconds saved, next to the virtual totals that must not move.
"""

from __future__ import annotations

import os
import shutil
import tempfile
from typing import Optional

from repro.experiments.common import ExperimentResult, build_trace, scale_preset
from repro.sim.runspec import RunSpec
from repro.sim.simulator import (
    VIRTUAL_CLOCK_PARITY_FIELDS,
    SimulationConfig,
    Simulator,
)
from repro.storage.disk_store import DEFAULT_PAGE_CACHE_BUCKETS
from repro.storage.format import read_layout
from repro.storage.ingest import materialize_layout
from repro.workload.generator import QueryTrace

#: Physical rows per bucket of the ablation store: real decode work per
#: page read without a multi-hundred-megabyte file.
ROWS_PER_BUCKET = 64
#: Tier-2 capacities on the x axis: off, the storage default, doubled.
CAPACITY_SWEEP = (0, DEFAULT_PAGE_CACHE_BUCKETS, 2 * DEFAULT_PAGE_CACHE_BUCKETS)


def run(
    scale: str = "small",
    trace: Optional[QueryTrace] = None,
    store_path: Optional[str] = None,
) -> ExperimentResult:
    """Replay one trace over a materialised store at several tier-2 sizes.

    With *store_path* set, that store defines the site (its layout sizes
    the trace); otherwise the scale's density layout is materialised into
    a temporary file for the duration of the sweep.
    """
    temp_dir = None
    if store_path is not None:
        bucket_count = len(read_layout(store_path))
    else:
        bucket_count = scale_preset(scale).bucket_count
        temp_dir = tempfile.mkdtemp(prefix="liferaft-ablation-")
        store_path = os.path.join(temp_dir, "site.lrbs")
        layout = Simulator(SimulationConfig(bucket_count=bucket_count)).layout
        materialize_layout(store_path, layout, rows_per_bucket=ROWS_PER_BUCKET)
    trace = trace or build_trace(scale, bucket_count=bucket_count)
    try:
        results = []
        for capacity in CAPACITY_SWEEP:
            simulator = Simulator.from_store(
                store_path,
                SimulationConfig(
                    bucket_count=bucket_count, page_cache_buckets=capacity
                ),
            )
            results.append(
                (
                    capacity,
                    simulator.execute(
                        trace.queries, RunSpec(policy="liferaft", label=f"tier2={capacity}")
                    ),
                )
            )
    finally:
        if temp_dir is not None:
            shutil.rmtree(temp_dir, ignore_errors=True)

    baseline = results[0][1]  # tier 2 off: every tier-1 miss hits the file
    virtual_invariant = all(
        getattr(result, field) == getattr(baseline, field)
        for field in VIRTUAL_CLOCK_PARITY_FIELDS
        for _capacity, result in results
    )
    rows = []
    for capacity, result in results:
        saved = baseline.page_reads - result.page_reads
        rows.append(
            (
                capacity,
                result.bucket_reads,
                result.page_reads,
                saved,
                result.real_read_s,
                result.cache_hit_rate,
                result.busy_time_s,
            )
        )
    default_result = dict(results).get(DEFAULT_PAGE_CACHE_BUCKETS)
    headline = {
        "page_reads_off": float(baseline.page_reads),
        "virtual_invariant": float(virtual_invariant),
    }
    if default_result is not None:
        headline["page_reads_default"] = float(default_result.page_reads)
        if baseline.real_read_s > 0:
            headline["real_read_saving"] = 1.0 - (
                default_result.real_read_s / baseline.real_read_s
            )
    return ExperimentResult(
        name="cache_ablation",
        title="Tier-2 decoded-page cache ablation over a materialised store",
        paper_expectation=(
            "beyond the paper: the decoded-page tier absorbs repeated "
            "physical reads of hot buckets (fewer page reads, less real "
            "read+decode time) while every virtual-clock total stays "
            "bit-identical — physical caching must never change the model"
        ),
        headers=(
            "tier-2 buckets",
            "bucket reads (virtual)",
            "page reads (physical)",
            "reads saved",
            "real read (s)",
            "tier-1 hit rate",
            "busy (s)",
        ),
        rows=rows,
        headline=headline,
        notes=(
            f"store materialised at {ROWS_PER_BUCKET} rows/bucket; tier-1 "
            "bucket cache unchanged (paper's 20 buckets); 'bucket reads' is "
            "the virtual counter and is identical in every row"
        ),
    )
