"""§5 claim: index-only evaluation is several times slower than NoShare.

SkyQuery's existing approach "evaluates cross-match queries exclusively
through spatial indices"; the paper does not even include it in the main
comparison because "this approach is seven times slower than even NoShare".
The gap comes from data-intensive queries whose per-bucket workloads are
far above the hybrid break-even, where per-object random I/O loses badly to
one sequential bucket scan.

The experiment replays a data-intensive trace variant (per-bucket workloads
several times the break-even, as the paper's full-scan cross-matches are)
under the NoShare and IndexOnly policies and reports the slowdown.
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.common import ExperimentResult, build_simulator, build_trace
from repro.sim.runspec import RunSpec
from repro.sim.simulator import Simulator
from repro.workload.generator import QueryTrace


def run(
    scale: str = "small",
    trace: Optional[QueryTrace] = None,
    simulator: Optional[Simulator] = None,
    objects_per_query_bucket_median: int = 2_000,
) -> ExperimentResult:
    """Measure the IndexOnly vs. NoShare slowdown on data-intensive queries."""
    trace = trace or build_trace(
        scale,
        objects_per_query_bucket_median=objects_per_query_bucket_median,
        objects_per_query_bucket_sigma=0.5,
        focus_boost=2.0,
    )
    simulator = simulator or build_simulator(scale)
    replayed = trace.with_saturation(trace.config.default_saturation_qps)

    noshare = simulator.execute(replayed.queries, RunSpec(policy="noshare", label="NoShare"))
    index_only = simulator.execute(
        replayed.queries, RunSpec(policy="index_only", label="IndexOnly")
    )

    slowdown_busy = (
        index_only.busy_time_s / noshare.busy_time_s if noshare.busy_time_s else float("inf")
    )
    slowdown_throughput = (
        noshare.throughput_qps / index_only.throughput_qps
        if index_only.throughput_qps
        else float("inf")
    )
    rows = [
        (
            result.label,
            result.throughput_qps,
            result.avg_response_time_s,
            result.busy_time_s,
            result.bucket_reads,
        )
        for result in (noshare, index_only)
    ]
    return ExperimentResult(
        name="index_only",
        title="Index-only evaluation vs. NoShare on data-intensive queries",
        paper_expectation="the index-only approach is about seven times slower than NoShare",
        headers=("policy", "throughput (q/s)", "avg response (s)", "busy time (s)", "bucket reads"),
        rows=rows,
        headline={
            "index_only_slowdown_busy_time": slowdown_busy,
            "index_only_slowdown_throughput": slowdown_throughput,
            "per_bucket_workload_median": float(objects_per_query_bucket_median),
        },
        notes=(
            "uses the data-intensive trace variant (per-bucket workloads several "
            "times the 3% hybrid break-even), matching the full-scan queries the "
            "paper's claim refers to"
        ),
    )
