"""Network cost model for shipping intermediate cross-match results.

SkyQuery's archives are "distributed across three continents" and
cross-match queries "transfer large amounts of data over the network" (§1).
The model charges a per-message latency plus a bandwidth-proportional
transfer time for the object lists shipped between sites, so the federated
examples can report where time goes even though scheduling decisions inside
one site do not depend on it.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Approximate wire size of one shipped cross-match object (identifier,
#: position, HTM range, a few attributes).
DEFAULT_OBJECT_BYTES = 96


@dataclass(frozen=True)
class TransferResult:
    """Outcome of one simulated transfer between two sites."""

    object_count: int
    megabytes: float
    cost_ms: float


@dataclass(frozen=True)
class NetworkModel:
    """Latency + bandwidth model of the wide-area links between archives."""

    latency_ms: float = 80.0
    bandwidth_mbps: float = 100.0
    object_bytes: int = DEFAULT_OBJECT_BYTES

    def __post_init__(self) -> None:
        if self.latency_ms < 0:
            raise ValueError("latency must be non-negative")
        if self.bandwidth_mbps <= 0:
            raise ValueError("bandwidth must be positive")
        if self.object_bytes <= 0:
            raise ValueError("object_bytes must be positive")

    def transfer(self, object_count: int) -> TransferResult:
        """Cost of shipping *object_count* intermediate-result objects."""
        if object_count < 0:
            raise ValueError("cannot ship a negative number of objects")
        megabytes = object_count * self.object_bytes / (1024.0 * 1024.0)
        megabits = megabytes * 8.0
        cost = self.latency_ms + 1000.0 * megabits / self.bandwidth_mbps
        return TransferResult(object_count, megabytes, cost)
