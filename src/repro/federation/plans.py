"""Left-deep cross-match plans.

"SkyQuery produces a serial, left-deep join plan for each query that joins
(against a large fact table) each archive serially in which intermediate
join results are shipped from database to database until all archives are
cross-matched" (§3).  A plan is therefore just an ordered list of archive
names plus the query's region and match radius; the interesting part —
choosing the order — follows SkyQuery's practice of starting at the most
selective archive so the intermediate results stay small.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.htm.geometry import SkyPoint


@dataclass(frozen=True)
class PlanStep:
    """One hop of a left-deep plan: cross-match the running result at *archive*."""

    position: int
    archive: str
    is_seed: bool = False


@dataclass
class CrossMatchPlan:
    """An ordered cross-match plan over the federation's archives."""

    query_id: int
    center: SkyPoint
    radius_deg: float
    steps: List[PlanStep] = field(default_factory=list)
    match_radius_arcsec: float = 3.0
    magnitude_limit: Optional[float] = None

    def __post_init__(self) -> None:
        if self.radius_deg <= 0:
            raise ValueError("plan radius must be positive")
        if not self.steps:
            raise ValueError("a plan needs at least one step")
        if not self.steps[0].is_seed:
            raise ValueError("the first step of a left-deep plan must be the seed archive")

    @property
    def archives(self) -> Tuple[str, ...]:
        """Archive names in execution order."""
        return tuple(step.archive for step in self.steps)

    @property
    def seed_archive(self) -> str:
        """The archive that evaluates the region predicate first."""
        return self.steps[0].archive

    def __len__(self) -> int:
        return len(self.steps)


def build_left_deep_plan(
    query_id: int,
    archives: Sequence[str],
    center: SkyPoint,
    radius_deg: float,
    selectivity: Optional[Dict[str, float]] = None,
    match_radius_arcsec: float = 3.0,
    magnitude_limit: Optional[float] = None,
) -> CrossMatchPlan:
    """Build a left-deep plan, seeding at the most selective archive.

    ``selectivity`` maps archive name to the expected fraction of the region
    it returns (lower = more selective).  When omitted the given order is
    kept, which matches how SkyQuery accepts user-specified plans.
    """
    if not archives:
        raise ValueError("a cross-match needs at least one archive")
    ordered = list(archives)
    if selectivity:
        ordered.sort(key=lambda name: selectivity.get(name, 1.0))
    steps = [
        PlanStep(position=i, archive=name, is_seed=(i == 0)) for i, name in enumerate(ordered)
    ]
    return CrossMatchPlan(
        query_id=query_id,
        center=center,
        radius_deg=radius_deg,
        steps=steps,
        match_radius_arcsec=match_radius_arcsec,
        magnitude_limit=magnitude_limit,
    )
