"""Federation substrate: a SkyQuery-style multi-archive cross-match service.

The paper evaluates LifeRaft at a single site (SDSS) by replaying the
per-site work of federated cross-match queries; the federation itself —
"a serial, left-deep join plan … in which intermediate join results are
shipped from database to database until all archives are cross-matched"
(§3) — is the substrate that produces that per-site work.  This package
implements that substrate so the examples can run end-to-end federated
cross-matches and so per-site workloads can be derived the same way the
paper derives them:

``network``    latency/bandwidth model for shipping intermediate results
``crossmatch`` conversions between catalog rows and cross-match objects and
               the region-selection step that seeds a plan
``plans``      left-deep cross-match plans over an ordered list of archives
``node``       one archive wrapped with a LifeRaft engine and result shipping
``skyquery``   the federation service: registration, planning, execution
"""

from repro.federation.network import NetworkModel, TransferResult
from repro.federation.crossmatch import (
    to_crossmatch_objects,
    select_region_objects,
    crossmatch_catalogs,
)
from repro.federation.plans import CrossMatchPlan, PlanStep
from repro.federation.node import FederationNode, NodeExecutionResult
from repro.federation.skyquery import SkyQueryFederation, FederatedQuery, FederatedResult

__all__ = [
    "NetworkModel",
    "TransferResult",
    "to_crossmatch_objects",
    "select_region_objects",
    "crossmatch_catalogs",
    "CrossMatchPlan",
    "PlanStep",
    "FederationNode",
    "NodeExecutionResult",
    "SkyQueryFederation",
    "FederatedQuery",
    "FederatedResult",
]
