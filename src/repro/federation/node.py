"""A federation node: one archive plus its batched cross-match service.

Each node owns an :class:`~repro.catalog.archive.Archive` and a LifeRaft
engine over it.  Incoming per-query object lists are submitted to the
engine, serviced in data-driven batches, and the successful matches (after
query-specific predicates) are returned so the federation can ship them to
the next site in the plan — exactly the role one SkyQuery site plays.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.catalog.archive import Archive
from repro.core.engine import EngineConfig, LifeRaftEngine
from repro.core.join_evaluator import MatchedPair
from repro.core.metrics import CostModel
from repro.core.scheduler import LifeRaftScheduler, SchedulerConfig, SchedulingPolicy
from repro.workload.query import CrossMatchObject, CrossMatchQuery


@dataclass
class NodeExecutionResult:
    """Outcome of cross-matching one query's object list at one node."""

    archive: str
    query_id: int
    input_objects: int
    matches: List[MatchedPair]
    busy_time_ms: float
    bucket_services: int

    @property
    def matched_objects(self) -> List[object]:
        """The catalog rows that matched (what gets shipped onward)."""
        return [pair.catalog_object for pair in self.matches]


class FederationNode:
    """One archive wrapped with a LifeRaft engine and predicate application."""

    def __init__(
        self,
        archive: Archive,
        scheduler: Optional[SchedulingPolicy] = None,
        engine_config: Optional[EngineConfig] = None,
    ) -> None:
        self.archive = archive
        cost = CostModel.from_disk(
            archive.disk,
            bucket_megabytes=archive.layout[0].megabytes or 40.0,
            bucket_objects=max(1, archive.layout[0].object_count),
        )
        self.engine_config = engine_config or EngineConfig(cost=cost)
        self._scheduler = scheduler or LifeRaftScheduler(
            SchedulerConfig(cost=self.engine_config.cost)
        )
        self.engine = LifeRaftEngine(
            archive.layout,
            archive.store,
            scheduler=self._scheduler,
            index=archive.index,
            config=self.engine_config,
        )
        self._executed: Dict[int, NodeExecutionResult] = {}

    @property
    def name(self) -> str:
        """Archive name this node serves."""
        return self.archive.name

    def execute(
        self,
        query_id: int,
        objects: Sequence[CrossMatchObject],
        predicate: Optional[Callable[[object], bool]] = None,
    ) -> NodeExecutionResult:
        """Cross-match one query's object list against this node's catalog.

        The objects are submitted as a query to the node's engine, the
        engine is drained (data-driven batching still applies when several
        queries are pending), and the matches for *query_id* are collected
        with the query's predicate applied.
        """
        if not objects:
            return NodeExecutionResult(self.name, query_id, 0, [], 0.0, 0)
        query = CrossMatchQuery(query_id=query_id, objects=tuple(objects), predicate=predicate)
        busy_before = self.engine.report().busy_time_ms
        services_before = len(self.engine.batches)
        self.engine.submit(query, now_ms=self.engine.now_ms)
        self.engine.run_until_idle()
        matches = self._collect_matches(query_id, predicate)
        report = self.engine.report()
        result = NodeExecutionResult(
            archive=self.name,
            query_id=query_id,
            input_objects=len(objects),
            matches=matches,
            busy_time_ms=report.busy_time_ms - busy_before,
            bucket_services=len(self.engine.batches) - services_before,
        )
        self._executed[query_id] = result
        return result

    def submit(self, query: CrossMatchQuery) -> None:
        """Queue a query without draining (used when batching several queries)."""
        self.engine.submit(query, now_ms=self.engine.now_ms)

    def drain(self) -> None:
        """Service everything currently queued at this node."""
        self.engine.run_until_idle()

    def collect(
        self, query_id: int, predicate: Optional[Callable[[object], bool]] = None
    ) -> NodeExecutionResult:
        """Collect the matches of a previously submitted and drained query."""
        matches = self._collect_matches(query_id, predicate)
        report = self.engine.report()
        return NodeExecutionResult(
            archive=self.name,
            query_id=query_id,
            input_objects=0,
            matches=matches,
            busy_time_ms=report.busy_time_ms,
            bucket_services=len(self.engine.batches),
        )

    def _collect_matches(
        self, query_id: int, predicate: Optional[Callable[[object], bool]]
    ) -> List[MatchedPair]:
        matches: List[MatchedPair] = []
        for batch in self.engine.batches:
            for pair in batch.join.matches:
                if pair.query_id != query_id:
                    continue
                if predicate is not None and not predicate(pair.catalog_object):
                    continue
                matches.append(pair)
        return matches

    def statistics(self) -> Dict[str, float]:
        """Cache and join statistics of the node's engine."""
        report = self.engine.report()
        return {
            "busy_time_ms": report.busy_time_ms,
            "bucket_services": float(report.bucket_services),
            "cache_hit_rate": report.cache_hit_rate,
            "total_matches": float(report.total_matches),
        }
