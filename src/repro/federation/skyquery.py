"""The SkyQuery-style federation service.

Archives register as :class:`~repro.federation.node.FederationNode`; a
federated cross-match query names a sky region and the archives to join.
Execution follows the paper's serial, left-deep strategy: the seed archive
evaluates the region predicate, its result is converted into cross-match
objects and shipped to the next archive, cross-matched there in LifeRaft's
data-driven batches, and so on until every archive in the plan has been
visited.  The federation records the time spent at each site and on each
network transfer so the examples can show where federated queries spend
their lives.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.catalog.archive import Archive
from repro.federation.crossmatch import (
    select_region_objects,
    to_crossmatch_objects,
)
from repro.federation.network import NetworkModel, TransferResult
from repro.federation.node import FederationNode, NodeExecutionResult
from repro.federation.plans import CrossMatchPlan, build_left_deep_plan
from repro.htm.geometry import SkyPoint


@dataclass
class FederatedQuery:
    """A federated cross-match request as a client would submit it."""

    query_id: int
    archives: Tuple[str, ...]
    center: SkyPoint
    radius_deg: float
    match_radius_arcsec: float = 3.0
    magnitude_limit: Optional[float] = None
    predicate: Optional[Callable[[object], bool]] = None


@dataclass
class FederatedResult:
    """Outcome of a federated cross-match."""

    query_id: int
    plan: CrossMatchPlan
    site_results: List[NodeExecutionResult]
    transfers: List[TransferResult]
    final_matches: int

    @property
    def total_site_time_ms(self) -> float:
        """Time spent cross-matching at the archives."""
        return sum(result.busy_time_ms for result in self.site_results)

    @property
    def total_network_time_ms(self) -> float:
        """Time spent shipping intermediate results."""
        return sum(transfer.cost_ms for transfer in self.transfers)

    @property
    def total_time_ms(self) -> float:
        """End-to-end cost of the federated query."""
        return self.total_site_time_ms + self.total_network_time_ms


class SkyQueryFederation:
    """Registry and executor for federated cross-match queries."""

    def __init__(self, network: Optional[NetworkModel] = None) -> None:
        self.network = network or NetworkModel()
        self._nodes: Dict[str, FederationNode] = {}

    def register(self, node: FederationNode) -> None:
        """Add a node (one archive) to the federation."""
        if node.name in self._nodes:
            raise ValueError(f"archive {node.name!r} is already registered")
        self._nodes[node.name] = node

    def register_archive(self, archive: Archive) -> FederationNode:
        """Wrap an archive in a node with default settings and register it."""
        node = FederationNode(archive)
        self.register(node)
        return node

    @property
    def archives(self) -> Tuple[str, ...]:
        """Names of the registered archives."""
        return tuple(self._nodes.keys())

    def node(self, name: str) -> FederationNode:
        """Look up a registered node by archive name."""
        if name not in self._nodes:
            raise KeyError(f"archive {name!r} is not registered with the federation")
        return self._nodes[name]

    # ------------------------------------------------------------------ #
    # planning and execution
    # ------------------------------------------------------------------ #

    def plan(self, query: FederatedQuery) -> CrossMatchPlan:
        """Build the left-deep plan for *query*, seeding at the smallest archive.

        Archive size is used as the selectivity proxy: the archive expected
        to return the fewest objects for the region goes first so that the
        shipped intermediate results stay small.
        """
        unknown = [name for name in query.archives if name not in self._nodes]
        if unknown:
            raise KeyError(f"unknown archives in query {query.query_id}: {unknown}")
        selectivity = {
            name: float(len(self._nodes[name].archive.catalog)) for name in query.archives
        }
        return build_left_deep_plan(
            query.query_id,
            query.archives,
            query.center,
            query.radius_deg,
            selectivity=selectivity,
            match_radius_arcsec=query.match_radius_arcsec,
            magnitude_limit=query.magnitude_limit,
        )

    def execute(self, query: FederatedQuery) -> FederatedResult:
        """Run a federated cross-match end to end."""
        plan = self.plan(query)
        site_results: List[NodeExecutionResult] = []
        transfers: List[TransferResult] = []

        seed_node = self.node(plan.seed_archive)
        current_rows = select_region_objects(
            seed_node.archive.catalog, plan.center, plan.radius_deg, plan.magnitude_limit
        )
        for step in plan.steps[1:]:
            shipped = to_crossmatch_objects(current_rows, plan.match_radius_arcsec)
            transfers.append(self.network.transfer(len(shipped)))
            node = self.node(step.archive)
            result = node.execute(query.query_id, shipped, predicate=query.predicate)
            site_results.append(result)
            current_rows = result.matched_objects
            if not current_rows:
                break
        return FederatedResult(
            query_id=query.query_id,
            plan=plan,
            site_results=site_results,
            transfers=transfers,
            final_matches=len(current_rows) if len(plan) > 1 else len(current_rows),
        )

    def statistics(self) -> Dict[str, Dict[str, float]]:
        """Per-archive engine statistics (cache hit rates, services, matches)."""
        return {name: node.statistics() for name, node in self._nodes.items()}
