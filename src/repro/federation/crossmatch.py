"""Cross-match helpers: converting catalog rows into shippable work.

A cross-match query starts from a sky region at the first archive of its
plan; the objects found there become the list shipped to the next archive,
where each carries "its mean cartesian coordinate and a range of HTM ID
values, which serve as a bounding box covering all potential regions for
cross matching" (§3.1).  These helpers perform the region selection, the
conversion into :class:`~repro.workload.query.CrossMatchObject`, and a
straightforward reference implementation of the probabilistic spatial join
used by tests to validate the batched evaluator.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

from repro.catalog.objects import CatalogTable, CelestialObject
from repro.htm import ids as htm_ids
from repro.htm.curve import HTMRange, cone_cover
from repro.htm.geometry import SkyPoint, angular_separation
from repro.htm.mesh import HTMMesh
from repro.workload.query import CrossMatchObject

#: Default probabilistic match radius: SkyQuery-style cross-matches use a
#: few arcseconds to absorb astrometric error between surveys.
DEFAULT_MATCH_RADIUS_ARCSEC = 3.0


def error_circle_range(
    obj: CelestialObject,
    radius_arcsec: float,
    mesh: Optional[HTMMesh] = None,
    leaf_level: int = htm_ids.SKYQUERY_LEVEL,
) -> HTMRange:
    """HTM bounding range of an object's error circle.

    A tight cover of an arcsecond-scale circle would be a handful of
    level-14 trixels; a single contiguous range spanning them is what the
    paper's per-object bounding box is, so the cover is collapsed to its
    overall (low, high) envelope.
    """
    mesh = mesh or HTMMesh()
    cover = cone_cover(
        SkyPoint(obj.ra, obj.dec),
        radius_arcsec / 3600.0,
        cover_level=min(12, leaf_level),
        leaf_level=leaf_level,
        mesh=mesh,
    )
    ranges = cover.ranges
    if not ranges:
        return HTMRange(obj.htm_id, obj.htm_id)
    return HTMRange(ranges[0].low, ranges[-1].high)


def to_crossmatch_objects(
    objects: Iterable[CelestialObject],
    match_radius_arcsec: float = DEFAULT_MATCH_RADIUS_ARCSEC,
    mesh: Optional[HTMMesh] = None,
) -> List[CrossMatchObject]:
    """Convert catalog rows into the cross-match objects shipped between sites."""
    mesh = mesh or HTMMesh()
    shipped: List[CrossMatchObject] = []
    for obj in objects:
        shipped.append(
            CrossMatchObject(
                object_id=obj.object_id,
                htm_range=error_circle_range(obj, match_radius_arcsec, mesh),
                ra=obj.ra,
                dec=obj.dec,
                match_radius_arcsec=match_radius_arcsec,
                magnitude=obj.magnitude,
            )
        )
    return shipped


def select_region_objects(
    catalog: CatalogTable,
    center: SkyPoint,
    radius_deg: float,
    magnitude_limit: Optional[float] = None,
) -> List[CelestialObject]:
    """Select the catalog objects inside a query's sky region.

    This is the seeding step of a federated cross-match: the first archive
    in the plan evaluates the region predicate and produces the initial
    intermediate result.
    """
    selected = catalog.cone_search(center, radius_deg)
    if magnitude_limit is not None:
        selected = [obj for obj in selected if obj.magnitude <= magnitude_limit]
    return selected


def crossmatch_catalogs(
    incoming: Sequence[CrossMatchObject],
    catalog: CatalogTable,
    match_radius_arcsec: Optional[float] = None,
) -> List[Tuple[CrossMatchObject, CelestialObject]]:
    """Reference probabilistic spatial join (filter by HTM range, refine by distance).

    Quadratic in the worst case but evaluated only over the coarse-filter
    candidates; used by tests as ground truth for the batched evaluator and
    by the federation nodes for small intermediate results.
    """
    pairs: List[Tuple[CrossMatchObject, CelestialObject]] = []
    for obj in incoming:
        radius = match_radius_arcsec if match_radius_arcsec is not None else obj.match_radius_arcsec
        candidates = catalog.range_scan(obj.htm_range)
        if obj.ra is None or obj.dec is None:
            continue
        for candidate in candidates:
            separation = angular_separation(obj.ra, obj.dec, candidate.ra, candidate.dec) * 3600.0
            if separation <= radius:
                pairs.append((obj, candidate))
    return pairs
