"""Run reports and snapshot diffs over exported metrics snapshots.

Backs ``liferaft report <metrics.json>`` and ``liferaft inspect --diff``:
both consume snapshot files written by ``liferaft run --metrics-out``,
so reporting is pure presentation over self-describing outputs — nothing
here feeds back into a run.

A report renders four sections from one snapshot:

* **metrics** — every counter/gauge/histogram, virtual domain first
  (the same rows ``liferaft inspect`` prints);
* **series** — the windowed time-series layer, one row per
  ``(series, shard)`` with its window, sample count and value range;
* **SLA** — the per-deadline-class admission/completion tallies the
  serving front-end published as ``sla.*`` counters;
* **events** — the recovery/elasticity story (checkpoints, crashes,
  recoveries, scale events) from the reliability counters.

A diff compares two snapshots per metric key: counters, gauges and
histograms by value, series by sample count and changed samples.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.telemetry.inspect import describe_entry, domain_counts, summary_rows

__all__ = ["diff_snapshots", "render_diff", "render_report", "report_to_json"]

#: Counter-name prefixes that belong in the events section.
_EVENT_PREFIXES = ("reliability.", "coordinator.", "parallel.steals")


def _series_entries(snapshot: dict) -> List[Tuple[str, dict]]:
    entries = snapshot.get("metrics", {})
    return sorted(
        (
            (key, entry)
            for key, entry in entries.items()
            if entry.get("type") == "series"
        ),
        key=lambda item: (item[1].get("name", ""), item[0]),
    )


def _sla_counts(snapshot: dict) -> Dict[str, Dict[str, float]]:
    """``{class: {field: value}}`` from the ``sla.*`` counters."""
    by_class: Dict[str, Dict[str, float]] = {}
    for entry in snapshot.get("metrics", {}).values():
        name = entry.get("name", "")
        if entry.get("type") != "counter" or not name.startswith("sla."):
            continue
        class_name = (entry.get("labels") or {}).get("class", "?")
        by_class.setdefault(class_name, {})[name[len("sla.") :]] = entry["value"]
    return by_class


def _format_row(cells: List[str], widths: List[int]) -> str:
    return "  ".join(cell.ljust(width) for cell, width in zip(cells, widths)).rstrip()


def _table(headers: List[str], rows: List[List[str]]) -> List[str]:
    widths = [len(header) for header in headers]
    for row in rows:
        for column, cell in enumerate(row):
            widths[column] = max(widths[column], len(cell))
    lines = [_format_row(headers, widths)]
    lines.append(_format_row(["-" * width for width in widths], widths))
    lines.extend(_format_row(row, widths) for row in rows)
    return lines


def render_report(snapshot: dict) -> str:
    """Render one snapshot as a multi-section text report."""
    virtual, real = domain_counts(snapshot)
    lines: List[str] = [
        f"snapshot v{snapshot.get('version', '?')}: "
        f"{virtual} virtual + {real} real metrics"
    ]

    scalar_rows = [
        [domain, metric, kind, value]
        for domain, metric, kind, value in summary_rows(snapshot)
        if kind != "series"
    ]
    if scalar_rows:
        lines.append("")
        lines.append("== metrics ==")
        lines.extend(_table(["domain", "metric", "type", "value"], scalar_rows))

    series = _series_entries(snapshot)
    if series:
        lines.append("")
        lines.append("== series ==")
        rows = []
        for _key, entry in series:
            labels = entry.get("labels") or {}
            label_text = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
            rows.append(
                [
                    entry.get("domain", "?"),
                    f"{entry['name']}{{{label_text}}}" if label_text else entry["name"],
                    describe_entry(entry),
                ]
            )
        lines.extend(_table(["domain", "series", "samples"], rows))

    sla = _sla_counts(snapshot)
    if sla:
        lines.append("")
        lines.append("== SLA ==")
        fields = ["admitted", "rejected", "completed", "first_result_met", "completion_met"]
        rows = [
            [name] + [f"{counts.get(field, 0):g}" for field in fields]
            for name, counts in sorted(sla.items())
        ]
        lines.extend(_table(["class"] + fields, rows))

    event_rows = [
        [domain, metric, value]
        for domain, metric, kind, value in summary_rows(snapshot)
        if kind == "counter" and metric.startswith(_EVENT_PREFIXES)
    ]
    if event_rows:
        lines.append("")
        lines.append("== events ==")
        lines.extend(_table(["domain", "event", "count"], event_rows))

    return "\n".join(lines)


def report_to_json(snapshot: dict) -> dict:
    """The report's sections as a machine-readable dict.

    Backs ``liferaft report --format json``: the same four sections the
    text renderer prints (metrics, series, SLA, events), structured for
    scripts and CI instead of eyeballs: values stay numeric (no display
    formatting) and labels come back as a mapping rather than rendered
    into the metric name.
    """
    virtual, real = domain_counts(snapshot)
    ordered = sorted(
        snapshot.get("metrics", {}).items(),
        key=lambda item: (
            item[1].get("domain", "") != "virtual",
            item[1].get("name", ""),
            item[0],
        ),
    )
    metrics = []
    for _key, entry in ordered:
        if entry.get("type") == "series":
            continue
        row = {
            "domain": entry.get("domain", "?"),
            "metric": entry["name"],
            "labels": entry.get("labels") or {},
            "type": entry["type"],
        }
        if entry["type"] == "histogram":
            row["count"] = entry.get("count")
            row["sum"] = entry.get("sum")
        else:
            row["value"] = entry.get("value")
        metrics.append(row)
    series = []
    for _key, entry in _series_entries(snapshot):
        series.append(
            {
                "domain": entry.get("domain", "?"),
                "name": entry["name"],
                "labels": entry.get("labels") or {},
                "window_ms": entry.get("window_ms"),
                "samples": [list(sample) for sample in entry.get("samples", ())],
            }
        )
    events = [
        {"domain": row["domain"], "event": row["metric"], "count": row["value"]}
        for row in metrics
        if row["type"] == "counter" and row["metric"].startswith(_EVENT_PREFIXES)
    ]
    return {
        "version": snapshot.get("version"),
        "domains": {"virtual": virtual, "real": real},
        "metrics": metrics,
        "series": series,
        "sla": _sla_counts(snapshot),
        "events": events,
    }


def _entry_summary(entry: Optional[dict]) -> str:
    if entry is None:
        return "-"
    return describe_entry(entry)


def _series_delta(a: dict, b: dict) -> Optional[str]:
    """Human delta of two series entries (``None`` when identical).

    Samples present in only one snapshot are reported as additions or
    removals — a longer-running second snapshot must not diff clean just
    because its extra windows have no counterpart to compare against.
    """
    a_samples = {int(index): value for index, value in a.get("samples", ())}
    b_samples = {int(index): value for index, value in b.get("samples", ())}
    if a_samples == b_samples and a.get("window_ms") == b.get("window_ms"):
        return None
    changed = sum(
        1
        for index in set(a_samples) & set(b_samples)
        if a_samples[index] != b_samples[index]
    )
    added = len(set(b_samples) - set(a_samples))
    removed = len(set(a_samples) - set(b_samples))
    parts = [f"samples {len(a_samples)} -> {len(b_samples)}"]
    if changed:
        parts.append(f"{changed} changed")
    if added:
        parts.append(f"{added} added")
    if removed:
        parts.append(f"{removed} removed")
    return ", ".join(parts)


def _scalar_delta(a: dict, b: dict) -> Optional[str]:
    """Human delta of two non-series entries (``None`` when identical)."""
    if a.get("type") == "histogram":
        if a.get("count") == b.get("count") and a.get("sum") == b.get("sum"):
            return None
        return f"count {a.get('count')} -> {b.get('count')}, sum {a.get('sum')} -> {b.get('sum')}"
    if a.get("value") == b.get("value"):
        return None
    delta = b["value"] - a["value"]
    return f"{a['value']:g} -> {b['value']:g} ({delta:+g})"


def diff_snapshots(a: dict, b: dict) -> List[Tuple[str, str, str]]:
    """Per-metric deltas between two snapshots.

    Returns ``(metric key, status, delta)`` rows where *status* is one of
    ``only-a``, ``only-b``, ``type-changed`` or ``changed``; metrics equal
    in both snapshots are omitted.  Rows come back sorted by key, so a
    diff of identical snapshots is the empty list.
    """
    a_metrics = a.get("metrics", {})
    b_metrics = b.get("metrics", {})
    rows: List[Tuple[str, str, str]] = []
    for key in sorted(set(a_metrics) | set(b_metrics)):
        entry_a = a_metrics.get(key)
        entry_b = b_metrics.get(key)
        if entry_a is None:
            rows.append((key, "only-b", _entry_summary(entry_b)))
            continue
        if entry_b is None:
            rows.append((key, "only-a", _entry_summary(entry_a)))
            continue
        if entry_a.get("type") != entry_b.get("type"):
            rows.append(
                (key, "type-changed", f"{entry_a.get('type')} -> {entry_b.get('type')}")
            )
            continue
        if entry_a.get("type") == "series":
            delta = _series_delta(entry_a, entry_b)
        else:
            delta = _scalar_delta(entry_a, entry_b)
        if delta is not None:
            rows.append((key, "changed", delta))
    return rows


def render_diff(a: dict, b: dict, label_a: str = "a", label_b: str = "b") -> str:
    """Render :func:`diff_snapshots` as a text table (or a no-diff note)."""
    rows = diff_snapshots(a, b)
    if not rows:
        return f"snapshots {label_a} and {label_b} are identical"
    lines = [f"{len(rows)} metrics differ ({label_a} -> {label_b})"]
    lines.extend(_table(["metric", "status", "delta"], [list(row) for row in rows]))
    return "\n".join(lines)
