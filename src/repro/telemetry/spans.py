"""Per-shard span tracing: one run as a Chrome-trace-format timeline.

Spans are derived *after* a run from records the engines already emit —
:class:`~repro.parallel.ipc.BatchRecord` services, steal records, window
boundaries and the reliability report — so building a trace costs the
run nothing (the zero-perturbation contract of the telemetry subsystem).

The output is the Chrome trace event format (a JSON object with a
``traceEvents`` array), loadable in ``chrome://tracing`` or Perfetto:

* every bucket service is a complete (``"X"``) event on its worker's
  track, with the served queries and drained objects in ``args``;
* steals, crash recoveries, checkpoints and elastic scale events are
  instant (``"i"``) events on the worker they happened to;
* window barriers are process-scoped instants marking the coordinator's
  virtual-time boundaries;
* with ``include_query_flows`` enabled, every query gets a causal flow
  (``"s"``/``"t"``/``"f"`` events keyed by query id) stitching its
  lifecycle across tracks — from its admission instant on the front-end
  track (when admission records are supplied) through each bucket
  service chunk to its final drain — so Perfetto draws arrows from the
  gate decision to every shard that served the query.

All timestamps are the run's *virtual* clock (milliseconds, exported as
the format's microseconds), so traces are bit-identical across
execution backends just like the rest of the virtual domain.
"""

from __future__ import annotations

import json
import os
from typing import Iterable, List, Optional, Sequence

#: ``pid`` used for every event: one trace describes one run.
TRACE_PID = 1


def _ts_us(virtual_ms: float) -> float:
    """Virtual milliseconds → trace microseconds."""
    return virtual_ms * 1000.0


def _normalise_service(record) -> dict:
    """Accept a parallel ``BatchRecord`` or a serial ``BatchResult``."""
    bucket_index = getattr(record, "bucket_index", None)
    if bucket_index is None:
        bucket_index = record.work_item.bucket_index
    return {
        "worker_id": getattr(record, "worker_id", 0),
        "bucket_index": bucket_index,
        "started_at_ms": record.started_at_ms,
        "finished_at_ms": record.finished_at_ms,
        "queries_served": list(record.queries_served),
        "objects_served": list(getattr(record, "objects_served", ()) or ()),
    }


def _instant(
    name: str, ts_ms: float, tid: int, args: Optional[dict] = None, scope: str = "t"
) -> dict:
    event = {
        "name": name,
        "ph": "i",
        "ts": _ts_us(ts_ms),
        "pid": TRACE_PID,
        "tid": tid,
        "s": scope,
        "cat": "coordination",
    }
    if args:
        event["args"] = args
    return event


def _window_ts_ms(window_index: int, boundaries_ms: Sequence[float]) -> float:
    """Best-effort virtual time of a window barrier (0.0 when unknown)."""
    if 0 <= window_index < len(boundaries_ms):
        return boundaries_ms[window_index]
    if boundaries_ms:
        return boundaries_ms[-1]
    return 0.0


def _flow_event(phase: str, query_id: int, ts_ms: float, tid: int) -> dict:
    """One leg of a query's causal flow (``s`` start, ``t`` step, ``f`` end)."""
    event = {
        "name": f"query {query_id}",
        "cat": "query",
        "ph": phase,
        "id": query_id,
        "ts": _ts_us(ts_ms),
        "pid": TRACE_PID,
        "tid": tid,
    }
    if phase == "f":
        # Bind the flow end to the enclosing slice's end, not its start.
        event["bp"] = "e"
    return event


def build_chrome_trace(
    services: Iterable,
    steal_records: Sequence = (),
    window_boundaries_ms: Sequence[float] = (),
    reliability=None,
    label: str = "",
    backend: str = "",
    admission_records: Sequence = (),
    include_query_flows: bool = False,
) -> dict:
    """Assemble one run's timeline as a Chrome trace event object.

    *admission_records* are the front-end's
    :class:`~repro.service.frontend.AdmissionInstant` decisions; they
    render as instant events on a dedicated front-end track.  With
    *include_query_flows* set, per-query flow events stitch each query's
    gate decisions — every backpressure defer round plus the final admit
    — and its service chunks into one causal chain.
    """
    events: List[dict] = []
    normalised = [_normalise_service(record) for record in services]
    worker_ids = sorted({record["worker_id"] for record in normalised})
    for record in steal_records:
        worker_ids.extend((record.victim_id, record.thief_id))
    worker_ids = sorted(set(worker_ids))
    # The front-end's track sits above every shard track.
    frontend_tid = (max(worker_ids) if worker_ids else 0) + 1

    events.append(
        {
            "name": "process_name",
            "ph": "M",
            "pid": TRACE_PID,
            "tid": 0,
            "args": {"name": f"liferaft run{f' ({label})' if label else ''}"},
        }
    )
    for worker_id in worker_ids:
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": TRACE_PID,
                "tid": worker_id,
                "args": {"name": f"shard-{worker_id}"},
            }
        )
    if admission_records:
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": TRACE_PID,
                "tid": frontend_tid,
                "args": {"name": "frontend"},
            }
        )
        for record in admission_records:
            events.append(
                {
                    "name": f"{record.outcome} q{record.query_id}",
                    "ph": "i",
                    "ts": _ts_us(record.time_ms),
                    "pid": TRACE_PID,
                    "tid": frontend_tid,
                    "s": "t",
                    "cat": "admission",
                    "args": {
                        "query": record.query_id,
                        "outcome": record.outcome,
                        "attempt": record.attempt,
                    },
                }
            )

    for record in normalised:
        events.append(
            {
                "name": f"bucket {record['bucket_index']}",
                "cat": "service",
                "ph": "X",
                "ts": _ts_us(record["started_at_ms"]),
                "dur": _ts_us(record["finished_at_ms"] - record["started_at_ms"]),
                "pid": TRACE_PID,
                "tid": record["worker_id"],
                "args": {
                    "bucket": record["bucket_index"],
                    "queries_served": record["queries_served"],
                    "objects_served": record["objects_served"],
                },
            }
        )

    if include_query_flows:
        # Per-query chunk chains, in deterministic (time, bucket) order.
        chunks: dict = {}
        for record in normalised:
            for query_id in record["queries_served"]:
                chunks.setdefault(query_id, []).append(record)
        gate_instants: dict = {}
        for record in admission_records:
            gate_instants.setdefault(record.query_id, []).append(record)
        for query_id in sorted(chunks):
            chain = sorted(
                chunks[query_id],
                key=lambda r: (r["started_at_ms"], r["bucket_index"], r["worker_id"]),
            )
            instants = sorted(
                gate_instants.get(query_id, ()),
                key=lambda r: (r.time_ms, r.attempt),
            )
            if instants:
                # The causal chain starts at the query's *first* gate
                # decision, and every later backpressure round — each
                # defer retry, not just the final admit — is stitched in
                # as a step on the front-end track, so a multi-round
                # deferred query shows its full wait chain.
                events.append(
                    _flow_event("s", query_id, instants[0].time_ms, frontend_tid)
                )
                for record in instants[1:]:
                    events.append(
                        _flow_event("t", query_id, record.time_ms, frontend_tid)
                    )
                steps = chain
            else:
                events.append(
                    _flow_event(
                        "s", query_id, chain[0]["started_at_ms"], chain[0]["worker_id"]
                    )
                )
                steps = chain[1:]
            for record in steps:
                events.append(
                    _flow_event("t", query_id, record["started_at_ms"], record["worker_id"])
                )
            last = chain[-1]
            events.append(
                _flow_event("f", query_id, last["finished_at_ms"], last["worker_id"])
            )

    for record in steal_records:
        events.append(
            _instant(
                f"steal bucket {record.bucket_index}",
                record.time_ms,
                record.thief_id,
                args={
                    "bucket": record.bucket_index,
                    "victim": record.victim_id,
                    "thief": record.thief_id,
                    "entries": record.entry_count,
                },
            )
        )

    for window_index, boundary_ms in enumerate(window_boundaries_ms):
        events.append(
            _instant(
                f"window {window_index}",
                boundary_ms,
                0,
                args={"window": window_index},
                scope="p",
            )
        )

    if reliability is not None:
        for mark in getattr(reliability, "checkpoint_marks", ()):
            events.append(
                _instant(
                    f"checkpoint w{mark.window_index}",
                    mark.clock_ms,
                    mark.worker_id,
                    args={"window": mark.window_index, "bytes": mark.byte_size},
                )
            )
        for event in reliability.recoveries:
            ts_ms = _window_ts_ms(event.window_index, window_boundaries_ms)
            events.append(
                _instant(
                    f"recover shard {event.worker_id}",
                    ts_ms,
                    event.worker_id,
                    args={
                        "window": event.window_index,
                        "checkpoint_window": event.checkpoint_window,
                        "services_replayed": event.services_replayed,
                    },
                )
            )
        for event in reliability.scale_events:
            ts_ms = _window_ts_ms(event.window_index, window_boundaries_ms)
            events.append(
                _instant(
                    f"scale-{event.kind} shard {event.worker_id}",
                    ts_ms,
                    event.worker_id,
                    args={
                        "window": event.window_index,
                        "kind": event.kind,
                        "buckets_migrated": event.buckets_migrated,
                        "entries_migrated": event.entries_migrated,
                    },
                )
            )

    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "clock": "virtual",
            "backend": backend,
            "label": label,
            "workers": len(worker_ids),
            "services": len(normalised),
            "steals": len(steal_records),
            "windows": len(window_boundaries_ms),
            "admissions": len(admission_records),
            "query_flows": include_query_flows,
        },
    }


def write_chrome_trace(path: str, trace: dict) -> None:
    """Write a trace object as Perfetto-loadable JSON (atomic rename)."""
    tmp_path = f"{path}.tmp"
    with open(tmp_path, "w", encoding="utf-8") as handle:
        json.dump(trace, handle, sort_keys=True)
    os.replace(tmp_path, path)


def validate_chrome_trace(trace: dict) -> None:
    """Raise ``ValueError`` unless *trace* is a well-formed event object."""
    if not isinstance(trace, dict) or "traceEvents" not in trace:
        raise ValueError("not a Chrome trace object (missing 'traceEvents')")
    events = trace["traceEvents"]
    if not isinstance(events, list):
        raise ValueError("'traceEvents' must be a list")
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            raise ValueError(f"traceEvents[{index}] is not an object")
        for key in ("name", "ph", "pid", "tid"):
            if key not in event:
                raise ValueError(f"traceEvents[{index}] missing required key {key!r}")
        phase = event["ph"]
        if phase == "X":
            if "ts" not in event or "dur" not in event:
                raise ValueError(f"traceEvents[{index}]: complete events need ts and dur")
            if event["dur"] < 0:
                raise ValueError(f"traceEvents[{index}]: negative duration")
        elif phase == "i":
            if "ts" not in event:
                raise ValueError(f"traceEvents[{index}]: instant events need ts")
        elif phase in ("s", "t", "f"):
            if "ts" not in event or "id" not in event:
                raise ValueError(f"traceEvents[{index}]: flow events need ts and id")
        elif phase != "M":
            raise ValueError(f"traceEvents[{index}]: unexpected phase {phase!r}")


__all__ = ["TRACE_PID", "build_chrome_trace", "validate_chrome_trace", "write_chrome_trace"]
