"""Deterministic metrics registry: counters, gauges, histograms and series.

The registry is split into two **domains**:

``virtual``
    Advanced only by the virtual clock (or by other values that are a
    pure function of the admitted arrival schedule).  Virtual-domain
    snapshots are bit-identical across the serial engine, the
    ``VirtualBackend`` and the ``ProcessBackend`` at any fixed worker
    count — the telemetry parity suite pins that down.

``real``
    Wall-clock profile (real read seconds, page-cache behaviour,
    checkpoint write latency).  Useful, but never asserted in parity
    tests: two runs of the same spec legitimately differ here.

Metrics are identified by ``(name, labels)``; the serialized key is
``name|k=v|k2=v2`` with label keys sorted, so snapshots built on
different workers agree on identity.  Snapshots are plain picklable
dicts (they ride the ``WorkerResult`` IPC seam and the ``.lrcp``
checkpoint envelope) and merge **order-insensitively**: counters and
histogram buckets add, gauges take the maximum, and windowed series
union by window index (equal duplicate samples are tolerated —
crash-recovery replay can legitimately re-produce a sample — while
*conflicting* values at one index are an error, never a silent pick).
The property tests in ``tests/telemetry/test_registry.py`` verify the
merge algebra is commutative and associative and that the JSON codec
round-trips.
"""

from __future__ import annotations

import json
from bisect import bisect_left
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

VIRTUAL_DOMAIN = "virtual"
REAL_DOMAIN = "real"
_DOMAINS = (VIRTUAL_DOMAIN, REAL_DOMAIN)

#: Bumped when the snapshot schema changes shape.  Version 2 added the
#: ``series`` metric type; version-1 snapshots (no series) still decode.
SNAPSHOT_VERSION = 2
_SUPPORTED_SNAPSHOT_VERSIONS = (1, 2)

Number = Union[int, float]


def metric_key(name: str, labels: Optional[Mapping[str, str]] = None) -> str:
    """Canonical identity of a metric: name plus sorted ``k=v`` labels."""
    if not labels:
        return name
    parts = [f"{key}={labels[key]}" for key in sorted(labels)]
    return "|".join([name, *parts])


class Counter:
    """Monotonically increasing value; merges by summation."""

    __slots__ = ("name", "labels", "domain", "value")

    def __init__(self, name: str, labels: Mapping[str, str], domain: str) -> None:
        self.name = name
        self.labels = dict(labels)
        self.domain = domain
        self.value: Number = 0

    def inc(self, amount: Number = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (got {amount})")
        self.value += amount

    def to_entry(self) -> dict:
        return {
            "type": "counter",
            "name": self.name,
            "labels": dict(self.labels),
            "domain": self.domain,
            "value": self.value,
        }


class Gauge:
    """Point-in-time value; merges by maximum (high-water semantics)."""

    __slots__ = ("name", "labels", "domain", "value")

    def __init__(self, name: str, labels: Mapping[str, str], domain: str) -> None:
        self.name = name
        self.labels = dict(labels)
        self.domain = domain
        self.value: Number = 0

    def set(self, value: Number) -> None:
        self.value = value

    def mark(self, value: Number) -> None:
        """Raise the gauge to *value* if it exceeds the current reading."""
        if value > self.value:
            self.value = value

    def to_entry(self) -> dict:
        return {
            "type": "gauge",
            "name": self.name,
            "labels": dict(self.labels),
            "domain": self.domain,
            "value": self.value,
        }


class Histogram:
    """Fixed-bound histogram; buckets merge elementwise.

    ``bounds`` are upper bucket edges; observations land in the first
    bucket whose bound is >= the value, with one overflow bucket at the
    end (``len(counts) == len(bounds) + 1``).  Bounds are part of the
    metric's identity contract: merging histograms with different bounds
    is an error, never a silent re-bin.
    """

    __slots__ = ("name", "labels", "domain", "bounds", "counts", "sum", "count")

    def __init__(
        self,
        name: str,
        labels: Mapping[str, str],
        domain: str,
        bounds: Sequence[Number],
    ) -> None:
        edges = tuple(bounds)
        if not edges:
            raise ValueError(f"histogram {name!r} needs at least one bucket bound")
        if any(b >= a for b, a in zip(edges, edges[1:])):
            raise ValueError(f"histogram {name!r} bounds must be strictly increasing")
        self.name = name
        self.labels = dict(labels)
        self.domain = domain
        self.bounds = edges
        self.counts: List[int] = [0] * (len(edges) + 1)
        self.sum: Number = 0
        self.count = 0

    def observe(self, value: Number) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1

    def to_entry(self) -> dict:
        return {
            "type": "histogram",
            "name": self.name,
            "labels": dict(self.labels),
            "domain": self.domain,
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "sum": self.sum,
            "count": self.count,
        }


class Series:
    """Windowed time series: one sample per deterministic window barrier.

    Samples are ``[window_index, value]`` pairs recorded in ascending
    index order — window ``k`` covers virtual time ``(k·W, (k+1)·W]``
    for the series' ``window_ms`` ``W``.  Unlike an end-of-run
    :class:`Gauge`, merging never collapses values: snapshots union by
    window index, so per-shard series concatenate their barriers
    instead of taking a global max.  ``window_ms`` is part of the
    identity contract, exactly like histogram bounds: merging series
    sampled at different cadences is an error, never a silent re-bin.
    """

    __slots__ = ("name", "labels", "domain", "window_ms", "samples")

    def __init__(
        self,
        name: str,
        labels: Mapping[str, str],
        domain: str,
        window_ms: Number,
    ) -> None:
        if window_ms <= 0:
            raise ValueError(f"series {name!r} needs a positive window_ms")
        self.name = name
        self.labels = dict(labels)
        self.domain = domain
        self.window_ms = float(window_ms)
        #: ``[window_index, value]`` pairs, ascending by index.
        self.samples: List[List[Number]] = []

    @property
    def sample_count(self) -> int:
        """Number of window barriers sampled so far (the sampler's cursor)."""
        return len(self.samples)

    def record(self, window_index: int, value: Number) -> None:
        """Append the sample of one window barrier (indices must ascend)."""
        if self.samples and window_index <= self.samples[-1][0]:
            raise ValueError(
                f"series {self.name!r}: window index {window_index} is not "
                f"after the last recorded index {self.samples[-1][0]}"
            )
        self.samples.append([int(window_index), value])

    def to_entry(self) -> dict:
        return {
            "type": "series",
            "name": self.name,
            "labels": dict(self.labels),
            "domain": self.domain,
            "window_ms": self.window_ms,
            "samples": [list(sample) for sample in self.samples],
        }


Metric = Union[Counter, Gauge, Histogram, Series]


class MetricsRegistry:
    """One process-local family of metrics.

    Every shard lane owns a registry (created by ``build_service_loop``),
    as do the disk store, the serving front-end and the reliability
    coordinator; snapshots are merged in a deterministic order at the
    end of a run.  ``counter``/``gauge``/``histogram`` are get-or-create
    and return the live metric object, so hot paths resolve a metric
    once and pay only an attribute bump per event.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, Metric] = {}

    def counter(
        self,
        name: str,
        labels: Optional[Mapping[str, str]] = None,
        domain: str = VIRTUAL_DOMAIN,
    ) -> Counter:
        return self._get_or_create(Counter, name, labels, domain)

    def gauge(
        self,
        name: str,
        labels: Optional[Mapping[str, str]] = None,
        domain: str = VIRTUAL_DOMAIN,
    ) -> Gauge:
        return self._get_or_create(Gauge, name, labels, domain)

    def histogram(
        self,
        name: str,
        bounds: Sequence[Number],
        labels: Optional[Mapping[str, str]] = None,
        domain: str = VIRTUAL_DOMAIN,
    ) -> Histogram:
        key = metric_key(name, labels)
        existing = self._metrics.get(key)
        if existing is not None:
            if not isinstance(existing, Histogram):
                raise ValueError(f"metric {key!r} already registered as {_type_name(existing)}")
            if existing.bounds != tuple(bounds):
                raise ValueError(f"histogram {key!r} re-registered with different bounds")
            _check_domain(existing, domain, key)
            return existing
        if domain not in _DOMAINS:
            raise ValueError(f"unknown telemetry domain {domain!r}")
        metric = Histogram(name, labels or {}, domain, bounds)
        self._metrics[key] = metric
        return metric

    def series(
        self,
        name: str,
        window_ms: Number,
        labels: Optional[Mapping[str, str]] = None,
        domain: str = VIRTUAL_DOMAIN,
    ) -> Series:
        key = metric_key(name, labels)
        existing = self._metrics.get(key)
        if existing is not None:
            if not isinstance(existing, Series):
                raise ValueError(f"metric {key!r} already registered as {_type_name(existing)}")
            if existing.window_ms != float(window_ms):
                raise ValueError(f"series {key!r} re-registered with a different window_ms")
            _check_domain(existing, domain, key)
            return existing
        if domain not in _DOMAINS:
            raise ValueError(f"unknown telemetry domain {domain!r}")
        metric = Series(name, labels or {}, domain, window_ms)
        self._metrics[key] = metric
        return metric

    def _get_or_create(self, cls, name, labels, domain):
        key = metric_key(name, labels)
        existing = self._metrics.get(key)
        if existing is not None:
            if not isinstance(existing, cls):
                raise ValueError(f"metric {key!r} already registered as {_type_name(existing)}")
            _check_domain(existing, domain, key)
            return existing
        if domain not in _DOMAINS:
            raise ValueError(f"unknown telemetry domain {domain!r}")
        metric = cls(name, labels or {}, domain)
        self._metrics[key] = metric
        return metric

    def snapshot(self, domain: Optional[str] = None) -> dict:
        """A plain-dict, picklable, JSON-codable view of every metric."""
        metrics = {
            key: metric.to_entry()
            for key, metric in self._metrics.items()
            if domain is None or metric.domain == domain
        }
        return {"version": SNAPSHOT_VERSION, "metrics": metrics}

    def restore(self, snapshot: Optional[dict]) -> None:
        """Replace the registry's contents with *snapshot* (checkpoint restore).

        ``None`` (a checkpoint written before telemetry existed) resets
        the registry to empty, matching the pre-telemetry behaviour.
        Live metric objects are mutated in place where they already
        exist, so hot-path references held by a ``ServiceLoop`` stay
        valid across a recovery.
        """
        entries = {} if snapshot is None else dict(snapshot.get("metrics", {}))
        for key in list(self._metrics):
            if key in entries:
                _load_into(self._metrics[key], entries.pop(key), key)
            else:
                _reset(self._metrics[key])
        for key, entry in entries.items():
            self._metrics[key] = _metric_from_entry(entry, key)

    def merge(self, snapshot: Optional[dict]) -> None:
        """Fold *snapshot* into this registry (counters add, gauges max)."""
        if snapshot is None:
            return
        for key, entry in snapshot.get("metrics", {}).items():
            existing = self._metrics.get(key)
            if existing is None:
                self._metrics[key] = _metric_from_entry(entry, key)
            else:
                _merge_into(existing, entry, key)


def _type_name(metric: Metric) -> str:
    return type(metric).__name__.lower()


def _check_domain(metric: Metric, domain: str, key: str) -> None:
    if metric.domain != domain:
        raise ValueError(
            f"metric {key!r} already registered in domain {metric.domain!r}, not {domain!r}"
        )


def _metric_from_entry(entry: Mapping, key: str) -> Metric:
    kind = entry.get("type")
    name = entry.get("name", key)
    labels = entry.get("labels", {})
    domain = entry.get("domain", VIRTUAL_DOMAIN)
    if domain not in _DOMAINS:
        raise ValueError(f"metric {key!r} has unknown domain {domain!r}")
    if kind == "counter":
        metric: Metric = Counter(name, labels, domain)
    elif kind == "gauge":
        metric = Gauge(name, labels, domain)
    elif kind == "histogram":
        metric = Histogram(name, labels, domain, entry["bounds"])
    elif kind == "series":
        metric = Series(name, labels, domain, entry["window_ms"])
    else:
        raise ValueError(f"metric {key!r} has unknown type {kind!r}")
    _load_into(metric, entry, key)
    return metric


def _load_into(metric: Metric, entry: Mapping, key: str) -> None:
    _check_entry_shape(metric, entry, key)
    if isinstance(metric, Histogram):
        metric.counts = list(entry["counts"])
        metric.sum = entry["sum"]
        metric.count = entry["count"]
    elif isinstance(metric, Series):
        metric.samples = [list(sample) for sample in entry["samples"]]
    else:
        metric.value = entry["value"]


def _reset(metric: Metric) -> None:
    if isinstance(metric, Histogram):
        metric.counts = [0] * (len(metric.bounds) + 1)
        metric.sum = 0
        metric.count = 0
    elif isinstance(metric, Series):
        metric.samples = []
    else:
        metric.value = 0


def _merge_into(metric: Metric, entry: Mapping, key: str) -> None:
    _check_entry_shape(metric, entry, key)
    if isinstance(metric, Counter):
        metric.value += entry["value"]
    elif isinstance(metric, Gauge):
        metric.value = max(metric.value, entry["value"])
    elif isinstance(metric, Series):
        # Union by window index.  A window sampled on both sides must
        # carry the same value (recovery replay re-produces samples
        # bit-identically); a conflict means two runs were mixed up.
        merged: Dict[int, Number] = {int(index): value for index, value in metric.samples}
        for index, value in entry["samples"]:
            index = int(index)
            if index in merged:
                if merged[index] != value:
                    raise ValueError(
                        f"series {key!r}: conflicting samples at window "
                        f"{index} ({merged[index]!r} vs {value!r}); "
                        "refusing to merge"
                    )
            else:
                merged[index] = value
        metric.samples = [[index, merged[index]] for index in sorted(merged)]
    else:
        metric.counts = [a + b for a, b in zip(metric.counts, entry["counts"])]
        metric.sum += entry["sum"]
        metric.count += entry["count"]


def _check_entry_shape(metric: Metric, entry: Mapping, key: str) -> None:
    kind = entry.get("type")
    if kind != _type_name(metric):
        raise ValueError(f"metric {key!r}: cannot combine {_type_name(metric)} with {kind}")
    domain = entry.get("domain", VIRTUAL_DOMAIN)
    if domain != metric.domain:
        raise ValueError(
            f"metric {key!r}: domain mismatch ({metric.domain!r} vs {domain!r})"
        )
    if isinstance(metric, Histogram) and tuple(entry.get("bounds", ())) != metric.bounds:
        raise ValueError(f"histogram {key!r}: bucket bounds differ; refusing to merge")
    if isinstance(metric, Series) and float(entry.get("window_ms", 0.0)) != metric.window_ms:
        raise ValueError(f"series {key!r}: window_ms differs; refusing to merge")


def empty_snapshot() -> dict:
    """The identity element of the merge algebra."""
    return {"version": SNAPSHOT_VERSION, "metrics": {}}


def merge_snapshots(snapshots: Iterable[Optional[dict]]) -> dict:
    """Merge snapshot dicts; ``None`` entries are skipped.

    Counters and histogram buckets add and gauges take the maximum, so
    the result is independent of input order (exactly for integer
    values; callers that merge float counters pass snapshots in a
    deterministic order — worker id — so every backend folds the same
    way).
    """
    registry = MetricsRegistry()
    for snapshot in snapshots:
        registry.merge(snapshot)
    return registry.snapshot()


def filter_domain(snapshot: Optional[dict], domain: str) -> dict:
    """The sub-snapshot holding only *domain* metrics (for parity asserts)."""
    if domain not in _DOMAINS:
        raise ValueError(f"unknown telemetry domain {domain!r}")
    if snapshot is None:
        return empty_snapshot()
    metrics = {
        key: entry
        for key, entry in snapshot.get("metrics", {}).items()
        if entry.get("domain") == domain
    }
    return {"version": snapshot.get("version", SNAPSHOT_VERSION), "metrics": metrics}


def snapshot_to_json(snapshot: dict) -> str:
    """Deterministic JSON encoding (sorted keys, stable float repr)."""
    return json.dumps(snapshot, sort_keys=True, indent=2)


def snapshot_from_json(text: str) -> dict:
    """Decode and validate a snapshot produced by :func:`snapshot_to_json`."""
    snapshot = json.loads(text)
    if not isinstance(snapshot, dict) or "metrics" not in snapshot:
        raise ValueError("not a telemetry metrics snapshot (missing 'metrics')")
    version = snapshot.get("version")
    if version not in _SUPPORTED_SNAPSHOT_VERSIONS:
        raise ValueError(f"unsupported metrics snapshot version {version!r}")
    # Round-trip through the registry to validate every entry's shape.
    registry = MetricsRegistry()
    registry.merge(snapshot)
    return snapshot


def metric_value(snapshot: Optional[dict], name: str, labels: Optional[Mapping[str, str]] = None):
    """Convenience lookup: the value of one counter/gauge (0 if absent)."""
    if snapshot is None:
        return 0
    entry = snapshot.get("metrics", {}).get(metric_key(name, labels))
    if entry is None:
        return 0
    if entry.get("type") == "histogram":
        return entry.get("count", 0)
    if entry.get("type") == "series":
        return len(entry.get("samples", ()))
    return entry.get("value", 0)


def sum_metric(snapshot: Optional[dict], name: str) -> Number:
    """Sum a metric's value over every label combination."""
    if snapshot is None:
        return 0
    total: Number = 0
    for entry in snapshot.get("metrics", {}).values():
        if entry.get("name") == name:
            kind = entry.get("type")
            if kind == "histogram":
                total += entry.get("count", 0)
            elif kind == "series":
                total += len(entry.get("samples", ()))
            else:
                total += entry.get("value", 0)
    return total


__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REAL_DOMAIN",
    "SNAPSHOT_VERSION",
    "Series",
    "VIRTUAL_DOMAIN",
    "empty_snapshot",
    "filter_domain",
    "merge_snapshots",
    "metric_key",
    "metric_value",
    "snapshot_from_json",
    "snapshot_to_json",
    "sum_metric",
]
