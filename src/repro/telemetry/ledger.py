"""The per-query cost ledger: where each query's makespan went.

LifeRaft's thesis is a trade-off — data-driven batching amortises bucket
I/O across queries at the risk of starving individual ones — and the
aggregate metrics (SLA counters, backend-wide series) only report that
trade-off in bulk.  The ledger is the per-query answer: a virtual-domain
decomposition of each query's makespan into deterministic components —
admission gating / backpressure-defer wait, queue wait, bucket service
time, the I/O vs cache-hit split, steal-migration delay — plus a
**sharing attribution**: for every bucket served, how many co-batched
queries amortised the service (the paper's batching benefit, measured
per query).

Ledgers are assembled *after* a run from records the engines already
emit — :class:`~repro.parallel.ipc.BatchRecord` services (which carry
the per-batch I/O and match cost over the ``WorkerResult`` IPC seam),
the front-end's :class:`~repro.service.frontend.AdmissionInstant`
stream, and the steal journal — so building one costs the run nothing
(the zero-perturbation contract: ``result_digest`` is identical with
the ledger enabled or disabled).  Because every input is part of the
deterministic virtual domain, ledgers obey the repo's parity contract:
bit-identical across the serial engine, the virtual backend and the
process backend at any fixed worker count with stealing off, and
identical between a crash-injected recovery run and its uninterrupted
twin (pre-crash records ride the ``.lrcp`` seam via the coordinator's
accepted-``seq`` cursor; the replayed tail re-emits the lost ones
bit-for-bit).

Merging is order-insensitive: :func:`build_run_ledger` accepts service
records in *any* order (per-worker fragments concatenated however they
arrive) and canonicalises internally, so coordinators never need to
pre-sort — the hypothesis commutativity tests pin this down.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "LEDGER_VERSION",
    "LedgerService",
    "build_run_ledger",
    "diff_ledgers",
    "ledger_digest",
    "ledger_entries",
    "normalize_service",
]

#: Schema version of the ledger dict (bumped on incompatible change).
LEDGER_VERSION = 1

#: Per-query numeric fields, in schema order.  ``diff_ledgers`` compares
#: exactly these, so adding a field here extends the compare surface.
_ENTRY_FIELDS = (
    "arrival_ms",
    "submit_ms",
    "admission_wait_ms",
    "defers",
    "first_service_ms",
    "queue_wait_ms",
    "completion_ms",
    "makespan_ms",
    "services",
    "service_ms",
    "attributed_service_ms",
    "io_ms",
    "attributed_io_ms",
    "match_ms",
    "cache_hit_services",
    "io_services",
    "steal_migrations",
    "steal_wait_ms",
)


@dataclass(frozen=True)
class LedgerService:
    """One bucket service normalised to what the ledger needs.

    Deliberately carries **no worker id**: bucket service timelines are
    pure functions of the bucket's admitted arrivals, so dropping the
    (topology-dependent) worker id is what makes a one-worker parallel
    ledger bit-identical to the serial engine's.
    """

    bucket_index: int
    started_at_ms: float
    finished_at_ms: float
    io_ms: float
    match_ms: float
    queries_served: Tuple[int, ...]
    objects_served: Tuple[int, ...]

    @property
    def cost_ms(self) -> float:
        """Service time of the batch."""
        return self.finished_at_ms - self.started_at_ms

    @property
    def shared_by(self) -> int:
        """How many co-batched queries amortised this service."""
        return max(1, len(self.queries_served))

    def sort_key(self) -> tuple:
        """A total order independent of arrival order (merge canonicaliser).

        Covers *every* field: colliding prefixes with different payloads
        would otherwise fall back to (stable-sort) input order, breaking
        the order-insensitivity guarantee the hypothesis tests pin down.
        """
        return (
            self.started_at_ms,
            self.finished_at_ms,
            self.bucket_index,
            self.queries_served,
            self.objects_served,
            self.io_ms,
            self.match_ms,
        )


def normalize_service(record) -> LedgerService:
    """Accept a parallel ``BatchRecord`` or a serial ``BatchResult``.

    The same dual-shape rule as the span builder: records carry the I/O
    and match split directly (``io_ms`` / ``match_ms``, riding the IPC
    seam since they were added for the ledger); serial batch results
    expose the identical numbers through their ``JoinResult``.
    """
    bucket_index = getattr(record, "bucket_index", None)
    if bucket_index is None:
        bucket_index = record.work_item.bucket_index
    join = getattr(record, "join", None)
    if join is not None:
        io_ms = join.io_cost_ms
        match_ms = join.match_cost_ms
    else:
        io_ms = getattr(record, "io_ms", 0.0)
        match_ms = getattr(record, "match_ms", 0.0)
    return LedgerService(
        bucket_index=bucket_index,
        started_at_ms=record.started_at_ms,
        finished_at_ms=record.finished_at_ms,
        io_ms=io_ms,
        match_ms=match_ms,
        queries_served=tuple(record.queries_served),
        objects_served=tuple(getattr(record, "objects_served", ()) or ()),
    )


def _admission_story(
    admission_records: Sequence,
) -> Tuple[Dict[int, float], Dict[int, float], Dict[int, int]]:
    """Per query: first gate instant, admit instant, defer count."""
    first_seen: Dict[int, float] = {}
    admitted_at: Dict[int, float] = {}
    defers: Dict[int, int] = {}
    for record in admission_records:
        query_id = record.query_id
        if query_id not in first_seen:
            first_seen[query_id] = record.time_ms
        if record.outcome == "admit":
            admitted_at[query_id] = record.time_ms
            defers[query_id] = record.attempt
        elif record.outcome == "defer":
            defers[query_id] = max(defers.get(query_id, 0), record.attempt + 1)
    return first_seen, admitted_at, defers


def build_run_ledger(
    services: Iterable,
    admission_records: Sequence = (),
    steal_records: Sequence = (),
    arrivals_ms: Optional[Mapping[int, float]] = None,
) -> dict:
    """Assemble one run's per-query cost ledger as a JSON-ready dict.

    *services* may arrive in any order and from any mixture of per-worker
    fragments — the builder canonicalises internally, so merging is
    order-insensitive (concatenation commutes).  *arrivals_ms* supplies
    the original client arrival per query id; when absent, a query's
    arrival falls back to its first gate instant (serving runs) and then
    to its first service start.

    Only queries that received at least one bucket service appear:
    rejected and no-overlap arrivals have no cost to decompose.
    """
    normalised = sorted(
        (normalize_service(record) for record in services),
        key=LedgerService.sort_key,
    )
    first_seen, admitted_at, defers = _admission_story(admission_records)
    arrivals = dict(arrivals_ms or {})
    steals_by_bucket: Dict[int, List[float]] = {}
    for record in steal_records:
        steals_by_bucket.setdefault(record.bucket_index, []).append(record.time_ms)

    per_query: Dict[int, List[LedgerService]] = {}
    for service in normalised:
        for query_id in service.queries_served:
            per_query.setdefault(query_id, []).append(service)

    entries: List[dict] = []
    for query_id in sorted(per_query):
        chain = per_query[query_id]
        first_service_ms = chain[0].started_at_ms
        completion_ms = max(service.finished_at_ms for service in chain)
        submit_ms = admitted_at.get(query_id)
        arrival_ms = arrivals.get(query_id)
        if arrival_ms is None:
            arrival_ms = first_seen.get(query_id)
        if arrival_ms is None:
            arrival_ms = first_service_ms if submit_ms is None else submit_ms
        if submit_ms is None:
            # No gate in front of the engines: hand-off is the arrival.
            submit_ms = arrival_ms
        service_ms = 0.0
        attributed_service_ms = 0.0
        io_ms = 0.0
        attributed_io_ms = 0.0
        match_ms = 0.0
        cache_hits = 0
        io_services = 0
        steal_migrations = 0
        steal_wait_ms = 0.0
        buckets: List[dict] = []
        for service in chain:
            shared_by = service.shared_by
            cost = service.cost_ms
            service_ms += cost
            attributed_service_ms += cost / shared_by
            io_ms += service.io_ms
            attributed_io_ms += service.io_ms / shared_by
            match_ms += service.match_ms
            if service.io_ms > 0.0:
                io_services += 1
            else:
                cache_hits += 1
            for steal_ms in steals_by_bucket.get(service.bucket_index, ()):
                # A migration between this query's arrival and the bucket's
                # eventual service delayed that service by the remaining
                # wait; with stealing off this term is identically zero.
                if arrival_ms <= steal_ms <= service.started_at_ms:
                    steal_migrations += 1
                    steal_wait_ms += service.started_at_ms - steal_ms
            counts = dict(zip(service.queries_served, service.objects_served))
            buckets.append(
                {
                    "bucket": service.bucket_index,
                    "shared_by": shared_by,
                    "service_ms": cost,
                    "io_ms": service.io_ms,
                    "objects": counts.get(query_id, 0),
                }
            )
        entries.append(
            {
                "query_id": query_id,
                "arrival_ms": arrival_ms,
                "submit_ms": submit_ms,
                "admission_wait_ms": submit_ms - arrival_ms,
                "defers": defers.get(query_id, 0),
                "first_service_ms": first_service_ms,
                "queue_wait_ms": first_service_ms - submit_ms,
                "completion_ms": completion_ms,
                "makespan_ms": completion_ms - arrival_ms,
                "services": len(chain),
                "service_ms": service_ms,
                "attributed_service_ms": attributed_service_ms,
                "io_ms": io_ms,
                "attributed_io_ms": attributed_io_ms,
                "match_ms": match_ms,
                "cache_hit_services": cache_hits,
                "io_services": io_services,
                "steal_migrations": steal_migrations,
                "steal_wait_ms": steal_wait_ms,
                "buckets": buckets,
            }
        )

    totals = {
        "queries": len(entries),
        "services": len(normalised),
        "service_ms": sum(entry["service_ms"] for entry in entries),
        "attributed_service_ms": sum(
            entry["attributed_service_ms"] for entry in entries
        ),
        "io_ms": sum(entry["io_ms"] for entry in entries),
        "makespan_ms": sum(entry["makespan_ms"] for entry in entries),
        "admission_wait_ms": sum(entry["admission_wait_ms"] for entry in entries),
        "steal_wait_ms": sum(entry["steal_wait_ms"] for entry in entries),
    }
    return {"version": LEDGER_VERSION, "queries": entries, "totals": totals}


def ledger_entries(ledger: dict) -> Dict[int, dict]:
    """The ledger's per-query entries, indexed by query id."""
    return {int(entry["query_id"]): entry for entry in ledger.get("queries", ())}


def ledger_digest(ledger: dict) -> str:
    """SHA-256 of the canonical JSON encoding — equal digests mean
    bit-identical ledgers (the parity matrix compares these)."""
    encoded = json.dumps(ledger, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(encoded.encode("utf-8")).hexdigest()


def _field_delta(field: str, a: object, b: object) -> Optional[str]:
    if a == b:
        return None
    if isinstance(a, (int, float)) and isinstance(b, (int, float)):
        return f"{field} {a:g} -> {b:g} ({b - a:+g})"
    return f"{field} {a!r} -> {b!r}"


def diff_ledgers(a: dict, b: dict) -> List[Tuple[str, str, str]]:
    """Per-query deltas between two ledgers.

    Returns ``(query key, status, delta)`` rows — the same shape as
    :func:`repro.telemetry.report.diff_snapshots` — where *status* is
    ``only-a``, ``only-b`` or ``changed``.  Identical ledgers diff to
    the empty list (the ``liferaft compare`` zero-drift contract).
    """
    entries_a = ledger_entries(a)
    entries_b = ledger_entries(b)
    rows: List[Tuple[str, str, str]] = []
    for query_id in sorted(set(entries_a) | set(entries_b)):
        key = f"query {query_id}"
        entry_a = entries_a.get(query_id)
        entry_b = entries_b.get(query_id)
        if entry_a is None:
            rows.append((key, "only-b", f"makespan {entry_b['makespan_ms']:g} ms"))
            continue
        if entry_b is None:
            rows.append((key, "only-a", f"makespan {entry_a['makespan_ms']:g} ms"))
            continue
        deltas = [
            delta
            for field in _ENTRY_FIELDS
            if (delta := _field_delta(field, entry_a.get(field), entry_b.get(field)))
            is not None
        ]
        if entry_a.get("buckets") != entry_b.get("buckets"):
            deltas.append("bucket attribution changed")
        if deltas:
            rows.append((key, "changed", "; ".join(deltas)))
    return rows
