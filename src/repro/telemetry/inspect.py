"""Human-readable summaries of exported metrics snapshots.

Backs ``liferaft inspect <metrics.json>``: load a snapshot written by
``liferaft run --metrics-out``, group it by telemetry domain and render
one row per metric.  Pure presentation — nothing here feeds back into a
run.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.telemetry.registry import snapshot_from_json


def load_snapshot(path: str) -> dict:
    """Read and validate a metrics snapshot file."""
    with open(path, "r", encoding="utf-8") as handle:
        return snapshot_from_json(handle.read())


def _format_value(value) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, int):
        return f"{value:,}"
    if isinstance(value, float):
        return f"{value:,.4g}"
    return str(value)


def describe_entry(entry: dict) -> str:
    """One metric's value column."""
    if entry["type"] == "histogram":
        count = entry["count"]
        if count == 0:
            return "n=0"
        mean = entry["sum"] / count
        return f"n={count:,} sum={_format_value(entry['sum'])} mean={mean:,.4g}"
    if entry["type"] == "series":
        samples = entry["samples"]
        if not samples:
            return f"n=0 window={_format_value(entry['window_ms'])}ms"
        values = [value for _index, value in samples]
        return (
            f"n={len(samples):,} window={_format_value(entry['window_ms'])}ms "
            f"min={_format_value(min(values))} max={_format_value(max(values))} "
            f"last={_format_value(values[-1])}"
        )
    return _format_value(entry["value"])


def _label_text(entry: dict) -> str:
    labels = entry.get("labels") or {}
    if not labels:
        return ""
    inner = ",".join(f"{key}={labels[key]}" for key in sorted(labels))
    return f"{{{inner}}}"


def summary_rows(snapshot: dict) -> List[Tuple[str, str, str, str]]:
    """``(domain, metric, type, value)`` rows, virtual domain first."""
    entries = snapshot.get("metrics", {})
    ordered = sorted(
        entries.items(),
        key=lambda item: (item[1].get("domain", ""), item[1].get("name", ""), item[0]),
    )
    rows: List[Tuple[str, str, str, str]] = []
    for _key, entry in ordered:
        rows.append(
            (
                entry.get("domain", "?"),
                f"{entry['name']}{_label_text(entry)}",
                entry["type"],
                describe_entry(entry),
            )
        )
    # Virtual domain leads: it is the deterministic, parity-checked half.
    rows.sort(key=lambda row: (row[0] != "virtual",))
    return rows


def domain_counts(snapshot: dict) -> Tuple[int, int]:
    """``(virtual, real)`` metric counts of a snapshot."""
    entries = snapshot.get("metrics", {}).values()
    virtual = sum(1 for entry in entries if entry.get("domain") == "virtual")
    return virtual, len(snapshot.get("metrics", {})) - virtual


__all__ = ["describe_entry", "domain_counts", "load_snapshot", "summary_rows"]
