"""``.lrrun`` run archives: a durable, comparable record of one run.

Gray et al.'s *Scientific Data Management in the Coming Decade* argues
that results are only as useful as the metadata stored alongside them;
an ``.lrrun`` archive is that discipline applied to a LifeRaft run.  One
file carries everything needed to say *what ran and what happened*: the
:class:`~repro.sim.runspec.RunSpec` description, the result summary
(including the ``result_digest``), the merged metrics snapshot (series
included) and the per-query cost ledger.

The container follows the repo's codec discipline (``.lrbs`` /
``.lrcp`` / ``.lrtr``): a little-endian struct header with magic and
version, a CRC-32 over the payload, atomic write via a same-directory
temp file + ``os.replace``, and a typed :class:`ArchiveFormatError` on
corruption, truncation or version skew.

:func:`compare_archives` is the ``liferaft compare`` engine: it diffs
two archives per metric (virtual domain only — the real domain is
wall-clock profile and legitimately differs between identical runs) and
per query (through :func:`repro.telemetry.ledger.diff_ledgers`), and
grades the drift: exit code 0 for none, 1 for telemetry/ledger drift,
2 for result-digest drift.
"""

from __future__ import annotations

import json
import os
import struct
import tempfile
import zlib
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.telemetry.ledger import diff_ledgers
from repro.telemetry.registry import VIRTUAL_DOMAIN, filter_domain
from repro.telemetry.report import diff_snapshots

__all__ = [
    "ARCHIVE_MAGIC",
    "ARCHIVE_VERSION",
    "ArchiveFormatError",
    "CompareReport",
    "RunArchive",
    "compare_archives",
    "describe_run_spec",
    "read_run_archive",
    "render_compare",
    "summarise_result",
    "write_run_archive",
]

ARCHIVE_MAGIC = b"LRRN"
ARCHIVE_VERSION = 1

#: magic, version, flags, body length, CRC-32 of the body.
_HEADER = struct.Struct("<4sHHQI")


class ArchiveFormatError(ValueError):
    """A ``.lrrun`` file is malformed, truncated or version-skewed."""


@dataclass(frozen=True)
class RunArchive:
    """The decoded content of one ``.lrrun`` file."""

    #: JSON-safe description of the run's :class:`RunSpec`.
    spec: dict
    #: Result summary: parity fields, response stats, ``result_digest``.
    result: dict
    #: Merged metrics snapshot (``None`` when the run disabled telemetry).
    telemetry: Optional[dict] = None
    #: Per-query cost ledger (``None`` when the run disabled telemetry).
    ledger: Optional[dict] = None
    version: int = ARCHIVE_VERSION

    @property
    def result_digest(self) -> str:
        """The archived run's result digest (empty when unstamped)."""
        return str(self.result.get("result_digest", ""))


#: Result fields copied into the archive summary, in schema order.
_RESULT_FIELDS = (
    "policy_name",
    "alpha",
    "label",
    "backend",
    "workers",
    "store_backend",
    "submitted_queries",
    "completed_queries",
    "makespan_s",
    "busy_time_s",
    "throughput_qps",
    "cache_hit_rate",
    "bucket_services",
    "bucket_reads",
    "total_io_s",
    "total_match_s",
    "steals",
    "result_digest",
)


def describe_run_spec(spec) -> dict:
    """A JSON-safe description of a :class:`RunSpec` for the archive.

    Constructed policy/backend objects degrade to their display names;
    the default-store sentinel degrades to ``"default"``.  The point is
    comparability across processes, not reconstruction — ``.lrtr``
    traces are the replayable artifact.
    """
    policy = spec.policy
    if not isinstance(policy, str):
        policy = getattr(policy, "name", type(policy).__name__)
    backend = spec.effective_backend if spec.is_parallel else "serial"
    if not isinstance(backend, str):
        backend = getattr(backend, "name", type(backend).__name__)
    store_path = spec.store_path
    if not (store_path is None or isinstance(store_path, str)):
        store_path = "default"
    reliability = None
    if spec.reliability is not None:
        reliability = {
            "cadence": getattr(spec.reliability, "cadence", None),
            "window_quantum_ms": getattr(spec.reliability, "window_quantum_ms", None),
        }
    return {
        "policy": policy,
        "alpha": spec.alpha,
        "workers": spec.workers,
        "shard_strategy": spec.shard_strategy,
        "backend": backend,
        "enable_stealing": spec.enable_stealing,
        "steal_quantum_ms": spec.steal_quantum_ms,
        "served_with_admission": spec.service is not None,
        "reliability": reliability,
        "store_path": store_path,
        "label": spec.label,
        "saturation_qps": spec.saturation_qps,
        "series_window_ms": spec.series_window_ms,
    }


def summarise_result(result) -> dict:
    """The archive's result summary for a ``SimulationResult``."""
    summary = {name: getattr(result, name) for name in _RESULT_FIELDS}
    summary["avg_response_time_s"] = result.avg_response_time_s
    summary["response_time_cov"] = result.response_time_cov
    return summary


def write_run_archive(path: str, archive: RunArchive) -> int:
    """Atomically write *archive* as a ``.lrrun`` file; returns byte size.

    Same discipline as the trace/checkpoint writers: the payload lands
    in a same-directory temp file first and ``os.replace`` publishes it,
    so readers never observe a torn archive.
    """
    body = json.dumps(
        {
            "spec": archive.spec,
            "result": archive.result,
            "telemetry": archive.telemetry,
            "ledger": archive.ledger,
        },
        sort_keys=True,
        separators=(",", ":"),
    ).encode("utf-8")
    crc = zlib.crc32(body) & 0xFFFFFFFF
    header = _HEADER.pack(ARCHIVE_MAGIC, archive.version, 0, len(body), crc)
    directory = os.path.dirname(os.path.abspath(path)) or "."
    fd, temp_path = tempfile.mkstemp(dir=directory, suffix=".lrrun.tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(header)
            handle.write(body)
        os.replace(temp_path, path)
    except BaseException:
        try:
            os.unlink(temp_path)
        except OSError:
            pass
        raise
    return _HEADER.size + len(body)


def read_run_archive(path: str) -> RunArchive:
    """Read and validate a ``.lrrun`` file."""
    with open(path, "rb") as handle:
        raw = handle.read()
    if len(raw) < _HEADER.size:
        raise ArchiveFormatError("run archive truncated: header incomplete")
    magic, version, _flags, body_len, crc = _HEADER.unpack_from(raw)
    if magic != ARCHIVE_MAGIC:
        raise ArchiveFormatError(f"not a run archive (magic {magic!r})")
    if version != ARCHIVE_VERSION:
        raise ArchiveFormatError(
            f"unsupported run archive version {version} (expected {ARCHIVE_VERSION})"
        )
    body = raw[_HEADER.size :]
    if len(body) != body_len:
        raise ArchiveFormatError(
            f"run archive truncated: expected {body_len} payload bytes, found {len(body)}"
        )
    if zlib.crc32(body) & 0xFFFFFFFF != crc:
        raise ArchiveFormatError("run archive corrupt: CRC mismatch")
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ArchiveFormatError(f"run archive payload undecodable: {error}") from error
    if not isinstance(payload, dict):
        raise ArchiveFormatError("run archive payload is not an object")
    return RunArchive(
        spec=payload.get("spec") or {},
        result=payload.get("result") or {},
        telemetry=payload.get("telemetry"),
        ledger=payload.get("ledger"),
        version=version,
    )


@dataclass(frozen=True)
class CompareReport:
    """What ``liferaft compare A B`` found between two archives."""

    digest_a: str
    digest_b: str
    #: Spec fields that differ (informational — an intentional A/B).
    spec_rows: List[Tuple[str, str, str]] = field(default_factory=list)
    #: Virtual-domain metric/series drift (``diff_snapshots`` rows).
    metric_rows: List[Tuple[str, str, str]] = field(default_factory=list)
    #: Per-query ledger drift (``diff_ledgers`` rows).
    ledger_rows: List[Tuple[str, str, str]] = field(default_factory=list)

    @property
    def digest_drift(self) -> bool:
        """Whether the deterministic result outcomes differ."""
        return self.digest_a != self.digest_b

    @property
    def telemetry_drift(self) -> bool:
        """Whether any virtual-domain metric or ledger entry differs."""
        return bool(self.metric_rows or self.ledger_rows)

    @property
    def exit_code(self) -> int:
        """0 = no drift, 1 = telemetry/ledger drift, 2 = digest drift."""
        if self.digest_drift:
            return 2
        if self.telemetry_drift:
            return 1
        return 0


def compare_archives(a: RunArchive, b: RunArchive) -> CompareReport:
    """Per-metric and per-query deltas between two run archives.

    Only the virtual domain is compared: real-domain metrics are a wall
    profile and legitimately differ between two runs of the same spec,
    so two identical-spec runs compare clean (the CI self-compare smoke
    asserts exit code 0).
    """
    spec_rows: List[Tuple[str, str, str]] = []
    for key in sorted(set(a.spec) | set(b.spec)):
        value_a = a.spec.get(key)
        value_b = b.spec.get(key)
        if value_a != value_b:
            spec_rows.append((f"spec.{key}", "changed", f"{value_a!r} -> {value_b!r}"))
    metric_rows = diff_snapshots(
        filter_domain(a.telemetry, VIRTUAL_DOMAIN),
        filter_domain(b.telemetry, VIRTUAL_DOMAIN),
    )
    ledger_rows = diff_ledgers(a.ledger or {}, b.ledger or {})
    return CompareReport(
        digest_a=a.result_digest,
        digest_b=b.result_digest,
        spec_rows=spec_rows,
        metric_rows=metric_rows,
        ledger_rows=ledger_rows,
    )


def render_compare(
    report: CompareReport, label_a: str = "a", label_b: str = "b"
) -> str:
    """Human-readable rendering of a :class:`CompareReport`."""
    lines = [f"compare: {label_a} vs {label_b}"]
    if report.digest_drift:
        lines.append(
            f"  result digest DRIFT: {report.digest_a[:16]}... != {report.digest_b[:16]}..."
        )
    else:
        lines.append(f"  result digest match: {report.digest_a[:16]}...")
    for title, rows in (
        ("spec differences", report.spec_rows),
        ("metric drift (virtual domain)", report.metric_rows),
        ("per-query ledger drift", report.ledger_rows),
    ):
        lines.append(f"  {title}: {len(rows)}")
        for key, status, delta in rows:
            lines.append(f"    {key} [{status}] {delta}")
    verdict = {0: "no drift", 1: "telemetry drift", 2: "digest drift"}[
        report.exit_code
    ]
    lines.append(f"  verdict: {verdict} (exit {report.exit_code})")
    return "\n".join(lines)
