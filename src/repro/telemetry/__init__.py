"""Deterministic telemetry: metrics registry, span tracing, timeline export.

The subsystem has three parts:

* :mod:`repro.telemetry.registry` — labelled counters, gauges and
  fixed-bound histograms split into a virtual-time domain (bit-identical
  across execution backends) and a real-time domain (wall profile);
* :mod:`repro.telemetry.spans` — per-shard span tracing exported as
  Chrome-trace-format JSON (``chrome://tracing``/Perfetto-loadable);
* :mod:`repro.telemetry.inspect` — the ``liferaft inspect`` summary.

The design contract is **zero perturbation**: instrumentation never
feeds scheduling decisions or the result digest, so a run's
``result_digest`` is identical with telemetry enabled or disabled (the
telemetry parity suite pins that down).
"""

from repro.telemetry.inspect import domain_counts, load_snapshot, summary_rows
from repro.telemetry.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    REAL_DOMAIN,
    SNAPSHOT_VERSION,
    VIRTUAL_DOMAIN,
    empty_snapshot,
    filter_domain,
    merge_snapshots,
    metric_key,
    metric_value,
    snapshot_from_json,
    snapshot_to_json,
    sum_metric,
)
from repro.telemetry.spans import build_chrome_trace, validate_chrome_trace, write_chrome_trace

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REAL_DOMAIN",
    "SNAPSHOT_VERSION",
    "VIRTUAL_DOMAIN",
    "build_chrome_trace",
    "domain_counts",
    "empty_snapshot",
    "filter_domain",
    "load_snapshot",
    "merge_snapshots",
    "metric_key",
    "metric_value",
    "snapshot_from_json",
    "snapshot_to_json",
    "sum_metric",
    "summary_rows",
    "validate_chrome_trace",
    "write_chrome_trace",
]
