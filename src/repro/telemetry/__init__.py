"""Deterministic telemetry: metrics, series, spans, ledgers, archives.

The subsystem has six parts:

* :mod:`repro.telemetry.registry` — labelled counters, gauges,
  fixed-bound histograms and windowed time series split into a
  virtual-time domain (bit-identical across execution backends) and a
  real-time domain (wall profile);
* :mod:`repro.telemetry.spans` — per-shard span tracing and per-query
  causal flows exported as Chrome-trace-format JSON
  (``chrome://tracing``/Perfetto-loadable);
* :mod:`repro.telemetry.ledger` — the per-query cost ledger: each
  query's makespan decomposed into admission/queue/service/IO
  components with batching sharing attribution;
* :mod:`repro.telemetry.archive` — versioned ``.lrrun`` run archives
  and the ``liferaft compare`` drift engine;
* :mod:`repro.telemetry.inspect` — the ``liferaft inspect`` summary;
* :mod:`repro.telemetry.report` — the ``liferaft report`` renderer and
  the ``liferaft inspect --diff`` snapshot comparison.

The design contract is **zero perturbation**: instrumentation never
feeds scheduling decisions or the result digest, so a run's
``result_digest`` is identical with telemetry enabled or disabled (the
telemetry parity suite pins that down).
"""

from repro.telemetry.archive import (
    ArchiveFormatError,
    CompareReport,
    RunArchive,
    compare_archives,
    read_run_archive,
    render_compare,
    write_run_archive,
)
from repro.telemetry.inspect import domain_counts, load_snapshot, summary_rows
from repro.telemetry.ledger import (
    build_run_ledger,
    diff_ledgers,
    ledger_digest,
    ledger_entries,
)
from repro.telemetry.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    REAL_DOMAIN,
    SNAPSHOT_VERSION,
    Series,
    VIRTUAL_DOMAIN,
    empty_snapshot,
    filter_domain,
    merge_snapshots,
    metric_key,
    metric_value,
    snapshot_from_json,
    snapshot_to_json,
    sum_metric,
)
from repro.telemetry.report import (
    diff_snapshots,
    render_diff,
    render_report,
    report_to_json,
)
from repro.telemetry.spans import build_chrome_trace, validate_chrome_trace, write_chrome_trace

__all__ = [
    "ArchiveFormatError",
    "CompareReport",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REAL_DOMAIN",
    "RunArchive",
    "SNAPSHOT_VERSION",
    "Series",
    "VIRTUAL_DOMAIN",
    "build_chrome_trace",
    "build_run_ledger",
    "compare_archives",
    "diff_ledgers",
    "diff_snapshots",
    "domain_counts",
    "empty_snapshot",
    "filter_domain",
    "ledger_digest",
    "ledger_entries",
    "load_snapshot",
    "merge_snapshots",
    "metric_key",
    "metric_value",
    "read_run_archive",
    "render_compare",
    "render_diff",
    "render_report",
    "report_to_json",
    "snapshot_from_json",
    "snapshot_to_json",
    "sum_metric",
    "summary_rows",
    "validate_chrome_trace",
    "write_chrome_trace",
    "write_run_archive",
]
