"""Deterministic telemetry: metrics, series, span tracing, run reports.

The subsystem has four parts:

* :mod:`repro.telemetry.registry` — labelled counters, gauges,
  fixed-bound histograms and windowed time series split into a
  virtual-time domain (bit-identical across execution backends) and a
  real-time domain (wall profile);
* :mod:`repro.telemetry.spans` — per-shard span tracing and per-query
  causal flows exported as Chrome-trace-format JSON
  (``chrome://tracing``/Perfetto-loadable);
* :mod:`repro.telemetry.inspect` — the ``liferaft inspect`` summary;
* :mod:`repro.telemetry.report` — the ``liferaft report`` renderer and
  the ``liferaft inspect --diff`` snapshot comparison.

The design contract is **zero perturbation**: instrumentation never
feeds scheduling decisions or the result digest, so a run's
``result_digest`` is identical with telemetry enabled or disabled (the
telemetry parity suite pins that down).
"""

from repro.telemetry.inspect import domain_counts, load_snapshot, summary_rows
from repro.telemetry.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    REAL_DOMAIN,
    SNAPSHOT_VERSION,
    Series,
    VIRTUAL_DOMAIN,
    empty_snapshot,
    filter_domain,
    merge_snapshots,
    metric_key,
    metric_value,
    snapshot_from_json,
    snapshot_to_json,
    sum_metric,
)
from repro.telemetry.report import diff_snapshots, render_diff, render_report
from repro.telemetry.spans import build_chrome_trace, validate_chrome_trace, write_chrome_trace

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REAL_DOMAIN",
    "SNAPSHOT_VERSION",
    "Series",
    "VIRTUAL_DOMAIN",
    "build_chrome_trace",
    "diff_snapshots",
    "domain_counts",
    "empty_snapshot",
    "filter_domain",
    "load_snapshot",
    "merge_snapshots",
    "metric_key",
    "metric_value",
    "render_diff",
    "render_report",
    "snapshot_from_json",
    "snapshot_to_json",
    "sum_metric",
    "summary_rows",
    "validate_chrome_trace",
    "write_chrome_trace",
]
