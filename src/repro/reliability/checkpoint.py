"""The ``.lrcp`` checkpoint codec (LifeRaft CheckPoint).

LifeRaft's data-driven batching makes fault tolerance unusually cheap:
each shard worker is a *pure function of its admitted arrival schedule*
(the property the cross-backend parity tests pin down), so a checkpoint
never has to capture in-flight computation — only the queue-shaped state
at a window barrier.  A :class:`ShardCheckpoint` therefore carries:

* the shard's virtual clock and emitted-batch cursor (``seq``),
* the workload manager — bucket queues plus per-query bookkeeping,
* the not-yet-ingested staged arrivals,
* the scheduling policy instance (decision counters, adaptive state),
* the tier-1 cache image as a residency list (bucket indices in LRU
  order; the images themselves are re-materialised from the immutable
  store on restore) and the cache's lifetime counters,
* the accounting every report aggregates (busy/I/O/match totals,
  strategy counts, store read counters).

Restoring that state into a freshly built worker and replaying the
schedule tail reproduces the uninterrupted run bit for bit.

Every batch-record-derived artifact inherits crash parity from this
seam: the coordinator's accepted-``seq`` cursor keeps pre-crash records
exactly-once, the restored ``seq`` cursor makes the replayed tail
re-emit the lost ones bit-for-bit (cache residency included, so each
record's I/O split matches), and therefore downstream consumers — the
result streams, the span timeline and the per-query cost ledger
(:mod:`repro.telemetry.ledger`) — are identical between a crash-injected
recovery run and its uninterrupted twin.

The file envelope reuses the struct-pack + digest idioms of
:mod:`repro.storage.format`: a fixed header (magic ``LRCP``, version,
worker id, window index, clock) carrying the **store generation** the
state was captured over, a CRC over the header, and a CRC over the
pickled payload.  Corruption, truncation, version skew and generation
mismatch (the store was re-ingested under the checkpoint) all surface as
a clean :class:`CheckpointError` instead of a half-restored shard.
Writes go through a temp file + ``os.replace`` so a crash during
checkpointing can never leave a latest-checkpoint that readers trust.
"""

from __future__ import annotations

import io
import os
import pickle
import struct
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.parallel.worker import ShardWorker, StagedShare

try:  # zlib is optional in exotic builds; binascii.crc32 is the fallback.
    from zlib import crc32
except ImportError:  # pragma: no cover - zlib ships with CPython
    from binascii import crc32

#: File magic: LifeRaft CheckPoint.
MAGIC = b"LRCP"
#: Current checkpoint format version.  Readers reject any other cleanly.
CHECKPOINT_VERSION = 1
#: Default file extension for checkpoint files.
CHECKPOINT_SUFFIX = ".lrcp"
#: ``worker_id`` of a run-level (coordinator) checkpoint.
RUN_CHECKPOINT_WORKER = -1

# magic, version, flags, worker_id, window_index, clock_ms, generation,
# payload_length, header_crc
_HEADER = struct.Struct("<4sHHiId16sQI")
_CRC = struct.Struct("<I")


class CheckpointError(RuntimeError):
    """Raised when a checkpoint file is malformed, corrupt or mismatched."""


@dataclass
class ShardCheckpoint:
    """Everything one shard needs to resume from a window barrier."""

    worker_id: int
    window_index: int
    clock_ms: float
    #: Batch records emitted before the barrier; replay resumes numbering
    #: here and the coordinator discards any record at or past it.
    seq: int
    steals: int
    staged: Tuple[StagedShare, ...]
    #: The workload manager, pickled wholesale (queues + query states).
    manager: object
    #: The scheduling policy instance (per-shard counters travel with it).
    policy: object
    #: Tier-1 cache residency, least to most recently used.
    cache_residency: Tuple[int, ...]
    cache_statistics: Dict[str, float]
    scan_services: int
    index_services: int
    busy_ms: float
    services: int
    last_completion_ms: float
    strategy_counts: Dict[str, int]
    total_io_ms: float
    total_match_ms: float
    total_matches: int
    store_reads: int
    store_megabytes: float
    #: The lane's metrics-registry snapshot (engine/cache counters).
    #: ``None`` in checkpoints written before telemetry existed; restore
    #: treats that as an empty registry.
    telemetry: Optional[dict] = None


@dataclass
class RunCheckpoint:
    """The coordinator's durable state at a global window barrier.

    The per-shard files capture everything each worker needs; this
    companion captures what only the coordinator knows — the cross-shard
    completion tracker and the per-worker emitted-record cursor (which is
    also the result streams' exactly-once chunk cursor, since chunks are
    derived from accepted batch records).
    """

    window_index: int
    #: The cross-shard :class:`~repro.parallel.engine.CompletionTracker`.
    tracker: object
    #: Per-worker count of batch records accepted so far.
    accepted_seq: Dict[int, int]


@dataclass(frozen=True)
class CheckpointInfo:
    """Summary of one written checkpoint file."""

    path: str
    worker_id: int
    window_index: int
    clock_ms: float
    seq: int
    byte_size: int
    generation: str


def _crc(payload: bytes) -> int:
    return crc32(payload) & 0xFFFFFFFF


def _encode_generation(generation: str) -> bytes:
    encoded = generation.encode("ascii")
    if len(encoded) != 16:
        raise ValueError(
            f"store generations are 16 ascii characters, got {generation!r}"
        )
    return encoded


def write_checkpoint(
    path: str | os.PathLike,
    worker_id: int,
    window_index: int,
    clock_ms: float,
    generation: str,
    payload_obj: object,
    seq: int = 0,
) -> CheckpointInfo:
    """Serialise *payload_obj* into an ``.lrcp`` file at *path*.

    The write is atomic (temp file + rename): readers either see the
    previous checkpoint or the complete new one, never a torn file.
    """
    path = os.fspath(path)
    payload = pickle.dumps(payload_obj, protocol=pickle.HIGHEST_PROTOCOL)
    buffer = io.BytesIO()
    header = _HEADER.pack(
        MAGIC,
        CHECKPOINT_VERSION,
        0,
        worker_id,
        window_index,
        clock_ms,
        _encode_generation(generation),
        len(payload),
        0,
    )[: -_CRC.size]
    buffer.write(header)
    buffer.write(_CRC.pack(_crc(header)))
    buffer.write(payload)
    buffer.write(_CRC.pack(_crc(payload)))
    data = buffer.getvalue()
    temp_path = f"{path}.tmp"
    with open(temp_path, "wb") as handle:
        handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(temp_path, path)
    return CheckpointInfo(
        path=path,
        worker_id=worker_id,
        window_index=window_index,
        clock_ms=clock_ms,
        seq=seq,
        byte_size=len(data),
        generation=generation,
    )


def read_checkpoint(
    path: str | os.PathLike, expected_generation: Optional[str] = None
) -> Tuple[object, CheckpointInfo]:
    """Read and validate an ``.lrcp`` file, returning ``(payload, info)``."""
    path = os.fspath(path)
    try:
        with open(path, "rb") as handle:
            data = handle.read()
    except OSError as error:
        raise CheckpointError(f"cannot open checkpoint {path!r}: {error}") from error
    if len(data) < _HEADER.size + _CRC.size:
        raise CheckpointError(f"checkpoint {path!r} is truncated (no header)")
    header = data[: _HEADER.size]
    (
        magic,
        version,
        _flags,
        worker_id,
        window_index,
        clock_ms,
        generation_bytes,
        payload_length,
        header_crc,
    ) = _HEADER.unpack(header)
    if magic != MAGIC:
        raise CheckpointError(
            f"{path!r} is not a LifeRaft checkpoint (bad magic {magic!r})"
        )
    if version != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"unsupported checkpoint version {version} "
            f"(reader supports {CHECKPOINT_VERSION})"
        )
    if _crc(header[: -_CRC.size]) != header_crc:
        raise CheckpointError(f"header checksum mismatch in {path!r}")
    generation = generation_bytes.decode("ascii")
    if expected_generation is not None and generation != expected_generation:
        raise CheckpointError(
            f"checkpoint {path!r} was captured over store generation "
            f"{generation}, but the current store is {expected_generation} "
            "(re-ingested since the checkpoint?)"
        )
    body = data[_HEADER.size :]
    if len(body) != payload_length + _CRC.size:
        raise CheckpointError(
            f"checkpoint {path!r} payload is truncated: expected "
            f"{payload_length} bytes, file holds {len(body) - _CRC.size}"
        )
    payload, crc_bytes = body[:payload_length], body[payload_length:]
    (payload_crc,) = _CRC.unpack(crc_bytes)
    if _crc(payload) != payload_crc:
        raise CheckpointError(f"payload checksum mismatch in {path!r}")
    try:
        payload_obj = pickle.loads(payload)
    except Exception as error:  # pickle raises many concrete types
        raise CheckpointError(
            f"checkpoint {path!r} payload does not deserialise: {error}"
        ) from error
    seq = getattr(payload_obj, "seq", 0)
    info = CheckpointInfo(
        path=path,
        worker_id=worker_id,
        window_index=window_index,
        clock_ms=clock_ms,
        seq=seq,
        byte_size=len(data),
        generation=generation,
    )
    return payload_obj, info


# --------------------------------------------------------------------- #
# shard state capture / restore
# --------------------------------------------------------------------- #


def capture_shard(worker: ShardWorker, seq: int, window_index: int) -> ShardCheckpoint:
    """Capture one shard worker's resumable state at a window barrier.

    The returned object aliases live state (the manager, the policy);
    callers serialise it immediately — every call site writes the
    checkpoint file before the worker runs again.
    """
    loop = worker.loop
    store = loop.cache.store
    return ShardCheckpoint(
        worker_id=worker.worker_id,
        window_index=window_index,
        clock_ms=worker.now_ms,
        seq=seq,
        steals=worker.steals,
        staged=worker.staged_shares(),
        manager=loop.manager,
        policy=loop.scheduler,
        cache_residency=loop.cache.resident_buckets(),
        cache_statistics=loop.cache.statistics(),
        scan_services=loop.evaluator.scan_services,
        index_services=loop.evaluator.index_services,
        busy_ms=loop.busy_ms,
        services=loop.services,
        last_completion_ms=loop.last_completion_ms,
        strategy_counts=dict(loop.strategy_counts),
        total_io_ms=loop.total_io_ms,
        total_match_ms=loop.total_match_ms,
        total_matches=loop.total_matches,
        store_reads=store.reads,
        store_megabytes=store.bytes_read_mb,
        telemetry=loop.telemetry.snapshot(),
    )


def restore_shard(worker: ShardWorker, state: ShardCheckpoint) -> None:
    """Overlay a checkpointed state onto a freshly built shard worker.

    The worker must have been constructed from the same task (same store
    snapshot, same config) that produced the checkpoint; after this call
    its timeline resumes at the barrier exactly as the uninterrupted run
    would have continued.  The batch *history* is not restored — only its
    aggregates — so recovered workers stay lean; the coordinator already
    holds every accepted record.
    """
    if state.worker_id != worker.worker_id:
        raise CheckpointError(
            f"checkpoint belongs to worker {state.worker_id}, "
            f"cannot restore into worker {worker.worker_id}"
        )
    loop = worker.loop
    loop.manager = state.manager
    loop.scheduler = state.policy
    loop.batches = []
    loop.services = state.services
    loop.busy_ms = state.busy_ms
    loop.last_completion_ms = state.last_completion_ms
    loop.strategy_counts = dict(state.strategy_counts)
    loop.total_io_ms = state.total_io_ms
    loop.total_match_ms = state.total_match_ms
    loop.total_matches = state.total_matches
    loop.evaluator.scan_services = state.scan_services
    loop.evaluator.index_services = state.index_services
    loop.cache.restore(state.cache_residency, state.cache_statistics)
    store = loop.cache.store
    store.reads = state.store_reads
    store.bytes_read_mb = state.store_megabytes
    # In-place restore: the loop's (and cache's) pre-resolved metric
    # handles keep pointing at the live objects, so replayed services
    # continue counting from the barrier's totals.
    loop.telemetry.restore(getattr(state, "telemetry", None))
    worker.now_ms = state.clock_ms
    worker.steals = state.steals
    worker.restore_staged(state.staged)


def checkpoint_worker(
    path: str | os.PathLike,
    worker: ShardWorker,
    seq: int,
    window_index: int,
) -> CheckpointInfo:
    """Capture *worker*'s state and write it as one ``.lrcp`` file."""
    state = capture_shard(worker, seq, window_index)
    generation = worker.loop.cache.store.generation
    return write_checkpoint(
        path,
        worker_id=worker.worker_id,
        window_index=window_index,
        clock_ms=worker.now_ms,
        generation=generation,
        payload_obj=state,
        seq=seq,
    )


def restore_worker(
    path: str | os.PathLike,
    worker: ShardWorker,
    expected_generation: Optional[str] = None,
) -> ShardCheckpoint:
    """Read an ``.lrcp`` file and restore *worker* from it."""
    state, _info = read_checkpoint(path, expected_generation=expected_generation)
    if not isinstance(state, ShardCheckpoint):
        raise CheckpointError(
            f"{os.fspath(path)!r} holds a {type(state).__name__}, "
            "not a shard checkpoint"
        )
    restore_shard(worker, state)
    return state


__all__ = [
    "CHECKPOINT_SUFFIX",
    "CHECKPOINT_VERSION",
    "MAGIC",
    "RUN_CHECKPOINT_WORKER",
    "CheckpointError",
    "CheckpointInfo",
    "RunCheckpoint",
    "ShardCheckpoint",
    "capture_shard",
    "checkpoint_worker",
    "read_checkpoint",
    "restore_shard",
    "restore_worker",
    "write_checkpoint",
]
