"""Fault tolerance: checkpoint/recovery under the parallel backends.

LifeRaft's batching makes shards pure functions of their admitted
schedules, so fault tolerance reduces to checkpointing queue-shaped state
at window barriers and replaying schedule tails.  This package provides:

* :mod:`repro.reliability.checkpoint` — the versioned, CRC-checked,
  store-generation-bound ``.lrcp`` codec plus shard state capture/restore;
* :mod:`repro.reliability.policy` — pluggable checkpoint cadences
  (every-K-windows, virtual-time interval);
* :mod:`repro.reliability.faults` — deterministic, seedable crash plans;
* :mod:`repro.reliability.elastic` — planned scale-down/scale-up events
  executed at window barriers (elasticity as generalised recovery);
* :mod:`repro.reliability.runtime` — the recovery coordinator that kills,
  detects, respawns and re-settles shards on both execution backends;
* :mod:`repro.reliability.config` — :class:`ReliabilityConfig`, the knob
  :class:`~repro.sim.runspec.RunSpec.reliability` and the CLI expose, and the
  :class:`ReliabilityReport` every reliable run returns.
"""

from repro.reliability.checkpoint import (
    CHECKPOINT_SUFFIX,
    CheckpointError,
    CheckpointInfo,
    RunCheckpoint,
    ShardCheckpoint,
    capture_shard,
    checkpoint_worker,
    read_checkpoint,
    restore_shard,
    restore_worker,
    write_checkpoint,
)
from repro.reliability.config import RecoveryEvent, ReliabilityConfig, ReliabilityReport
from repro.reliability.elastic import ScaleDown, ScalePlan, ScaleRecord, ScaleUp
from repro.reliability.faults import CrashPoint, FaultPlan
from repro.reliability.policy import (
    CheckpointPolicy,
    EveryKWindows,
    VirtualInterval,
    parse_cadence,
)

__all__ = [
    "CHECKPOINT_SUFFIX",
    "CheckpointError",
    "CheckpointInfo",
    "CheckpointPolicy",
    "CrashPoint",
    "EveryKWindows",
    "FaultPlan",
    "RecoveryEvent",
    "ReliabilityConfig",
    "ReliabilityReport",
    "RunCheckpoint",
    "ScaleDown",
    "ScalePlan",
    "ScaleRecord",
    "ScaleUp",
    "ShardCheckpoint",
    "VirtualInterval",
    "capture_shard",
    "checkpoint_worker",
    "parse_cadence",
    "read_checkpoint",
    "restore_shard",
    "restore_worker",
    "write_checkpoint",
]
