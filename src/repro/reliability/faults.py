"""Deterministic crash injection.

A fault plan is a *fixed, seed-derivable set* of crash points — "kill
shard ``w`` at window ``n``" — so a crash-injected run is exactly
reproducible: the same plan against the same trace produces the same
kills, the same recoveries and (the invariant the reliability tests pin)
the same virtual-clock outcome as an uninterrupted run.

On the process backend a due crash point really kills the worker's OS
process (``SIGKILL``, no goodbye message); on the virtual backend the
in-process shard is discarded, simulating the same total state loss.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import FrozenSet, Iterable, List, Tuple, Union


@dataclass(frozen=True, order=True)
class CrashPoint:
    """One scheduled kill: shard *worker_id* dies during window *window_index*."""

    worker_id: int
    window_index: int

    def __post_init__(self) -> None:
        if self.worker_id < 0:
            raise ValueError("crash points target worker ids >= 0")
        if self.window_index < 0:
            raise ValueError("crash points target window indices >= 0")

    @property
    def spec(self) -> str:
        """The ``W@N`` form the CLI accepts."""
        return f"{self.worker_id}@{self.window_index}"


class FaultPlan:
    """An immutable set of crash points consulted at every window barrier."""

    def __init__(self, crashes: Iterable[CrashPoint] = ()) -> None:
        self._crashes: FrozenSet[CrashPoint] = frozenset(crashes)

    @property
    def crashes(self) -> Tuple[CrashPoint, ...]:
        """Every scheduled crash, ordered by (window, worker)."""
        return tuple(
            sorted(self._crashes, key=lambda c: (c.window_index, c.worker_id))
        )

    def crash_due(self, worker_id: int, window_index: int) -> bool:
        """``True`` when the plan kills *worker_id* during *window_index*."""
        return CrashPoint(worker_id, window_index) in self._crashes

    def __len__(self) -> int:
        return len(self._crashes)

    def __bool__(self) -> bool:
        return bool(self._crashes)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FaultPlan):
            return NotImplemented
        return self._crashes == other._crashes

    def __hash__(self) -> int:
        return hash(self._crashes)

    def __repr__(self) -> str:
        return f"FaultPlan({', '.join(c.spec for c in self.crashes) or 'none'})"

    # -- constructors ----------------------------------------------------- #

    @classmethod
    def parse(cls, specs: Union[str, Iterable[str]]) -> "FaultPlan":
        """Build a plan from ``W@N`` specs (one string may hold a comma list)."""
        if isinstance(specs, str):
            specs = [specs]
        points: List[CrashPoint] = []
        for chunk in specs:
            for spec in chunk.split(","):
                spec = spec.strip()
                if not spec:
                    continue
                worker_text, sep, window_text = spec.partition("@")
                if not sep:
                    raise ValueError(
                        f"crash spec {spec!r} must look like WORKER@WINDOW (e.g. '1@3')"
                    )
                try:
                    points.append(CrashPoint(int(worker_text), int(window_text)))
                except ValueError as error:
                    raise ValueError(f"invalid crash spec {spec!r}: {error}") from error
        return cls(points)

    @classmethod
    def seeded(
        cls,
        seed: int,
        workers: int,
        crashes: int = 1,
        max_window: int = 8,
    ) -> "FaultPlan":
        """A deterministic pseudo-random plan: *crashes* kills spread over
        the first *max_window* windows of a *workers*-shard run.

        Derivation is pure (SHA-256 over the seed and the crash ordinal),
        so the same arguments always produce the same plan on every
        platform — no RNG state leaks into the run.
        """
        if workers <= 0:
            raise ValueError("workers must be positive")
        if crashes < 0:
            raise ValueError("crashes must be non-negative")
        if max_window <= 0:
            raise ValueError("max_window must be positive")
        points = set()
        ordinal = 0
        while len(points) < crashes:
            digest = hashlib.sha256(
                f"liferaft-fault:{seed}:{ordinal}".encode("ascii")
            ).digest()
            worker_id = digest[0] % workers
            window_index = int.from_bytes(digest[1:3], "little") % max_window
            points.add(CrashPoint(worker_id, window_index))
            ordinal += 1
            if ordinal > crashes * 64:  # plan denser than the window space
                break
        return cls(points)


__all__ = ["CrashPoint", "FaultPlan"]
