"""Planned elasticity: scale-down/scale-up events at window barriers.

PR 5's recovery machinery already knows how to tear a shard's state out
of a run and rebuild it elsewhere; this module generalises "crash" to
*planned* membership changes.  A :class:`ScalePlan` is a fixed set of

* :class:`ScaleDown` events — "shard ``w`` leaves at window ``n``": the
  departing worker evacuates every queue through the stealing seam
  (``ReleaseAllBuckets`` → ``AdoptBucket``), its accounting is finalised,
  and its process shuts down cleanly;
* :class:`ScaleUp` events — "one worker joins at window ``n``": a cold
  shard with an empty arrival schedule spawns mid-run and acquires work
  through the ordinary steal rounds.

Like crash plans, scale plans are pure data consulted at every barrier,
so an elastic run is exactly reproducible.  The contract the elasticity
tests pin: an elastic run's *completion set* (which queries finished, and
every workload-conservation total) equals the static run's — per-query
finish times legitimately shift as the worker pool changes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, List, Tuple, Union

__all__ = ["ScaleDown", "ScalePlan", "ScaleRecord", "ScaleUp"]


@dataclass(frozen=True, order=True)
class ScaleDown:
    """One planned departure: shard *worker_id* leaves at window *window_index*."""

    worker_id: int
    window_index: int

    def __post_init__(self) -> None:
        if self.worker_id < 0:
            raise ValueError("scale-down events target worker ids >= 0")
        if self.window_index < 0:
            raise ValueError("scale-down events target window indices >= 0")

    @property
    def spec(self) -> str:
        """The ``W@N`` form the CLI accepts."""
        return f"{self.worker_id}@{self.window_index}"


@dataclass(frozen=True, order=True)
class ScaleUp:
    """One planned join: a new shard spawns at window *window_index*."""

    window_index: int

    def __post_init__(self) -> None:
        if self.window_index < 0:
            raise ValueError("scale-up events target window indices >= 0")

    @property
    def spec(self) -> str:
        """The window-index form the CLI accepts."""
        return str(self.window_index)


class ScalePlan:
    """An immutable set of scale events consulted at every window barrier.

    At one barrier, joins are applied before departures — a worker
    arriving and another leaving at the same window always leaves the
    pool non-empty, and the newcomer is immediately eligible to adopt
    the leaver's queues.
    """

    def __init__(
        self, downs: Iterable[ScaleDown] = (), ups: Iterable[ScaleUp] = ()
    ) -> None:
        self._downs: FrozenSet[ScaleDown] = frozenset(downs)
        self._ups: Tuple[ScaleUp, ...] = tuple(sorted(ups))

    @property
    def downs(self) -> Tuple[ScaleDown, ...]:
        """Every departure, ordered by (window, worker)."""
        return tuple(sorted(self._downs, key=lambda d: (d.window_index, d.worker_id)))

    @property
    def ups(self) -> Tuple[ScaleUp, ...]:
        """Every join, ordered by window."""
        return self._ups

    def downs_due(self, window_index: int) -> List[int]:
        """Worker ids departing at *window_index*, ascending."""
        return sorted(
            event.worker_id
            for event in self._downs
            if event.window_index == window_index
        )

    def ups_due(self, window_index: int) -> int:
        """How many workers join at *window_index*."""
        return sum(1 for event in self._ups if event.window_index == window_index)

    def total_ups(self) -> int:
        """Total joins over the whole plan."""
        return len(self._ups)

    def validate(self, initial_workers: int) -> None:
        """Check the plan is executable from a pool of *initial_workers*.

        Simulates the active set window by window (joins first, then
        departures, exactly as the coordinator applies them): every
        departure must target a live worker, and the pool must never
        empty.  Joins take sequential ids ``initial_workers,
        initial_workers + 1, …`` in window order.
        """
        if initial_workers < 1:
            raise ValueError("initial_workers must be positive")
        if not self._downs and not self._ups:
            return
        active = set(range(initial_workers))
        next_id = initial_workers
        windows = sorted(
            {event.window_index for event in self._downs}
            | {event.window_index for event in self._ups}
        )
        for window in windows:
            for _ in range(self.ups_due(window)):
                active.add(next_id)
                next_id += 1
            for worker_id in self.downs_due(window):
                if worker_id not in active:
                    raise ValueError(
                        f"scale-down {worker_id}@{window} targets a worker that "
                        "is not active at that window (already departed, or "
                        "never existed)"
                    )
                active.remove(worker_id)
            if not active:
                raise ValueError(
                    f"scale plan empties the worker pool at window {window}"
                )

    def __len__(self) -> int:
        return len(self._downs) + len(self._ups)

    def __bool__(self) -> bool:
        return bool(self._downs or self._ups)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ScalePlan):
            return NotImplemented
        return self._downs == other._downs and self._ups == other._ups

    def __hash__(self) -> int:
        return hash((self._downs, self._ups))

    def __repr__(self) -> str:
        downs = ",".join(d.spec for d in self.downs) or "none"
        ups = ",".join(u.spec for u in self.ups) or "none"
        return f"ScalePlan(downs={downs}, ups={ups})"

    # -- constructors ----------------------------------------------------- #

    @classmethod
    def parse(
        cls,
        down_specs: Union[str, Iterable[str]] = (),
        up_specs: Union[str, Iterable[str]] = (),
    ) -> "ScalePlan":
        """Build a plan from CLI specs.

        *down_specs* are ``WORKER@WINDOW`` entries (one string may hold a
        comma list); *up_specs* are bare window indices.
        """
        if isinstance(down_specs, str):
            down_specs = [down_specs]
        if isinstance(up_specs, str):
            up_specs = [up_specs]
        downs: List[ScaleDown] = []
        for chunk in down_specs:
            for spec in chunk.split(","):
                spec = spec.strip()
                if not spec:
                    continue
                worker_text, sep, window_text = spec.partition("@")
                if not sep:
                    raise ValueError(
                        f"scale-down spec {spec!r} must look like WORKER@WINDOW "
                        "(e.g. '1@3')"
                    )
                try:
                    downs.append(ScaleDown(int(worker_text), int(window_text)))
                except ValueError as error:
                    raise ValueError(
                        f"invalid scale-down spec {spec!r}: {error}"
                    ) from error
        ups: List[ScaleUp] = []
        for chunk in up_specs:
            for spec in chunk.split(","):
                spec = spec.strip()
                if not spec:
                    continue
                try:
                    ups.append(ScaleUp(int(spec)))
                except ValueError as error:
                    raise ValueError(
                        f"invalid scale-up spec {spec!r}: {error}"
                    ) from error
        return cls(downs, ups)


@dataclass
class ScaleRecord:
    """One executed scale event, for reports and the elasticity experiment."""

    #: ``"down"`` or ``"up"``.
    kind: str
    worker_id: int
    window_index: int
    #: Departures only: queues migrated off the leaving shard.
    buckets_migrated: int = 0
    #: Departures only: queued entries carried by those queues.
    entries_migrated: int = 0
