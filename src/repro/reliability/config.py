"""Configuration and reporting of the checkpoint/recovery subsystem."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.reliability.elastic import ScalePlan, ScaleRecord
from repro.reliability.faults import FaultPlan
from repro.reliability.policy import CheckpointPolicy, parse_cadence


@dataclass(frozen=True)
class ReliabilityConfig:
    """Turns checkpoint/recovery on for one parallel run.

    Attributes
    ----------
    checkpoint_dir:
        Directory the ``.lrcp`` files are written to.  ``None`` uses a
        private temporary directory that is removed when the run ends
        (checkpoints are then pure crash insurance, not artifacts).
    cadence:
        Checkpoint cadence spec — ``"windows:K"`` or ``"interval:MS"``
        (see :func:`repro.reliability.policy.parse_cadence`).  Each shard
        gets its own policy instance built from this spec.
    faults:
        Deterministic crash plan; ``None`` injects nothing (checkpoints
        are still written — the steady-state overhead the recovery
        benchmark measures).
    scale:
        Planned elasticity: :class:`~repro.reliability.elastic.ScalePlan`
        scale-down/scale-up events executed at window barriers; ``None``
        keeps the worker pool static.
    max_recoveries_per_worker:
        Hard cap on recoveries of one shard before the run is declared
        lost (guards against a crash loop in a broken environment).
    """

    checkpoint_dir: Optional[str] = None
    cadence: str = "windows:1"
    faults: Optional[FaultPlan] = None
    scale: Optional[ScalePlan] = None
    max_recoveries_per_worker: int = 8
    #: Virtual-time window between barriers of a reliable run.  ``None``
    #: inherits the run's steal quantum (64 bucket reads by default); a
    #: smaller window bounds lost work more tightly at the price of more
    #: coordination round trips — the same trade-off as the cadence, one
    #: level down.
    window_quantum_ms: Optional[float] = None

    def __post_init__(self) -> None:
        parse_cadence(self.cadence)  # fail fast on a bad spec
        if self.max_recoveries_per_worker <= 0:
            raise ValueError("max_recoveries_per_worker must be positive")
        if self.window_quantum_ms is not None and self.window_quantum_ms <= 0:
            raise ValueError("window_quantum_ms must be positive")

    def build_policy(self) -> CheckpointPolicy:
        """A fresh per-shard cadence policy instance."""
        return parse_cadence(self.cadence)

    def fault_plan(self) -> FaultPlan:
        """The crash plan (empty when no faults are configured)."""
        return self.faults if self.faults is not None else FaultPlan()

    def scale_plan(self) -> ScalePlan:
        """The elasticity plan (empty when the pool is static)."""
        return self.scale if self.scale is not None else ScalePlan()


@dataclass
class RecoveryEvent:
    """One completed recovery, for reports and the recovery experiment."""

    worker_id: int
    window_index: int
    #: Window the restored checkpoint was captured at (-1: cold restart).
    checkpoint_window: int
    #: Batch records discarded and re-executed (the lost work).
    services_replayed: int
    #: Real seconds from crash detection to the shard being runnable again.
    real_latency_s: float


@dataclass
class ReliabilityReport:
    """What the checkpoint/recovery machinery did during one run."""

    checkpoint_dir: str
    cadence: str
    windows: int = 0
    checkpoints_written: int = 0
    checkpoint_bytes: int = 0
    #: Real seconds spent capturing + writing checkpoint files.
    checkpoint_real_s: float = 0.0
    crashes_injected: int = 0
    recoveries: List[RecoveryEvent] = field(default_factory=list)
    #: Executed scale-down/scale-up events, in barrier order.
    scale_events: List[ScaleRecord] = field(default_factory=list)
    #: Every per-shard checkpoint written, in capture order
    #: (:class:`~repro.parallel.ipc.CheckpointWritten` records) — the
    #: trace exporter renders these as timeline instants.
    checkpoint_marks: List[object] = field(default_factory=list)

    @property
    def recovery_count(self) -> int:
        """Number of completed recoveries."""
        return len(self.recoveries)

    @property
    def services_replayed(self) -> int:
        """Total bucket services re-executed across all recoveries."""
        return sum(event.services_replayed for event in self.recoveries)

    @property
    def recovery_real_s(self) -> float:
        """Total real seconds spent detecting crashes and restoring shards."""
        return sum(event.real_latency_s for event in self.recoveries)

    @property
    def scale_downs(self) -> int:
        """Number of executed planned departures."""
        return sum(1 for event in self.scale_events if event.kind == "down")

    @property
    def scale_ups(self) -> int:
        """Number of executed planned joins."""
        return sum(1 for event in self.scale_events if event.kind == "up")

    def describe(self) -> Dict[str, float]:
        """Flat summary for tables and the CLI."""
        return {
            "windows": float(self.windows),
            "checkpoints": float(self.checkpoints_written),
            "checkpoint_kb": self.checkpoint_bytes / 1024.0,
            "checkpoint_real_s": self.checkpoint_real_s,
            "crashes": float(self.crashes_injected),
            "recoveries": float(self.recovery_count),
            "services_replayed": float(self.services_replayed),
            "recovery_real_s": self.recovery_real_s,
            "scale_downs": float(self.scale_downs),
            "scale_ups": float(self.scale_ups),
        }


__all__ = ["RecoveryEvent", "ReliabilityConfig", "ReliabilityReport"]
