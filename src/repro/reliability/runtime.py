"""The recovery coordinator: windowed execution with checkpoints and crashes.

This module is the runtime half of the reliability subsystem.  When a
:class:`~repro.reliability.config.ReliabilityConfig` is attached to a
parallel run, both execution backends route here instead of their normal
drive loops, and the run proceeds in bounded virtual-time windows even
with stealing disabled — **window barriers are where checkpoints are
captured and where crashes are injected and detected**.

The coordinator drives :class:`ShardChannel` abstractions so one recovery
implementation serves both backends:

* :class:`ProcessChannel` — one OS process per shard over a pipe (the
  process backend).  A due crash point really ``SIGKILL``\\ s the child;
  detection is the broken pipe at the next message exchange.
* :class:`InlineChannel` — the shard's :class:`~repro.parallel.ipc.
  ShardReplayer` driven in-process (the virtual backend).  A crash
  discards the live worker object, simulating the same total state loss
  deterministically.

Recovery is the same either way: rebuild the shard from its
:class:`~repro.parallel.ipc.ShardTask` **plus its latest checkpoint**,
discard the batch records the replay will re-emit (the coordinator's
per-shard cursor rewinds to the checkpoint's ``seq``), re-settle bucket
ownership for any post-checkpoint steals through the existing
``ReleaseBucket``/``AdoptBucket`` machinery, and let the window loop
re-run the schedule tail.  Because every shard is a pure function of its
admitted schedule, the recovered run's virtual-clock outcome — completion
sets, per-query chunk sequences, every parity field — is identical to an
uninterrupted run (``tests/reliability/`` pins this across backends and
worker counts with stealing off).
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import os
import shutil
import tempfile
import time
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.parallel.backend import (
    REPLY_TIMEOUT_S,
    BackendOutcome,
    ParallelRunSpec,
    ShardView,
    fan_out_arrivals,
    merge_backend_outcome,
    run_steal_round,
)
from repro.parallel.engine import CompletionTracker, StealRecord
from repro.parallel.ipc import (
    AdoptBucket,
    BatchRecord,
    BucketQueueMeta,
    CaptureCheckpoint,
    CheckpointWritten,
    Finalize,
    ReleaseAllBuckets,
    ReleaseBucket,
    ReleasedAll,
    ReleasedBucket,
    RunWindow,
    ShardReplayer,
    ShardTask,
    Shutdown,
    WindowReport,
    WorkerFailure,
    WorkerResult,
    prepare_task_worker,
    shard_worker_main,
    worker_result,
)
from repro.reliability.checkpoint import (
    CHECKPOINT_SUFFIX,
    RUN_CHECKPOINT_WORKER,
    RunCheckpoint,
    checkpoint_worker,
    write_checkpoint,
)
from repro.reliability.config import RecoveryEvent, ReliabilityReport
from repro.reliability.elastic import ScaleRecord
from repro.sim.events import WorkerEventLog

#: Poll granularity while waiting on a child reply (liveness checks run
#: between polls so a SIGKILLed child is detected promptly).  The wedge
#: threshold itself is the process backend's ``REPLY_TIMEOUT_S``.
POLL_INTERVAL_S = 0.05


class ChannelCrashed(RuntimeError):
    """A shard died (real kill or simulated) before/while replying."""

    def __init__(self, worker_id: int) -> None:
        super().__init__(f"shard worker {worker_id} crashed")
        self.worker_id = worker_id


class ShardChannel(ABC):
    """One shard as the recovery coordinator sees it."""

    def __init__(self, task: ShardTask) -> None:
        self.task = task
        self.worker_id = task.worker_id
        self._pending_window: Optional[Tuple[Optional[float]]] = None
        self._pending_checkpoint: Optional[Tuple[str, int]] = None

    @abstractmethod
    def advance(self, until_ms: Optional[float]) -> WindowReport:
        """Run one window; raises :class:`ChannelCrashed` on a dead shard."""

    # The begin/collect split lets the coordinator broadcast a window (or
    # a checkpoint round) to every shard before collecting any reply, so
    # real per-window work runs concurrently across worker processes.
    # The base implementations are synchronous (the inline channel has no
    # concurrency to exploit); the process channel overrides them to
    # really pipeline over its pipe.

    def begin_window(self, until_ms: Optional[float]) -> None:
        """Stage one window; the work happens at :meth:`collect_window`."""
        self._pending_window = (until_ms,)

    def collect_window(self) -> WindowReport:
        """Finish the staged window (raises :class:`ChannelCrashed`)."""
        assert self._pending_window is not None, "collect_window without begin"
        (until_ms,) = self._pending_window
        self._pending_window = None
        return self.advance(until_ms)

    def begin_checkpoint(self, path: str, window_index: int) -> None:
        """Stage one checkpoint capture for :meth:`collect_checkpoint`."""
        self._pending_checkpoint = (path, window_index)

    def collect_checkpoint(self) -> CheckpointWritten:
        """Finish the staged checkpoint capture."""
        assert self._pending_checkpoint is not None, "collect without begin"
        path, window_index = self._pending_checkpoint
        self._pending_checkpoint = None
        return self.checkpoint(path, window_index)

    @abstractmethod
    def release(self, bucket_index: int) -> ReleasedBucket:
        """Extract one whole workload queue (steal source / re-settlement)."""

    @abstractmethod
    def release_all(self) -> ReleasedAll:
        """Evacuate every queue, pending and staged (planned scale-down)."""

    @abstractmethod
    def adopt(self, message: AdoptBucket) -> None:
        """Deliver a migrated queue (steal target / re-settlement)."""

    @abstractmethod
    def checkpoint(self, path: str, window_index: int) -> CheckpointWritten:
        """Capture the shard's state into an ``.lrcp`` file."""

    @abstractmethod
    def finalize(self) -> WorkerResult:
        """Collect the shard's final accounting."""

    @abstractmethod
    def kill(self) -> None:
        """Inject a crash: the shard loses all state since its checkpoint."""

    @abstractmethod
    def respawn(self, checkpoint_path: Optional[str]) -> None:
        """Rebuild the shard from its task, restored from *checkpoint_path*
        (``None`` restarts it cold, replaying the whole schedule)."""

    @abstractmethod
    def shutdown(self) -> None:
        """Tear the shard down at the end of the run."""


class InlineChannel(ShardChannel):
    """The in-process shard used by the virtual backend's reliability path.

    The replay machinery is exactly the worker process's
    (:func:`~repro.parallel.ipc.prepare_task_worker` +
    :class:`~repro.parallel.ipc.ShardReplayer`), minus the fork — so a
    simulated crash/recovery exercises the identical restore code path the
    real process backend runs.
    """

    def __init__(self, task: ShardTask) -> None:
        super().__init__(task)
        self._replayer: Optional[ShardReplayer] = None
        self._boot(None)

    def _boot(self, checkpoint_path: Optional[str]) -> None:
        task = dataclasses.replace(self.task, checkpoint_path=checkpoint_path)
        worker, start_seq = prepare_task_worker(task)
        self._replayer = ShardReplayer(worker, start_seq=start_seq)

    def _live(self) -> ShardReplayer:
        if self._replayer is None:
            raise ChannelCrashed(self.worker_id)
        return self._replayer

    def advance(self, until_ms: Optional[float]) -> WindowReport:
        replayer = self._live()
        return replayer.window_report(replayer.advance(until_ms))

    def release(self, bucket_index: int) -> ReleasedBucket:
        return self._live().release(bucket_index)

    def release_all(self) -> ReleasedAll:
        return self._live().release_all()

    def adopt(self, message: AdoptBucket) -> None:
        self._live().adopt(message)

    def checkpoint(self, path: str, window_index: int) -> CheckpointWritten:
        replayer = self._live()
        started = time.perf_counter()
        info = checkpoint_worker(path, replayer.worker, replayer.seq, window_index)
        return CheckpointWritten(
            worker_id=self.worker_id,
            window_index=window_index,
            clock_ms=replayer.worker.now_ms,
            seq=replayer.seq,
            byte_size=info.byte_size,
            real_elapsed_s=time.perf_counter() - started,
        )

    def finalize(self) -> WorkerResult:
        # Inline reliability shards own a private store rebuilt from the
        # snapshot (exactly as a worker process does), so its real-domain
        # registry rides the shard's result just like the process path.
        return worker_result(self._live().worker, include_store_telemetry=True)

    def kill(self) -> None:
        self._replayer = None  # every bit of shard state is gone

    def respawn(self, checkpoint_path: Optional[str]) -> None:
        self._boot(checkpoint_path)

    def shutdown(self) -> None:
        self._replayer = None


class ProcessChannel(ShardChannel):
    """One shard worker process, killable and respawnable."""

    def __init__(self, task: ShardTask, start_method: str = "spawn") -> None:
        super().__init__(task)
        self._context = multiprocessing.get_context(start_method)
        self._process = None
        self._conn = None
        self._window_send_failed = False
        self._checkpoint_send_failed = False
        self._spawn(None)

    def _spawn(self, checkpoint_path: Optional[str]) -> None:
        task = dataclasses.replace(self.task, checkpoint_path=checkpoint_path)
        parent_conn, child_conn = self._context.Pipe()
        process = self._context.Process(
            target=shard_worker_main,
            args=(child_conn, task),
            daemon=True,
            name=f"liferaft-shard-{self.worker_id}",
        )
        process.start()
        child_conn.close()
        self._process = process
        self._conn = parent_conn

    def _send(self, message) -> None:
        if self._conn is None:
            raise ChannelCrashed(self.worker_id)
        try:
            self._conn.send(message)
        except (OSError, ValueError) as error:
            raise ChannelCrashed(self.worker_id) from error

    def _request(self, message):
        self._send(message)
        return self._receive()

    def _receive(self):
        if self._conn is None:
            raise ChannelCrashed(self.worker_id)
        deadline = time.monotonic() + REPLY_TIMEOUT_S
        while True:
            try:
                if self._conn.poll(POLL_INTERVAL_S):
                    break
            except (OSError, ValueError) as error:
                raise ChannelCrashed(self.worker_id) from error
            if self._process is not None and not self._process.is_alive():
                # Dead and the pipe has drained: nothing more is coming.
                if not self._conn.poll(0):
                    raise ChannelCrashed(self.worker_id)
            if time.monotonic() > deadline:
                raise RuntimeError(
                    f"shard worker {self.worker_id} sent no reply within "
                    f"{REPLY_TIMEOUT_S:g}s; aborting the run"
                )
        try:
            reply = self._conn.recv()
        except (EOFError, ConnectionResetError, OSError) as error:
            raise ChannelCrashed(self.worker_id) from error
        if isinstance(reply, WorkerFailure):
            raise RuntimeError(
                f"shard worker {reply.worker_id} failed:\n{reply.traceback_text}"
            )
        return reply

    def advance(self, until_ms: Optional[float]) -> WindowReport:
        return self._request(RunWindow(until_ms))

    def begin_window(self, until_ms: Optional[float]) -> None:
        # A failed send is surfaced at collect time so the coordinator's
        # broadcast loop never has to handle crashes mid-fan-out.
        self._window_send_failed = False
        try:
            self._send(RunWindow(until_ms))
        except ChannelCrashed:
            self._window_send_failed = True

    def collect_window(self) -> WindowReport:
        if self._window_send_failed:
            raise ChannelCrashed(self.worker_id)
        return self._receive()

    def begin_checkpoint(self, path: str, window_index: int) -> None:
        self._checkpoint_send_failed = False
        try:
            self._send(CaptureCheckpoint(path, window_index))
        except ChannelCrashed:
            self._checkpoint_send_failed = True

    def collect_checkpoint(self) -> CheckpointWritten:
        if self._checkpoint_send_failed:
            raise ChannelCrashed(self.worker_id)
        return self._receive()

    def release(self, bucket_index: int) -> ReleasedBucket:
        return self._request(ReleaseBucket(bucket_index))

    def release_all(self) -> ReleasedAll:
        return self._request(ReleaseAllBuckets())

    def adopt(self, message: AdoptBucket) -> None:
        self._request(message)

    def checkpoint(self, path: str, window_index: int) -> CheckpointWritten:
        return self._request(CaptureCheckpoint(path, window_index))

    def finalize(self) -> WorkerResult:
        return self._request(Finalize())

    def kill(self) -> None:
        if self._process is not None:
            self._process.kill()
            self._process.join(timeout=10.0)
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def respawn(self, checkpoint_path: Optional[str]) -> None:
        self.kill()
        self._spawn(checkpoint_path)

    def shutdown(self) -> None:
        if self._conn is not None:
            try:
                self._conn.send(Shutdown())
            except (OSError, ValueError):
                pass
        if self._process is not None:
            self._process.join(timeout=10.0)
            if self._process.is_alive():
                self._process.terminate()
                self._process.join(timeout=10.0)
            self._process = None
        if self._conn is not None:
            self._conn.close()
            self._conn = None


@dataclass
class _JournaledSteal:
    """One queue migration the coordinator witnessed (for re-settlement)."""

    window_index: int
    record: StealRecord
    released: ReleasedBucket
    adopt: AdoptBucket


@dataclass
class _LatestCheckpoint:
    """The newest durable state of one shard."""

    path: str
    window_index: int
    seq: int
    clock_ms: float


class RecoveryCoordinator:
    """Drives one reliable run: windows, checkpoints, crashes, recovery."""

    def __init__(
        self,
        spec: ParallelRunSpec,
        backend_name: str,
        start_method: str = "spawn",
    ) -> None:
        assert spec.reliability is not None
        self.spec = spec
        self.backend_name = backend_name
        self.start_method = start_method
        self.rel = spec.reliability
        self.plan = spec.resolved_plan()
        self.tracker = CompletionTracker()
        self.events = WorkerEventLog()
        self.faults = self.rel.fault_plan()
        self.scale = self.rel.scale_plan()
        self.scale.validate(spec.workers)
        if self.scale.total_ups() and not spec.enable_stealing:
            raise ValueError(
                "scale-up events need work stealing enabled: a joining "
                "worker has an empty arrival schedule and acquires work "
                "only through steal rounds"
            )
        max_worker = spec.workers + self.scale.total_ups()
        for point in self.faults.crashes:
            if point.worker_id >= max_worker:
                raise ValueError(
                    f"crash point {point.spec} targets worker {point.worker_id}, "
                    f"but the run has workers 0..{max_worker - 1} "
                    "(worker ids are 0-based; scale-ups take sequential ids)"
                )
        self.quantum_ms = (
            self.rel.window_quantum_ms
            if self.rel.window_quantum_ms is not None
            else spec.quantum_ms()
        )
        self.arrivals = fan_out_arrivals(spec, self.plan, self.tracker, self.events)
        self.generation = spec.store.generation
        self.channels: List[ShardChannel] = []
        self.views: List[ShardView] = []
        self.policies = [self.rel.build_policy() for _ in range(spec.workers)]
        self.batches: List[BatchRecord] = []
        self.steal_records: List[StealRecord] = []
        self.window_boundaries: List[float] = []
        self.journal: List[_JournaledSteal] = []
        #: Next expected batch seq per shard (the emitted-record cursor).
        self.accepted_seq: Dict[int, int] = {w: 0 for w in range(spec.workers)}
        self.latest: Dict[int, _LatestCheckpoint] = {}
        self.recovery_budget = {
            w: self.rel.max_recoveries_per_worker for w in range(spec.workers)
        }
        #: Workers that have executed a planned departure, and their
        #: finalized accounting (collected at departure time, not run end).
        self.departed: set = set()
        self.final_results: Dict[int, WorkerResult] = {}
        self.report = ReliabilityReport(checkpoint_dir="", cadence=self.rel.cadence)

    # -- setup / teardown -------------------------------------------------- #

    def _build_channels(self, checkpoint_dir: str) -> None:
        # Kept for scale-ups: a joining shard boots from the same store
        # snapshot as the initial pool.
        self._snapshot = self.spec.store.snapshot()
        for worker_id in range(self.spec.workers):
            policy = (
                self.spec.policy if worker_id == 0 else self._clone(self.spec.policy)
            )
            self._spawn_shard(worker_id, policy, self.arrivals[worker_id])
        self.report.checkpoint_dir = checkpoint_dir

    def _spawn_shard(self, worker_id: int, policy, arrivals) -> None:
        task = ShardTask(
            worker_id=worker_id,
            config=self.spec.config,
            policy=policy,
            snapshot=self._snapshot,
            index=self.spec.index,
            arrivals=tuple(arrivals),
        )
        if self.backend_name == "process":
            channel: ShardChannel = ProcessChannel(task, self.start_method)
        else:
            channel = InlineChannel(task)
        self.channels.append(channel)
        self.views.append(ShardView(worker_id, arrivals))

    @staticmethod
    def _clone(policy):
        clone = getattr(policy, "clone", None)
        if clone is None:
            raise TypeError(
                f"policy {policy!r} does not support clone(); "
                "per-shard schedulers must be constructible per worker"
            )
        return clone()

    # -- the run ----------------------------------------------------------- #

    def execute(self) -> BackendOutcome:
        started = time.perf_counter()
        owns_dir = self.rel.checkpoint_dir is None
        checkpoint_dir = self.rel.checkpoint_dir or tempfile.mkdtemp(
            prefix="liferaft-ckpt-"
        )
        os.makedirs(checkpoint_dir, exist_ok=True)
        try:
            self._build_channels(checkpoint_dir)
            try:
                self._window_loop(checkpoint_dir)
                # Departed shards were finalized at their barrier; the
                # survivors are finalized now.
                results = [
                    self.final_results[channel.worker_id]
                    if channel.worker_id in self.departed
                    else self._finalize_with_recovery(channel)
                    for channel in self.channels
                ]
            finally:
                for channel in self.channels:
                    channel.shutdown()
        finally:
            if owns_dir:
                shutil.rmtree(checkpoint_dir, ignore_errors=True)
        elapsed = time.perf_counter() - started
        return merge_backend_outcome(
            self.backend_name,
            self.spec,
            self.plan,
            self.tracker,
            self.events,
            self.batches,
            self.steal_records,
            results,
            elapsed,
            reliability=self.report,
            window_boundaries_ms=self.window_boundaries,
        )

    def _window_loop(self, checkpoint_dir: str) -> None:
        window_index = 0
        stealing = self.spec.enable_stealing and (
            self.spec.workers > 1 or self.scale.total_ups() > 0
        )
        while True:
            candidates = [
                candidate
                for view in self.views
                if (candidate := view.boundary_candidate_ms()) is not None
            ]
            if not candidates:
                break
            boundary = min(candidates) + self.quantum_ms
            self.window_boundaries.append(boundary)
            # Inject this window's scheduled crashes: the shard dies while
            # the window is (about to be) in flight, exactly as a machine
            # failure would land mid-computation.
            for view, channel in zip(self.views, self.channels):
                if not view.drained and self.faults.crash_due(
                    channel.worker_id, window_index
                ):
                    channel.kill()
                    self.report.crashes_injected += 1
            # Broadcast the window to every live shard before collecting
            # any reply, so real per-window work (page reads, decodes)
            # runs concurrently across worker processes; crashed shards
            # surface at collect time and are recovered after every
            # in-flight reply has drained (re-settlement must not talk to
            # a shard with a window outstanding).
            active = [
                (view, channel)
                for view, channel in zip(self.views, self.channels)
                if not view.drained
            ]
            for _view, channel in active:
                channel.begin_window(boundary)
            crashed: List[Tuple[ShardView, ShardChannel]] = []
            for view, channel in active:
                try:
                    report = channel.collect_window()
                except ChannelCrashed:
                    crashed.append((view, channel))
                    continue
                self._accept(report)
                view.apply_window(report)
            for view, channel in crashed:
                report = self._advance_with_recovery(channel, view, boundary, window_index)
                self._accept(report)
                view.apply_window(report)
            if self.scale:
                self._scale_round(window_index)
            if all(view.drained for view in self.views):
                self.report.windows = window_index + 1
                break
            if stealing:
                self._steal_round(window_index)
            self._checkpoint_round(checkpoint_dir, window_index)
            window_index += 1
            self.report.windows = window_index

    def _accept(self, report: WindowReport) -> None:
        """Accept a window's batch records behind the per-shard cursor.

        Exactly-once: a record is accepted only at its expected sequence
        number.  After a recovery the cursor rewinds to the checkpoint's
        ``seq`` (the replayed tail re-produces the discarded records with
        the same numbers), so nothing is lost and nothing is duplicated.
        """
        cursor = self.accepted_seq[report.worker_id]
        for record in report.batches:
            if record.seq < cursor:
                continue  # an already-accepted record re-surfacing
            if record.seq != cursor:
                raise RuntimeError(
                    f"shard {report.worker_id} skipped batch seq "
                    f"{cursor} (got {record.seq})"
                )
            self.batches.append(record)
            cursor += 1
        self.accepted_seq[report.worker_id] = cursor

    # -- crash recovery ---------------------------------------------------- #

    def _advance_with_recovery(
        self,
        channel: ShardChannel,
        view: ShardView,
        boundary: Optional[float],
        window_index: int,
    ) -> WindowReport:
        while True:
            try:
                return channel.advance(boundary)
            except ChannelCrashed:
                self._recover(channel, view, window_index)

    def _finalize_with_recovery(self, channel: ShardChannel) -> WorkerResult:
        view = self.views[channel.worker_id]
        while True:
            try:
                return channel.finalize()
            except ChannelCrashed:
                self._recover(channel, view, self.report.windows)
                # A recovered shard may have a schedule tail to replay
                # before its accounting is final again.
                report = self._advance_with_recovery(channel, view, None, self.report.windows)
                self._accept(report)
                view.apply_window(report)

    def _recover(self, channel: ShardChannel, view: ShardView, window_index: int) -> None:
        """Restore a dead shard from its latest checkpoint and re-settle."""
        worker_id = channel.worker_id
        if self.recovery_budget[worker_id] <= 0:
            raise RuntimeError(
                f"shard worker {worker_id} exceeded "
                f"{self.rel.max_recoveries_per_worker} recoveries; giving up"
            )
        self.recovery_budget[worker_id] -= 1
        started = time.perf_counter()
        latest = self.latest.get(worker_id)
        checkpoint_path = latest.path if latest is not None else None
        checkpoint_seq = latest.seq if latest is not None else 0
        checkpoint_window = latest.window_index if latest is not None else -1
        channel.respawn(checkpoint_path)
        # Rewind the emitted-record cursor: everything at or past the
        # checkpoint's seq is lost work the replay will re-produce.
        replayed = [
            record
            for record in self.batches
            if record.worker_id == worker_id and record.seq >= checkpoint_seq
        ]
        if replayed:
            self.batches = [
                record
                for record in self.batches
                if not (record.worker_id == worker_id and record.seq >= checkpoint_seq)
            ]
        self.accepted_seq[worker_id] = checkpoint_seq
        # _resettle ends by probing the restored shard (an empty window),
        # which refreshes the coordinator's view in the same round trip.
        self._resettle(channel, view, checkpoint_window)
        self.report.recoveries.append(
            RecoveryEvent(
                worker_id=worker_id,
                window_index=window_index,
                checkpoint_window=checkpoint_window,
                services_replayed=len(replayed),
                real_latency_s=time.perf_counter() - started,
            )
        )

    def _resettle(
        self, channel: ShardChannel, view: ShardView, checkpoint_window: int
    ) -> None:
        """Replay post-checkpoint queue migrations involving the shard.

        Steals are settled through the coordinator, so every migrated
        payload passed through here and can be replayed: migrations the
        crashed shard *received* after its checkpoint are re-adopted;
        queues it *gave up* after its checkpoint are extracted again from
        the restored state and forwarded to the current owner (which may
        hold newer entries — adoption merges, and downstream completion
        and stream bookkeeping are idempotent per (query, bucket)).

        A window's steal round runs *before* its checkpoint round, so a
        checkpoint captured at window ``w`` already contains that window's
        migrations — only steals from strictly later windows are replayed
        (replaying window ``w``'s would double-adopt their entries).
        """
        worker_id = channel.worker_id
        touched: List[int] = []
        for steal in self.journal:
            if steal.window_index <= checkpoint_window:
                continue
            if steal.record.thief_id == worker_id:
                channel.adopt(steal.adopt)
            elif steal.record.victim_id == worker_id:
                released = channel.release(steal.record.bucket_index)
                if released.entries or released.staged:
                    owner = self._current_owner(steal.record.bucket_index)
                    if owner != worker_id:
                        self.channels[owner].adopt(
                            AdoptBucket(
                                bucket_index=steal.record.bucket_index,
                                entries=released.entries,
                                staged=released.staged,
                                clock_ms=0.0,
                            )
                        )
                        touched.append(owner)
        view.apply_window(channel.advance(0.0))
        for owner in set(touched):
            self.views[owner].apply_window(self.channels[owner].advance(0.0))

    def _current_owner(self, bucket_index: int) -> int:
        """Who owns a bucket's queue now: the plan, or the latest thief."""
        owner = self.plan.owner_of(bucket_index)
        for steal in self.journal:
            if steal.record.bucket_index == bucket_index:
                owner = steal.record.thief_id
        return owner

    # -- planned elasticity (window-barrier scale events) ------------------- #

    def _scale_round(self, window_index: int) -> None:
        """Execute this barrier's planned membership changes.

        Joins run before departures (a newcomer is immediately eligible
        to adopt a leaver's queues, and the pool can never empty at a
        barrier that has both).
        """
        for _ in range(self.scale.ups_due(window_index)):
            self._scale_up(window_index)
        for worker_id in self.scale.downs_due(window_index):
            self._scale_down(worker_id, window_index)

    def _scale_up(self, window_index: int) -> None:
        """One worker joins: a cold shard with an empty arrival schedule.

        The new shard's view starts drained, so it costs nothing until
        the next steal round hands it a starving queue — the same seam
        ordinary stealing uses.
        """
        worker_id = len(self.channels)
        self.arrivals.append([])
        self._spawn_shard(worker_id, self._clone(self.spec.policy), ())
        self.policies.append(self.rel.build_policy())
        self.accepted_seq[worker_id] = 0
        self.recovery_budget[worker_id] = self.rel.max_recoveries_per_worker
        self.report.scale_events.append(
            ScaleRecord(kind="up", worker_id=worker_id, window_index=window_index)
        )

    def _scale_down(self, worker_id: int, window_index: int) -> None:
        """One worker departs: evacuate, finalize, shut down.

        Every queue (pending entries *and* not-yet-ingested staged
        shares) migrates to the surviving shards through the same
        ``ReleaseBucket``/``AdoptBucket`` seam stealing uses, journaled
        like steals so later crash recoveries re-settle ownership
        correctly.  The departing shard's accounting is captured now and
        merged at run end.
        """
        channel = self.channels[worker_id]
        view = self.views[worker_id]
        released_all = self._release_all_with_recovery(channel, view, window_index)
        targets = sorted(
            (
                target
                for target in self.views
                if target.worker_id != worker_id
                and target.worker_id not in self.departed
            ),
            key=lambda target: (target.clock_ms, target.worker_id),
        )
        buckets = [
            released
            for released in released_all.buckets
            if released.entries or released.staged
        ]
        entries_migrated = 0
        for position, released in enumerate(buckets):
            target = targets[position % len(targets)]
            enqueues = [entry.enqueue_time_ms for entry in released.entries]
            start_ms = max(target.clock_ms, max(enqueues, default=0.0))
            message = AdoptBucket(
                bucket_index=released.bucket_index,
                entries=released.entries,
                staged=released.staged,
                clock_ms=start_ms,
            )
            self._adopt_with_recovery(target, message, window_index)
            entries_migrated += len(released.entries)
            # Journaled like a steal (ownership tracking / re-settlement)
            # but NOT appended to steal_records: a planned departure is
            # not a steal in the run's workload accounting.
            self.journal.append(
                _JournaledSteal(
                    window_index=window_index,
                    record=StealRecord(
                        time_ms=start_ms,
                        bucket_index=released.bucket_index,
                        victim_id=worker_id,
                        thief_id=target.worker_id,
                        entry_count=len(released.entries),
                    ),
                    released=released,
                    adopt=message,
                )
            )
            if released.entries:
                target.pending[released.bucket_index] = BucketQueueMeta(
                    bucket_index=released.bucket_index,
                    entry_count=len(released.entries),
                    oldest_enqueue_ms=min(enqueues),
                    newest_enqueue_ms=max(enqueues),
                )
            if released.staged:
                staged_first = min(share.arrival_ms for share in released.staged)
                if target.next_staged_ms is None or staged_first < target.next_staged_ms:
                    target.next_staged_ms = staged_first
            target.clock_ms = max(target.clock_ms, start_ms)
            target.drained = not target.pending and target.next_staged_ms is None
        self.final_results[worker_id] = self._finalize_with_recovery(channel)
        channel.shutdown()
        self.departed.add(worker_id)
        view.pending = {}
        view.next_staged_ms = None
        view.drained = True
        self.report.scale_events.append(
            ScaleRecord(
                kind="down",
                worker_id=worker_id,
                window_index=window_index,
                buckets_migrated=len(buckets),
                entries_migrated=entries_migrated,
            )
        )

    def _release_all_with_recovery(
        self, channel: ShardChannel, view: ShardView, window_index: int
    ) -> ReleasedAll:
        while True:
            try:
                return channel.release_all()
            except ChannelCrashed:
                self._recover(channel, view, window_index)

    def _adopt_with_recovery(
        self, target: ShardView, message: AdoptBucket, window_index: int
    ) -> None:
        channel = self.channels[target.worker_id]
        while True:
            try:
                channel.adopt(message)
                return
            except ChannelCrashed:
                self._recover(channel, target, window_index)

    # -- stealing (window-barrier, journaled) ------------------------------- #

    def _steal_round(self, window_index: int) -> None:
        """One shared-rule steal round (see
        :func:`repro.parallel.backend.run_steal_round`), driven through
        crash-recovering channel calls, with every migration journaled so
        recovery can re-settle bucket ownership after a crash."""
        migrations = run_steal_round(
            [view for view in self.views if view.worker_id not in self.departed],
            self.steal_records,
            self.events,
            release=lambda victim, bucket: self._release_with_recovery(
                victim, bucket, window_index
            ),
            adopt=lambda thief, message: self.channels[thief.worker_id].adopt(message),
        )
        for record, released, adopt in migrations:
            self.journal.append(
                _JournaledSteal(
                    window_index=window_index,
                    record=record,
                    released=released,
                    adopt=adopt,
                )
            )

    def _release_with_recovery(
        self, view: ShardView, bucket_index: int, window_index: int
    ) -> ReleasedBucket:
        channel = self.channels[view.worker_id]
        while True:
            try:
                return channel.release(bucket_index)
            except ChannelCrashed:
                self._recover(channel, view, window_index)

    # -- checkpoint cadence ------------------------------------------------- #

    def _checkpoint_round(self, checkpoint_dir: str, window_index: int) -> None:
        # Broadcast the captures first: each shard serialises and writes
        # its own .lrcp file, so checkpoint I/O runs concurrently across
        # worker processes.
        due: List[Tuple[ShardView, ShardChannel, str]] = []
        for view, channel, policy in zip(self.views, self.channels, self.policies):
            if view.drained:
                continue
            if not policy.due(window_index, view.clock_ms):
                continue
            path = os.path.join(
                checkpoint_dir,
                f"shard{channel.worker_id:02d}-w{window_index:06d}{CHECKPOINT_SUFFIX}",
            )
            channel.begin_checkpoint(path, window_index)
            due.append((view, channel, path))
        wrote_any = False
        failed: List[Tuple[ShardView, ShardChannel]] = []
        for view, channel, path in due:
            try:
                written = channel.collect_checkpoint()
            except ChannelCrashed:
                # An unplanned death while checkpointing: note it and skip
                # the capture — recovery waits until every in-flight reply
                # has drained (re-settlement must not talk to a shard with
                # a capture outstanding); the next barrier retries.
                failed.append((view, channel))
                continue
            self.latest[channel.worker_id] = _LatestCheckpoint(
                path=path,
                window_index=window_index,
                seq=written.seq,
                clock_ms=written.clock_ms,
            )
            self.report.checkpoints_written += 1
            self.report.checkpoint_bytes += written.byte_size
            self.report.checkpoint_real_s += written.real_elapsed_s
            self.report.checkpoint_marks.append(written)
            wrote_any = True
        for view, channel in failed:
            self._recover(channel, view, window_index)
        if wrote_any:
            # The coordinator's own durable state rides alongside: the
            # cross-shard completion tracker and the per-shard
            # emitted-record cursor (the result streams' chunk cursor).
            run_path = os.path.join(
                checkpoint_dir, f"run-w{window_index:06d}{CHECKPOINT_SUFFIX}"
            )
            started = time.perf_counter()
            info = write_checkpoint(
                run_path,
                worker_id=RUN_CHECKPOINT_WORKER,
                window_index=window_index,
                clock_ms=max((view.clock_ms for view in self.views), default=0.0),
                generation=self.generation,
                payload_obj=RunCheckpoint(
                    window_index=window_index,
                    tracker=self.tracker,
                    accepted_seq=dict(self.accepted_seq),
                ),
            )
            self.report.checkpoints_written += 1
            self.report.checkpoint_bytes += info.byte_size
            self.report.checkpoint_real_s += time.perf_counter() - started


def execute_with_reliability(
    spec: ParallelRunSpec,
    backend_name: str,
    start_method: str = "spawn",
) -> BackendOutcome:
    """Run *spec* under the recovery coordinator (both backends call this)."""
    return RecoveryCoordinator(spec, backend_name, start_method).execute()


__all__ = [
    "ChannelCrashed",
    "InlineChannel",
    "ProcessChannel",
    "RecoveryCoordinator",
    "ShardChannel",
    "execute_with_reliability",
]
