"""Checkpoint cadence policies.

How often to checkpoint is the classic reliability trade-off: frequent
checkpoints bound the work lost to a crash (and the recovery latency) at
the price of steady-state overhead; sparse checkpoints are nearly free
until a crash forces a long replay.  The recovery experiment sweeps this
knob; the policies here are the pluggable cadences it sweeps over.

A policy is consulted once per shard at every window barrier and is
*stateful*: ``due()`` both answers and commits, so each shard owns its
own instance (built per worker from the config's cadence spec).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional


class CheckpointPolicy(ABC):
    """Decides, at each window barrier, whether a shard checkpoints now."""

    spec: str = "abstract"

    @abstractmethod
    def due(self, window_index: int, clock_ms: float) -> bool:
        """``True`` to checkpoint at this barrier.  Answering commits: the
        policy records the barrier as its latest checkpoint."""


class EveryKWindows(CheckpointPolicy):
    """Checkpoint at the first barrier and every *k* windows thereafter."""

    def __init__(self, k: int) -> None:
        if k <= 0:
            raise ValueError("checkpoint window stride must be positive")
        self.k = k
        self.spec = f"windows:{k}"
        self._last_window: Optional[int] = None

    def due(self, window_index: int, clock_ms: float) -> bool:
        if self._last_window is not None and window_index - self._last_window < self.k:
            return False
        self._last_window = window_index
        return True


class VirtualInterval(CheckpointPolicy):
    """Checkpoint whenever *interval_ms* of virtual time has elapsed.

    The first barrier always checkpoints (a shard with no checkpoint
    replays its whole schedule on a crash), then the policy waits for the
    shard's own clock to advance by the interval — a shard servicing big
    buckets checkpoints as often, in virtual-time terms, as one servicing
    small ones.
    """

    def __init__(self, interval_ms: float) -> None:
        if interval_ms <= 0:
            raise ValueError("checkpoint interval must be positive")
        self.interval_ms = interval_ms
        self.spec = f"interval:{interval_ms:g}"
        self._last_clock_ms: Optional[float] = None

    def due(self, window_index: int, clock_ms: float) -> bool:
        if (
            self._last_clock_ms is not None
            and clock_ms - self._last_clock_ms < self.interval_ms
        ):
            return False
        self._last_clock_ms = clock_ms
        return True


def parse_cadence(spec: str) -> CheckpointPolicy:
    """Build a fresh policy instance from a cadence spec string.

    Accepted forms: ``"windows:K"`` (or a bare integer ``"K"``) for an
    every-K-windows cadence, ``"interval:MS"`` for a virtual-time
    interval in milliseconds.
    """
    text = spec.strip().lower()
    if ":" in text:
        kind, _, value = text.partition(":")
        kind = kind.strip()
        value = value.strip()
        if kind == "windows":
            return EveryKWindows(int(value))
        if kind == "interval":
            return VirtualInterval(float(value))
        raise ValueError(
            f"unknown checkpoint cadence {spec!r}; use 'windows:K' or 'interval:MS'"
        )
    try:
        return EveryKWindows(int(text))
    except ValueError as error:
        raise ValueError(
            f"unknown checkpoint cadence {spec!r}; use 'windows:K' or 'interval:MS'"
        ) from error


__all__ = [
    "CheckpointPolicy",
    "EveryKWindows",
    "VirtualInterval",
    "parse_cadence",
]
