"""Catalog substrate: synthetic astronomical archives.

The paper evaluates LifeRaft at the SDSS node of the SkyQuery federation;
the cross-match workload joins SDSS against the 2MASS and USNO-B surveys.
Since the real multi-terabyte archives are not available offline, this
package provides synthetic stand-ins:

* :mod:`repro.catalog.objects` — the row types (celestial observations) and
  an in-memory catalog table sorted along the HTM curve;
* :mod:`repro.catalog.generator` — sky generators producing clustered,
  survey-like object distributions at configurable scale;
* :mod:`repro.catalog.archive` — an archive bundles a catalog with its
  storage substrate (partition layout, bucket store, spatial index) the way
  one SkyQuery site does.
"""

from repro.catalog.objects import CelestialObject, CatalogTable
from repro.catalog.generator import SkyGeneratorConfig, SkyGenerator, SURVEY_PROFILES
from repro.catalog.archive import Archive, ArchiveConfig, build_archive

__all__ = [
    "CelestialObject",
    "CatalogTable",
    "SkyGeneratorConfig",
    "SkyGenerator",
    "SURVEY_PROFILES",
    "Archive",
    "ArchiveConfig",
    "build_archive",
]
