"""Synthetic sky generators.

The reproduction cannot ship the 6 TB SDSS archive, so the examples and the
full-fidelity tests generate synthetic surveys instead.  Two properties of
the real sky matter for LifeRaft's behaviour and are therefore modelled:

* **Clustering.**  Galaxies and survey footprints make object density very
  non-uniform; dense regions are exactly where cross-match queries pile up
  and where batch processing pays off.  The generator draws objects from a
  mixture of compact Gaussian-ish clusters on the sphere plus a uniform
  background.
* **Survey-to-survey correlation.**  2MASS and USNO-B see (mostly) the same
  sky as SDSS, shifted by arcsecond-scale astrometric errors.  The
  generator can derive a companion survey from a base survey by jittering
  positions and dropping/adding a fraction of objects, which gives the
  probabilistic cross-match realistic hit rates.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.catalog.objects import CatalogTable, CelestialObject
from repro.htm import ids as htm_ids
from repro.htm.geometry import SkyPoint
from repro.htm.mesh import HTMMesh

#: Rough relative source densities of the three surveys that dominate the
#: SkyQuery cross-match workload (§5.1: "a vast majority of cross-matches
#: occurs between archives twomass, sdss, and usnob").
SURVEY_PROFILES: Dict[str, Dict[str, float]] = {
    "sdss": {"relative_density": 1.0, "astrometric_error_arcsec": 0.1},
    "twomass": {"relative_density": 0.55, "astrometric_error_arcsec": 0.3},
    "usnob": {"relative_density": 1.4, "astrometric_error_arcsec": 0.4},
}


@dataclass(frozen=True)
class SkyGeneratorConfig:
    """Parameters of the synthetic sky.

    Attributes
    ----------
    object_count:
        Number of objects to draw for the base survey.
    cluster_count:
        Number of dense clusters; zero gives a uniform sky.
    cluster_fraction:
        Fraction of objects placed inside clusters (the rest is uniform
        background).
    cluster_radius_deg:
        Angular radius of one cluster.
    footprint_dec_limits:
        Declination band of the survey footprint (SDSS covers mostly the
        northern galactic cap; restricting declination concentrates the
        workload the way the real footprint does).
    seed:
        Seed for the private random number generator; generation is fully
        deterministic given the config.
    htm_level:
        Level of the HTM IDs assigned to generated objects.
    """

    object_count: int = 10_000
    cluster_count: int = 12
    cluster_fraction: float = 0.6
    cluster_radius_deg: float = 2.5
    footprint_dec_limits: Tuple[float, float] = (-10.0, 70.0)
    seed: int = 20090104  # CIDR 2009 opening day
    htm_level: int = htm_ids.SKYQUERY_LEVEL

    def __post_init__(self) -> None:
        if self.object_count <= 0:
            raise ValueError("object_count must be positive")
        if not 0.0 <= self.cluster_fraction <= 1.0:
            raise ValueError("cluster_fraction must be within [0, 1]")
        low, high = self.footprint_dec_limits
        if not -90.0 <= low < high <= 90.0:
            raise ValueError("footprint declination limits must satisfy -90 <= low < high <= 90")


class SkyGenerator:
    """Draws synthetic survey catalogs."""

    def __init__(
        self, config: Optional[SkyGeneratorConfig] = None, mesh: Optional[HTMMesh] = None
    ) -> None:
        self.config = config or SkyGeneratorConfig()
        self.mesh = mesh or HTMMesh()
        self._rng = random.Random(self.config.seed)
        self._cluster_centers: List[SkyPoint] = self._draw_cluster_centers()

    @property
    def cluster_centers(self) -> Sequence[SkyPoint]:
        """The cluster centres of the synthetic sky (stable per seed)."""
        return tuple(self._cluster_centers)

    def generate(self, survey: str = "sdss") -> CatalogTable:
        """Generate the base survey catalog."""
        profile = SURVEY_PROFILES.get(survey, {"relative_density": 1.0})
        count = max(1, int(round(self.config.object_count * profile["relative_density"])))
        objects = []
        for object_id in range(count):
            point = self._draw_position()
            objects.append(
                CelestialObject(
                    object_id=object_id,
                    ra=point.ra,
                    dec=point.dec,
                    htm_id=self.mesh.locate(point, self.config.htm_level),
                    magnitude=self._draw_magnitude(),
                    survey=survey,
                )
            )
        return CatalogTable(survey, objects)

    def derive_companion(
        self,
        base: CatalogTable,
        survey: str,
        completeness: float = 0.85,
        extra_fraction: float = 0.1,
        astrometric_error_arcsec: Optional[float] = None,
    ) -> CatalogTable:
        """Derive a companion survey seeing (mostly) the same sky as *base*.

        ``completeness`` is the probability that a base object is also seen
        by the companion; ``extra_fraction`` adds companion-only sources.
        Positions of matched sources are jittered by the companion's
        astrometric error, which is what makes cross-match probabilistic.
        """
        if not 0.0 <= completeness <= 1.0:
            raise ValueError("completeness must be within [0, 1]")
        if extra_fraction < 0:
            raise ValueError("extra_fraction must be non-negative")
        profile = SURVEY_PROFILES.get(survey, {})
        error_arcsec = (
            astrometric_error_arcsec
            if astrometric_error_arcsec is not None
            else profile.get("astrometric_error_arcsec", 0.3)
        )
        objects: List[CelestialObject] = []
        next_id = 0
        for obj in base:
            if self._rng.random() > completeness:
                continue
            ra, dec = self._jitter(obj.ra, obj.dec, error_arcsec)
            point = SkyPoint(ra, dec)
            objects.append(
                CelestialObject(
                    object_id=next_id,
                    ra=point.ra,
                    dec=point.dec,
                    htm_id=self.mesh.locate(point, self.config.htm_level),
                    magnitude=obj.magnitude + self._rng.gauss(0.0, 0.5),
                    survey=survey,
                )
            )
            next_id += 1
        extras = int(round(len(base) * extra_fraction))
        for _ in range(extras):
            point = self._draw_position()
            objects.append(
                CelestialObject(
                    object_id=next_id,
                    ra=point.ra,
                    dec=point.dec,
                    htm_id=self.mesh.locate(point, self.config.htm_level),
                    magnitude=self._draw_magnitude(),
                    survey=survey,
                )
            )
            next_id += 1
        return CatalogTable(survey, objects)

    def _draw_cluster_centers(self) -> List[SkyPoint]:
        centers = []
        for _ in range(self.config.cluster_count):
            centers.append(self._uniform_point())
        return centers

    def _draw_position(self) -> SkyPoint:
        if self._cluster_centers and self._rng.random() < self.config.cluster_fraction:
            center = self._rng.choice(self._cluster_centers)
            return self._point_near(center, self.config.cluster_radius_deg)
        return self._uniform_point()

    def _uniform_point(self) -> SkyPoint:
        """Uniform direction within the survey footprint."""
        low, high = self.config.footprint_dec_limits
        sin_low, sin_high = math.sin(math.radians(low)), math.sin(math.radians(high))
        while True:
            ra = self._rng.uniform(0.0, 360.0)
            dec = math.degrees(math.asin(self._rng.uniform(sin_low, sin_high)))
            return SkyPoint(ra, dec)

    def _point_near(self, center: SkyPoint, radius_deg: float) -> SkyPoint:
        """Draw a point within *radius_deg* of *center*, roughly uniform in area."""
        low, high = self.config.footprint_dec_limits
        for _ in range(32):
            # Uniform in the tangent disc, then projected back onto the sphere.
            r = radius_deg * math.sqrt(self._rng.random())
            theta = self._rng.uniform(0.0, 2.0 * math.pi)
            dec = center.dec + r * math.sin(theta)
            cos_dec = max(0.05, math.cos(math.radians(center.dec)))
            ra = center.ra + r * math.cos(theta) / cos_dec
            if -90.0 < dec < 90.0 and low <= dec <= high:
                return SkyPoint(ra % 360.0, dec)
        return center

    def _jitter(self, ra: float, dec: float, error_arcsec: float) -> Tuple[float, float]:
        error_deg = error_arcsec / 3600.0
        dec_new = min(89.9999, max(-89.9999, dec + self._rng.gauss(0.0, error_deg)))
        cos_dec = max(0.05, math.cos(math.radians(dec)))
        ra_new = (ra + self._rng.gauss(0.0, error_deg) / cos_dec) % 360.0
        return ra_new, dec_new

    def _draw_magnitude(self) -> float:
        """Apparent magnitude with the usual faint-end pile-up."""
        return 14.0 + 8.0 * math.sqrt(self._rng.random())
