"""An archive bundles a catalog with its storage substrate.

One SkyQuery site (the SDSS node in the paper's evaluation) owns a fact
table, its partition layout along the HTM curve, a bucket store that reads
buckets from "disk", and a spatial index over the clustering key.  The
:class:`Archive` type is the unit both the LifeRaft engine (single-site
evaluation, as in the paper) and the federation substrate (multi-site
examples) operate on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.catalog.generator import SkyGenerator, SkyGeneratorConfig
from repro.catalog.objects import CatalogTable
from repro.storage.bucket_store import BucketStore
from repro.storage.disk_model import DiskModel, DiskParameters, calibrated_disk_for_bucket_read
from repro.storage.index import SpatialIndex
from repro.storage.partitioner import (
    BucketPartitioner,
    PartitionLayout,
    DEFAULT_BUCKET_MEGABYTES,
    DEFAULT_OBJECTS_PER_BUCKET,
)


@dataclass(frozen=True)
class ArchiveConfig:
    """Configuration of one archive's storage substrate.

    ``objects_per_bucket`` and ``bucket_megabytes`` default to the paper's
    values (10,000 objects, 40 MB); smaller values are convenient for the
    full-fidelity examples where the synthetic catalog only has tens of
    thousands of rows.
    """

    objects_per_bucket: int = DEFAULT_OBJECTS_PER_BUCKET
    bucket_megabytes: float = DEFAULT_BUCKET_MEGABYTES
    target_bucket_read_s: float = 1.2
    calibrate_disk: bool = True


@dataclass
class Archive:
    """A single site of the federation: catalog + partitioning + index."""

    name: str
    catalog: CatalogTable
    layout: PartitionLayout
    store: BucketStore
    index: SpatialIndex
    disk: DiskModel

    @property
    def bucket_count(self) -> int:
        """Number of buckets the fact table is partitioned into."""
        return len(self.layout)

    def describe(self) -> Dict[str, float]:
        """Summary of the archive's shape, for reports and examples."""
        summary = self.layout.describe()
        summary["catalog_rows"] = float(len(self.catalog))
        return summary


def build_archive(
    name: str,
    catalog: CatalogTable,
    config: Optional[ArchiveConfig] = None,
    disk: Optional[DiskModel] = None,
) -> Archive:
    """Partition *catalog* and wrap it into an :class:`Archive`.

    The disk model is calibrated so that a full bucket read costs the
    paper's ``Tb`` unless a pre-built model is supplied.
    """
    config = config or ArchiveConfig()
    if disk is None:
        if config.calibrate_disk:
            disk = calibrated_disk_for_bucket_read(
                config.bucket_megabytes, config.target_bucket_read_s
            )
        else:
            disk = DiskModel(DiskParameters())
    partitioner = BucketPartitioner(
        objects_per_bucket=config.objects_per_bucket,
        bucket_megabytes=config.bucket_megabytes,
    )
    layout = partitioner.partition_objects(list(catalog.htm_ids))
    store = BucketStore(layout, disk, objects=(list(catalog.htm_ids), list(catalog.rows)))
    index = SpatialIndex(list(catalog.htm_ids), rows=list(catalog.rows), disk=disk)
    return Archive(name=name, catalog=catalog, layout=layout, store=store, index=index, disk=disk)


def build_synthetic_archive(
    name: str = "sdss",
    generator_config: Optional[SkyGeneratorConfig] = None,
    archive_config: Optional[ArchiveConfig] = None,
) -> Archive:
    """Generate a synthetic catalog and build an archive around it."""
    generator = SkyGenerator(generator_config)
    catalog = generator.generate(name)
    return build_archive(name, catalog, archive_config)
