"""Row types and in-memory catalog tables.

A :class:`CelestialObject` is one observation of the primary fact table —
the table on which cross-matching is performed.  Every object carries its
level-14 HTM ID (the 32-bit integer SkyQuery assigns, §3.1), which both
orders the table along the space-filling curve and is the join key used by
the filter step of the cross-match.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.htm.ids import SKYQUERY_LEVEL
from repro.htm.curve import HTMRange
from repro.htm.geometry import SkyPoint, angular_separation
from repro.htm.mesh import HTMMesh


@dataclass(frozen=True)
class CelestialObject:
    """One observation of a survey catalog.

    Attributes
    ----------
    object_id:
        Survey-unique identifier.
    ra, dec:
        Position in degrees.
    htm_id:
        Level-14 HTM ID of the position (the clustering key).
    magnitude:
        Apparent magnitude; used by query predicates in the examples.
    survey:
        Short name of the survey the observation belongs to.
    """

    object_id: int
    ra: float
    dec: float
    htm_id: int
    magnitude: float = 20.0
    survey: str = "sdss"

    @property
    def position(self) -> SkyPoint:
        """The object's sky position."""
        return SkyPoint(self.ra, self.dec)

    def separation_deg(self, other: "CelestialObject") -> float:
        """Angular separation from another object, in degrees."""
        return angular_separation(self.ra, self.dec, other.ra, other.dec)

    def separation_arcsec(self, other: "CelestialObject") -> float:
        """Angular separation from another object, in arcseconds."""
        return self.separation_deg(other) * 3600.0


class CatalogTable:
    """An in-memory fact table kept sorted by HTM ID.

    The table is the unit handed to the partitioner and the bucket store.
    It deliberately stays simple — a sorted list plus binary-search range
    scans — because the point of the reproduction is the scheduler above
    it, not the storage engine below.
    """

    def __init__(self, survey: str, objects: Iterable[CelestialObject] = ()) -> None:
        self.survey = survey
        rows = sorted(objects, key=lambda o: o.htm_id)
        self._rows: List[CelestialObject] = rows
        self._ids: List[int] = [o.htm_id for o in rows]

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[CelestialObject]:
        return iter(self._rows)

    def __getitem__(self, index: int) -> CelestialObject:
        return self._rows[index]

    @property
    def rows(self) -> Sequence[CelestialObject]:
        """All rows in HTM order."""
        return self._rows

    @property
    def htm_ids(self) -> Sequence[int]:
        """HTM IDs aligned with :attr:`rows`."""
        return self._ids

    def insert(self, obj: CelestialObject) -> None:
        """Insert one object, keeping HTM order."""
        position = bisect.bisect_right(self._ids, obj.htm_id)
        self._ids.insert(position, obj.htm_id)
        self._rows.insert(position, obj)

    def extend(self, objects: Iterable[CelestialObject]) -> None:
        """Bulk-insert objects (re-sorts once; cheaper than repeated inserts)."""
        self._rows.extend(objects)
        self._rows.sort(key=lambda o: o.htm_id)
        self._ids = [o.htm_id for o in self._rows]

    def range_scan(self, htm_range: HTMRange) -> List[CelestialObject]:
        """Return the rows whose HTM ID falls inside *htm_range*."""
        low = bisect.bisect_left(self._ids, htm_range.low)
        high = bisect.bisect_right(self._ids, htm_range.high)
        return self._rows[low:high]

    def count_range(self, htm_range: HTMRange) -> int:
        """Number of rows inside *htm_range* without materialising them."""
        low = bisect.bisect_left(self._ids, htm_range.low)
        high = bisect.bisect_right(self._ids, htm_range.high)
        return high - low

    def cone_search(self, center: SkyPoint, radius_deg: float) -> List[CelestialObject]:
        """Exact cone search (linear refine over the whole table; test helper)."""
        return [
            obj
            for obj in self._rows
            if angular_separation(center.ra, center.dec, obj.ra, obj.dec) <= radius_deg
        ]

    def describe(self) -> Dict[str, float]:
        """Summary statistics for reports."""
        return {
            "rows": float(len(self._rows)),
            "min_htm_id": float(self._ids[0]) if self._ids else 0.0,
            "max_htm_id": float(self._ids[-1]) if self._ids else 0.0,
        }

    @classmethod
    def from_positions(
        cls,
        survey: str,
        positions: Iterable[Tuple[float, float]],
        mesh: Optional[HTMMesh] = None,
        level: int = SKYQUERY_LEVEL,
        start_object_id: int = 0,
    ) -> "CatalogTable":
        """Build a table from raw (RA, Dec) pairs, assigning HTM IDs."""
        mesh = mesh or HTMMesh()
        objects = []
        for offset, (ra, dec) in enumerate(positions):
            htm_id = mesh.locate(SkyPoint(ra, dec), level)
            objects.append(
                CelestialObject(
                    object_id=start_object_id + offset,
                    ra=ra,
                    dec=dec,
                    htm_id=htm_id,
                    survey=survey,
                )
            )
        return cls(survey, objects)
