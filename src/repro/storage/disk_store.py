"""A file-backed bucket store: real I/O under the paper's cost model.

:class:`DiskBucketStore` satisfies the :class:`~repro.storage.bucket_store.
BucketStore` read interface against a columnar ``.lrbs`` file (see
:mod:`repro.storage.format`): every bucket read performs a physical seek,
a sequential page read, a CRC check and a columnar decode — while still
charging the analytical disk model's virtual-clock cost, so all
deterministic numbers are identical to the in-memory store's.

Caching is tiered:

* **Tier 1** is the engine-side LRU bucket cache
  (:class:`~repro.core.bucket_cache.BucketCacheManager`) — a hit there
  never reaches this store, exactly as before.
* **Tier 2** is the optional :class:`DecodedPageCache` below — decoded
  bucket images keyed by ``(file generation, bucket index)``.  A tier-2
  hit skips the physical read and decode (real wall-clock work) but still
  charges the full virtual sequential-read cost: the paper's model says a
  tier-1 miss pays ``Tb``, and the virtual clock must not depend on which
  physical tier happened to serve the bytes.  The generation key makes a
  shared cache safe across stores and re-ingests: pages decoded from an
  older file version can never be served against a newer one.
"""

from __future__ import annotations

import os
import time
from typing import Dict, Optional, Tuple

from repro.storage.bucket_store import Bucket, BucketStore, StoreSnapshot
from repro.storage.cache import LRUCache
from repro.storage.disk_model import DiskModel
from repro.storage.format import BucketFileReader, StoreManifest
from repro.storage.partitioner import BucketSpec
from repro.telemetry.registry import REAL_DOMAIN, MetricsRegistry

#: Default tier-2 capacity (decoded bucket images).  Sized like the paper's
#: bucket cache so the two tiers describe the same working set by default.
DEFAULT_PAGE_CACHE_BUCKETS = 20


class DecodedPageCache:
    """LRU of decoded bucket pages keyed by ``(generation, bucket_index)``.

    One instance may be shared by several :class:`DiskBucketStore`\\ s (the
    generation key keeps entries disjoint per file version); each store
    defaults to a private one.
    """

    def __init__(self, capacity: int = DEFAULT_PAGE_CACHE_BUCKETS) -> None:
        self._cache: LRUCache[Tuple[str, int], Bucket] = LRUCache(capacity)

    @property
    def capacity(self) -> int:
        """Maximum number of decoded bucket images held."""
        return self._cache.capacity

    @property
    def resident_count(self) -> int:
        """Decoded bucket images currently held (tier-2 occupancy)."""
        return len(self._cache)

    def get(self, generation: str, bucket_index: int) -> Optional[Bucket]:
        """Return the cached decoded bucket, updating recency; ``None`` on miss."""
        return self._cache.get((generation, bucket_index))

    def put(self, generation: str, bucket_index: int, bucket: Bucket) -> None:
        """Insert one decoded bucket image."""
        self._cache.put((generation, bucket_index), bucket)

    def statistics(self) -> Dict[str, float]:
        """Hit/miss counters of the decoded-page tier."""
        return self._cache.statistics.snapshot()

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served without touching the file."""
        return self._cache.statistics.hit_rate


class DiskBucketStore(BucketStore):
    """Serves bucket reads by seeking into a columnar store file.

    Parameters
    ----------
    path:
        The ``.lrbs`` file to open (read-only).  The partition layout is
        reconstructed from the file's directory.
    disk:
        Analytical disk model charged per read (virtual-clock cost); the
        physical read time is measured separately in
        :attr:`real_read_s`.
    page_cache:
        Tier-2 decoded-page cache.  ``None`` builds a private cache of
        :data:`DEFAULT_PAGE_CACHE_BUCKETS` buckets; pass a shared
        :class:`DecodedPageCache` to pool decoding across stores, or
        capacity ``0`` via :func:`open_disk_store` to disable the tier.
    expected_generation:
        When given, the opened file's generation must match — the process
        backend uses this so a worker child never silently reads a file
        that was re-ingested after the coordinator snapshotted it.
    """

    def __init__(
        self,
        path: str | os.PathLike,
        disk: Optional[DiskModel] = None,
        page_cache: Optional[DecodedPageCache] = None,
        expected_generation: Optional[str] = None,
    ) -> None:
        self._reader = BucketFileReader(path)
        if expected_generation is not None and self._reader.generation != expected_generation:
            actual = self._reader.generation
            self._reader.close()
            raise ValueError(
                f"bucket store {os.fspath(path)!r} has generation {actual}, "
                f"expected {expected_generation} (re-ingested since snapshot?)"
            )
        super().__init__(self._reader.layout, disk)
        self.path = os.fspath(path)
        self.page_cache = page_cache if page_cache is not None else DecodedPageCache()
        #: Cumulative wall-clock seconds spent in physical reads + decoding.
        self.real_read_s = 0.0
        #: Physical page reads that reached the file (tier-2 misses).
        self.page_reads = 0
        #: Real-domain registry: physical I/O is wall-clock profile, never
        #: asserted in parity tests (two identical specs legitimately
        #: differ here).  Merged once per store object at run level.
        self.telemetry = MetricsRegistry()
        self._t_page_reads = self.telemetry.counter("disk.page_reads", domain=REAL_DOMAIN)
        self._t_real_read_s = self.telemetry.counter("disk.real_read_s", domain=REAL_DOMAIN)
        self._t_decode_mb = self.telemetry.counter("disk.decode_mb", domain=REAL_DOMAIN)
        self._t_page_cache_hits = self.telemetry.counter(
            "disk.page_cache_hits", domain=REAL_DOMAIN
        )

    @property
    def generation(self) -> str:
        """The opened file's content-derived generation."""
        return self._reader.generation

    @property
    def is_virtual(self) -> bool:
        """File-backed stores always materialise rows (possibly zero rows)."""
        return False

    def manifest(self) -> StoreManifest:
        """Describe the backing file."""
        return self._reader.manifest()

    def _materialise(self, spec: BucketSpec) -> Bucket:
        generation = self._reader.generation
        if self.page_cache.capacity > 0:
            cached = self.page_cache.get(generation, spec.index)
            if cached is not None:
                self._t_page_cache_hits.inc()
                return cached
        started = time.perf_counter()
        # Zero-copy decode: the bucket carries column casts over the mmap
        # and never materialises row objects unless a consumer asks.
        bucket = Bucket(spec, columns=self._reader.read_bucket_block(spec.index))
        elapsed = time.perf_counter() - started
        self.real_read_s += elapsed
        self.page_reads += 1
        self._t_page_reads.inc()
        self._t_real_read_s.inc(elapsed)
        self._t_decode_mb.inc(spec.megabytes)
        if self.page_cache.capacity > 0:
            self.page_cache.put(generation, spec.index, bucket)
        return bucket

    def snapshot(self) -> StoreSnapshot:
        """A path-based snapshot: workers reopen the file instead of
        receiving a pickled catalog, which keeps IPC task payloads small
        and lets every process do its own physical I/O."""
        return StoreSnapshot(
            layout=None,
            disk_parameters=self.disk.parameters,
            catalog=None,
            store_path=self.path,
            generation=self._reader.generation,
            page_cache_buckets=self.page_cache.capacity,
        )

    def statistics(self) -> Dict[str, float]:
        """Read counters plus the physical-tier accounting."""
        stats = super().statistics()
        stats.update(
            {
                "page_reads": float(self.page_reads),
                "real_read_s": self.real_read_s,
                "page_cache_hit_rate": self.page_cache.hit_rate,
            }
        )
        return stats

    def close(self) -> None:
        """Release the underlying file handle.

        Context-manager support comes from the :class:`BucketStore` base
        class, which makes every store tier uniformly ``with``-able.
        """
        self._reader.close()


def open_disk_store(
    path: str | os.PathLike,
    disk: Optional[DiskModel] = None,
    page_cache_buckets: int = DEFAULT_PAGE_CACHE_BUCKETS,
    expected_generation: Optional[str] = None,
) -> DiskBucketStore:
    """Open a store file, building the tier-2 cache from a capacity knob.

    ``page_cache_buckets=0`` disables the decoded-page tier entirely (every
    tier-1 miss performs a physical read — the configuration the storage
    benchmarks use to measure raw read throughput).
    """
    cache = DecodedPageCache(page_cache_buckets) if page_cache_buckets > 0 else _NullPageCache()
    return DiskBucketStore(
        path, disk, page_cache=cache, expected_generation=expected_generation
    )


class _NullPageCache(DecodedPageCache):
    """A disabled tier-2: every lookup misses, nothing is retained."""

    def __init__(self) -> None:  # capacity 0 is not a valid LRUCache size
        pass

    @property
    def capacity(self) -> int:
        return 0

    @property
    def resident_count(self) -> int:
        return 0

    def get(self, generation: str, bucket_index: int) -> Optional[Bucket]:
        return None

    def put(self, generation: str, bucket_index: int, bucket: Bucket) -> None:
        return None

    def statistics(self) -> Dict[str, float]:
        return {"hits": 0, "misses": 0, "insertions": 0, "evictions": 0, "hit_rate": 0.0}

    @property
    def hit_rate(self) -> float:
        return 0.0


__all__ = [
    "DEFAULT_PAGE_CACHE_BUCKETS",
    "DecodedPageCache",
    "DiskBucketStore",
    "open_disk_store",
]
