"""Equal-sized bucket partitioning over the HTM curve.

LifeRaft partitions the fact table "into disjoint, equal-sized buckets in
which each bucket covers a set of triangles that are contiguous in the HTM
range" (§3.1).  Equal population (same number of objects per bucket) gives
uniform I/O cost per bucket, which is what makes a single ``Tb`` constant
meaningful.

Two partitioning modes are supported:

* :meth:`BucketPartitioner.partition_objects` — the real thing: sort the
  catalog by HTM ID and cut it into buckets of ``objects_per_bucket`` rows.
* :meth:`BucketPartitioner.partition_density` — the scaled simulation mode:
  given only a per-region density profile, produce the same
  :class:`PartitionLayout` without materialising hundreds of millions of
  rows.  The layout carries per-bucket object counts so the cost model and
  the workload generator behave identically in both modes.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.htm import ids as htm_ids
from repro.htm.curve import HTMRange

#: Paper defaults: 10,000-object buckets of roughly 40 MB each.
DEFAULT_OBJECTS_PER_BUCKET = 10_000
DEFAULT_BUCKET_MEGABYTES = 40.0


@dataclass(frozen=True)
class BucketSpec:
    """Static description of one bucket of the partition layout.

    Attributes
    ----------
    index:
        Position of the bucket along the HTM curve (0-based); the paper's
        ``B_1 … B_n``.
    htm_range:
        Inclusive range of leaf-level HTM IDs covered by the bucket.
    object_count:
        Number of catalog objects stored in the bucket.
    megabytes:
        On-disk size used by the disk model when the bucket is read.
    """

    index: int
    htm_range: HTMRange
    object_count: int
    megabytes: float

    def contains_htm_id(self, htm_id: int) -> bool:
        """Return ``True`` when *htm_id* falls inside this bucket."""
        return htm_id in self.htm_range


class PartitionLayout:
    """The full list of buckets plus fast lookup from HTM ID to bucket."""

    def __init__(self, buckets: Sequence[BucketSpec], leaf_level: int) -> None:
        if not buckets:
            raise ValueError("a partition layout needs at least one bucket")
        expected = list(range(len(buckets)))
        if [b.index for b in buckets] != expected:
            raise ValueError("bucket indices must be consecutive starting at 0")
        lows = [b.htm_range.low for b in buckets]
        if lows != sorted(lows):
            raise ValueError("buckets must be ordered along the HTM curve")
        self._buckets: Tuple[BucketSpec, ...] = tuple(buckets)
        self._lows: List[int] = lows
        self.leaf_level = leaf_level

    @property
    def buckets(self) -> Tuple[BucketSpec, ...]:
        """All bucket specs in curve order."""
        return self._buckets

    def __eq__(self, other: object) -> bool:
        """Layouts are equal when every bucket spec and the level match.

        Used to validate that an on-disk store file describes the same
        site as a simulator's configured partition (bucket boundaries,
        counts and sizes all enter the cost model, so any drift would
        silently change measured numbers).
        """
        if not isinstance(other, PartitionLayout):
            return NotImplemented
        return self.leaf_level == other.leaf_level and self._buckets == other._buckets

    def __hash__(self) -> int:
        """Hash consistent with :meth:`__eq__` (specs are frozen dataclasses)."""
        return hash((self.leaf_level, self._buckets))

    def __len__(self) -> int:
        return len(self._buckets)

    def __iter__(self):
        return iter(self._buckets)

    def __getitem__(self, index: int) -> BucketSpec:
        return self._buckets[index]

    def bucket_for_htm_id(self, htm_id: int) -> BucketSpec:
        """Return the bucket containing *htm_id* (leaf-level ID)."""
        position = bisect.bisect_right(self._lows, htm_id) - 1
        if position < 0:
            raise KeyError(f"HTM ID {htm_id} precedes the first bucket")
        bucket = self._buckets[position]
        if htm_id > bucket.htm_range.high:
            raise KeyError(f"HTM ID {htm_id} falls in a gap after bucket {position}")
        return bucket

    def buckets_for_range(self, htm_range: HTMRange) -> List[BucketSpec]:
        """Return every bucket whose extent overlaps *htm_range*, in curve order."""
        first = bisect.bisect_right(self._lows, htm_range.low) - 1
        if first < 0:
            first = 0
        result: List[BucketSpec] = []
        for bucket in self._buckets[first:]:
            if bucket.htm_range.low > htm_range.high:
                break
            if bucket.htm_range.overlaps(htm_range):
                result.append(bucket)
        return result

    def total_objects(self) -> int:
        """Sum of the per-bucket object counts."""
        return sum(b.object_count for b in self._buckets)

    def total_megabytes(self) -> float:
        """Total on-disk size of the partitioned table."""
        return sum(b.megabytes for b in self._buckets)

    def describe(self) -> Dict[str, float]:
        """Summary statistics used by reports and sanity tests."""
        counts = [b.object_count for b in self._buckets]
        return {
            "bucket_count": float(len(self._buckets)),
            "total_objects": float(sum(counts)),
            "min_objects": float(min(counts)),
            "max_objects": float(max(counts)),
            "total_megabytes": self.total_megabytes(),
        }


class BucketPartitioner:
    """Builds :class:`PartitionLayout` objects.

    Parameters
    ----------
    objects_per_bucket:
        Target population of each bucket (paper default 10,000).
    bucket_megabytes:
        On-disk size charged for reading a full bucket (paper default 40 MB).
        When partitioning real objects the size is scaled proportionally for
        the final, partially filled bucket.
    leaf_level:
        HTM level of the IDs carried by the objects.
    """

    def __init__(
        self,
        objects_per_bucket: int = DEFAULT_OBJECTS_PER_BUCKET,
        bucket_megabytes: float = DEFAULT_BUCKET_MEGABYTES,
        leaf_level: int = htm_ids.SKYQUERY_LEVEL,
    ) -> None:
        if objects_per_bucket <= 0:
            raise ValueError("objects_per_bucket must be positive")
        if bucket_megabytes <= 0:
            raise ValueError("bucket_megabytes must be positive")
        self.objects_per_bucket = objects_per_bucket
        self.bucket_megabytes = bucket_megabytes
        self.leaf_level = leaf_level

    def partition_objects(self, htm_ids_sorted: Sequence[int]) -> PartitionLayout:
        """Partition a catalog given the **sorted** HTM IDs of its objects.

        Consecutive runs of ``objects_per_bucket`` IDs form one bucket; each
        bucket's HTM range extends from the midpoint with its predecessor to
        the midpoint with its successor so that every leaf ID maps to
        exactly one bucket with no gaps.
        """
        if not htm_ids_sorted:
            raise ValueError("cannot partition an empty catalog")
        if any(
            htm_ids_sorted[i] > htm_ids_sorted[i + 1]
            for i in range(len(htm_ids_sorted) - 1)
        ):
            raise ValueError("object HTM IDs must be sorted")
        curve_start = 8 << (2 * self.leaf_level)
        curve_end = (16 << (2 * self.leaf_level)) - 1

        buckets: List[BucketSpec] = []
        previous_high = curve_start - 1
        start = 0
        bucket_index = 0
        total = len(htm_ids_sorted)
        while start < total:
            end = min(start + self.objects_per_bucket, total)
            # Never split a run of equal HTM IDs across a bucket boundary —
            # bucket extents are ID ranges, so equal IDs must land together.
            if end < total:
                boundary_id = htm_ids_sorted[end - 1]
                while end < total and htm_ids_sorted[end] == boundary_id:
                    end += 1
            count = end - start
            if end < total:
                next_first_id = htm_ids_sorted[end]
                last_id = htm_ids_sorted[end - 1]
                # Split the gap between this bucket's last object and the next
                # bucket's first object down the middle, keeping the boundary
                # strictly before the next object's ID.
                high = last_id + max(0, (next_first_id - last_id) // 2)
                high = min(high, next_first_id - 1)
                high = max(high, previous_high + 1)
            else:
                high = curve_end
            low = previous_high + 1
            size = self.bucket_megabytes * (count / self.objects_per_bucket)
            buckets.append(BucketSpec(bucket_index, HTMRange(low, high), count, size))
            previous_high = high
            start = end
            bucket_index += 1
        return PartitionLayout(buckets, self.leaf_level)

    def partition_density(
        self,
        bucket_count: int,
        densities: Optional[Sequence[float]] = None,
        total_objects: Optional[int] = None,
    ) -> PartitionLayout:
        """Build a layout directly from a density profile (simulation mode).

        ``densities`` gives the *relative* amount of sky (curve length)
        consumed by each bucket; because buckets hold equal numbers of
        objects, a dense region produces narrow buckets and a sparse region
        wide ones.  When omitted, buckets are equal-width.
        """
        if bucket_count <= 0:
            raise ValueError("bucket_count must be positive")
        if densities is not None and len(densities) != bucket_count:
            raise ValueError("densities must have one entry per bucket")
        if densities is not None and any(d <= 0 for d in densities):
            raise ValueError("densities must be positive")
        total = total_objects or bucket_count * self.objects_per_bucket
        per_bucket = total // bucket_count
        curve_start = 8 << (2 * self.leaf_level)
        curve_end = (16 << (2 * self.leaf_level)) - 1
        curve_length = curve_end - curve_start + 1
        if densities is None:
            weights = [1.0] * bucket_count
        else:
            # A *denser* region packs the same object count into *less* curve.
            weights = [1.0 / d for d in densities]
        weight_sum = sum(weights)

        buckets: List[BucketSpec] = []
        cursor = curve_start
        consumed = 0.0
        for index in range(bucket_count):
            consumed += weights[index]
            if index + 1 < bucket_count:
                high = curve_start + int(curve_length * consumed / weight_sum) - 1
                high = max(high, cursor)  # every bucket covers at least one ID
            else:
                high = curve_end
            count = (
                per_bucket if index < bucket_count - 1 else total - per_bucket * (bucket_count - 1)
            )
            size = self.bucket_megabytes * (count / self.objects_per_bucket)
            buckets.append(BucketSpec(index, HTMRange(cursor, high), count, size))
            cursor = high + 1
        return PartitionLayout(buckets, self.leaf_level)


def layout_from_ranges(
    ranges: Iterable[Tuple[int, int]],
    object_counts: Iterable[int],
    bucket_megabytes: float = DEFAULT_BUCKET_MEGABYTES,
    objects_per_bucket: int = DEFAULT_OBJECTS_PER_BUCKET,
    leaf_level: int = htm_ids.SKYQUERY_LEVEL,
) -> PartitionLayout:
    """Assemble a layout from explicit ``(low, high)`` ranges and counts."""
    buckets = []
    for index, ((low, high), count) in enumerate(zip(ranges, object_counts)):
        size = bucket_megabytes * (count / objects_per_bucket)
        buckets.append(BucketSpec(index, HTMRange(low, high), count, size))
    return PartitionLayout(buckets, leaf_level)
