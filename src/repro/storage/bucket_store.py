"""Bucket store: the database server behind the bucket cache.

The Bucket Cache in the LifeRaft architecture (§4) "either reads an
existing bucket from memory or executes a range query to ask for the
bucket from the database server".  :class:`BucketStore` plays the part of
that database server.  It owns the partition layout and, for every bucket,
either

* the materialised, HTM-sorted list of catalog objects (full-fidelity mode,
  used by the examples and the correctness tests of the join), or
* only the object count from the layout (virtual mode, used by the scaled
  experiments where matching individual base-table rows is unnecessary —
  the cost model only needs counts).

Reading a bucket always charges the sequential-scan cost to the disk
model, which is how ``Tb`` enters the simulation.
"""

from __future__ import annotations

import bisect
import hashlib
import struct
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.storage.disk_model import DiskModel, DiskParameters
from repro.storage.partitioner import BucketSpec, PartitionLayout


class Bucket:
    """An in-memory image of one bucket, as handed to the join evaluator.

    Full-fidelity buckets carry their rows in one of two forms:

    * eager tuples (``objects`` / ``htm_ids``) — the in-memory store's
      native shape;
    * a zero-copy :class:`~repro.storage.format.ColumnBlock`
      (``columns``) — the file-backed store's shape, where the columns
      are casts over the reader's mmap.

    With columns attached, ``objects`` and ``htm_ids`` still work — they
    materialise lazily on first access — so every row-at-a-time consumer
    is unchanged while the columnar kernels never pay for row objects.
    """

    __slots__ = ("spec", "columns", "_objects", "_htm_ids")

    def __init__(
        self,
        spec: BucketSpec,
        objects: Tuple[object, ...] = (),
        htm_ids: Tuple[int, ...] = (),
        columns: Optional[object] = None,
    ) -> None:
        if columns is not None and (objects or htm_ids):
            raise ValueError("pass either columns or materialised rows, not both")
        self.spec = spec
        #: Decoded :class:`~repro.storage.format.ColumnBlock`; ``None``
        #: for eager (in-memory) and virtual buckets.
        self.columns = columns
        self._objects: Optional[Tuple[object, ...]] = (
            None if columns is not None else tuple(objects)
        )
        self._htm_ids: Optional[Sequence[int]] = (
            None if columns is not None else tuple(htm_ids)
        )

    @property
    def objects(self) -> Tuple[object, ...]:
        """Objects sorted by HTM ID; empty in virtual mode (lazy when columnar)."""
        if self._objects is None:
            self._objects = self.columns.rows()
        return self._objects

    @property
    def htm_ids(self) -> Sequence[int]:
        """HTM IDs aligned with ``objects`` (kept separately for cheap merging)."""
        if self._htm_ids is None:
            self._htm_ids = self.columns.htm_ids
        return self._htm_ids

    @property
    def row_count(self) -> int:
        """Number of materialised rows (without materialising them)."""
        if self.columns is not None:
            return len(self.columns)
        return len(self._objects)

    @property
    def index(self) -> int:
        """Bucket position along the HTM curve."""
        return self.spec.index

    @property
    def object_count(self) -> int:
        """Number of objects the bucket holds on disk."""
        return self.spec.object_count

    @property
    def is_virtual(self) -> bool:
        """``True`` when the bucket carries counts but no materialised rows."""
        return self.row_count == 0 and self.spec.object_count > 0

    def __repr__(self) -> str:
        shape = "columnar" if self.columns is not None else "eager"
        return f"Bucket(index={self.spec.index}, rows={self.row_count}, {shape})"


@dataclass
class BucketReadResult:
    """A bucket image together with the I/O cost paid to obtain it."""

    bucket: Bucket
    cost_ms: float
    from_disk: bool


@dataclass(frozen=True)
class StoreSnapshot:
    """A read-only, picklable image of a :class:`BucketStore`.

    The snapshot carries everything a worker process needs to rebuild an
    equivalent store without sharing any mutable state with the parent.
    Two variants exist:

    * **in-memory** — the partition layout, the disk parameters and the
      (optional) materialised catalog travel inside the pickle;
    * **path-based** (``store_path`` set) — only the file path, its
      expected generation and the disk parameters travel; the restoring
      process reopens the columnar store file read-only and does its own
      physical I/O.  This keeps :class:`~repro.parallel.ipc.ShardTask`
      pickles small even for fully materialised archives.

    Each process that restores a snapshot gets its own read counters and
    its own (trace-disabled) disk model, mirroring N database servers
    over one immutable archive.
    """

    #: ``None`` for path-based snapshots (the file carries the layout).
    layout: Optional[PartitionLayout]
    disk_parameters: "DiskParameters"
    catalog: Optional[Tuple[Tuple[int, ...], Tuple[object, ...]]] = None
    #: Path to a columnar ``.lrbs`` store file (path-based variant).
    store_path: Optional[str] = None
    #: Expected file generation; restoring fails cleanly on a mismatch.
    generation: Optional[str] = None
    #: Tier-2 decoded-page cache capacity for the restored store.
    page_cache_buckets: int = 0


class BucketStore:
    """Serves bucket reads against the partitioned fact table.

    Parameters
    ----------
    layout:
        The partition layout (bucket boundaries, counts, sizes).
    disk:
        Disk model charged for each read.
    objects:
        Optional full catalog as parallel, HTM-sorted sequences of
        ``(htm_ids, objects)``.  When omitted the store operates in virtual
        mode and returns count-only buckets.
    """

    def __init__(
        self,
        layout: PartitionLayout,
        disk: Optional[DiskModel] = None,
        objects: Optional[Tuple[Sequence[int], Sequence[object]]] = None,
    ) -> None:
        self.layout = layout
        self.disk = disk or DiskModel()
        self._sorted_ids: Optional[List[int]] = None
        self._sorted_objects: Optional[List[object]] = None
        self.reads = 0
        self.bytes_read_mb = 0.0
        if objects is not None:
            ids, rows = objects
            if len(ids) != len(rows):
                raise ValueError("htm_ids and objects must be the same length")
            if any(ids[i] > ids[i + 1] for i in range(len(ids) - 1)):
                raise ValueError("objects must be sorted by HTM ID")
            self._sorted_ids = list(ids)
            self._sorted_objects = list(rows)

    @property
    def is_virtual(self) -> bool:
        """``True`` when no materialised catalog is attached."""
        return self._sorted_ids is None

    @property
    def generation(self) -> str:
        """Content-derived identity of the served partition.

        File-backed stores override this with the store file's directory
        digest; the in-memory store derives an equivalent digest from its
        layout so checkpoints (which are only valid against the exact
        store they were captured over) can be generation-bound on every
        storage tier.
        """
        cached = getattr(self, "_generation", None)
        if cached is not None:
            return cached
        digest = hashlib.sha256()
        digest.update(struct.pack("<IQ", self.layout.leaf_level, len(self.layout)))
        for index in range(len(self.layout)):
            spec = self.layout[index]
            digest.update(
                struct.pack(
                    "<QQQd",
                    spec.htm_range.low,
                    spec.htm_range.high,
                    spec.object_count,
                    spec.megabytes,
                )
            )
        self._generation = digest.hexdigest()[:16]
        return self._generation

    def close(self) -> None:
        """Release any backing resources (no-op for the in-memory store).

        Defined on the base class so every store is usable as a context
        manager: the simulator opens stores per run inside ``with`` blocks
        and a failed run can never leak a file descriptor.
        """

    def __enter__(self) -> "BucketStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def snapshot(self) -> StoreSnapshot:
        """Capture a read-only image of this store for another process."""
        catalog = None
        if self._sorted_ids is not None and self._sorted_objects is not None:
            catalog = (tuple(self._sorted_ids), tuple(self._sorted_objects))
        return StoreSnapshot(
            layout=self.layout,
            disk_parameters=self.disk.parameters,
            catalog=catalog,
        )

    @classmethod
    def from_snapshot(cls, snapshot: StoreSnapshot) -> "BucketStore":
        """Rebuild an equivalent store from a :class:`StoreSnapshot`.

        The restored store charges the same costs as the original (same
        disk parameters, no I/O trace) but owns fresh read counters, so
        per-process accounting can be summed by the coordinator.  A
        path-based snapshot restores as a file-backed
        :class:`~repro.storage.disk_store.DiskBucketStore` opened
        read-only against the snapshot's generation.
        """
        if snapshot.store_path is not None:
            from repro.storage.disk_store import open_disk_store

            return open_disk_store(
                snapshot.store_path,
                DiskModel(snapshot.disk_parameters),
                page_cache_buckets=snapshot.page_cache_buckets,
                expected_generation=snapshot.generation,
            )
        if snapshot.layout is None:
            raise ValueError("snapshot carries neither a layout nor a store path")
        catalog = None
        if snapshot.catalog is not None:
            ids, rows = snapshot.catalog
            catalog = (list(ids), list(rows))
        return cls(
            snapshot.layout,
            DiskModel(snapshot.disk_parameters),
            objects=catalog,
        )

    def read_bucket(self, bucket_index: int, charge_io: bool = True) -> BucketReadResult:
        """Execute the range query for bucket *bucket_index*.

        Returns the bucket image and the sequential-read cost.  ``charge_io``
        can be disabled by callers that account for I/O themselves (the
        NoShare baseline charges per query rather than per distinct bucket).
        """
        spec = self.layout[bucket_index]
        cost = 0.0
        if charge_io:
            cost = self.disk.bucket_read_ms(spec.megabytes, label=f"bucket:{bucket_index}")
        self.reads += 1
        self.bytes_read_mb += spec.megabytes
        return BucketReadResult(self._materialise(spec), cost, from_disk=True)

    def bucket_image(self, bucket_index: int) -> Bucket:
        """Return the bucket image without charging any I/O (for tests)."""
        return self._materialise(self.layout[bucket_index])

    def read_cost_ms(self, bucket_index: int) -> float:
        """Cost of reading bucket *bucket_index* without performing the read."""
        spec = self.layout[bucket_index]
        return self.disk.parameters.positioning_ms + self.disk.parameters.transfer_ms(
            spec.megabytes
        )

    def _materialise(self, spec: BucketSpec) -> Bucket:
        if self._sorted_ids is None or self._sorted_objects is None:
            return Bucket(spec)
        low = bisect.bisect_left(self._sorted_ids, spec.htm_range.low)
        high = bisect.bisect_right(self._sorted_ids, spec.htm_range.high)
        return Bucket(
            spec,
            objects=tuple(self._sorted_objects[low:high]),
            htm_ids=tuple(self._sorted_ids[low:high]),
        )

    def statistics(self) -> Dict[str, float]:
        """Aggregate read counters (used by the experiment reports)."""
        return {
            "bucket_reads": float(self.reads),
            "megabytes_read": self.bytes_read_mb,
        }
