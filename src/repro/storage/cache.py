"""A generic least-recently-used cache with hit/miss accounting.

The paper's Bucket Cache uses "a simple least recently used policy for
cache replacement" (§4) and is fixed at 20 buckets in the experiments
(§5).  The LifeRaft-specific wrapper lives in
:mod:`repro.core.bucket_cache`; this module provides the policy itself,
kept separate so it can be unit- and property-tested in isolation and
reused by the federation substrate for result caching.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Generic, Iterator, Optional, Tuple, TypeVar

K = TypeVar("K")
V = TypeVar("V")


@dataclass
class CacheStatistics:
    """Counters describing cache behaviour over its lifetime."""

    hits: int = 0
    misses: int = 0
    insertions: int = 0
    evictions: int = 0

    @property
    def accesses(self) -> int:
        """Total number of lookups."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0 when never accessed)."""
        if self.accesses == 0:
            return 0.0
        return self.hits / self.accesses

    def snapshot(self) -> Dict[str, float]:
        """Return the counters as a plain dictionary (for reports)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "insertions": self.insertions,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
        }

    def restore(self, counters: Dict[str, float]) -> None:
        """Overwrite the counters from a :meth:`snapshot` dictionary.

        Crash recovery rebuilds a cache at a checkpointed state; the
        counters must resume from their checkpointed values so lifetime
        hit rates are identical to an uninterrupted run.
        """
        self.hits = int(counters.get("hits", 0))
        self.misses = int(counters.get("misses", 0))
        self.insertions = int(counters.get("insertions", 0))
        self.evictions = int(counters.get("evictions", 0))


class LRUCache(Generic[K, V]):
    """Bounded mapping that evicts the least recently used entry when full.

    ``get`` and ``put`` both count as "uses" for recency purposes, matching
    the behaviour of a buffer pool where reading or (re)loading a bucket
    makes it the most recently used frame.
    """

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError("cache capacity must be positive")
        self._capacity = capacity
        self._entries: "OrderedDict[K, V]" = OrderedDict()
        self.statistics = CacheStatistics()

    @property
    def capacity(self) -> int:
        """Maximum number of entries held."""
        return self._capacity

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: K) -> bool:
        return key in self._entries

    def __iter__(self) -> Iterator[K]:
        return iter(self._entries)

    def contains(self, key: K) -> bool:
        """Membership test that does **not** update recency or statistics.

        The workload-throughput metric needs to ask "is bucket *i* resident"
        (the φ(i) term) without perturbing the cache state, so a
        side-effect-free probe is part of the public interface.
        """
        return key in self._entries

    def get(self, key: K) -> Optional[V]:
        """Return the cached value for *key*, updating recency; ``None`` on miss."""
        if key in self._entries:
            self._entries.move_to_end(key)
            self.statistics.hits += 1
            return self._entries[key]
        self.statistics.misses += 1
        return None

    def peek(self, key: K) -> Optional[V]:
        """Return the cached value without updating recency or statistics."""
        return self._entries.get(key)

    def put(self, key: K, value: V) -> Optional[Tuple[K, V]]:
        """Insert or refresh *key*, returning the evicted ``(key, value)`` if any."""
        evicted: Optional[Tuple[K, V]] = None
        if key in self._entries:
            self._entries.move_to_end(key)
            self._entries[key] = value
            return None
        if len(self._entries) >= self._capacity:
            evicted = self._entries.popitem(last=False)
            self.statistics.evictions += 1
        self._entries[key] = value
        self.statistics.insertions += 1
        return evicted

    def seed(self, key: K, value: V) -> None:
        """Insert *key* as the most recent entry without touching counters.

        Recovery rebuilds a checkpointed cache image entry by entry (least
        to most recently used); seeding must neither count as an access
        nor evict — the caller replays at most ``capacity`` entries.
        """
        if key not in self._entries and len(self._entries) >= self._capacity:
            raise ValueError(
                f"cannot seed more than {self._capacity} entries into the cache"
            )
        self._entries[key] = value
        self._entries.move_to_end(key)

    def invalidate(self, key: K) -> bool:
        """Drop *key* from the cache; return ``True`` when it was present."""
        if key in self._entries:
            del self._entries[key]
            return True
        return False

    def clear(self) -> None:
        """Drop every entry (the paper flushes the DBMS buffer between buckets)."""
        self._entries.clear()

    def keys_by_recency(self) -> Tuple[K, ...]:
        """Keys ordered from least to most recently used."""
        return tuple(self._entries.keys())

    def resize(self, capacity: int) -> None:
        """Change the capacity, evicting the least recent entries if shrinking."""
        if capacity <= 0:
            raise ValueError("cache capacity must be positive")
        self._capacity = capacity
        while len(self._entries) > self._capacity:
            self._entries.popitem(last=False)
            self.statistics.evictions += 1
