"""Ingest: materialise catalogs (real or synthetic) as bucket store files.

Two ingest paths cover the two partitioning modes of the reproduction:

* :func:`ingest_catalog` — the real thing: partition a generated
  :class:`~repro.catalog.objects.CatalogTable` into equal-population
  buckets and write every row, HTM-sorted, into the columnar file.  This
  is the path the full-fidelity examples and the round-trip tests use.
* :func:`materialize_layout` — the scaled-experiment path: take a
  density-derived :class:`~repro.storage.partitioner.PartitionLayout`
  (whose buckets carry counts, not rows) and synthesise a bounded number
  of deterministic physical rows per bucket.  The layout's cost-model
  numbers (``object_count``, ``megabytes``) are written unchanged, so a
  file-backed run charges exactly the virtual-clock costs of the
  in-memory run while every bucket service performs real seeks, reads,
  checksum verification and columnar decoding.

Both return the :class:`~repro.storage.format.StoreManifest` of the
written file.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import List, Optional, Tuple

from repro.catalog.objects import CatalogTable, CelestialObject
from repro.storage.format import BucketFileWriter, StoreManifest, encode_bucket_page
from repro.storage.partitioner import (
    DEFAULT_BUCKET_MEGABYTES,
    DEFAULT_OBJECTS_PER_BUCKET,
    BucketPartitioner,
    BucketSpec,
    PartitionLayout,
)

#: Default cap on physical rows written per bucket when materialising a
#: density layout.  Real I/O work per bucket service stays meaningful
#: (kilobytes of packed columns to read and decode) while whole-site files
#: stay tens of megabytes instead of the archive's terabytes.  Raised
#: 256 → 512 once parallel ingest made bigger pages cheap to write.
DEFAULT_ROWS_PER_BUCKET = 512


def ingest_catalog(
    path: str | os.PathLike,
    table: CatalogTable,
    objects_per_bucket: int = DEFAULT_OBJECTS_PER_BUCKET,
    bucket_megabytes: float = DEFAULT_BUCKET_MEGABYTES,
    leaf_level: Optional[int] = None,
) -> StoreManifest:
    """Partition *table* into equal-population buckets and write them all.

    The resulting file is exact: every row of the catalog appears in its
    bucket's page, HTM-sorted, and the reconstructed layout is identical
    to what :meth:`BucketPartitioner.partition_objects` returns for the
    same catalog.
    """
    if len(table) == 0:
        raise ValueError("cannot ingest an empty catalog")
    kwargs = {} if leaf_level is None else {"leaf_level": leaf_level}
    partitioner = BucketPartitioner(
        objects_per_bucket=objects_per_bucket,
        bucket_megabytes=bucket_megabytes,
        **kwargs,
    )
    layout = partitioner.partition_objects(list(table.htm_ids))
    writer = BucketFileWriter(path, layout)
    try:
        cursor = 0
        ids = table.htm_ids
        rows = table.rows
        for spec in layout:
            end = cursor + spec.object_count
            writer.append_bucket(ids[cursor:end], rows[cursor:end])
            cursor = end
        return writer.finish()
    except BaseException:
        writer.abort()
        raise


def synthesize_bucket_rows(
    spec: BucketSpec, rows: int, survey: str = "synthetic", seed: int = 0
) -> list[CelestialObject]:
    """Deterministic physical rows for one count-only bucket.

    HTM IDs are spread evenly over the bucket's curve range (ascending, so
    pages stay merge-join ready); positions and magnitudes are cheap
    arithmetic functions of the ID and the seed.  The rows exist to give
    file-backed runs real bytes to move and decode — the scaled workload
    never inspects them (its queries carry count footprints, not objects).
    """
    if rows < 0:
        raise ValueError("rows must be non-negative")
    low, high = spec.htm_range.low, spec.htm_range.high
    span = high - low + 1
    result = []
    for i in range(rows):
        htm_id = low + (i * span) // max(rows, 1)
        mix = (htm_id * 2654435761 + seed * 97 + i) & 0xFFFFFFFF
        result.append(
            CelestialObject(
                # Bucket-scoped base keeps IDs unique across buckets even
                # when row counts vary per bucket (partial final buckets).
                object_id=(spec.index << 32) | i,
                ra=(mix % 3_600_000) / 10_000.0,
                dec=((mix >> 12) % 1_600_000) / 10_000.0 - 80.0,
                htm_id=htm_id,
                magnitude=14.0 + (mix % 8_000) / 1_000.0,
                survey=survey,
            )
        )
    return result


def _encode_synthetic_page(
    task: Tuple[BucketSpec, int, int],
) -> Tuple[int, bytes, Tuple[str, ...]]:
    """Synthesise and encode one bucket page (importable for ``spawn``).

    Each worker encodes against a fresh survey dictionary; because every
    synthesised row carries the same survey, the dictionary every worker
    derives is identical to the one a serial ingest would have built, so
    the assembled file is byte-identical (asserted by the parallel-ingest
    determinism tests).
    """
    spec, count, seed = task
    rows = synthesize_bucket_rows(spec, count, seed=seed)
    survey_codes: dict = {}
    page = encode_bucket_page([row.htm_id for row in rows], rows, survey_codes)
    surveys = tuple(sorted(survey_codes, key=survey_codes.get))
    return len(rows), page, surveys


def materialize_layout(
    path: str | os.PathLike,
    layout: PartitionLayout,
    rows_per_bucket: Optional[int] = DEFAULT_ROWS_PER_BUCKET,
    seed: int = 0,
    workers: int = 1,
) -> StoreManifest:
    """Write a density layout to disk with synthesised physical rows.

    Each bucket's page holds ``min(object_count, rows_per_bucket)``
    deterministic rows (``rows_per_bucket=None`` materialises every
    counted object).  The directory records the layout's *original*
    object counts and megabytes, so the cost model — and therefore every
    virtual-clock number — is unchanged relative to the in-memory store.

    ``workers > 1`` fans the synthesise+encode work (the CPU-bound part)
    out over a spawn-safe process pool while this process stays the
    single writer, appending the encoded pages in layout order — the
    output file is byte-identical to a serial ingest, whatever the
    worker count.
    """
    if rows_per_bucket is not None and rows_per_bucket < 0:
        raise ValueError("rows_per_bucket must be non-negative")
    if workers < 1:
        raise ValueError("workers must be positive")
    tasks: List[Tuple[BucketSpec, int, int]] = []
    for spec in layout:
        count = spec.object_count
        if rows_per_bucket is not None:
            count = min(count, rows_per_bucket)
        tasks.append((spec, count, seed))
    writer = BucketFileWriter(path, layout)
    try:
        if workers == 1 or len(tasks) < 2:
            for task in tasks:
                row_count, page, surveys = _encode_synthetic_page(task)
                writer.append_encoded(page, row_count, surveys)
        else:
            context = multiprocessing.get_context("spawn")
            chunk = max(1, len(tasks) // (workers * 4))
            with context.Pool(min(workers, len(tasks))) as pool:
                # imap preserves layout order: pages are encoded out of
                # order across the pool but assembled sequentially here.
                for row_count, page, surveys in pool.imap(
                    _encode_synthetic_page, tasks, chunksize=chunk
                ):
                    writer.append_encoded(page, row_count, surveys)
        return writer.finish()
    except BaseException:
        writer.abort()
        raise


__all__ = [
    "DEFAULT_ROWS_PER_BUCKET",
    "ingest_catalog",
    "materialize_layout",
    "synthesize_bucket_rows",
]
