"""The on-disk columnar bucket format (``.lrbs`` — LifeRaft Bucket Store).

LifeRaft's economics come from amortising *physical* sequential bucket
reads across query batches (§4–5); measuring that requires buckets that
actually live on disk.  This module defines the compact columnar file
format the rest of the storage subsystem reads and writes:

.. code-block:: text

    +--------------------------------------------------------------+
    | header   magic "LRBS" | version | flags | leaf_level          |
    |          bucket_count | directory_offset | header_crc         |
    +--------------------------------------------------------------+
    | bucket 0 page   row_count | col htm_id[] | col object_id[]    |
    |                 col ra[] | col dec[] | col magnitude[]        |
    |                 col survey_code[]                             |
    +--------------------------------------------------------------+
    | bucket 1 page   ...                                           |
    |   ⋮                                                           |
    +--------------------------------------------------------------+
    | directory   per bucket: htm low/high | object_count           |
    |             megabytes | row_count | page offset | page length |
    |             page_crc | survey dictionary | directory_crc      |
    +--------------------------------------------------------------+

Design points:

* **One file per partition layout.**  The header + directory carry the
  complete :class:`~repro.storage.partitioner.PartitionLayout`, so a
  reader reconstructs the site's bucket boundaries without any side
  channel — worker processes open the file read-only instead of
  unpickling the whole catalog.
* **Columnar, struct-packed pages.**  Within a bucket page each column is
  stored contiguously (``<{n}Q`` / ``<{n}d`` arrays), HTM-sorted, so a
  bucket read is one seek plus one sequential transfer followed by a
  cheap bulk ``struct.unpack`` — the same access pattern the paper's
  ``Tb`` constant models.
* **Checksums everywhere.**  The header, every bucket page and the
  directory carry CRC32s; corruption and truncation surface as a clean
  :class:`StoreFormatError` instead of garbage buckets.
* **A content-derived generation.**  The file's *generation* is a digest
  of its directory — which embeds every page's CRC, so it covers page
  *content*, not just the layout; it keys the decoded-page cache tier so
  pages decoded from one ingest are never served against a re-ingested
  file, even one with identical layout and row counts.

Row counts may be smaller than the layout's per-bucket object counts:
the scaled experiments charge costs from the layout (``object_count``,
``megabytes``) while materialising a bounded number of physical rows per
bucket, so real I/O work is present without multi-gigabyte files.
"""

from __future__ import annotations

import hashlib
import io
import mmap
import os
import struct
import sys
from dataclasses import dataclass, field
from typing import BinaryIO, Dict, List, Sequence, Tuple

from repro.catalog.objects import CelestialObject
from repro.htm.curve import HTMRange
from repro.storage.partitioner import BucketSpec, PartitionLayout

try:  # zlib is optional in exotic builds; binascii.crc32 is the fallback.
    from zlib import crc32
except ImportError:  # pragma: no cover - zlib ships with CPython
    from binascii import crc32

#: File magic: LifeRaft Bucket Store.
MAGIC = b"LRBS"
#: Current format version.  Readers reject any other version cleanly.
FORMAT_VERSION = 1
#: Default file extension used by the ingest CLI and the examples.
STORE_SUFFIX = ".lrbs"

_HEADER = struct.Struct("<4sHHIIQI")  # magic, version, flags, leaf_level,
# bucket_count, directory_offset, header_crc
_DIR_ENTRY = struct.Struct("<QQQdQQQI")  # low, high, object_count, megabytes,
# row_count, page_offset, page_length, page_crc
_PAGE_HEADER = struct.Struct("<I")  # row_count
_CRC = struct.Struct("<I")


class StoreFormatError(RuntimeError):
    """Raised when a bucket store file is malformed, corrupt or truncated."""


#: Column casts are zero-copy only when the machine's byte order matches the
#: file's little-endian layout; big-endian hosts fall back to a bulk
#: ``struct.unpack`` (still column-at-a-time, just one copy per column).
_NATIVE_LITTLE_ENDIAN = sys.byteorder == "little"


@dataclass(frozen=True)
class ColumnBlock:
    """One decoded bucket page as typed, whole-column sequences.

    This is the zero-copy evaluation currency of the storage subsystem:
    each attribute is a ``memoryview`` cast directly over the page bytes
    (on little-endian hosts) rather than a tuple of per-row objects, so
    decoding a page costs six buffer casts instead of one Python object
    per row.  Kernels in :mod:`repro.core.kernels` evaluate crossmatch
    work directly against these columns; :class:`~repro.catalog.objects.
    CelestialObject` rows are only materialised at the result boundary
    via :meth:`row` / :meth:`rows`.

    The columns keep the backing buffer (usually the reader's mmap)
    alive for as long as the block is referenced, so cached blocks stay
    valid even after the store that decoded them is closed.
    """

    #: HTM IDs, ascending (the on-disk order is the merge-join order).
    htm_ids: Sequence[int]
    object_ids: Sequence[int]
    ra: Sequence[float]
    dec: Sequence[float]
    magnitude: Sequence[float]
    survey_codes: Sequence[int]
    #: The file's survey dictionary (shared by every block of one store).
    surveys: Tuple[str, ...]
    _rows: List[Tuple["CelestialObject", ...]] = field(
        default_factory=list, repr=False, compare=False
    )

    def __len__(self) -> int:
        return len(self.htm_ids)

    def row(self, index: int) -> "CelestialObject":
        """Materialise one row object (the result-boundary escape hatch)."""
        return CelestialObject(
            object_id=self.object_ids[index],
            ra=self.ra[index],
            dec=self.dec[index],
            htm_id=self.htm_ids[index],
            magnitude=self.magnitude[index],
            survey=self.surveys[self.survey_codes[index]],
        )

    def rows(self) -> Tuple["CelestialObject", ...]:
        """Materialise every row (memoised: full scans share one tuple)."""
        if not self._rows:
            self._rows.append(tuple(self.row(i) for i in range(len(self))))
        return self._rows[0]


def decode_column_block(payload, surveys: Sequence[str]) -> ColumnBlock:
    """Decode one bucket page into a :class:`ColumnBlock` without copying.

    *payload* may be any buffer (a ``memoryview`` over the reader's mmap
    in the hot path).  Structural validation matches
    :func:`decode_bucket_page`: a malformed length or an out-of-range
    survey code raises :class:`StoreFormatError`.  Row order is enforced
    at encode time and page content is CRC-covered, so this fast path
    does not re-verify sortedness row by row — the strict
    :func:`decode_bucket_page` still does.
    """
    view = memoryview(payload)
    if len(view) < _PAGE_HEADER.size:
        raise StoreFormatError("bucket page shorter than its row-count header")
    (count,) = _PAGE_HEADER.unpack_from(view, 0)
    offset = _PAGE_HEADER.size
    expected = offset + count * (8 + 8 + 8 + 8 + 8 + 1)
    if len(view) != expected:
        raise StoreFormatError(
            f"bucket page length mismatch: {len(view)} bytes for {count} rows "
            f"(expected {expected})"
        )

    def column(fmt: str, width: int) -> Sequence:
        nonlocal offset
        end = offset + count * width
        chunk = view[offset:end]
        offset = end
        if _NATIVE_LITTLE_ENDIAN:
            return chunk.cast(fmt)
        return struct.unpack(f"<{count}{fmt}", chunk)  # pragma: no cover

    ids = column("Q", 8)
    object_ids = column("q", 8)
    ras = column("d", 8)
    decs = column("d", 8)
    magnitudes = column("d", 8)
    codes = column("B", 1)
    # bytes() of a 1-byte column is a C-speed copy; max() over it is the
    # cheap way to validate every survey code in one pass.
    if count and max(bytes(codes)) >= len(surveys):
        raise StoreFormatError(
            f"bucket page references unknown survey code {max(bytes(codes))}"
        )
    return ColumnBlock(
        htm_ids=ids,
        object_ids=object_ids,
        ra=ras,
        dec=decs,
        magnitude=magnitudes,
        survey_codes=codes,
        surveys=tuple(surveys),
    )


@dataclass(frozen=True)
class StoreManifest:
    """Summary of one written (or opened) bucket store file."""

    path: str
    generation: str
    leaf_level: int
    bucket_count: int
    total_objects: int
    total_rows: int
    file_bytes: int


def _crc(payload: bytes) -> int:
    return crc32(payload) & 0xFFFFFFFF


def encode_bucket_page(
    htm_ids_sorted: Sequence[int],
    rows: Sequence[CelestialObject],
    survey_codes: Dict[str, int],
) -> bytes:
    """Encode one bucket's rows as a columnar page (without its CRC).

    Columns are struct-packed arrays in a fixed order: HTM IDs, object
    IDs, RA, Dec, magnitude, survey dictionary codes.  The HTM column must
    already be sorted — the on-disk order *is* the merge-join order.
    """
    count = len(rows)
    if len(htm_ids_sorted) != count:
        raise ValueError("htm_ids and rows must be the same length")
    if any(htm_ids_sorted[i] > htm_ids_sorted[i + 1] for i in range(count - 1)):
        raise ValueError("bucket pages must be HTM-sorted")
    buffer = io.BytesIO()
    buffer.write(_PAGE_HEADER.pack(count))
    buffer.write(struct.pack(f"<{count}Q", *htm_ids_sorted))
    buffer.write(struct.pack(f"<{count}q", *(row.object_id for row in rows)))
    buffer.write(struct.pack(f"<{count}d", *(row.ra for row in rows)))
    buffer.write(struct.pack(f"<{count}d", *(row.dec for row in rows)))
    buffer.write(struct.pack(f"<{count}d", *(row.magnitude for row in rows)))
    codes = []
    for row in rows:
        if row.survey not in survey_codes:
            if len(survey_codes) >= 255:
                raise ValueError("a store file supports at most 255 distinct surveys")
            survey_codes[row.survey] = len(survey_codes)
        codes.append(survey_codes[row.survey])
    buffer.write(struct.pack(f"<{count}B", *codes))
    return buffer.getvalue()


def decode_bucket_page(
    payload: bytes, surveys: Sequence[str]
) -> Tuple[Tuple[int, ...], Tuple[CelestialObject, ...]]:
    """Decode one bucket page back into ``(htm_ids, rows)``.

    The inverse of :func:`encode_bucket_page`; raises
    :class:`StoreFormatError` on any structural mismatch.  This is the
    strict path: unlike :func:`decode_column_block` it re-verifies row
    order, and it always materialises the row objects.
    """
    block = decode_column_block(payload, surveys)
    ids = tuple(block.htm_ids)
    if any(ids[i] > ids[i + 1] for i in range(len(ids) - 1)):
        raise StoreFormatError("bucket page is not HTM-sorted")
    return ids, block.rows()


class BucketFileWriter:
    """Streams bucket pages to disk, then seals the directory and header.

    Usage: construct with the partition layout, call :meth:`append_bucket`
    once per bucket **in layout order**, then :meth:`finish`.  The writer
    streams pages as they arrive (memory stays bounded by one page) and
    patches the header's directory offset last, so a crashed ingest leaves
    a file every reader rejects cleanly.
    """

    def __init__(self, path: str | os.PathLike, layout: PartitionLayout) -> None:
        self.path = os.fspath(path)
        self.layout = layout
        self._handle: BinaryIO = open(self.path, "wb")
        self._entries: List[Tuple[BucketSpec, int, int, int]] = []
        self._survey_codes: Dict[str, int] = {}
        self._next_index = 0
        self._total_rows = 0
        # Header with a zero directory offset: patched by finish().
        self._handle.write(self._header_bytes(directory_offset=0))

    def _header_bytes(self, directory_offset: int) -> bytes:
        body = _HEADER.pack(
            MAGIC,
            FORMAT_VERSION,
            0,
            self.layout.leaf_level,
            len(self.layout),
            directory_offset,
            0,
        )[: -_CRC.size]
        return body + _CRC.pack(_crc(body))

    def append_bucket(
        self, htm_ids_sorted: Sequence[int], rows: Sequence[CelestialObject]
    ) -> None:
        """Write the next bucket's page (buckets must arrive in layout order)."""
        if self._next_index >= len(self.layout):
            raise ValueError("more bucket pages than layout buckets")
        spec = self.layout[self._next_index]
        # First/last containment suffices: encode_bucket_page enforces
        # sortedness, so the whole column lies inside the bucket's range.
        if htm_ids_sorted:
            for htm_id in (htm_ids_sorted[0], htm_ids_sorted[-1]):
                if htm_id not in spec.htm_range:
                    raise ValueError(
                        f"row HTM ID {htm_id} falls outside bucket {spec.index}'s range"
                    )
        page = encode_bucket_page(htm_ids_sorted, rows, self._survey_codes)
        self._append_page(spec, page, len(rows))

    def append_encoded(
        self, page: bytes, row_count: int, surveys: Sequence[str]
    ) -> None:
        """Write the next bucket's pre-encoded page (the parallel-ingest path).

        *surveys* is the code-ordered survey dictionary the encoder used
        (code *i* is ``surveys[i]``).  Encoders must assign codes the way
        this writer would have — first-seen order starting at an empty
        dictionary — so pages produced by independent workers assemble
        into a file byte-identical to a serial ingest; a disagreement
        raises rather than silently mislabelling rows.
        """
        if self._next_index >= len(self.layout):
            raise ValueError("more bucket pages than layout buckets")
        for survey in surveys:
            if survey not in self._survey_codes:
                if len(self._survey_codes) >= 255:
                    raise ValueError("a store file supports at most 255 distinct surveys")
                self._survey_codes[survey] = len(self._survey_codes)
        for code, survey in enumerate(surveys):
            if self._survey_codes[survey] != code:
                raise ValueError(
                    f"pre-encoded page assigns survey {survey!r} code {code}, "
                    f"but the store's dictionary says {self._survey_codes[survey]}"
                )
        self._append_page(self.layout[self._next_index], page, row_count)

    def _append_page(self, spec: BucketSpec, page: bytes, row_count: int) -> None:
        offset = self._handle.tell()
        self._handle.write(page)
        self._entries.append((spec, row_count, offset, len(page), _crc(page)))
        self._next_index += 1
        self._total_rows += row_count

    def finish(self) -> StoreManifest:
        """Write the directory, patch the header, and close the file."""
        if self._next_index != len(self.layout):
            raise ValueError(
                f"layout has {len(self.layout)} buckets but only "
                f"{self._next_index} pages were appended"
            )
        directory_offset = self._handle.tell()
        directory = io.BytesIO()
        for spec, row_count, offset, length, page_crc in self._entries:
            directory.write(
                _DIR_ENTRY.pack(
                    spec.htm_range.low,
                    spec.htm_range.high,
                    spec.object_count,
                    spec.megabytes,
                    row_count,
                    offset,
                    length,
                    page_crc,
                )
            )
        surveys = sorted(self._survey_codes, key=self._survey_codes.get)
        directory.write(struct.pack("<B", len(surveys)))
        for survey in surveys:
            encoded = survey.encode("utf-8")
            directory.write(struct.pack("<H", len(encoded)))
            directory.write(encoded)
        payload = directory.getvalue()
        self._handle.write(payload)
        self._handle.write(_CRC.pack(_crc(payload)))
        self._handle.seek(0)
        self._handle.write(self._header_bytes(directory_offset))
        self._handle.flush()
        file_bytes = os.fstat(self._handle.fileno()).st_size
        self._handle.close()
        return StoreManifest(
            path=self.path,
            generation=generation_of(payload),
            leaf_level=self.layout.leaf_level,
            bucket_count=len(self.layout),
            total_objects=self.layout.total_objects(),
            total_rows=self._total_rows,
            file_bytes=file_bytes,
        )

    def abort(self) -> None:
        """Close and remove a partially written file."""
        try:
            self._handle.close()
        finally:
            if os.path.exists(self.path):
                os.unlink(self.path)


def generation_of(directory_payload: bytes) -> str:
    """The file generation: a digest of the directory bytes.

    Content-derived on purpose: re-ingesting identical data yields the
    same generation (cached decoded pages stay valid), while any change
    to the layout *or to any page* produces a new one — the directory
    embeds every page's CRC, so page content is covered without the
    reader having to scan the pages at open time.
    """
    return hashlib.sha256(directory_payload).hexdigest()[:16]


class BucketFileReader:
    """Random-access reader over one memory-mapped bucket store file.

    Opening maps the whole file read-only and validates the magic,
    version, header CRC and directory CRC, reconstructing the partition
    layout; :meth:`read_bucket_block` then performs one CRC pass over the
    mapped page plus six zero-copy column casts — no ``seek``/``read``
    syscalls and no per-row decoding.  Readers are cheap enough to open
    per process — worker children of the multiprocessing backend each
    own one.

    Decoded :class:`ColumnBlock`\\ s reference the map directly, so
    :meth:`close` only unmaps once the last cached block is gone (the
    mapping is held alive by the blocks' buffer exports until then).
    """

    def __init__(self, path: str | os.PathLike) -> None:
        self.path = os.fspath(path)
        try:
            handle: BinaryIO = open(self.path, "rb")
        except OSError as error:
            raise StoreFormatError(f"cannot open bucket store {self.path!r}: {error}") from error
        try:
            self.file_bytes = os.fstat(handle.fileno()).st_size
            if self.file_bytes == 0:
                raise StoreFormatError(
                    f"truncated bucket store: expected {_HEADER.size} bytes of "
                    "file header, got 0"
                )
            # The map survives the descriptor: close the handle immediately.
            self._mmap = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
        finally:
            handle.close()
        self._view = memoryview(self._mmap)
        self._closed = False
        try:
            self._load_metadata()
        except Exception:
            self.close()
            raise

    def _slice(self, offset: int, size: int, what: str) -> memoryview:
        """A bounds-checked window into the map (zero-copy)."""
        if offset + size > self.file_bytes:
            available = max(0, self.file_bytes - offset)
            raise StoreFormatError(
                f"truncated bucket store: expected {size} bytes of {what}, "
                f"got {available}"
            )
        return self._view[offset : offset + size]

    def _load_metadata(self) -> None:
        header = bytes(self._slice(0, _HEADER.size, "file header"))
        magic, version, _flags, leaf_level, bucket_count, directory_offset, header_crc = (
            _HEADER.unpack(header)
        )
        if magic != MAGIC:
            raise StoreFormatError(
                f"{self.path!r} is not a LifeRaft bucket store (bad magic {magic!r})"
            )
        if version != FORMAT_VERSION:
            raise StoreFormatError(
                f"unsupported bucket store version {version} (reader supports {FORMAT_VERSION})"
            )
        if _crc(header[: -_CRC.size]) != header_crc:
            raise StoreFormatError(f"header checksum mismatch in {self.path!r}")
        if directory_offset == 0:
            raise StoreFormatError(
                f"{self.path!r} has no directory (ingest did not finish)"
            )
        file_size = self.file_bytes
        if directory_offset + _CRC.size > file_size:
            raise StoreFormatError(f"directory offset past end of file in {self.path!r}")
        payload = self._slice(
            directory_offset, file_size - directory_offset - _CRC.size, "page directory"
        )
        (directory_crc,) = _CRC.unpack(
            bytes(self._slice(file_size - _CRC.size, _CRC.size, "directory CRC"))
        )
        if _crc(payload) != directory_crc:
            raise StoreFormatError(f"directory checksum mismatch in {self.path!r}")
        self.generation = generation_of(payload)
        offset = 0
        specs: List[BucketSpec] = []
        # Per bucket: row_count, page offset, page length, page CRC.
        self._pages: List[Tuple[int, int, int, int]] = []
        for index in range(bucket_count):
            if offset + _DIR_ENTRY.size > len(payload):
                raise StoreFormatError(f"directory truncated at bucket {index}")
            low, high, object_count, megabytes, row_count, page_offset, page_length, page_crc = (
                _DIR_ENTRY.unpack_from(payload, offset)
            )
            offset += _DIR_ENTRY.size
            specs.append(BucketSpec(index, HTMRange(low, high), object_count, megabytes))
            if page_offset + page_length > directory_offset:
                raise StoreFormatError(
                    f"bucket {index}'s page extends past the directory"
                )
            self._pages.append((row_count, page_offset, page_length, page_crc))
        if offset + 1 > len(payload):
            raise StoreFormatError("directory is missing its survey dictionary")
        (survey_count,) = struct.unpack_from("<B", payload, offset)
        offset += 1
        surveys: List[str] = []
        for _ in range(survey_count):
            if offset + 2 > len(payload):
                raise StoreFormatError("survey dictionary truncated")
            (name_length,) = struct.unpack_from("<H", payload, offset)
            offset += 2
            if offset + name_length > len(payload):
                raise StoreFormatError("survey dictionary truncated")
            surveys.append(bytes(payload[offset : offset + name_length]).decode("utf-8"))
            offset += name_length
        self.surveys: Tuple[str, ...] = tuple(surveys)
        try:
            self.layout = PartitionLayout(specs, leaf_level)
        except ValueError as error:
            raise StoreFormatError(f"invalid partition layout in {self.path!r}: {error}") from error
        self.total_rows = sum(row_count for row_count, _, _, _ in self._pages)

    def __len__(self) -> int:
        return len(self._pages)

    def row_count(self, bucket_index: int) -> int:
        """Number of physical rows materialised for bucket *bucket_index*."""
        return self._pages[bucket_index][0]

    def _page_payload(self, bucket_index: int) -> memoryview:
        """CRC-checked zero-copy window over one bucket page."""
        if not 0 <= bucket_index < len(self._pages):
            raise IndexError(f"bucket {bucket_index} outside the store's layout")
        _row_count, page_offset, page_length, page_crc = self._pages[bucket_index]
        payload = self._slice(page_offset, page_length, f"bucket {bucket_index} page")
        if _crc(payload) != page_crc:
            raise StoreFormatError(
                f"bucket {bucket_index} page checksum mismatch in {self.path!r}"
            )
        return payload

    def read_bucket_block(self, bucket_index: int) -> ColumnBlock:
        """CRC-check and decode one bucket page into a zero-copy block.

        This is the hot path: the block's columns are casts over the mmap,
        so no bytes are copied and no row objects are built.
        """
        return decode_column_block(self._page_payload(bucket_index), self.surveys)

    def read_bucket(
        self, bucket_index: int
    ) -> Tuple[Tuple[int, ...], Tuple[CelestialObject, ...]]:
        """CRC-check and strictly decode one bucket page into row objects."""
        return decode_bucket_page(self._page_payload(bucket_index), self.surveys)

    def manifest(self) -> StoreManifest:
        """Describe the opened file (mirrors the writer's return value)."""
        return StoreManifest(
            path=self.path,
            generation=self.generation,
            leaf_level=self.layout.leaf_level,
            bucket_count=len(self.layout),
            total_objects=self.layout.total_objects(),
            total_rows=self.total_rows,
            file_bytes=self.file_bytes,
        )

    def close(self) -> None:
        """Release the mapping (deferred while decoded blocks still use it).

        Column casts handed out by :meth:`read_bucket_block` export the
        map's buffer; closing the map under them would invalidate cached
        blocks, so when exports exist the unmap is left to garbage
        collection of the last block.
        """
        if self._closed:
            return
        self._closed = True
        try:
            self._view.release()
            self._mmap.close()
        except (BufferError, ValueError):
            pass

    def __enter__(self) -> "BucketFileReader":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def read_layout(path: str | os.PathLike) -> PartitionLayout:
    """Read only the partition layout of a store file (metadata, no pages)."""
    with BucketFileReader(path) as reader:
        return reader.layout


__all__ = [
    "MAGIC",
    "FORMAT_VERSION",
    "STORE_SUFFIX",
    "StoreFormatError",
    "StoreManifest",
    "ColumnBlock",
    "BucketFileWriter",
    "BucketFileReader",
    "encode_bucket_page",
    "decode_bucket_page",
    "decode_column_block",
    "generation_of",
    "read_layout",
]
