"""Analytical disk model.

The paper's cost constants — ``Tb`` = 1.2 s to read one 40 MB bucket and
``Tm`` = 0.13 ms to cross-match one object in memory — were measured on a
15-spindle mirrored array.  We reproduce them with a simple first-order
disk model (seek + rotational latency + sequential transfer) so that the
same constants fall out of physically plausible parameters, and so that the
experiments can vary bucket size, index probe cost or sequential bandwidth
and still obtain consistent costs.

The model also keeps an optional I/O trace, which the tests and the cache
ablation use to verify that the scheduler issues the sequential/random I/O
pattern the paper claims (one sequential bucket read shared by a whole
batch, instead of per-query random reads).
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass
from typing import Deque, Iterable, List, Optional

from repro.telemetry.registry import MetricsRegistry


class IOKind(enum.Enum):
    """Category of a simulated I/O request."""

    SEQUENTIAL_BUCKET_READ = "sequential_bucket_read"
    RANDOM_INDEX_PROBE = "random_index_probe"
    RANDOM_PAGE_READ = "random_page_read"


@dataclass(frozen=True)
class DiskParameters:
    """Physical parameters of the simulated disk subsystem.

    Defaults approximate the paper's testbed: an array whose aggregate
    sequential bandwidth delivers a 40 MB bucket in about 1.2 seconds and
    whose random reads cost a few milliseconds each.
    """

    average_seek_ms: float = 8.0
    rotational_latency_ms: float = 4.0
    sequential_bandwidth_mb_per_s: float = 34.0
    page_size_kb: float = 8.0

    def __post_init__(self) -> None:
        if self.sequential_bandwidth_mb_per_s <= 0:
            raise ValueError("sequential bandwidth must be positive")
        if self.average_seek_ms < 0 or self.rotational_latency_ms < 0:
            raise ValueError("latencies must be non-negative")
        if self.page_size_kb <= 0:
            raise ValueError("page size must be positive")

    @property
    def positioning_ms(self) -> float:
        """Cost of positioning the head before a transfer, in milliseconds."""
        return self.average_seek_ms + self.rotational_latency_ms

    def transfer_ms(self, megabytes: float) -> float:
        """Time to stream *megabytes* sequentially, in milliseconds."""
        if megabytes < 0:
            raise ValueError("cannot transfer a negative amount of data")
        return 1000.0 * megabytes / self.sequential_bandwidth_mb_per_s


@dataclass
class IORecord:
    """One entry of the I/O trace."""

    kind: IOKind
    megabytes: float
    cost_ms: float
    label: str = ""


class IOTrace:
    """A bounded I/O trace: a ring buffer of records plus exact aggregates.

    Long serving runs issue millions of I/O requests; an unbounded trace
    would grow without limit.  Detailed :class:`IORecord` entries therefore
    live in a ring buffer of ``max_records`` (the *newest* entries win —
    the tail of a run is what failure analysis wants), while the
    aggregates behind :meth:`count`, :meth:`total_ms` and
    :meth:`total_megabytes` are per-kind labelled telemetry counters on
    :attr:`telemetry` — the single source of truth, exact no matter how
    many detailed entries the ring has dropped.  The cache ablation's
    sequential-vs-random assertions run on those aggregates, so they
    keep working on runs of any length; the trace itself stays a thin
    view over the registry.
    """

    def __init__(
        self,
        records: Iterable[IORecord] = (),
        enabled: bool = True,
        max_records: int = 65_536,
    ) -> None:
        if max_records <= 0:
            raise ValueError("max_records must be positive")
        self.enabled = enabled
        self.max_records = max_records
        self._records: Deque[IORecord] = deque(maxlen=max_records)
        #: Aggregate accounting: ``io.requests`` / ``io.cost_ms`` /
        #: ``io.megabytes`` counters labelled by :class:`IOKind`.  Charged
        #: costs are virtual-clock amounts, so the counters live in the
        #: registry's virtual domain.
        self.telemetry = MetricsRegistry()
        #: Detailed entries evicted by the ring buffer (aggregates kept).
        self.dropped = 0
        for record in records:
            self.record(record)

    def _labels(self, kind: IOKind) -> dict:
        return {"kind": kind.value}

    @property
    def records(self) -> List[IORecord]:
        """The retained detailed entries, oldest first (a bounded window)."""
        return list(self._records)

    def record(self, record: IORecord) -> None:
        """Fold *record* into the aggregates and the ring buffer."""
        if not self.enabled:
            return
        labels = self._labels(record.kind)
        self.telemetry.counter("io.requests", labels=labels).inc()
        self.telemetry.counter("io.cost_ms", labels=labels).inc(record.cost_ms)
        self.telemetry.counter("io.megabytes", labels=labels).inc(record.megabytes)
        if len(self._records) == self.max_records:
            self.dropped += 1
        self._records.append(record)

    def count(self, kind: IOKind) -> int:
        """Number of recorded requests of *kind* (exact, never truncated)."""
        return self.telemetry.counter("io.requests", labels=self._labels(kind)).value

    def total_ms(self, kind: Optional[IOKind] = None) -> float:
        """Total recorded I/O time, optionally restricted to one kind."""
        if kind is not None:
            return self.telemetry.counter("io.cost_ms", labels=self._labels(kind)).value
        return sum(
            self.telemetry.counter("io.cost_ms", labels=self._labels(k)).value for k in IOKind
        )

    def total_megabytes(self, kind: Optional[IOKind] = None) -> float:
        """Total bytes moved, optionally restricted to one kind."""
        if kind is not None:
            return self.telemetry.counter("io.megabytes", labels=self._labels(kind)).value
        return sum(
            self.telemetry.counter("io.megabytes", labels=self._labels(k)).value for k in IOKind
        )

    def clear(self) -> None:
        """Drop all recorded entries and reset the aggregates."""
        self._records.clear()
        self.telemetry = MetricsRegistry()
        self.dropped = 0


class DiskModel:
    """Charges I/O costs and optionally records an I/O trace.

    All costs are returned in **milliseconds of simulated time**; callers
    (the join evaluator and the simulator) advance the virtual clock by the
    returned amount rather than sleeping.
    """

    def __init__(
        self,
        parameters: Optional[DiskParameters] = None,
        trace: Optional[IOTrace] = None,
    ) -> None:
        self.parameters = parameters or DiskParameters()
        self.trace = trace or IOTrace(enabled=False)

    def bucket_read_ms(self, bucket_megabytes: float, label: str = "") -> float:
        """Cost of reading one bucket with a single sequential pass.

        This is the model behind the paper's ``Tb``: one positioning delay
        amortised over a large sequential transfer, which is exactly why
        buckets are sized at tens of megabytes (§3.1).
        """
        cost = self.parameters.positioning_ms + self.parameters.transfer_ms(bucket_megabytes)
        self.trace.record(
            IORecord(IOKind.SEQUENTIAL_BUCKET_READ, bucket_megabytes, cost, label)
        )
        return cost

    def index_probe_ms(self, pages: int = 1, label: str = "") -> float:
        """Cost of one index lookup touching *pages* random leaf pages.

        Each page read pays a positioning delay plus a page transfer; this
        is what makes the index join lose to a sequential scan once the
        workload queue covers more than a few percent of a bucket (Fig. 2).
        """
        if pages <= 0:
            raise ValueError("an index probe touches at least one page")
        megabytes = pages * self.parameters.page_size_kb / 1024.0
        cost = pages * (
            self.parameters.positioning_ms
            + self.parameters.transfer_ms(self.parameters.page_size_kb / 1024.0)
        )
        self.trace.record(IORecord(IOKind.RANDOM_INDEX_PROBE, megabytes, cost, label))
        return cost

    def random_page_read_ms(self, pages: int = 1, label: str = "") -> float:
        """Cost of reading *pages* random data pages (used by the index-only baseline)."""
        if pages <= 0:
            raise ValueError("must read at least one page")
        megabytes = pages * self.parameters.page_size_kb / 1024.0
        cost = pages * (
            self.parameters.positioning_ms
            + self.parameters.transfer_ms(self.parameters.page_size_kb / 1024.0)
        )
        self.trace.record(IORecord(IOKind.RANDOM_PAGE_READ, megabytes, cost, label))
        return cost


def calibrated_disk_for_bucket_read(
    bucket_megabytes: float = 40.0, target_bucket_read_s: float = 1.2
) -> DiskModel:
    """Build a disk model whose bucket read time matches a target.

    The paper derives ``Tb`` = 1.2 s empirically for 40 MB buckets; this
    helper solves for the sequential bandwidth that reproduces the same
    constant with the default positioning overhead, so experiments can be
    run with the paper's numbers without hand-tuning.
    """
    if target_bucket_read_s <= 0:
        raise ValueError("target bucket read time must be positive")
    positioning_ms = DiskParameters().positioning_ms
    transfer_ms = target_bucket_read_s * 1000.0 - positioning_ms
    if transfer_ms <= 0:
        raise ValueError("target time is smaller than the positioning overhead")
    bandwidth = bucket_megabytes / (transfer_ms / 1000.0)
    return DiskModel(DiskParameters(sequential_bandwidth_mb_per_s=bandwidth))
