"""A sorted spatial index over HTM IDs with probe-cost accounting.

SkyQuery's existing evaluation strategy answers every cross-match through
the spatial index; LifeRaft keeps the index around for two purposes:

* the **hybrid join strategy** (§3.4) uses an indexed join instead of a
  bucket scan when a workload queue is small, and
* the **IndexOnly baseline** in the evaluation (the approach "seven times
  slower than even NoShare") is modelled by charging every object an index
  probe plus the random page reads needed to fetch candidate rows.

The index is a simple sorted array over (HTM ID, row) pairs — functionally
a B+-tree leaf level.  Probe results report how many random pages were
touched so the disk model can price the lookup.
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.htm.curve import HTMRange, HTMRangeSet
from repro.storage.disk_model import DiskModel

#: Rows per 8 KB leaf page; an SDSS photo object row is a few hundred bytes.
DEFAULT_ROWS_PER_PAGE = 32


@dataclass
class IndexProbeResult:
    """Outcome of one index range probe."""

    rows: Tuple[object, ...]
    pages_read: int
    cost_ms: float

    @property
    def row_count(self) -> int:
        """Number of rows returned by the probe."""
        return len(self.rows)


class SpatialIndex:
    """Clustered index over the catalog's HTM IDs.

    Parameters
    ----------
    htm_ids:
        Sorted HTM IDs of the indexed rows.
    rows:
        Rows aligned with ``htm_ids``; may be omitted for a virtual index
        that only reports costs and counts.
    rows_per_page:
        Leaf fan-out used to convert matched rows into page reads.
    disk:
        Disk model charged for probes; when ``None`` probes report zero cost
        (pure count mode).
    """

    def __init__(
        self,
        htm_ids: Sequence[int],
        rows: Optional[Sequence[object]] = None,
        rows_per_page: int = DEFAULT_ROWS_PER_PAGE,
        disk: Optional[DiskModel] = None,
    ) -> None:
        if rows is not None and len(rows) != len(htm_ids):
            raise ValueError("rows must align with htm_ids")
        if any(htm_ids[i] > htm_ids[i + 1] for i in range(len(htm_ids) - 1)):
            raise ValueError("htm_ids must be sorted")
        if rows_per_page <= 0:
            raise ValueError("rows_per_page must be positive")
        self._ids: List[int] = list(htm_ids)
        self._rows: Optional[List[object]] = list(rows) if rows is not None else None
        self.rows_per_page = rows_per_page
        self.disk = disk
        self.probes = 0

    def __len__(self) -> int:
        return len(self._ids)

    @property
    def height(self) -> int:
        """Height of the equivalent B+-tree (internal levels touched per probe)."""
        if not self._ids:
            return 1
        leaves = max(1, math.ceil(len(self._ids) / self.rows_per_page))
        # ~200 separators per internal page.
        return max(1, math.ceil(math.log(leaves, 200)) if leaves > 1 else 1)

    def probe_range(self, htm_range: HTMRange) -> IndexProbeResult:
        """Return rows whose HTM ID falls inside *htm_range* and the probe cost."""
        low = bisect.bisect_left(self._ids, htm_range.low)
        high = bisect.bisect_right(self._ids, htm_range.high)
        matched = high - low
        pages = self.height + max(1, math.ceil(matched / self.rows_per_page))
        cost = 0.0
        if self.disk is not None:
            cost = self.disk.index_probe_ms(pages, label=f"probe:{htm_range.low}")
        rows: Tuple[object, ...] = ()
        if self._rows is not None:
            rows = tuple(self._rows[low:high])
        self.probes += 1
        return IndexProbeResult(rows, pages, cost)

    def probe_ranges(self, ranges: HTMRangeSet) -> IndexProbeResult:
        """Probe every range of a cover and merge the results."""
        all_rows: List[object] = []
        pages = 0
        cost = 0.0
        for htm_range in ranges:
            result = self.probe_range(htm_range)
            all_rows.extend(result.rows)
            pages += result.pages_read
            cost += result.cost_ms
        return IndexProbeResult(tuple(all_rows), pages, cost)

    def count_range(self, htm_range: HTMRange) -> int:
        """Number of rows in *htm_range* without charging any I/O."""
        low = bisect.bisect_left(self._ids, htm_range.low)
        high = bisect.bisect_right(self._ids, htm_range.high)
        return high - low

    def estimated_probe_cost_ms(self, expected_rows: int) -> float:
        """Cost estimate for a probe returning *expected_rows* rows.

        Used by the hybrid join strategy to compare an indexed join against
        a sequential bucket scan without actually touching the index.
        """
        if self.disk is None:
            return 0.0
        pages = self.height + max(1, math.ceil(max(0, expected_rows) / self.rows_per_page))
        parameters = self.disk.parameters
        per_page = parameters.positioning_ms + parameters.transfer_ms(
            parameters.page_size_kb / 1024.0
        )
        return pages * per_page
