"""Storage substrate: the "database server" underneath LifeRaft.

The paper runs on SQL Server over a 15-disk array; scheduling behaviour,
however, depends only on the *relative* costs of the storage operations:

* reading a 40 MB bucket sequentially from disk (``Tb``, measured 1.2 s),
* matching one object against an in-memory bucket (``Tm``, 0.13 ms), and
* probing a spatial index (a handful of random I/Os per object).

This package provides those pieces as explicit, testable components: an
analytical :class:`~repro.storage.disk.DiskModel`, a generic LRU cache, an
equal-population bucket partitioner over the HTM curve, a bucket store that
answers HTM range queries the way the DBMS does for the bucket cache, and a
sorted spatial index with probe-cost accounting for the hybrid join and the
index-only baseline.

Since PR 4 the package also contains a real I/O subsystem: a columnar
on-disk bucket format (:mod:`repro.storage.format`), ingest paths that
materialise generated catalogs to disk (:mod:`repro.storage.ingest`), and
a file-backed :class:`~repro.storage.disk_store.DiskBucketStore` that
performs physical seeks, reads, checksum verification and columnar
decoding per bucket service while charging the same virtual-clock costs
as the in-memory store — with an optional decoded-page cache tier under
the engine-side LRU bucket cache.
"""

from repro.storage.disk import DiskModel, DiskParameters, IOTrace, IOKind
from repro.storage.cache import LRUCache, CacheStatistics
from repro.storage.partitioner import BucketPartitioner, BucketSpec, PartitionLayout
from repro.storage.bucket_store import BucketStore, Bucket, StoreSnapshot
from repro.storage.format import (
    BucketFileReader,
    BucketFileWriter,
    StoreFormatError,
    StoreManifest,
    read_layout,
)
from repro.storage.ingest import ingest_catalog, materialize_layout
from repro.storage.disk_store import DecodedPageCache, DiskBucketStore, open_disk_store
from repro.storage.index import SpatialIndex, IndexProbeResult

__all__ = [
    "DiskModel",
    "DiskParameters",
    "IOTrace",
    "IOKind",
    "LRUCache",
    "CacheStatistics",
    "BucketPartitioner",
    "BucketSpec",
    "PartitionLayout",
    "BucketStore",
    "Bucket",
    "StoreSnapshot",
    "BucketFileReader",
    "BucketFileWriter",
    "StoreFormatError",
    "StoreManifest",
    "read_layout",
    "ingest_catalog",
    "materialize_layout",
    "DecodedPageCache",
    "DiskBucketStore",
    "open_disk_store",
    "SpatialIndex",
    "IndexProbeResult",
]
