"""Storage substrate: the "database server" underneath LifeRaft.

The paper runs on SQL Server over a 15-disk array; scheduling behaviour,
however, depends only on the *relative* costs of the storage operations:

* reading a 40 MB bucket sequentially from disk (``Tb``, measured 1.2 s),
* matching one object against an in-memory bucket (``Tm``, 0.13 ms), and
* probing a spatial index (a handful of random I/Os per object).

This package provides those pieces as explicit, testable components: an
analytical :class:`~repro.storage.disk_model.DiskModel`, a generic LRU cache, an
equal-population bucket partitioner over the HTM curve, a bucket store that
answers HTM range queries the way the DBMS does for the bucket cache, and a
sorted spatial index with probe-cost accounting for the hybrid join and the
index-only baseline.

Since PR 4 the package also contains a real I/O subsystem: a columnar
on-disk bucket format (:mod:`repro.storage.format`), ingest paths that
materialise generated catalogs to disk (:mod:`repro.storage.ingest`), and
a file-backed :class:`~repro.storage.disk_store.DiskBucketStore` that
memory-maps the store file and decodes bucket pages into zero-copy
:class:`~repro.storage.format.ColumnBlock` columns per bucket service
while charging the same virtual-clock costs as the in-memory store —
with an optional decoded-page cache tier under the engine-side LRU
bucket cache.

``__all__`` below is the package's supported public API; anything not
named here is an internal seam that may change without notice.  The
analytical cost model lives in :mod:`repro.storage.disk_model`.
"""

from repro.storage.bucket_store import Bucket, BucketStore, StoreSnapshot
from repro.storage.cache import CacheStatistics, LRUCache
from repro.storage.disk_model import DiskModel, DiskParameters, IOKind, IOTrace
from repro.storage.disk_store import (
    DEFAULT_PAGE_CACHE_BUCKETS,
    DecodedPageCache,
    DiskBucketStore,
    open_disk_store,
)
from repro.storage.format import (
    BucketFileReader,
    BucketFileWriter,
    ColumnBlock,
    StoreFormatError,
    StoreManifest,
    read_layout,
)
from repro.storage.index import IndexProbeResult, SpatialIndex
from repro.storage.ingest import (
    DEFAULT_ROWS_PER_BUCKET,
    ingest_catalog,
    materialize_layout,
)
from repro.storage.partitioner import BucketPartitioner, BucketSpec, PartitionLayout

__all__ = [
    # analytical cost model
    "DiskModel",
    "DiskParameters",
    "IOTrace",
    "IOKind",
    # caches
    "LRUCache",
    "CacheStatistics",
    "DecodedPageCache",
    "DEFAULT_PAGE_CACHE_BUCKETS",
    # partitioning
    "BucketPartitioner",
    "BucketSpec",
    "PartitionLayout",
    # stores
    "BucketStore",
    "Bucket",
    "StoreSnapshot",
    "DiskBucketStore",
    "open_disk_store",
    # on-disk format
    "BucketFileReader",
    "BucketFileWriter",
    "ColumnBlock",
    "StoreFormatError",
    "StoreManifest",
    "read_layout",
    # ingest
    "DEFAULT_ROWS_PER_BUCKET",
    "ingest_catalog",
    "materialize_layout",
    # index
    "SpatialIndex",
    "IndexProbeResult",
]
