"""Deprecated alias of :mod:`repro.storage.disk_model`.

This module was renamed to end the confusion with
:mod:`repro.storage.disk_store` (the file-backed bucket store): ``disk``
held the *analytical cost model*, not a disk.  Import from
:mod:`repro.storage.disk_model` instead; this shim re-exports the full
public surface and will be removed in a future release.
"""

from __future__ import annotations

import warnings

from repro.storage.disk_model import (  # noqa: F401
    DiskModel,
    DiskParameters,
    IOKind,
    IORecord,
    IOTrace,
    calibrated_disk_for_bucket_read,
)

warnings.warn(
    "repro.storage.disk is deprecated; import from repro.storage.disk_model",
    DeprecationWarning,
    stacklevel=2,
)

__all__ = [
    "DiskModel",
    "DiskParameters",
    "IOKind",
    "IORecord",
    "IOTrace",
    "calibrated_disk_for_bucket_read",
]
