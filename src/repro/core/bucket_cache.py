"""The Bucket Cache.

"The Bucket Cache either reads an existing bucket from memory or executes a
range query to ask for the bucket from the database server.  (We use a
simple least recently used policy for cache replacement.)" — §4.  The
experiments fix the cache at 20 buckets and flush the DBMS buffer after
every bucket read so caching is managed here, independently of the
database server (§5).

:class:`BucketCacheManager` wraps the generic LRU cache with bucket-store
integration and the φ(i) probe the workload-throughput metric needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence, Tuple

from repro.storage.bucket_store import Bucket, BucketStore
from repro.storage.cache import LRUCache
from repro.telemetry.registry import MetricsRegistry

#: Cache size used throughout the paper's evaluation (§5).
PAPER_CACHE_BUCKETS = 20


@dataclass
class CacheLoadResult:
    """Outcome of asking the cache for a bucket."""

    bucket: Bucket
    io_cost_ms: float
    hit: bool


class BucketCacheManager:
    """LRU cache of bucket images backed by a :class:`BucketStore`."""

    def __init__(
        self,
        store: BucketStore,
        capacity: int = PAPER_CACHE_BUCKETS,
        telemetry: Optional[MetricsRegistry] = None,
    ) -> None:
        self.store = store
        self._cache: LRUCache[int, Bucket] = LRUCache(capacity)
        self.telemetry: Optional[MetricsRegistry] = None
        self._t_hits = None
        self._t_misses = None
        self._t_bucket_reads = None
        self._t_read_ms = None
        self._t_read_mb = None
        if telemetry is not None:
            self.bind_telemetry(telemetry)

    def bind_telemetry(self, registry: MetricsRegistry) -> None:
        """Attach a registry; the load path resolves its metrics once here.

        All cache/read counters live in the virtual domain: hit/miss
        sequences and charged read costs are pure functions of the
        admitted arrival schedule, so they are backend-invariant.
        """
        self.telemetry = registry
        self._t_hits = registry.counter("cache.hits")
        self._t_misses = registry.counter("cache.misses")
        self._t_bucket_reads = registry.counter("store.bucket_reads")
        self._t_read_ms = registry.counter("store.read_ms")
        self._t_read_mb = registry.counter("store.read_mb")

    @property
    def capacity(self) -> int:
        """Number of buckets the cache can hold."""
        return self._cache.capacity

    def resident(self, bucket_index: int) -> bool:
        """The φ(i) probe: is the bucket in memory?  (No side effects.)"""
        return self._cache.contains(bucket_index)

    def resident_buckets(self) -> Tuple[int, ...]:
        """Bucket indices currently cached, least recently used first."""
        return self._cache.keys_by_recency()

    def load(self, bucket_index: int) -> CacheLoadResult:
        """Return the bucket, reading it from the store on a miss.

        On a hit the I/O cost is zero (the whole point of data-driven
        scheduling); on a miss the store charges the sequential read cost
        and the bucket becomes the most recently used entry, possibly
        evicting another.
        """
        cached = self._cache.get(bucket_index)
        if cached is not None:
            if self._t_hits is not None:
                self._t_hits.inc()
            return CacheLoadResult(cached, 0.0, hit=True)
        read = self.store.read_bucket(bucket_index)
        self._cache.put(bucket_index, read.bucket)
        if self._t_misses is not None:
            self._t_misses.inc()
            self._t_bucket_reads.inc()
            self._t_read_ms.inc(read.cost_ms)
            self._t_read_mb.inc(self.store.layout[bucket_index].megabytes)
        return CacheLoadResult(read.bucket, read.cost_ms, hit=False)

    def restore(
        self, resident: Sequence[int], statistics: Mapping[str, float]
    ) -> None:
        """Rebuild the cache at a checkpointed state (crash recovery).

        *resident* lists bucket indices least-to-most recently used (the
        shape :meth:`resident_buckets` returns); each image is
        re-materialised from the store without charging virtual I/O, and
        the hit/miss counters resume from their checkpointed values so the
        tail of a recovered run produces the exact hit/miss sequence — and
        the exact lifetime hit rate — of an uninterrupted one.
        """
        self._cache.clear()
        for bucket_index in resident:
            self._cache.seed(bucket_index, self.store.bucket_image(bucket_index))
        self._cache.statistics.restore(dict(statistics))

    def invalidate(self, bucket_index: int) -> bool:
        """Drop a bucket from the cache (used by failure-injection tests)."""
        return self._cache.invalidate(bucket_index)

    def clear(self) -> None:
        """Flush the cache entirely."""
        self._cache.clear()

    def resize(self, capacity: int) -> None:
        """Change the cache capacity (used by the cache-size ablation)."""
        self._cache.resize(capacity)

    def statistics(self) -> Dict[str, float]:
        """Hit/miss counters; the §6 discussion quotes 40 % vs 7 % hit rates."""
        return self._cache.statistics.snapshot()

    @property
    def hit_rate(self) -> float:
        """Fraction of loads served from memory."""
        return self._cache.statistics.hit_rate
