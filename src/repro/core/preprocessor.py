"""The Query Pre-Processor.

"Each incoming query is pre-processed to determine a list of sub-queries
which satisfy the following property: each sub-query operates on a single
bucket and can be processed in any order" (§3).  The pre-processor performs
that decomposition: for every cross-match object of the query it intersects
the object's HTM bounding range with the bucket boundaries of the partition
layout and assigns the object to every overlapping bucket (an object "may
overlap multiple buckets", §3.1 — no duplicate elimination is needed
because the join is on point data).

Abstract queries that already carry a bucket footprint (the scaled
experiment traces) pass through unchanged after validation.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Union

from repro.storage.partitioner import PartitionLayout
from repro.workload.query import CrossMatchObject, CrossMatchQuery

#: Per-bucket assignment produced by pre-processing: either explicit objects
#: or a bare object count (abstract mode).
Assignment = Union[Dict[int, List[CrossMatchObject]], Dict[int, int]]


class QueryPreProcessor:
    """Splits cross-match queries into per-bucket sub-queries."""

    def __init__(self, layout: PartitionLayout) -> None:
        self.layout = layout

    def assign(self, query: CrossMatchQuery) -> Assignment:
        """Return the per-bucket workload of *query*.

        For explicit-object queries the result maps bucket index to the list
        of objects overlapping that bucket; for abstract queries it maps
        bucket index to the object count taken from the footprint.
        Raises ``ValueError`` when a footprint references a bucket outside
        the layout, which would silently lose work otherwise.
        """
        if query.bucket_footprint is not None and not query.objects:
            return self._validate_footprint(query)
        return self._assign_objects(query.objects)

    def _validate_footprint(self, query: CrossMatchQuery) -> Dict[int, int]:
        assert query.bucket_footprint is not None
        bucket_count = len(self.layout)
        invalid = [b for b in query.bucket_footprint if not 0 <= b < bucket_count]
        if invalid:
            raise ValueError(
                f"query {query.query_id} references buckets outside the layout: {sorted(invalid)[:5]}"
            )
        return dict(query.bucket_footprint)

    def _assign_objects(
        self, objects: Sequence[CrossMatchObject]
    ) -> Dict[int, List[CrossMatchObject]]:
        assignments: Dict[int, List[CrossMatchObject]] = {}
        for obj in objects:
            overlapping = self.layout.buckets_for_range(obj.htm_range)
            if not overlapping:
                # The object's bounding box falls outside the partitioned
                # table (e.g. outside the survey footprint); it simply has
                # no potential matches at this site.
                continue
            for bucket in overlapping:
                assignments.setdefault(bucket.index, []).append(obj)
        return assignments

    def footprint(self, query: CrossMatchQuery) -> Dict[int, int]:
        """Per-bucket *object counts* of a query (whatever its representation)."""
        assignment = self.assign(query)
        footprint: Dict[int, int] = {}
        for bucket_index, payload in assignment.items():
            footprint[bucket_index] = payload if isinstance(payload, int) else len(payload)
        return footprint

    def batch_footprint(self, queries: Sequence[CrossMatchQuery]) -> Dict[int, int]:
        """Aggregate object counts per bucket over a batch of queries."""
        total: Dict[int, int] = {}
        for query in queries:
            for bucket_index, count in self.footprint(query).items():
                total[bucket_index] = total.get(bucket_index, 0) + count
        return total
