"""Baseline scheduling policies used in the paper's evaluation.

* :class:`NoShareScheduler` — "evaluates each query independently (no I/O
  is shared) and in arrival order" (§5).  The oldest incomplete query is
  serviced one bucket at a time with the cache bypassed, so every bucket
  visit pays the full sequential-read cost.
* :class:`RoundRobinScheduler` — "RR performs sequential batch processing
  by servicing buckets in HTM ID order.  It is oblivious to both the length
  of workload queues and age of requests" (§5).  It does share I/O: every
  service drains the chosen bucket's entire queue.
* :class:`IndexOnlyScheduler` — SkyQuery's existing approach, which
  "evaluates cross-match queries exclusively through spatial indices" and
  is reported to be about seven times slower than even NoShare (§5).
* :class:`LeastSharableFirstScheduler` — the policy of Agrawal et al. for
  shared file scans in Map-Reduce, discussed (and argued against for
  scientific workloads) in §6; included for the ablation benchmark.
"""

from __future__ import annotations

from typing import Optional

from repro.core.bucket_cache import BucketCacheManager
from repro.core.join_evaluator import JoinStrategy
from repro.core.metrics import CostModel
from repro.core.scheduler import (
    LifeRaftScheduler,
    SchedulerConfig,
    SchedulingPolicy,
    WorkItem,
)
from repro.core.workload_manager import WorkloadManager

#: Policy names accepted by :func:`make_policy`, the simulator and the CLI.
POLICY_NAMES = (
    "liferaft",
    "noshare",
    "round_robin",
    "index_only",
    "least_sharable_first",
)


def make_policy(
    name: str, alpha: float = 0.25, cost: Optional[CostModel] = None, normalize_metric: bool = True
) -> SchedulingPolicy:
    """Construct a scheduling policy by name.

    ``liferaft`` takes the age bias *alpha*; the baselines ignore it.  Every
    returned policy also supports ``clone()``, which is how the parallel
    worker pool builds one independent instance per shard.
    """
    cost = cost or CostModel.paper_defaults()
    if name == "liferaft":
        return LifeRaftScheduler(
            SchedulerConfig(alpha=alpha, cost=cost, normalize_metric=normalize_metric)
        )
    if name == "noshare":
        return NoShareScheduler()
    if name == "round_robin":
        return RoundRobinScheduler()
    if name == "index_only":
        return IndexOnlyScheduler()
    if name == "least_sharable_first":
        return LeastSharableFirstScheduler()
    raise ValueError(f"unknown policy {name!r}; expected one of {POLICY_NAMES}")


class NoShareScheduler:
    """Arrival-order, per-query execution with no I/O sharing."""

    name = "noshare"

    def clone(self) -> "NoShareScheduler":
        """A fresh, stateless copy (per-shard construction)."""
        return NoShareScheduler()

    def next_work(
        self, manager: WorkloadManager, cache: BucketCacheManager, now_ms: float
    ) -> Optional[WorkItem]:
        query_id = manager.oldest_pending_query()
        if query_id is None:
            return None
        remaining = manager.remaining_buckets_for(query_id)
        if not remaining:
            return None
        # Buckets are visited in HTM order within a query; every remaining
        # bucket still holds this query's entry (invariant of the manager).
        # The hybrid join choice is left to the evaluator — NoShare is the
        # same per-query scan-based execution, just without shared I/O.
        bucket = min(remaining)
        return WorkItem(
            bucket_index=bucket,
            query_ids=(query_id,),
            share_io=False,
        )


class IndexOnlyScheduler:
    """Arrival-order execution through the spatial index only."""

    name = "index_only"

    def clone(self) -> "IndexOnlyScheduler":
        """A fresh, stateless copy (per-shard construction)."""
        return IndexOnlyScheduler()

    def next_work(
        self, manager: WorkloadManager, cache: BucketCacheManager, now_ms: float
    ) -> Optional[WorkItem]:
        query_id = manager.oldest_pending_query()
        if query_id is None:
            return None
        remaining = manager.remaining_buckets_for(query_id)
        if not remaining:
            return None
        bucket = min(remaining)
        return WorkItem(
            bucket_index=bucket,
            query_ids=(query_id,),
            share_io=False,
            force_strategy=JoinStrategy.INDEXED_JOIN,
        )


class RoundRobinScheduler:
    """Batch processing in HTM ID (bucket index) order, oblivious to queues."""

    name = "round_robin"

    def __init__(self) -> None:
        self._cursor = -1

    def clone(self) -> "RoundRobinScheduler":
        """A fresh copy with its own rotation cursor (per-shard construction)."""
        return RoundRobinScheduler()

    def next_work(
        self, manager: WorkloadManager, cache: BucketCacheManager, now_ms: float
    ) -> Optional[WorkItem]:
        pending = manager.pending_buckets()
        if not pending:
            return None
        pending.sort()
        # The next pending bucket strictly after the cursor, wrapping around;
        # requests "in the worst case wait an entire rotation" (§5.2).
        for bucket in pending:
            if bucket > self._cursor:
                self._cursor = bucket
                return WorkItem(bucket_index=bucket)
        self._cursor = pending[0]
        return WorkItem(bucket_index=pending[0])


class LeastSharableFirstScheduler:
    """Service the pending bucket with the *smallest* workload queue first.

    This inverts LifeRaft's most-contentious-data-first rule and mirrors
    the least-sharable-file-first policy of shared Map-Reduce scans: work
    that will not benefit from co-scheduling with future jobs is done
    first, letting contentious data accumulate even larger batches.  The §6
    discussion argues this is a poor fit when workload queues must be
    buffered in memory; the ablation benchmark quantifies that.
    """

    name = "least_sharable_first"

    def clone(self) -> "LeastSharableFirstScheduler":
        """A fresh, stateless copy (per-shard construction)."""
        return LeastSharableFirstScheduler()

    def next_work(
        self, manager: WorkloadManager, cache: BucketCacheManager, now_ms: float
    ) -> Optional[WorkItem]:
        pending = manager.pending_buckets()
        if not pending:
            return None
        best_bucket: Optional[int] = None
        best_key: Optional[tuple] = None
        for bucket in pending:
            key = (manager.queue_size(bucket), -manager.oldest_age_ms(bucket, now_ms), bucket)
            if best_key is None or key < best_key:
                best_key = key
                best_bucket = bucket
        assert best_bucket is not None
        return WorkItem(bucket_index=best_bucket)
