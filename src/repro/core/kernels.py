"""Whole-column crossmatch kernels over decoded bucket pages.

The row-at-a-time join in :mod:`repro.core.join_evaluator` rebuilds one
Python object per catalog row before it can test a single candidate.
OLA-RAW's lesson (and the point of the ``.lrbs`` columnar layout) is
that in-situ evaluation should run column-at-a-time over the stored
representation: these kernels take a zero-copy
:class:`~repro.storage.format.ColumnBlock` — memoryview casts straight
over the reader's mmap — and only materialise a
:class:`~repro.catalog.objects.CelestialObject` for rows that actually
match, i.e. at the result boundary.

The kernels are exact replicas of the row path's arithmetic (same
binary-searched candidate window, same ``angular_separation * 3600``
refinement, same ordering of appends), so their output is
object-for-object identical — the property tests in
``tests/core/test_kernels.py`` pin that equivalence.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.core.workload_manager import WorkloadEntry
from repro.htm.geometry import angular_separation
from repro.storage.format import ColumnBlock
from repro.workload.query import CrossMatchObject


@dataclass(frozen=True)
class MatchedPair:
    """One successful cross-match: a workload object and a catalog row."""

    query_id: int
    workload_object: CrossMatchObject
    catalog_object: object
    separation_arcsec: float


def refine_block(
    query_id: int,
    obj: CrossMatchObject,
    block: ColumnBlock,
    matches: List[MatchedPair],
) -> int:
    """Refine one workload object against a block's candidate window.

    The candidate window is located by binary search over the HTM
    column; refinement touches only the ``ra``/``dec`` columns, and a
    row object is built only when the separation test passes.
    """
    if obj.ra is None or obj.dec is None:
        return 0
    ids = block.htm_ids
    low = bisect_left(ids, obj.htm_range.low)
    high = bisect_right(ids, obj.htm_range.high)
    if low >= high:
        return 0
    ra0, dec0, radius = obj.ra, obj.dec, obj.match_radius_arcsec
    ras, decs = block.ra, block.dec
    found = 0
    for i in range(low, high):
        separation = angular_separation(ra0, dec0, ras[i], decs[i]) * 3600.0
        if separation <= radius:
            matches.append(MatchedPair(query_id, obj, block.row(i), separation))
            found += 1
    return found


def crossmatch_block(
    block: ColumnBlock, entries: Sequence[WorkloadEntry]
) -> Tuple[List[MatchedPair], Dict[int, int]]:
    """Plane-sweep merge of a workload queue against one column block.

    Mirrors the row-at-a-time merge join exactly: the workload side is
    sorted by the start of each object's HTM window, then every object
    is refined against its binary-searched candidate window, in order.
    """
    matches: List[MatchedPair] = []
    per_query: Dict[int, int] = {}
    if len(block) == 0:
        return matches, per_query
    flattened: List[Tuple[int, CrossMatchObject]] = []
    for entry in entries:
        for obj in entry.objects:
            flattened.append((entry.query_id, obj))
    flattened.sort(key=lambda pair: pair[1].htm_range.low)
    for query_id, obj in flattened:
        per_query.setdefault(query_id, 0)
        per_query[query_id] += refine_block(query_id, obj, block, matches)
    return matches, per_query


__all__ = ["MatchedPair", "crossmatch_block", "refine_block"]
