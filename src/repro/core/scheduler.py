"""The LifeRaft scheduler: data-driven bucket selection with aging.

Given the Workload Manager's queues and the Bucket Cache's residency
information, the scheduler repeatedly answers one question: *which bucket
should be serviced next, and for whom?*  LifeRaft's answer (§3.2–3.3) is
the bucket with the highest **aged workload throughput**

    ``Ua(i) = Ut(i)·(1 − α) + A(i)·α``

— a greedy, most-contentious-data-first policy tempered by the age of the
oldest pending request so that no bucket starves indefinitely.  α = 0 is
the pure throughput-greedy scheduler, α = 1 processes requests purely in
arrival order; both extremes still share I/O because every service drains
the *entire* workload queue of the chosen bucket.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Protocol, Tuple

from repro.core.bucket_cache import BucketCacheManager
from repro.core.join_evaluator import JoinStrategy
from repro.core.metrics import CostModel, aged_workload_throughput, workload_throughput
from repro.core.workload_manager import WorkloadManager


@dataclass(frozen=True)
class WorkItem:
    """One unit of work handed from a scheduler to the engine.

    Attributes
    ----------
    bucket_index:
        The bucket to service.
    query_ids:
        Restrict the service to these queries' entries; ``None`` drains the
        whole workload queue (the normal, shared-I/O case).
    share_io:
        Whether the bucket cache may be used.  The NoShare baseline sets
        this to ``False`` to model fully independent, per-query I/O.
    force_strategy:
        Override for the hybrid join choice (baselines only).
    """

    bucket_index: int
    query_ids: Optional[Tuple[int, ...]] = None
    share_io: bool = True
    force_strategy: Optional[JoinStrategy] = None


class SchedulingPolicy(Protocol):
    """Interface every scheduler (LifeRaft and the baselines) implements."""

    name: str

    def next_work(
        self, manager: WorkloadManager, cache: BucketCacheManager, now_ms: float
    ) -> Optional[WorkItem]:
        """Return the next work item, or ``None`` when there is nothing to do."""
        ...


@dataclass(frozen=True)
class SchedulerConfig:
    """Configuration of the LifeRaft scheduler.

    Attributes
    ----------
    alpha:
        The age bias of Equation (2); 0 = most contentious data first,
        1 = arrival order.
    cost:
        Cost model supplying ``Tb`` and ``Tm`` for the throughput term.
    normalize_metric:
        Combine the contention and age terms on a common ``[0, 1]`` scale
        (see :mod:`repro.core.metrics`); the raw combination is available
        for the ablation study.
    """

    alpha: float = 0.25
    cost: CostModel = field(default_factory=CostModel.paper_defaults)
    normalize_metric: bool = True

    def __post_init__(self) -> None:
        if not 0.0 <= self.alpha <= 1.0:
            raise ValueError("alpha must be within [0, 1]")

    def with_alpha(self, alpha: float) -> "SchedulerConfig":
        """Return a copy with a different age bias."""
        return replace(self, alpha=alpha)


class LifeRaftScheduler:
    """Selects the pending bucket with the highest aged workload throughput."""

    def __init__(self, config: Optional[SchedulerConfig] = None) -> None:
        self.config = config or SchedulerConfig()
        self.decisions = 0

    @property
    def name(self) -> str:
        """Human-readable policy name used in reports."""
        return f"liferaft(alpha={self.config.alpha:g})"

    def clone(self) -> "LifeRaftScheduler":
        """A fresh scheduler with the same configuration and no history.

        Parallel shards each need their own scheduler instance (decision
        counters and the adaptive controller's alpha are per-lane state);
        cloning a prototype is how the worker pool builds them.
        """
        return LifeRaftScheduler(self.config)

    @property
    def alpha(self) -> float:
        """Current age bias."""
        return self.config.alpha

    def set_alpha(self, alpha: float) -> None:
        """Adjust the age bias (the adaptive controller calls this online)."""
        self.config = self.config.with_alpha(alpha)

    def score(
        self,
        bucket_index: int,
        manager: WorkloadManager,
        cache: BucketCacheManager,
        now_ms: float,
        max_age_ms: Optional[float] = None,
    ) -> float:
        """The aged workload throughput ``Ua`` of one bucket right now."""
        cfg = self.config
        queue_objects = manager.queue_size(bucket_index)
        ut = workload_throughput(queue_objects, cache.resident(bucket_index), cfg.cost)
        age = manager.oldest_age_ms(bucket_index, now_ms)
        if max_age_ms is None:
            max_age_ms = manager.max_pending_age_ms(now_ms)
        return aged_workload_throughput(
            ut,
            age,
            cfg.alpha,
            cost=cfg.cost,
            max_age_ms=max_age_ms,
            normalize=cfg.normalize_metric,
        )

    def rank_buckets(
        self, manager: WorkloadManager, cache: BucketCacheManager, now_ms: float
    ) -> Dict[int, float]:
        """Score every pending bucket (exposed for tests and introspection)."""
        max_age = manager.max_pending_age_ms(now_ms)
        return {
            bucket: self.score(bucket, manager, cache, now_ms, max_age)
            for bucket in manager.pending_buckets()
        }

    def next_work(
        self, manager: WorkloadManager, cache: BucketCacheManager, now_ms: float
    ) -> Optional[WorkItem]:
        """Pick the pending bucket with the highest ``Ua``.

        Ties are broken toward the lower bucket index so behaviour is
        deterministic (and therefore reproducible across runs).  The body is
        a tight hand-inlined loop over the manager's pending-state snapshot:
        it runs once per bucket service over potentially thousands of
        pending buckets, which makes it the hot path of every simulation.
        """
        state = manager.pending_state(now_ms)
        if not state:
            return None
        self.decisions += 1
        cfg = self.config
        tb = cfg.cost.tb_ms
        tm = cfg.cost.tm_ms
        alpha = cfg.alpha
        one_minus_alpha = 1.0 - alpha
        normalize = cfg.normalize_metric
        resident = cache.resident
        max_age = max(age for _bucket, _size, age in state)
        best_bucket: Optional[int] = None
        best_score = float("-inf")
        for bucket, queue_objects, age in state:
            io_term = 0.0 if resident(bucket) else tb
            ut = queue_objects / (io_term + tm * queue_objects) if queue_objects else 0.0
            if normalize:
                age_term = (age / max_age) if max_age > 0 else 0.0
                score = one_minus_alpha * ut * tm + alpha * age_term
            else:
                score = one_minus_alpha * ut + alpha * age
            if score > best_score or (
                score == best_score and (best_bucket is None or bucket < best_bucket)
            ):
                best_score = score
                best_bucket = bucket
        if best_bucket is None:
            return None
        return WorkItem(bucket_index=best_bucket)
