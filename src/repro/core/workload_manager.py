"""The Workload Manager: per-bucket workload queues and query bookkeeping.

In the LifeRaft architecture (§4) the Workload Manager "maintains state
information such as a mapping of pending queries to workload queues and the
age of the oldest query in each queue".  Concretely it owns:

* one :class:`WorkloadQueue` per bucket with pending work, each holding the
  :class:`WorkloadEntry` contributed by every query that overlaps the
  bucket (the paper's ``W_i^j``);
* per-query bookkeeping: which buckets a query still needs, its arrival
  time and completion time, so the engine knows when a query finishes
  ("a query cannot finish until every object is cross-matched", §3.3).

The manager is deliberately policy-free: schedulers read its state (queue
sizes, oldest ages) and the engine mutates it (enqueue on arrival, drain on
service).  Queue size and oldest-request age are maintained incrementally
because the scheduler consults them for every pending bucket on every
scheduling decision — the hot loop of the whole system.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.workload.query import CrossMatchObject


@dataclass(slots=True)
class WorkloadEntry:
    """The work one query contributes to one bucket's queue (``W_i^j``)."""

    query_id: int
    object_count: int
    enqueue_time_ms: float
    objects: Tuple[CrossMatchObject, ...] = ()

    def __post_init__(self) -> None:
        if self.object_count <= 0:
            raise ValueError("a workload entry must carry at least one object")


class WorkloadQueue:
    """All pending work for a single bucket.

    The total object count and the oldest enqueue time are maintained
    incrementally on append and recomputed only on partial drains (which
    only the per-query baselines perform).
    """

    __slots__ = ("bucket_index", "entries", "_total_objects", "_oldest_ms")

    def __init__(self, bucket_index: int, entries: Optional[List[WorkloadEntry]] = None) -> None:
        self.bucket_index = bucket_index
        self.entries: List[WorkloadEntry] = list(entries) if entries else []
        self._total_objects = sum(e.object_count for e in self.entries)
        self._oldest_ms = (
            min(e.enqueue_time_ms for e in self.entries) if self.entries else float("inf")
        )

    @property
    def total_objects(self) -> int:
        """Size of the workload queue (the ``sum_j W_i^j`` of Equation 1)."""
        return self._total_objects

    @property
    def query_ids(self) -> List[int]:
        """Queries with pending work in this bucket, in enqueue order."""
        return [entry.query_id for entry in self.entries]

    @property
    def oldest_enqueue_time_ms(self) -> float:
        """Enqueue time of the oldest pending entry."""
        if not self.entries:
            raise ValueError(f"bucket {self.bucket_index} has an empty workload queue")
        return self._oldest_ms

    def age_ms(self, now_ms: float) -> float:
        """Age ``A(i)`` of the oldest request at time *now_ms*."""
        if not self.entries:
            return 0.0
        return max(0.0, now_ms - self._oldest_ms)

    def append(self, entry: WorkloadEntry) -> None:
        """Add one entry, updating the cached aggregates."""
        self.entries.append(entry)
        self._total_objects += entry.object_count
        if entry.enqueue_time_ms < self._oldest_ms:
            self._oldest_ms = entry.enqueue_time_ms

    def remove_queries(self, query_ids: Set[int]) -> List[WorkloadEntry]:
        """Remove and return the entries belonging to *query_ids*."""
        removed = [e for e in self.entries if e.query_id in query_ids]
        if not removed:
            return []
        self.entries = [e for e in self.entries if e.query_id not in query_ids]
        self._total_objects = sum(e.object_count for e in self.entries)
        self._oldest_ms = (
            min(e.enqueue_time_ms for e in self.entries) if self.entries else float("inf")
        )
        return removed

    def drain_all(self) -> List[WorkloadEntry]:
        """Remove and return every entry."""
        drained = self.entries
        self.entries = []
        self._total_objects = 0
        self._oldest_ms = float("inf")
        return drained

    def __len__(self) -> int:
        return len(self.entries)

    def __bool__(self) -> bool:
        return bool(self.entries)


@dataclass
class _QueryState:
    """Internal per-query bookkeeping."""

    query_id: int
    arrival_time_ms: float
    total_buckets: int
    total_objects: int
    remaining_buckets: Set[int]
    completion_time_ms: Optional[float] = None

    @property
    def is_complete(self) -> bool:
        return not self.remaining_buckets


class WorkloadManager:
    """Owns the workload queues and the query-to-queue mapping."""

    def __init__(self) -> None:
        self._queues: Dict[int, WorkloadQueue] = {}
        self._queries: Dict[int, _QueryState] = {}
        self._completed: List[int] = []
        #: Query ids in arrival order with a cursor for oldest_pending_query().
        self._arrival_order: List[int] = []
        self._arrival_cursor = 0

    # ------------------------------------------------------------------ #
    # intake
    # ------------------------------------------------------------------ #

    def add_query(
        self,
        query_id: int,
        assignments: Mapping[int, Sequence[CrossMatchObject]] | Mapping[int, int],
        arrival_time_ms: float,
        merge: bool = False,
    ) -> None:
        """Register a pre-processed query.

        *assignments* maps bucket index to either the explicit objects or an
        integer object count (abstract mode).  The entries are appended to
        the corresponding workload queues with *arrival_time_ms* as their
        enqueue time, which is what the age term of the scheduler measures.

        With ``merge=True`` a query this manager already knows about gains
        additional per-bucket work instead of raising.  Bucket migration
        needs this: a shard may adopt a stolen queue carrying entries of a
        query whose own share reaches the shard only later on its timeline.
        """
        if query_id in self._queries and not merge:
            raise ValueError(f"query {query_id} was already submitted")
        if not assignments:
            raise ValueError(f"query {query_id} has no per-bucket work")
        total_objects = 0
        for bucket_index, payload in assignments.items():
            if isinstance(payload, int):
                count, objects = payload, ()
            else:
                objects = tuple(payload)
                count = len(objects)
            if count <= 0:
                raise ValueError(
                    f"query {query_id} contributes no objects to bucket {bucket_index}"
                )
            queue = self._queues.get(bucket_index)
            if queue is None:
                queue = WorkloadQueue(bucket_index)
                self._queues[bucket_index] = queue
            queue.append(
                WorkloadEntry(
                    query_id=query_id,
                    object_count=count,
                    enqueue_time_ms=arrival_time_ms,
                    objects=objects,
                )
            )
            total_objects += count
        state = self._queries.get(query_id)
        if state is not None:
            # A complete query being re-opened may already have been skipped
            # by the arrival cursor; rewind so it is never missed.  (An
            # incomplete query can never sit behind the cursor, so the
            # common staged-ingestion merge keeps the cursor amortised.)
            if state.is_complete:
                self._arrival_cursor = 0
            state.remaining_buckets.update(assignments.keys())
            state.total_buckets += len(assignments)
            state.total_objects += total_objects
            return
        self._queries[query_id] = _QueryState(
            query_id=query_id,
            arrival_time_ms=arrival_time_ms,
            total_buckets=len(assignments),
            total_objects=total_objects,
            remaining_buckets=set(assignments.keys()),
        )
        self._insert_in_arrival_order(query_id, arrival_time_ms)

    def _insert_in_arrival_order(self, query_id: int, arrival_time_ms: float) -> None:
        """Keep ``_arrival_order`` sorted by (arrival time, query id).

        Queries normally arrive in non-decreasing order, so the common case
        is a plain append.  After a bucket migration, though, a shard may
        learn about an *earlier* query than one it adopted (its own staged
        share ingests after the adoption), and arrival-order policies
        (NoShare, IndexOnly) rely on this list being sorted.
        """
        key = (arrival_time_ms, query_id)
        if self._arrival_order:
            last_id = self._arrival_order[-1]
            if key < (self._queries[last_id].arrival_time_ms, last_id):
                position = bisect.bisect_right(
                    self._arrival_order,
                    key,
                    key=lambda qid: (self._queries[qid].arrival_time_ms, qid),
                )
                self._arrival_order.insert(position, query_id)
                # The insertion may land behind the cursor; rewind so the
                # query is never missed.
                self._arrival_cursor = 0
                return
        self._arrival_order.append(query_id)

    # ------------------------------------------------------------------ #
    # scheduler-facing state
    # ------------------------------------------------------------------ #

    def pending_buckets(self) -> List[int]:
        """Bucket indices with non-empty workload queues."""
        return [index for index, queue in self._queues.items() if queue]

    def pending_entries(self) -> int:
        """Entries waiting across all queues (one per (query, bucket) share)."""
        return sum(len(queue) for queue in self._queues.values())

    def pending_state(self, now_ms: float) -> List[Tuple[int, int, float]]:
        """One-pass snapshot for schedulers: (bucket, queue size, age in ms).

        This is the hot path of every scheduling decision; building the
        snapshot in one sweep avoids per-bucket method dispatch.
        """
        state: List[Tuple[int, int, float]] = []
        for index, queue in self._queues.items():
            if queue.entries:
                state.append(
                    (index, queue._total_objects, max(0.0, now_ms - queue._oldest_ms))
                )
        return state

    def has_pending_work(self) -> bool:
        """``True`` when any workload queue is non-empty."""
        return any(self._queues.values())

    def queue(self, bucket_index: int) -> WorkloadQueue:
        """The workload queue of *bucket_index* (empty queue if none yet)."""
        return self._queues.get(bucket_index) or WorkloadQueue(bucket_index)

    def queue_size(self, bucket_index: int) -> int:
        """Number of pending objects for *bucket_index*."""
        queue = self._queues.get(bucket_index)
        return queue.total_objects if queue else 0

    def oldest_age_ms(self, bucket_index: int, now_ms: float) -> float:
        """Age of the oldest pending request in the bucket's queue."""
        queue = self._queues.get(bucket_index)
        if not queue:
            return 0.0
        return queue.age_ms(now_ms)

    def max_pending_age_ms(self, now_ms: float) -> float:
        """Age of the oldest request over all queues (normalisation reference)."""
        oldest: Optional[float] = None
        for queue in self._queues.values():
            if queue.entries:
                t = queue._oldest_ms
                if oldest is None or t < oldest:
                    oldest = t
        if oldest is None:
            return 0.0
        return max(0.0, now_ms - oldest)

    def pending_queries(self) -> List[int]:
        """Queries submitted but not yet complete, ordered by arrival time."""
        states = [s for s in self._queries.values() if not s.is_complete]
        states.sort(key=lambda s: (s.arrival_time_ms, s.query_id))
        return [s.query_id for s in states]

    def oldest_pending_query(self) -> Optional[int]:
        """The earliest-arriving incomplete query (NoShare's next victim).

        Amortised O(1): queries were appended in arrival order, so a cursor
        that skips completed queries suffices.
        """
        while self._arrival_cursor < len(self._arrival_order):
            query_id = self._arrival_order[self._arrival_cursor]
            if not self._queries[query_id].is_complete:
                return query_id
            self._arrival_cursor += 1
        return None

    def remaining_buckets_for(self, query_id: int) -> Set[int]:
        """Buckets the query still has pending work in."""
        return set(self._queries[query_id].remaining_buckets)

    def query_arrival_ms(self, query_id: int) -> float:
        """Arrival time of a submitted query."""
        return self._queries[query_id].arrival_time_ms

    def query_total_objects(self, query_id: int) -> int:
        """Total objects the query submitted across all buckets."""
        return self._queries[query_id].total_objects

    # ------------------------------------------------------------------ #
    # service
    # ------------------------------------------------------------------ #

    def drain_bucket(
        self,
        bucket_index: int,
        now_ms: float,
        query_ids: Optional[Iterable[int]] = None,
    ) -> Tuple[List[WorkloadEntry], List[int]]:
        """Remove work from a bucket's queue after it has been serviced.

        Removes the entries of *query_ids* (all entries when ``None``) and
        returns ``(drained entries, queries completed by this service)``.
        Completed queries are stamped with *now_ms* as completion time.
        """
        queue = self._queues.get(bucket_index)
        if queue is None or not queue.entries:
            return [], []
        if query_ids is None:
            drained = queue.drain_all()
        else:
            drained = queue.remove_queries(set(query_ids))
        completed: List[int] = []
        for entry in drained:
            state = self._queries[entry.query_id]
            state.remaining_buckets.discard(bucket_index)
            if state.is_complete and state.completion_time_ms is None:
                state.completion_time_ms = now_ms
                completed.append(entry.query_id)
                self._completed.append(entry.query_id)
        if not queue.entries:
            # Keep the dict small: drop empty queues so pending_buckets()
            # stays proportional to the live working set.
            del self._queues[bucket_index]
        return drained, completed

    # ------------------------------------------------------------------ #
    # bucket migration (work stealing between parallel shards)
    # ------------------------------------------------------------------ #

    def oldest_bucket_enqueue_ms(self, bucket_index: int) -> float:
        """Enqueue time of the oldest entry in a bucket's queue (inf if empty)."""
        queue = self._queues.get(bucket_index)
        if queue is None or not queue.entries:
            return float("inf")
        return queue.oldest_enqueue_time_ms

    def release_bucket(self, bucket_index: int) -> List[WorkloadEntry]:
        """Hand a whole workload queue to another manager (steal source).

        The entries are removed *without* completion bookkeeping: affected
        queries simply forget this bucket, because responsibility for it —
        including completion accounting — moves to the adopting manager.
        Cross-shard query completion is tracked by the parallel engine, not
        by either manager.
        """
        queue = self._queues.get(bucket_index)
        if queue is None or not queue.entries:
            return []
        entries = queue.drain_all()
        del self._queues[bucket_index]
        for query_id in {entry.query_id for entry in entries}:
            state = self._queries.get(query_id)
            if state is not None:
                state.remaining_buckets.discard(bucket_index)
        return entries

    def adopt_bucket(self, bucket_index: int, entries: Sequence[WorkloadEntry]) -> None:
        """Take ownership of a stolen workload queue (steal destination).

        Entries keep their original enqueue times so ages — and therefore
        the aged-workload-throughput metric — are unaffected by migration.
        Queries unknown to this manager get a lightweight state so drains
        and per-query scheduling keep working on the new shard.
        """
        if not entries:
            return
        queue = self._queues.get(bucket_index)
        if queue is None:
            queue = WorkloadQueue(bucket_index)
            self._queues[bucket_index] = queue
        for entry in entries:
            queue.append(entry)
            state = self._queries.get(entry.query_id)
            if state is None:
                self._queries[entry.query_id] = _QueryState(
                    query_id=entry.query_id,
                    arrival_time_ms=entry.enqueue_time_ms,
                    total_buckets=1,
                    total_objects=entry.object_count,
                    remaining_buckets={bucket_index},
                )
                # Keep _arrival_order sorted by arrival time so arrival-order
                # policies (NoShare, IndexOnly) serve adopted queries in their
                # true order, not in adoption order.
                self._insert_in_arrival_order(entry.query_id, entry.enqueue_time_ms)
            else:
                state.remaining_buckets.add(bucket_index)
                state.total_buckets += 1
                state.total_objects += entry.object_count
        # Adoption can re-open a query the oldest_pending_query() cursor has
        # already skipped (its local share drained before the steal) and can
        # insert behind the cursor; rewind so no pending query is ever missed.
        self._arrival_cursor = 0

    # ------------------------------------------------------------------ #
    # reporting
    # ------------------------------------------------------------------ #

    def completed_queries(self) -> List[int]:
        """Query IDs in completion order."""
        return list(self._completed)

    def completion_time_ms(self, query_id: int) -> Optional[float]:
        """Completion time of a query, or ``None`` while it is pending."""
        return self._queries[query_id].completion_time_ms

    def response_time_ms(self, query_id: int) -> Optional[float]:
        """Response time (completion − arrival) of a query."""
        state = self._queries[query_id]
        if state.completion_time_ms is None:
            return None
        return state.completion_time_ms - state.arrival_time_ms

    def submitted_count(self) -> int:
        """Number of queries submitted so far."""
        return len(self._queries)

    def completed_count(self) -> int:
        """Number of queries fully serviced so far."""
        return len(self._completed)

    def total_pending_objects(self) -> int:
        """Objects waiting across all queues (the buffering the paper worries about)."""
        return sum(queue.total_objects for queue in self._queues.values())
