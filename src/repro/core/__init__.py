"""Core LifeRaft: the paper's primary contribution.

This package implements the query-processing pipeline of Figure 3 of the
paper:

* the **Query Pre-Processor** (:mod:`repro.core.preprocessor`) splits each
  incoming cross-match query into per-bucket sub-queries;
* the **Workload Manager** (:mod:`repro.core.workload_manager`) keeps one
  workload queue per bucket, tracks the age of the oldest request in each
  queue and the mapping from pending queries to queues;
* the **scheduling metrics** (:mod:`repro.core.metrics`) implement the
  workload throughput ``Ut`` and the aged workload throughput ``Ua``;
* the **LifeRaft scheduler** (:mod:`repro.core.scheduler`) picks the next
  bucket to service; :mod:`repro.core.baselines` provides the comparison
  policies of the evaluation (NoShare, RR, IndexOnly, least-sharable-first);
* the **Bucket Cache** (:mod:`repro.core.bucket_cache`) keeps recently read
  buckets in memory with an LRU policy;
* the **Join Evaluator** (:mod:`repro.core.join_evaluator`) applies the
  hybrid join strategy (indexed join vs. sequential scan) and performs the
  plane-sweep spatial merge join;
* the **adaptive controller** (:mod:`repro.core.adaptive`) tunes the age
  bias α from trade-off curves and a tolerance threshold;
* the **engine** (:mod:`repro.core.engine`) wires everything together.
"""

from repro.core.metrics import CostModel, workload_throughput, aged_workload_throughput
from repro.core.workload_manager import WorkloadEntry, WorkloadQueue, WorkloadManager
from repro.core.preprocessor import QueryPreProcessor
from repro.core.bucket_cache import BucketCacheManager
from repro.core.join_evaluator import HybridJoinEvaluator, JoinStrategy, JoinResult
from repro.core.scheduler import LifeRaftScheduler, SchedulerConfig, WorkItem
from repro.core.baselines import (
    NoShareScheduler,
    RoundRobinScheduler,
    IndexOnlyScheduler,
    LeastSharableFirstScheduler,
)
from repro.core.adaptive import TradeoffPoint, TradeoffCurve, AlphaController, SaturationEstimator
from repro.core.engine import LifeRaftEngine, EngineConfig

__all__ = [
    "CostModel",
    "workload_throughput",
    "aged_workload_throughput",
    "WorkloadEntry",
    "WorkloadQueue",
    "WorkloadManager",
    "QueryPreProcessor",
    "BucketCacheManager",
    "HybridJoinEvaluator",
    "JoinStrategy",
    "JoinResult",
    "LifeRaftScheduler",
    "SchedulerConfig",
    "WorkItem",
    "NoShareScheduler",
    "RoundRobinScheduler",
    "IndexOnlyScheduler",
    "LeastSharableFirstScheduler",
    "TradeoffPoint",
    "TradeoffCurve",
    "AlphaController",
    "SaturationEstimator",
    "LifeRaftEngine",
    "EngineConfig",
]
