"""The LifeRaft engine: the query-processing loop of Figure 3.

The engine wires together the pre-processor, workload manager, bucket
cache, hybrid join evaluator and a scheduling policy.  It exposes a small
surface:

* :meth:`LifeRaftEngine.submit` — a client query arrives and is split into
  per-bucket workloads;
* :meth:`LifeRaftEngine.process_next` — service the next work item chosen
  by the scheduler, returning what was done and what it cost (the caller
  owns the clock, so the same engine is driven by the online examples and
  by the discrete-event simulator);
* :meth:`LifeRaftEngine.run_until_idle` — convenience loop advancing an
  internal virtual clock until all submitted work is done;
* :meth:`LifeRaftEngine.report` — throughput, response times, cache and
  join statistics.

The schedule-evaluate-drain core of a single bucket service lives in
:class:`ServiceLoop` so that the serial engine and the per-worker shards of
:class:`repro.parallel.ParallelEngine` execute the *same* code path: one
scheduling decision, one hybrid-join evaluation, one queue drain, with
identical accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.bucket_cache import BucketCacheManager, PAPER_CACHE_BUCKETS
from repro.core.join_evaluator import HybridJoinEvaluator, JoinResult, JoinStrategy
from repro.core.metrics import CostModel
from repro.core.preprocessor import QueryPreProcessor
from repro.core.scheduler import LifeRaftScheduler, SchedulerConfig, SchedulingPolicy, WorkItem
from repro.core.workload_manager import WorkloadManager
from repro.storage.bucket_store import BucketStore
from repro.storage.index import SpatialIndex
from repro.storage.partitioner import PartitionLayout
from repro.telemetry.registry import REAL_DOMAIN, MetricsRegistry
from repro.workload.query import CrossMatchQuery

#: Virtual-millisecond bounds of the per-batch service-cost histogram
#: (bucket reads are ~1200 ms at paper constants; cache hits far less).
BATCH_COST_BOUNDS_MS = (1.0, 10.0, 50.0, 100.0, 250.0, 500.0, 1000.0, 2500.0, 5000.0)
#: Queries served per batch (sharing depth) histogram bounds.
BATCH_QUERY_BOUNDS = (1, 2, 4, 8, 16, 32, 64)
#: Default windowed-series cadence, expressed in bucket-read costs — the
#: same sizing rule as the parallel coordinator's steal quantum, but kept
#: here (the series cadence must not depend on importing the backends).
DEFAULT_SERIES_WINDOW_BUCKET_READS = 64.0
#: Slack used when flushing series barriers against virtual timestamps,
#: matching the arrival-delivery slack of the replay loops.
_SERIES_TIME_EPS = 1e-9


@dataclass(frozen=True)
class EngineConfig:
    """Tunables of the engine that are not part of the scheduling policy."""

    cache_buckets: int = PAPER_CACHE_BUCKETS
    cost: CostModel = field(default_factory=CostModel.paper_defaults)
    #: Hybrid-join threshold as a fraction of the bucket; ``None`` derives
    #: the break-even point from the cost model.
    hybrid_threshold_fraction: Optional[float] = None
    enable_hybrid: bool = True
    match_probability: float = 0.85
    #: Windowed-series sampling cadence in virtual ms; ``None`` derives
    #: :data:`DEFAULT_SERIES_WINDOW_BUCKET_READS` bucket reads from the
    #: cost model.  Sampling never perturbs the virtual clock.
    series_window_ms: Optional[float] = None

    def __post_init__(self) -> None:
        if self.cache_buckets <= 0:
            raise ValueError("cache_buckets must be positive")
        if self.series_window_ms is not None and self.series_window_ms <= 0:
            raise ValueError("series_window_ms must be positive")

    def resolved_series_window_ms(self) -> float:
        """The windowed-series cadence this config describes."""
        if self.series_window_ms is not None:
            return self.series_window_ms
        return self.cost.tb_ms * DEFAULT_SERIES_WINDOW_BUCKET_READS


@dataclass
class BatchResult:
    """What one call to :meth:`LifeRaftEngine.process_next` accomplished."""

    work_item: WorkItem
    join: JoinResult
    queries_served: Tuple[int, ...]
    queries_completed: Tuple[int, ...]
    started_at_ms: float
    finished_at_ms: float
    #: Objects drained per served query, aligned with :attr:`queries_served`
    #: (the per-query share of the batch — what a result chunk reports).
    objects_served: Tuple[int, ...] = ()

    @property
    def cost_ms(self) -> float:
        """Service time of the batch."""
        return self.join.cost_ms

    @property
    def io_ms(self) -> float:
        """I/O component of the batch cost (zero on a cache hit)."""
        return self.join.io_cost_ms

    @property
    def match_ms(self) -> float:
        """Match/computation component of the batch cost."""
        return self.join.match_cost_ms


@dataclass
class EngineReport:
    """Aggregate outcome of everything the engine has processed so far."""

    scheduler_name: str
    submitted_queries: int
    completed_queries: int
    busy_time_ms: float
    makespan_ms: float
    response_times_ms: Dict[int, float]
    bucket_services: int
    cache_hit_rate: float
    cache_statistics: Dict[str, float]
    join_statistics: Dict[str, float]
    strategy_counts: Dict[str, int]
    total_io_ms: float
    total_match_ms: float
    total_matches: int

    @property
    def throughput_qps(self) -> float:
        """Completed queries per second of makespan."""
        if self.makespan_ms <= 0:
            return 0.0
        return self.completed_queries / (self.makespan_ms / 1000.0)

    @property
    def avg_response_time_s(self) -> float:
        """Mean response time over completed queries, in seconds."""
        if not self.response_times_ms:
            return 0.0
        return sum(self.response_times_ms.values()) / len(self.response_times_ms) / 1000.0


class ServiceLoop:
    """The schedule → evaluate → drain pipeline over one workload manager.

    A :class:`ServiceLoop` owns the mutable service-side state of one
    execution lane — the workload manager, the scheduling policy, the
    bucket cache and the hybrid join evaluator — together with the
    accounting every report aggregates (busy time, per-strategy counts,
    I/O and match cost totals).  It is deliberately clock-free: callers
    pass ``now_ms`` and own time, so the same loop serves the serial
    :class:`LifeRaftEngine`, the discrete-event simulator, and each shard
    worker of :class:`repro.parallel.ParallelEngine`.
    """

    def __init__(
        self,
        layout: PartitionLayout,
        scheduler: SchedulingPolicy,
        manager: WorkloadManager,
        cache: BucketCacheManager,
        evaluator: HybridJoinEvaluator,
        telemetry: Optional[MetricsRegistry] = None,
        shard: int = 0,
        series_window_ms: Optional[float] = None,
    ) -> None:
        self.layout = layout
        self.scheduler = scheduler
        self.manager = manager
        self.cache = cache
        self.evaluator = evaluator
        self.batches: List[BatchResult] = []
        #: Lifetime service count.  Usually ``len(batches)``, but crash
        #: recovery restores the counter without replaying the batch
        #: history, so reports must read this rather than the list length.
        self.services = 0
        self.busy_ms = 0.0
        self.last_completion_ms = 0.0
        self.strategy_counts: Dict[str, int] = {s.value: 0 for s in JoinStrategy}
        self.total_io_ms = 0.0
        self.total_match_ms = 0.0
        self.total_matches = 0
        #: Per-lane metrics registry.  Every metric recorded here is in
        #: the virtual domain: bucket services are pure functions of the
        #: lane's arrival schedule, so snapshots are backend-invariant.
        #: Metric handles are resolved once; ``_record`` pays one
        #: attribute bump per metric per batch (the bench ratchet keeps
        #: that overhead honest).
        self.telemetry = telemetry if telemetry is not None else MetricsRegistry()
        registry = self.telemetry
        self._t_services = registry.counter("engine.services")
        self._t_strategy = {
            s.value: registry.counter("engine.strategy_services", labels={"strategy": s.value})
            for s in JoinStrategy
        }
        self._t_busy_ms = registry.counter("engine.busy_ms")
        self._t_io_ms = registry.counter("engine.io_ms")
        self._t_match_ms = registry.counter("engine.match_ms")
        self._t_matches = registry.counter("engine.matches")
        self._t_queries_completed = registry.counter("engine.queries_completed")
        self._t_objects_served = registry.counter("engine.objects_served")
        self._t_batch_cost = registry.histogram("engine.batch_cost_ms", BATCH_COST_BOUNDS_MS)
        self._t_batch_queries = registry.histogram("engine.batch_queries", BATCH_QUERY_BOUNDS)
        #: Windowed time series, sampled at the first service completion
        #: at-or-after each window barrier ``(k+1)·W``.  The cadence is a
        #: pure function of the lane's service timeline, so the virtual-
        #: domain series are bit-identical across execution backends and
        #: across crash/recovery (the sampler's cursor is the series'
        #: sample count, which rides the ``.lrcp`` telemetry envelope).
        self.shard = shard
        self._series_window_ms = (
            series_window_ms
            if series_window_ms is not None
            else CostModel.paper_defaults().tb_ms * DEFAULT_SERIES_WINDOW_BUCKET_READS
        )
        shard_labels = {"shard": str(shard)}
        window = self._series_window_ms
        self._s_queue_depth = registry.series(
            "series.queue_depth", window, labels=shard_labels
        )
        self._s_backlog_buckets = registry.series(
            "series.backlog_buckets", window, labels=shard_labels
        )
        self._s_cache_buckets = registry.series(
            "series.cache_buckets", window, labels=shard_labels
        )
        #: Tier-2 (decoded-page) occupancy exists only for file-backed
        #: stores and is wall-profile state — shared caches fill in
        #: whatever order the hardware ran — so it samples into the real
        #: domain and is never parity-asserted.
        self._s_page_cache_buckets = (
            registry.series(
                "series.page_cache_buckets",
                window,
                labels=shard_labels,
                domain=REAL_DOMAIN,
            )
            if getattr(cache.store, "page_cache", None) is not None
            else None
        )

    def has_pending_work(self) -> bool:
        """``True`` while any workload queue of this lane is non-empty."""
        return self.manager.has_pending_work()

    def service_next(self, now_ms: float) -> Optional[BatchResult]:
        """Run one bucket service: pick, evaluate, drain, account.

        Returns ``None`` when the scheduler has nothing to do.  The batch
        starts at *now_ms*; the caller advances its clock to
        ``result.finished_at_ms``.
        """
        work = self.scheduler.next_work(self.manager, self.cache, now_ms)
        if work is None:
            return None
        queue = self.manager.queue(work.bucket_index)
        if work.query_ids is None:
            entries = list(queue.entries)
        else:
            wanted = set(work.query_ids)
            entries = [e for e in queue.entries if e.query_id in wanted]
        join = self.evaluator.evaluate(
            self.layout[work.bucket_index],
            entries,
            force_strategy=work.force_strategy,
            share_io=work.share_io,
        )
        finish_ms = now_ms + join.cost_ms
        drained, completed = self.manager.drain_bucket(
            work.bucket_index, finish_ms, query_ids=work.query_ids
        )
        per_query: Dict[int, int] = {}
        for entry in drained:
            per_query[entry.query_id] = per_query.get(entry.query_id, 0) + entry.object_count
        served = tuple(sorted(per_query))
        result = BatchResult(
            work_item=work,
            join=join,
            queries_served=served,
            queries_completed=tuple(completed),
            started_at_ms=now_ms,
            finished_at_ms=finish_ms,
            objects_served=tuple(per_query[query_id] for query_id in served),
        )
        self._record(result)
        self._sample_series(result.finished_at_ms)
        return result

    def _sample_series(self, now_ms: float) -> None:
        """Flush windowed gauge samples for every barrier ``(k+1)·W ≤ now``.

        Sampling happens at service completions only, after the batch has
        drained, so the recorded state is the lane's post-drain state at
        the first completion at-or-after each barrier.  That instant is a
        pure function of the lane's admitted arrival schedule: arrivals in
        ``(started_at, finished_at]`` have not been ingested yet on any
        backend when this runs, so the virtual-domain samples are
        bit-identical across serial, virtual and process execution.  The
        cursor is the series' own sample count, which rides the ``.lrcp``
        telemetry envelope — after a crash/restore, replayed services
        re-record the post-checkpoint samples with no index overlap.
        """
        window_ms = self._series_window_ms
        count = len(self._s_queue_depth.samples)
        while (count + 1) * window_ms <= now_ms + _SERIES_TIME_EPS:
            self._s_queue_depth.record(count, self.manager.pending_entries())
            self._s_backlog_buckets.record(count, len(self.manager.pending_buckets()))
            self._s_cache_buckets.record(count, len(self.cache.resident_buckets()))
            if self._s_page_cache_buckets is not None:
                self._s_page_cache_buckets.record(
                    count, self.cache.store.page_cache.resident_count
                )
            count += 1

    def _record(self, result: BatchResult) -> None:
        self.batches.append(result)
        self.services += 1
        self.busy_ms += result.cost_ms
        self.strategy_counts[result.join.strategy.value] += 1
        self.total_io_ms += result.join.io_cost_ms
        self.total_match_ms += result.join.match_cost_ms
        self.total_matches += result.join.match_count
        if result.queries_completed:
            self.last_completion_ms = max(self.last_completion_ms, result.finished_at_ms)
        self._t_services.inc()
        self._t_strategy[result.join.strategy.value].inc()
        self._t_busy_ms.inc(result.cost_ms)
        self._t_io_ms.inc(result.join.io_cost_ms)
        self._t_match_ms.inc(result.join.match_cost_ms)
        self._t_matches.inc(result.join.match_count)
        self._t_queries_completed.inc(len(result.queries_completed))
        self._t_objects_served.inc(sum(result.objects_served))
        self._t_batch_cost.observe(result.cost_ms)
        self._t_batch_queries.observe(len(result.queries_served))


def build_service_loop(
    layout: PartitionLayout,
    store: BucketStore,
    scheduler: SchedulingPolicy,
    config: EngineConfig,
    index: Optional[SpatialIndex] = None,
    shard: int = 0,
) -> ServiceLoop:
    """Assemble a :class:`ServiceLoop` with its own cache and evaluator.

    This is the construction recipe shared by the serial engine and by
    every shard worker of the parallel engine: one private LRU bucket
    cache over *store* and one hybrid evaluator bound to it.
    """
    manager = WorkloadManager()
    # One registry per lane: the loop and its cache record into the same
    # family, and the lane's snapshot rides the WorkerResult IPC seam.
    telemetry = MetricsRegistry()
    cache = BucketCacheManager(store, config.cache_buckets, telemetry=telemetry)
    evaluator = HybridJoinEvaluator(
        cost=config.cost,
        cache=cache,
        index=index,
        threshold_fraction=config.hybrid_threshold_fraction,
        enable_hybrid=config.enable_hybrid,
        match_probability=config.match_probability,
    )
    return ServiceLoop(
        layout,
        scheduler,
        manager,
        cache,
        evaluator,
        telemetry=telemetry,
        shard=shard,
        series_window_ms=config.resolved_series_window_ms(),
    )


class LifeRaftEngine:
    """Single-site query processing with data-driven batch scheduling."""

    def __init__(
        self,
        layout: PartitionLayout,
        store: BucketStore,
        scheduler: Optional[SchedulingPolicy] = None,
        index: Optional[SpatialIndex] = None,
        config: Optional[EngineConfig] = None,
    ) -> None:
        self.config = config or EngineConfig()
        self.layout = layout
        self.store = store
        self.scheduler: SchedulingPolicy = scheduler or LifeRaftScheduler(
            SchedulerConfig(cost=self.config.cost)
        )
        self.preprocessor = QueryPreProcessor(layout)
        self.loop = build_service_loop(
            layout, store, self.scheduler, self.config, index=index
        )
        self.manager = self.loop.manager
        self.cache = self.loop.cache
        self.evaluator = self.loop.evaluator
        self._queries: Dict[int, CrossMatchQuery] = {}
        self._now_ms = 0.0
        self._first_arrival_ms: Optional[float] = None

    # ------------------------------------------------------------------ #
    # intake
    # ------------------------------------------------------------------ #

    @property
    def now_ms(self) -> float:
        """The engine's internal virtual clock (used by :meth:`run_until_idle`)."""
        return self._now_ms

    def submit(self, query: CrossMatchQuery, now_ms: Optional[float] = None) -> None:
        """Accept a query: pre-process it and enqueue its per-bucket workloads."""
        arrival_ms = now_ms if now_ms is not None else query.arrival_time_s * 1000.0
        assignments = self.preprocessor.assign(query)
        if not assignments:
            # A query with no overlap at this site completes immediately.
            return
        self.manager.add_query(query.query_id, assignments, arrival_ms)
        self._queries[query.query_id] = query
        if self._first_arrival_ms is None or arrival_ms < self._first_arrival_ms:
            self._first_arrival_ms = arrival_ms
        self._now_ms = max(self._now_ms, arrival_ms)

    def has_pending_work(self) -> bool:
        """``True`` while any workload queue is non-empty."""
        return self.manager.has_pending_work()

    # ------------------------------------------------------------------ #
    # the service loop
    # ------------------------------------------------------------------ #

    def process_next(self, now_ms: Optional[float] = None) -> Optional[BatchResult]:
        """Service the next work item chosen by the scheduler.

        Returns ``None`` when nothing is pending.  The caller is responsible
        for advancing its clock by ``result.cost_ms`` (the simulator does);
        the engine's own clock is advanced too so that ages stay meaningful
        when the engine is used standalone.
        """
        start_ms = now_ms if now_ms is not None else self._now_ms
        result = self.loop.service_next(start_ms)
        if result is None:
            return None
        self._now_ms = max(self._now_ms, result.finished_at_ms)
        return result

    def run_until_idle(self, max_batches: Optional[int] = None) -> int:
        """Drain all pending work, advancing the internal clock.

        Returns the number of batches processed.  ``max_batches`` guards
        against runaway loops in tests.
        """
        processed = 0
        while self.has_pending_work():
            result = self.process_next(self._now_ms)
            if result is None:
                break
            self._now_ms = result.finished_at_ms
            processed += 1
            if max_batches is not None and processed >= max_batches:
                break
        return processed

    # ------------------------------------------------------------------ #
    # reporting
    # ------------------------------------------------------------------ #

    @property
    def batches(self) -> Sequence[BatchResult]:
        """Every batch processed so far, in execution order."""
        return self.loop.batches

    def report(self) -> EngineReport:
        """Summarise what the engine has done so far."""
        response_times: Dict[int, float] = {}
        for query_id in self.manager.completed_queries():
            rt = self.manager.response_time_ms(query_id)
            if rt is not None:
                response_times[query_id] = rt
        first_arrival = self._first_arrival_ms or 0.0
        makespan = max(0.0, self.loop.last_completion_ms - first_arrival)
        return EngineReport(
            scheduler_name=self.scheduler.name,
            submitted_queries=self.manager.submitted_count(),
            completed_queries=self.manager.completed_count(),
            busy_time_ms=self.loop.busy_ms,
            makespan_ms=makespan,
            response_times_ms=response_times,
            bucket_services=self.loop.services,
            cache_hit_rate=self.cache.hit_rate,
            cache_statistics=self.cache.statistics(),
            join_statistics=self.evaluator.statistics(),
            strategy_counts=dict(self.loop.strategy_counts),
            total_io_ms=self.loop.total_io_ms,
            total_match_ms=self.loop.total_match_ms,
            total_matches=self.loop.total_matches,
        )
