"""Workload-adaptive selection of the age bias α.

Section 4 of the paper describes how α is chosen: trade-off curves of
(normalised) query throughput versus (normalised) response time are
determined offline for representative saturation levels by sweeping α
(Figure 4); online, the controller estimates the current saturation and
picks, for the closest curve, the α that minimises response time while
giving up no more than a user-specified **tolerance threshold** of the
maximum achievable throughput.  At low saturation that pushes α toward 1
(arrival order — big response-time wins for a small throughput cost); at
high saturation toward small α (contention wins dominate).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class TradeoffPoint:
    """One point of a trade-off curve: the outcome of running one α."""

    alpha: float
    throughput_qps: float
    avg_response_time_s: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.alpha <= 1.0:
            raise ValueError("alpha must be within [0, 1]")
        if self.throughput_qps < 0 or self.avg_response_time_s < 0:
            raise ValueError("throughput and response time must be non-negative")


@dataclass
class TradeoffCurve:
    """A throughput/response-time trade-off curve at one saturation level."""

    saturation_qps: float
    points: List[TradeoffPoint] = field(default_factory=list)

    def add(self, point: TradeoffPoint) -> None:
        """Add one measured point to the curve."""
        self.points.append(point)

    def max_throughput(self) -> float:
        """Best throughput achieved by any α on this curve."""
        if not self.points:
            raise ValueError("empty trade-off curve")
        return max(p.throughput_qps for p in self.points)

    def max_response_time(self) -> float:
        """Worst average response time on this curve (normalisation reference)."""
        if not self.points:
            raise ValueError("empty trade-off curve")
        return max(p.avg_response_time_s for p in self.points)

    def normalized(self) -> List[Tuple[float, float, float]]:
        """Figure 4 view: (alpha, throughput/max, response/max) triples."""
        max_tp = self.max_throughput() or 1.0
        max_rt = self.max_response_time() or 1.0
        return [
            (
                p.alpha,
                p.throughput_qps / max_tp if max_tp else 0.0,
                p.avg_response_time_s / max_rt if max_rt else 0.0,
            )
            for p in sorted(self.points, key=lambda p: p.alpha)
        ]

    def select_alpha(self, tolerance: float = 0.2) -> float:
        """Pick the α minimising response time within the throughput tolerance.

        "average response time is minimized without sacrificing more than
        20 % of maximum achievable throughput" (§4) corresponds to
        ``tolerance=0.2``.
        """
        if not 0.0 <= tolerance < 1.0:
            raise ValueError("tolerance must be within [0, 1)")
        if not self.points:
            raise ValueError("empty trade-off curve")
        floor = (1.0 - tolerance) * self.max_throughput()
        eligible = [p for p in self.points if p.throughput_qps >= floor]
        if not eligible:
            eligible = list(self.points)
        best = min(eligible, key=lambda p: (p.avg_response_time_s, -p.alpha))
        return best.alpha


class SaturationEstimator:
    """Sliding-window estimate of the query arrival rate.

    The controller needs to know how saturated the workload currently is;
    a window over recent arrival timestamps gives a rate estimate robust to
    the bursty, non-stationary traffic the paper worries about in §6.
    """

    def __init__(self, window_s: float = 600.0) -> None:
        if window_s <= 0:
            raise ValueError("window must be positive")
        self.window_s = window_s
        self._arrivals: List[float] = []

    def observe_arrival(self, time_s: float) -> None:
        """Record one query arrival at *time_s* (seconds)."""
        if self._arrivals and time_s < self._arrivals[-1]:
            raise ValueError("arrival times must be non-decreasing")
        self._arrivals.append(time_s)

    def rate_qps(self, now_s: Optional[float] = None) -> float:
        """Arrivals per second over the trailing window."""
        if not self._arrivals:
            return 0.0
        now = now_s if now_s is not None else self._arrivals[-1]
        cutoff = now - self.window_s
        start = bisect.bisect_left(self._arrivals, cutoff)
        recent = len(self._arrivals) - start
        if recent <= 0:
            return 0.0
        # Divide by the full window once enough history exists; during the
        # cold start divide by the span actually observed so far.
        observed_span = now - self._arrivals[0]
        horizon = max(min(self.window_s, observed_span), 1e-9)
        return recent / horizon


class AlphaController:
    """Chooses α from offline trade-off curves and a tolerance threshold."""

    def __init__(
        self,
        curves: Sequence[TradeoffCurve],
        tolerance: float = 0.2,
        estimator: Optional[SaturationEstimator] = None,
    ) -> None:
        if not curves:
            raise ValueError("at least one trade-off curve is required")
        self.curves: List[TradeoffCurve] = sorted(curves, key=lambda c: c.saturation_qps)
        self.tolerance = tolerance
        self.estimator = estimator or SaturationEstimator()

    def curve_for_saturation(self, saturation_qps: float) -> TradeoffCurve:
        """The offline curve whose saturation level is closest to the estimate."""
        return min(self.curves, key=lambda c: abs(c.saturation_qps - saturation_qps))

    def alpha_for_saturation(self, saturation_qps: float) -> float:
        """α recommended for an explicitly given saturation level."""
        return self.curve_for_saturation(saturation_qps).select_alpha(self.tolerance)

    def observe_arrival(self, time_s: float) -> None:
        """Feed one arrival into the saturation estimator."""
        self.estimator.observe_arrival(time_s)

    def current_alpha(self, now_s: Optional[float] = None) -> float:
        """α recommended for the currently estimated saturation."""
        return self.alpha_for_saturation(self.estimator.rate_qps(now_s))
