"""Scheduling metrics: workload throughput and aged workload throughput.

Equation (1) of the paper defines the **workload throughput** of bucket
``B_i`` as::

            sum_j W_i^j
    Ut(i) = ----------------------------------
            Tb * phi(i)  +  Tm * sum_j W_i^j

where ``sum_j W_i^j`` is the size of the bucket's workload queue (pending
cross-match objects), ``Tb`` is the time to read a bucket from disk, ``Tm``
the time to match one object in memory, and ``phi(i)`` is 0 when the bucket
is already resident in the cache and 1 otherwise.  ``Ut`` is the rate at
which objects would be consumed if the bucket were serviced now.

Equation (2) blends contention with starvation resistance — the **aged
workload throughput**::

    Ua(i) = Ut(i) * (1 - alpha) + A(i) * alpha

with ``A(i)`` the age of the oldest request in the queue and ``alpha`` in
``[0, 1]`` biasing between pure contention (0) and pure arrival order (1).

The paper leaves the two terms in their natural units (objects/ms vs. ms),
in which case any non-zero α is quickly dominated by the age term.  To make
intermediate α values meaningful — the published evaluation clearly shows
graded behaviour at α = 0.25/0.5/0.75 — this module also provides a
*normalised* combination: ``Ut`` is scaled by its upper bound ``1/Tm`` and
``A`` by the current maximum pending age, so both terms live in ``[0, 1]``.
Normalisation is the default; the raw combination is available for
comparison (``normalize=False``) and is exercised by the ablation bench.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

#: The paper's empirically derived constants (§5): reading one 40 MB bucket
#: costs 1.2 seconds; matching one object in memory costs 0.13 milliseconds.
PAPER_TB_MS = 1_200.0
PAPER_TM_MS = 0.13


@dataclass(frozen=True)
class CostModel:
    """The cost constants that drive scheduling and simulation.

    Attributes
    ----------
    tb_ms:
        Cost of reading one bucket from disk with a sequential scan (``Tb``).
    tm_ms:
        Cost of cross-matching one object against an in-memory bucket (``Tm``).
    index_probe_ms:
        Cost of cross-matching one object through the spatial index instead
        of a scan (a handful of random I/Os).  Drives the hybrid join
        strategy and the IndexOnly baseline.
    bucket_objects:
        Number of objects per bucket; used to express the hybrid-join
        threshold as a fraction of the bucket.
    bucket_megabytes:
        On-disk bucket size (informational; ``tb_ms`` already reflects it).
    """

    tb_ms: float = PAPER_TB_MS
    tm_ms: float = PAPER_TM_MS
    index_probe_ms: float = 4.2
    bucket_objects: int = 10_000
    bucket_megabytes: float = 40.0

    def __post_init__(self) -> None:
        if self.tb_ms <= 0 or self.tm_ms <= 0:
            raise ValueError("Tb and Tm must be positive")
        if self.index_probe_ms <= 0:
            raise ValueError("index_probe_ms must be positive")
        if self.bucket_objects <= 0:
            raise ValueError("bucket_objects must be positive")

    @classmethod
    def paper_defaults(cls) -> "CostModel":
        """The constants measured on the paper's SDSS testbed."""
        return cls()

    @classmethod
    def from_disk(
        cls,
        disk,
        bucket_megabytes: float = 40.0,
        bucket_objects: int = 10_000,
        tm_ms: float = PAPER_TM_MS,
        probe_pages: int = 2,
    ) -> "CostModel":
        """Derive the constants from a :class:`~repro.storage.disk_model.DiskModel`.

        ``probe_pages`` is the number of random pages one indexed match
        touches (index descent amortised plus the data page).
        """
        parameters = disk.parameters
        tb = parameters.positioning_ms + parameters.transfer_ms(bucket_megabytes)
        per_page = parameters.positioning_ms + parameters.transfer_ms(
            parameters.page_size_kb / 1024.0
        )
        return cls(
            tb_ms=tb,
            tm_ms=tm_ms,
            index_probe_ms=probe_pages * per_page,
            bucket_objects=bucket_objects,
            bucket_megabytes=bucket_megabytes,
        )

    # ------------------------------------------------------------------ #
    # elementary costs
    # ------------------------------------------------------------------ #

    def scan_cost_ms(self, queue_objects: int, in_memory: bool) -> float:
        """Cost of servicing a workload queue with a sequential bucket scan."""
        if queue_objects < 0:
            raise ValueError("queue size cannot be negative")
        io = 0.0 if in_memory else self.tb_ms
        return io + self.tm_ms * queue_objects

    def index_cost_ms(self, queue_objects: int) -> float:
        """Cost of servicing a workload queue with per-object index probes."""
        if queue_objects < 0:
            raise ValueError("queue size cannot be negative")
        return self.index_probe_ms * queue_objects

    def breakeven_queue_objects(self) -> float:
        """Queue size at which an indexed join and a cold scan cost the same.

        Solving ``index_probe_ms * W = Tb + Tm * W`` for ``W``; with the
        paper's constants this lands near 3 % of a 10,000-object bucket,
        matching Figure 2's break-even point.
        """
        denominator = self.index_probe_ms - self.tm_ms
        if denominator <= 0:
            return float("inf")
        return self.tb_ms / denominator

    def breakeven_fraction(self) -> float:
        """Break-even queue size expressed as a fraction of the bucket."""
        return self.breakeven_queue_objects() / self.bucket_objects

    @property
    def max_workload_throughput(self) -> float:
        """Upper bound of ``Ut``: the in-memory matching rate ``1/Tm``."""
        return 1.0 / self.tm_ms


def workload_throughput(queue_objects: int, in_memory: bool, cost: CostModel) -> float:
    """Equation (1): the workload throughput ``Ut`` of one bucket.

    Returns 0 for an empty queue (there is nothing to consume, so the bucket
    should never be selected on contention grounds).
    """
    if queue_objects < 0:
        raise ValueError("queue size cannot be negative")
    if queue_objects == 0:
        return 0.0
    phi = 0.0 if in_memory else 1.0
    return queue_objects / (cost.tb_ms * phi + cost.tm_ms * queue_objects)


def aged_workload_throughput(
    ut: float,
    age_ms: float,
    alpha: float,
    cost: Optional[CostModel] = None,
    max_age_ms: Optional[float] = None,
    normalize: bool = True,
) -> float:
    """Equation (2): blend contention (``Ut``) with request age.

    Parameters
    ----------
    ut:
        Workload throughput of the bucket (objects per millisecond).
    age_ms:
        Age of the oldest pending request in the bucket's queue.
    alpha:
        Age bias in ``[0, 1]``; 0 selects the most contentious bucket, 1
        schedules purely by arrival order.
    cost, max_age_ms, normalize:
        When *normalize* is true (the default) ``ut`` is divided by its
        upper bound ``1/Tm`` (requires *cost*) and ``age_ms`` by
        *max_age_ms* (the age of the oldest request over all queues), so
        both terms are comparable and intermediate α values interpolate
        meaningfully.  With ``normalize=False`` the raw paper formula is
        used.
    """
    if not 0.0 <= alpha <= 1.0:
        raise ValueError("alpha must be within [0, 1]")
    if age_ms < 0:
        raise ValueError("age cannot be negative")
    if not normalize:
        return ut * (1.0 - alpha) + age_ms * alpha
    if cost is None:
        raise ValueError("normalised combination requires a CostModel")
    ut_term = ut / cost.max_workload_throughput
    if max_age_ms is None or max_age_ms <= 0:
        age_term = 0.0
    else:
        age_term = min(1.0, age_ms / max_age_ms)
    return ut_term * (1.0 - alpha) + age_term * alpha
