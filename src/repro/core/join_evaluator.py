"""The Join Evaluator and the hybrid join strategy.

"The Join Evaluator selects the appropriate hybrid join strategy and
requests data from the Bucket Cache … separates objects that succeed in the
spatial join by their parent queries, applies query specific predicates,
and ships the results" (§4).

Two strategies are available per bucket service (§3.4):

* **sequential scan** — read the whole bucket (through the cache, paying
  ``Tb`` on a miss) and cross-match every pending object against it in one
  plane-sweep merge pass at ``Tm`` per object;
* **indexed join** — probe the spatial index once per pending object,
  paying a few random I/Os each but never touching the bulk of the bucket.

The scan wins once the workload queue exceeds a few percent of the bucket
(the paper's Figure 2 puts the break-even near 3 % for 40 MB buckets); the
index wins for small queues, and an in-memory bucket always favours the
scan because matching from memory is far cheaper than random I/O.
"""

from __future__ import annotations

import bisect
import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.bucket_cache import BucketCacheManager
from repro.core.kernels import MatchedPair, crossmatch_block
from repro.core.metrics import CostModel
from repro.core.workload_manager import WorkloadEntry
from repro.htm.geometry import angular_separation
from repro.storage.bucket_store import Bucket
from repro.storage.index import SpatialIndex
from repro.storage.partitioner import BucketSpec
from repro.workload.query import CrossMatchObject


class JoinStrategy(enum.Enum):
    """How a bucket's workload queue is evaluated."""

    SEQUENTIAL_SCAN = "sequential_scan"
    INDEXED_JOIN = "indexed_join"


@dataclass
class JoinResult:
    """Outcome of servicing one bucket."""

    bucket_index: int
    strategy: JoinStrategy
    cost_ms: float
    io_cost_ms: float
    match_cost_ms: float
    objects_processed: int
    cache_hit: bool
    matches: Tuple[MatchedPair, ...] = ()
    match_count: int = 0
    per_query_matches: Dict[int, int] = field(default_factory=dict)


class HybridJoinEvaluator:
    """Evaluates workload queues against buckets with the hybrid strategy."""

    def __init__(
        self,
        cost: CostModel,
        cache: BucketCacheManager,
        index: Optional[SpatialIndex] = None,
        threshold_fraction: Optional[float] = None,
        enable_hybrid: bool = True,
        match_probability: float = 0.85,
    ) -> None:
        """
        Parameters
        ----------
        cost:
            The cost model (Tb, Tm, index probe cost).
        cache:
            Bucket cache used by the scan path.
        index:
            Spatial index used by the indexed path; when ``None`` the
            evaluator always scans.
        threshold_fraction:
            Hybrid-join threshold as a fraction of the bucket's object
            count.  ``None`` derives the break-even point from the cost
            model (≈3 % with the paper's constants).
        enable_hybrid:
            When false, every service uses a sequential scan (useful for
            the threshold ablation).
        match_probability:
            In virtual mode (no materialised rows) the number of successful
            matches is estimated as this fraction of the processed objects.
        """
        if threshold_fraction is not None and threshold_fraction < 0:
            raise ValueError("threshold_fraction must be non-negative")
        if not 0.0 <= match_probability <= 1.0:
            raise ValueError("match_probability must be within [0, 1]")
        self.cost = cost
        self.cache = cache
        self.index = index
        self.enable_hybrid = enable_hybrid
        self.match_probability = match_probability
        self._threshold_fraction = threshold_fraction
        self.scan_services = 0
        self.index_services = 0

    # ------------------------------------------------------------------ #
    # strategy selection
    # ------------------------------------------------------------------ #

    @property
    def threshold_fraction(self) -> float:
        """The workload-queue/bucket ratio above which the scan is used."""
        if self._threshold_fraction is not None:
            return self._threshold_fraction
        return self.cost.breakeven_fraction()

    def choose_strategy(
        self,
        queue_objects: int,
        bucket_objects: int,
        bucket_resident: bool,
        force: Optional[JoinStrategy] = None,
    ) -> JoinStrategy:
        """Pick the join strategy for one bucket service.

        A resident bucket is always scanned (matching from memory beats any
        random I/O); otherwise the queue size is compared against the
        threshold fraction of the bucket.
        """
        if force is not None:
            return force
        if not self.enable_hybrid or self.index is None:
            return JoinStrategy.SEQUENTIAL_SCAN
        if bucket_resident:
            return JoinStrategy.SEQUENTIAL_SCAN
        if bucket_objects <= 0:
            return JoinStrategy.INDEXED_JOIN
        ratio = queue_objects / bucket_objects
        if ratio < self.threshold_fraction:
            return JoinStrategy.INDEXED_JOIN
        return JoinStrategy.SEQUENTIAL_SCAN

    # ------------------------------------------------------------------ #
    # evaluation
    # ------------------------------------------------------------------ #

    def evaluate(
        self,
        bucket_spec: BucketSpec,
        entries: Sequence[WorkloadEntry],
        force_strategy: Optional[JoinStrategy] = None,
        share_io: bool = True,
    ) -> JoinResult:
        """Service one bucket's (possibly partial) workload queue.

        Parameters
        ----------
        bucket_spec:
            The bucket being serviced.
        entries:
            The workload entries batched into this service.
        force_strategy:
            Override the hybrid choice (used by the NoShare and IndexOnly
            baselines).
        share_io:
            When false the bucket cache is bypassed entirely: the read is
            charged in full and the bucket is not retained, which is how the
            NoShare baseline models per-query, unshared I/O.
        """
        queue_objects = sum(entry.object_count for entry in entries)
        if queue_objects == 0:
            return JoinResult(
                bucket_index=bucket_spec.index,
                strategy=JoinStrategy.SEQUENTIAL_SCAN,
                cost_ms=0.0,
                io_cost_ms=0.0,
                match_cost_ms=0.0,
                objects_processed=0,
                cache_hit=False,
            )
        resident = share_io and self.cache.resident(bucket_spec.index)
        strategy = self.choose_strategy(
            queue_objects, bucket_spec.object_count, resident, force_strategy
        )
        if strategy is JoinStrategy.INDEXED_JOIN:
            self.index_services += 1
            return self._evaluate_indexed(bucket_spec, entries, queue_objects)
        self.scan_services += 1
        return self._evaluate_scan(bucket_spec, entries, queue_objects, share_io)

    def _evaluate_scan(
        self,
        bucket_spec: BucketSpec,
        entries: Sequence[WorkloadEntry],
        queue_objects: int,
        share_io: bool,
    ) -> JoinResult:
        if share_io:
            load = self.cache.load(bucket_spec.index)
            bucket, io_cost, cache_hit = load.bucket, load.io_cost_ms, load.hit
        else:
            read = self.cache.store.read_bucket(bucket_spec.index)
            bucket, io_cost, cache_hit = read.bucket, read.cost_ms, False
        match_cost = self.cost.tm_ms * queue_objects
        matches, per_query = self._merge_join(bucket, entries)
        match_count = len(matches) if matches else self._estimate_matches(queue_objects)
        if not matches:
            per_query = self._estimate_per_query(entries)
        return JoinResult(
            bucket_index=bucket_spec.index,
            strategy=JoinStrategy.SEQUENTIAL_SCAN,
            cost_ms=io_cost + match_cost,
            io_cost_ms=io_cost,
            match_cost_ms=match_cost,
            objects_processed=queue_objects,
            cache_hit=cache_hit,
            matches=tuple(matches),
            match_count=match_count,
            per_query_matches=per_query,
        )

    def _evaluate_indexed(
        self,
        bucket_spec: BucketSpec,
        entries: Sequence[WorkloadEntry],
        queue_objects: int,
    ) -> JoinResult:
        io_cost = self.cost.index_cost_ms(queue_objects)
        matches: List[MatchedPair] = []
        per_query: Dict[int, int] = {}
        materialised = self.index is not None and len(self.index) > 0
        if materialised:
            for entry in entries:
                found = 0
                for obj in entry.objects:
                    found += self._probe_and_refine(entry.query_id, obj, matches)
                per_query[entry.query_id] = found
        if not matches:
            per_query = self._estimate_per_query(entries)
        match_count = len(matches) if matches else self._estimate_matches(queue_objects)
        return JoinResult(
            bucket_index=bucket_spec.index,
            strategy=JoinStrategy.INDEXED_JOIN,
            cost_ms=io_cost,
            io_cost_ms=io_cost,
            match_cost_ms=0.0,
            objects_processed=queue_objects,
            cache_hit=False,
            matches=tuple(matches),
            match_count=match_count,
            per_query_matches=per_query,
        )

    # ------------------------------------------------------------------ #
    # the actual spatial join (full-fidelity mode)
    # ------------------------------------------------------------------ #

    def _merge_join(
        self, bucket: Bucket, entries: Sequence[WorkloadEntry]
    ) -> Tuple[List[MatchedPair], Dict[int, int]]:
        """Plane-sweep merge of the workload queue against the bucket.

        "Objects in both the bucket and its corresponding workload queue
        are first sorted by their HTM IDs.  The join is performed by
        simultaneously scanning and merging objects in both" (§3.1).  Here
        the bucket side is already HTM-sorted; each workload object's
        candidate window is located by binary search, which is the same
        access pattern as the merge with fewer lines of code.
        """
        matches: List[MatchedPair] = []
        per_query: Dict[int, int] = {}
        if bucket.is_virtual:
            return matches, per_query
        if bucket.columns is not None:
            # Columnar fast path: whole-column kernel over the decoded
            # block; row objects are built only for matches.
            return crossmatch_block(bucket.columns, entries)
        if not bucket.objects:
            return matches, per_query
        # Sort the workload side by the start of each object's HTM window.
        flattened: List[Tuple[int, CrossMatchObject]] = []
        for entry in entries:
            for obj in entry.objects:
                flattened.append((entry.query_id, obj))
        flattened.sort(key=lambda pair: pair[1].htm_range.low)
        for query_id, obj in flattened:
            per_query.setdefault(query_id, 0)
            per_query[query_id] += self._refine_candidates(query_id, obj, bucket, matches)
        return matches, per_query

    def _refine_candidates(
        self,
        query_id: int,
        obj: CrossMatchObject,
        bucket: Bucket,
        matches: List[MatchedPair],
    ) -> int:
        """Refine one workload object against the bucket's candidate window."""
        low = bisect.bisect_left(bucket.htm_ids, obj.htm_range.low)
        high = bisect.bisect_right(bucket.htm_ids, obj.htm_range.high)
        found = 0
        for candidate in bucket.objects[low:high]:
            separation = self._separation_arcsec(obj, candidate)
            if separation is not None and separation <= obj.match_radius_arcsec:
                matches.append(MatchedPair(query_id, obj, candidate, separation))
                found += 1
        return found

    def _probe_and_refine(
        self, query_id: int, obj: CrossMatchObject, matches: List[MatchedPair]
    ) -> int:
        """Indexed path: probe the spatial index for one workload object."""
        assert self.index is not None
        result = self.index.probe_range(obj.htm_range)
        found = 0
        for candidate in result.rows:
            separation = self._separation_arcsec(obj, candidate)
            if separation is not None and separation <= obj.match_radius_arcsec:
                matches.append(MatchedPair(query_id, obj, candidate, separation))
                found += 1
        return found

    @staticmethod
    def _separation_arcsec(obj: CrossMatchObject, candidate: object) -> Optional[float]:
        if obj.ra is None or obj.dec is None:
            return None
        ra = getattr(candidate, "ra", None)
        dec = getattr(candidate, "dec", None)
        if ra is None or dec is None:
            return None
        return angular_separation(obj.ra, obj.dec, ra, dec) * 3600.0

    # ------------------------------------------------------------------ #
    # virtual-mode estimates
    # ------------------------------------------------------------------ #

    def _estimate_matches(self, queue_objects: int) -> int:
        return int(round(self.match_probability * queue_objects))

    def _estimate_per_query(self, entries: Sequence[WorkloadEntry]) -> Dict[int, int]:
        return {
            entry.query_id: int(round(self.match_probability * entry.object_count))
            for entry in entries
        }

    def statistics(self) -> Dict[str, float]:
        """Service counts per strategy (used by the ablation reports)."""
        total = self.scan_services + self.index_services
        return {
            "scan_services": float(self.scan_services),
            "index_services": float(self.index_services),
            "index_service_fraction": (self.index_services / total) if total else 0.0,
            "threshold_fraction": self.threshold_fraction,
        }
