"""Execution backends behind the :class:`~repro.parallel.sharding.ShardPlan` seam.

The parallel engine's topology — N shard workers, staged per-worker
arrival schedules, whole-queue work stealing — is independent of *where*
the workers run.  An :class:`ExecutionBackend` makes that seam explicit:

* :class:`VirtualBackend` interleaves the shard workers inside one OS
  process in virtual time (the deterministic default every test drives);
* :class:`ProcessBackend` runs each shard worker in its own OS process
  (``multiprocessing``, spawn-safe): per-shard workloads ship as pickled
  :class:`~repro.parallel.ipc.ShardTask` messages, every child rebuilds a
  read-only :class:`~repro.storage.bucket_store.StoreSnapshot` of the
  archive, and the coordinator advances all shards concurrently in virtual
  time windows.  Work stealing becomes message passing: at each window
  barrier the coordinator re-assigns the most starving bucket queue from a
  busy shard to an idle one (:class:`~repro.parallel.ipc.ReleaseBucket` /
  :class:`~repro.parallel.ipc.AdoptBucket`), exactly the whole-queue
  migration rule of the in-process engine.

Both backends return the same :class:`BackendOutcome` — one merged
:class:`~repro.core.engine.EngineReport`, a
:class:`~repro.parallel.engine.ParallelReport`, the merged per-worker
:class:`~repro.sim.events.WorkerEventLog` and a global service log — so
callers (the simulator, the scaling experiment, the parity tests) treat
them interchangeably.  Virtual-clock accounting is backend-invariant; only
the *real* wall clock (:attr:`BackendOutcome.real_elapsed_s`) differs,
which is what the process backend exists to improve.
"""

from __future__ import annotations

import multiprocessing
import time
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.core.engine import EngineConfig, EngineReport
from repro.core.preprocessor import QueryPreProcessor
from repro.core.scheduler import SchedulingPolicy
from repro.parallel.engine import (
    CompletionTracker,
    ParallelEngine,
    ParallelReport,
    StealRecord,
    merge_worker_results,
)
from repro.parallel.ipc import (
    AdoptBucket,
    BatchRecord,
    BucketQueueMeta,
    Finalize,
    ReleaseBucket,
    ReleasedBucket,
    RunWindow,
    ShardTask,
    Shutdown,
    WindowReport,
    WorkerFailure,
    WorkerResult,
    shard_worker_main,
)
from repro.parallel.sharding import ShardPlan, make_shard_plan
from repro.parallel.worker import StagedShare
from repro.sim.events import Event, EventKind, WorkerEventLog
from repro.telemetry.registry import REAL_DOMAIN, MetricsRegistry, merge_snapshots
from repro.storage.bucket_store import BucketStore
from repro.storage.index import SpatialIndex
from repro.storage.partitioner import PartitionLayout
from repro.workload.query import CrossMatchQuery

if TYPE_CHECKING:
    from repro.reliability.config import ReliabilityConfig, ReliabilityReport

#: How long the coordinator waits on a single worker-process reply before
#: declaring the run wedged (generous: windows are seconds of real work).
REPLY_TIMEOUT_S = 600.0

#: Default steal window, as a multiple of the bucket-read cost ``Tb``: long
#: enough that a window amortises tens of services (every barrier costs one
#: message round trip per shard), short enough that an idle shard still
#: adopts foreign backlog well before the run drains.  Measured on the
#: full-scale saturated trace, 64 bucket reads keeps the virtual-clock
#: speedup of per-step stealing while cutting coordination traffic ~8x.
DEFAULT_QUANTUM_BUCKET_READS = 64.0


def fan_out_arrivals(
    spec: "ParallelRunSpec",
    plan: ShardPlan,
    tracker: CompletionTracker,
    events: WorkerEventLog,
) -> List[List[StagedShare]]:
    """Build every shard's arrival schedule (the virtual engine's fan-out).

    Shared by the process coordinator and the reliability coordinator:
    per-shard schedules are the unit of recovery — a shard restored from a
    checkpoint replays exactly the tail of the schedule built here.
    """
    preprocessor = QueryPreProcessor(spec.layout)
    arrivals: List[List[StagedShare]] = [[] for _ in range(spec.workers)]
    ordered = sorted(spec.queries, key=lambda q: (q.arrival_time_s, q.query_id))
    for query in ordered:
        arrival_ms = query.arrival_time_s * 1000.0
        assignments = preprocessor.assign(query)
        if not assignments:
            # No overlap at this site: completes immediately (as serially).
            continue
        if tracker.known(query.query_id):
            raise ValueError(f"query {query.query_id} appears twice in the trace")
        recipients: Set[int] = set()
        for bucket_index, payload in assignments.items():
            worker_id = plan.owner_of(bucket_index)
            arrivals[worker_id].append(
                StagedShare(arrival_ms, query.query_id, bucket_index, payload)
            )
            recipients.add(worker_id)
        for worker_id in sorted(recipients):
            events.record(
                worker_id,
                Event(arrival_ms, EventKind.QUERY_ARRIVAL, payload=query.query_id),
            )
        tracker.register(query.query_id, assignments.keys(), arrival_ms)
    return arrivals


def coordinator_snapshot(
    steal_count: int = 0,
    window_count: int = 0,
    reliability: Optional["ReliabilityReport"] = None,
) -> Optional[dict]:
    """Coordinator-side accounting as a mergeable telemetry snapshot.

    Everything here lives in the **real** domain: window counts and steal
    totals depend on barrier placement (a coordination artefact, not part
    of the deterministic contract), and checkpoint bytes / crash counts
    are operational profile.  Counters are only created when non-zero so
    that backends which never window (the virtual interleaver) produce
    snapshots bit-identical to a single-drain process run.
    """
    registry = MetricsRegistry()
    if steal_count:
        registry.counter("coordinator.steals", domain=REAL_DOMAIN).inc(steal_count)
    if window_count:
        registry.counter("coordinator.windows", domain=REAL_DOMAIN).inc(window_count)
    if reliability is not None:
        for name, value in (
            ("reliability.windows", reliability.windows),
            ("reliability.checkpoints_written", reliability.checkpoints_written),
            ("reliability.checkpoint_bytes", reliability.checkpoint_bytes),
            ("reliability.checkpoint_real_s", reliability.checkpoint_real_s),
            ("reliability.crashes_injected", reliability.crashes_injected),
            ("reliability.recoveries", reliability.recovery_count),
            ("reliability.scale_events", len(reliability.scale_events)),
        ):
            if value:
                registry.counter(name, domain=REAL_DOMAIN).inc(value)
    snapshot = registry.snapshot()
    return snapshot if snapshot["metrics"] else None


def merge_backend_outcome(
    backend_name: str,
    spec: "ParallelRunSpec",
    plan: ShardPlan,
    tracker: CompletionTracker,
    events: WorkerEventLog,
    batches: List[BatchRecord],
    steal_records: List[StealRecord],
    results: Sequence[WorkerResult],
    elapsed_s: float,
    reliability: Optional["ReliabilityReport"] = None,
    window_boundaries_ms: Optional[List[float]] = None,
) -> BackendOutcome:
    """Merge per-shard batch records and accounting into one outcome.

    The single merge rule the process coordinator and the reliability
    coordinator share: services are replayed in global virtual-time order
    (the step order of the in-process engine) so cross-shard completion
    bookkeeping is identical to the virtual backend's.
    """
    batches.sort(key=lambda r: (r.started_at_ms, r.worker_id, r.seq))
    for record in batches:
        events.record(
            record.worker_id,
            Event(
                record.finished_at_ms,
                EventKind.SERVICE_COMPLETE,
                payload=(record.bucket_index, record.queries_served),
            ),
        )
        for query_id in record.queries_served:
            tracker.on_serviced(query_id, record.bucket_index, record.finished_at_ms)
    ordered_results = sorted(results, key=lambda r: r.worker_id)
    scheduler_name = (
        f"parallel(workers={spec.workers}, policy={spec.policy.name}, "
        f"shard={plan.strategy})"
    )
    report = merge_worker_results(scheduler_name, tracker, ordered_results)
    boundaries = list(window_boundaries_ms or [])
    telemetry = merge_snapshots(
        [r.telemetry for r in ordered_results]
        + [
            coordinator_snapshot(
                steal_count=len(steal_records),
                window_count=len(boundaries),
                reliability=reliability,
            )
        ]
    )
    parallel = ParallelReport(
        engine=report,
        workers=spec.workers,
        shard_strategy=plan.strategy,
        worker_busy_ms=[r.busy_ms for r in ordered_results],
        worker_clocks_ms=[r.clock_ms for r in ordered_results],
        worker_services=[r.services for r in ordered_results],
        steals=len(steal_records),
        wall_clock_ms=max((r.clock_ms for r in ordered_results), default=0.0),
    )
    return BackendOutcome(
        backend=backend_name,
        report=report,
        parallel=parallel,
        events=events,
        steal_records=steal_records,
        completed=tracker.completed_order,
        services=batches,
        bucket_reads=sum(r.store_reads for r in ordered_results),
        megabytes_read=sum(r.store_megabytes for r in ordered_results),
        real_elapsed_s=elapsed_s,
        store_real_read_s=sum(r.store_real_read_s for r in ordered_results),
        reliability=reliability,
        telemetry=telemetry,
        window_boundaries_ms=boundaries,
    )


@dataclass
class ParallelRunSpec:
    """Everything one parallel run needs, independent of the backend."""

    layout: PartitionLayout
    store: BucketStore
    queries: Sequence[CrossMatchQuery]
    policy: SchedulingPolicy
    config: EngineConfig
    workers: int = 1
    shard_strategy: str = "round_robin"
    plan: Optional[ShardPlan] = None
    index: Optional[SpatialIndex] = None
    enable_stealing: bool = True
    #: Virtual-time window between steal barriers of the process backend;
    #: ``None`` derives it from the cost model's bucket-read time.
    steal_quantum_ms: Optional[float] = None
    #: Checkpoint/recovery configuration.  When set, both backends route
    #: through the reliability coordinator: the run is always windowed
    #: (barriers are where checkpoints are captured and crashes injected),
    #: and dead shards are restored from their latest checkpoint.
    reliability: Optional["ReliabilityConfig"] = None

    def resolved_plan(self) -> ShardPlan:
        """The shard plan of the run (built from the strategy when absent)."""
        return self.plan or make_shard_plan(self.layout, self.workers, self.shard_strategy)

    def quantum_ms(self) -> float:
        """The steal window of the process backend."""
        if self.steal_quantum_ms is not None:
            if self.steal_quantum_ms <= 0:
                raise ValueError("steal_quantum_ms must be positive")
            return self.steal_quantum_ms
        return self.config.cost.tb_ms * DEFAULT_QUANTUM_BUCKET_READS


@dataclass
class BackendOutcome:
    """What every execution backend returns: merged reports plus logs."""

    backend: str
    report: EngineReport
    parallel: ParallelReport
    events: WorkerEventLog
    steal_records: List[StealRecord]
    #: Query ids in global completion order.
    completed: List[int]
    #: Every bucket service of the run, in global virtual-time order.
    services: List[BatchRecord]
    bucket_reads: int
    megabytes_read: float
    #: Real (measured) wall-clock of the run, including backend setup.
    real_elapsed_s: float
    #: File-backed stores only: wall-clock seconds spent in physical page
    #: reads + decoding, summed over workers (0.0 for in-memory stores).
    store_real_read_s: float = 0.0
    #: Reliability runs only: what the checkpoint/recovery machinery did.
    reliability: Optional["ReliabilityReport"] = None
    #: Merged telemetry snapshot of the run (lane registries folded in
    #: worker-id order, plus store and coordinator registries).  The
    #: virtual domain of this snapshot is backend-invariant.
    telemetry: Optional[dict] = None
    #: Window-barrier virtual times of windowed runs (empty when the run
    #: drained in a single window) — exported as trace instants.
    window_boundaries_ms: List[float] = field(default_factory=list)

    def coverage(self) -> Dict[int, frozenset]:
        """Per-query bucket coverage: which buckets serviced each query."""
        covered: Dict[int, Set[int]] = {}
        for record in self.services:
            for query_id in record.queries_served:
                covered.setdefault(query_id, set()).add(record.bucket_index)
        return {query_id: frozenset(buckets) for query_id, buckets in covered.items()}


class ExecutionBackend(ABC):
    """Strategy interface: run one sharded workload to completion."""

    name: str = "abstract"

    @abstractmethod
    def execute(self, spec: ParallelRunSpec) -> BackendOutcome:
        """Run *spec* to completion and return the merged outcome."""


class VirtualBackend(ExecutionBackend):
    """The deterministic in-process interleaver (the default for tests).

    Wraps :class:`~repro.parallel.engine.ParallelEngine` in its staged
    (open-system) intake: queries are *offered* in arrival order and each
    per-bucket share is delivered when the owning worker's own clock
    reaches it, so every shard's timeline is a pure function of its
    arrival schedule — the property the process backend reproduces.
    """

    name = "virtual"

    def execute(self, spec: ParallelRunSpec) -> BackendOutcome:
        if spec.reliability is not None:
            from repro.reliability.runtime import execute_with_reliability

            return execute_with_reliability(spec, backend_name=self.name)
        started = time.perf_counter()
        engine = ParallelEngine(
            spec.layout,
            spec.store,
            workers=spec.workers,
            scheduler=spec.policy,
            index=spec.index,
            config=spec.config,
            shard_strategy=spec.shard_strategy,
            enable_stealing=spec.enable_stealing,
            plan=spec.plan,
        )
        ordered = sorted(spec.queries, key=lambda q: (q.arrival_time_s, q.query_id))
        for query in ordered:
            engine.offer(query)
        engine.run_until_idle()
        elapsed = time.perf_counter() - started
        services: List[BatchRecord] = []
        for worker in engine.workers:
            for seq, batch in enumerate(worker.loop.batches):
                services.append(
                    BatchRecord(
                        worker_id=worker.worker_id,
                        seq=seq,
                        bucket_index=batch.work_item.bucket_index,
                        queries_served=batch.queries_served,
                        started_at_ms=batch.started_at_ms,
                        finished_at_ms=batch.finished_at_ms,
                        objects_served=batch.objects_served,
                        io_ms=batch.join.io_cost_ms,
                        match_ms=batch.join.match_cost_ms,
                    )
                )
        services.sort(key=lambda r: (r.started_at_ms, r.worker_id, r.seq))
        preport = engine.parallel_report()
        # Lane registries merge in worker-id order (the same deterministic
        # fold the process coordinator applies); the shared store's
        # real-domain registry is folded exactly once at run level.
        store_registry = getattr(spec.store, "telemetry", None)
        telemetry = merge_snapshots(
            [
                worker.loop.telemetry.snapshot()
                for worker in sorted(engine.workers, key=lambda w: w.worker_id)
            ]
            + [store_registry.snapshot() if store_registry is not None else None]
            + [coordinator_snapshot(steal_count=len(engine.steal_log))]
        )
        return BackendOutcome(
            backend=self.name,
            report=preport.engine,
            parallel=preport,
            events=engine.events,
            steal_records=list(engine.steal_log),
            completed=engine.completed_queries(),
            services=services,
            bucket_reads=spec.store.reads,
            megabytes_read=spec.store.bytes_read_mb,
            real_elapsed_s=elapsed,
            store_real_read_s=getattr(spec.store, "real_read_s", 0.0),
            telemetry=telemetry,
        )


class ShardView:
    """A coordinator's bookkeeping of one shard between window barriers.

    Tracks only what steal and boundary decisions need — the shard's
    clock, its pending-queue metadata and its next staged arrival — and
    folds each :class:`~repro.parallel.ipc.WindowReport` back in.  Shared
    by the process coordinator below and the reliability coordinator
    (:mod:`repro.reliability.runtime`), so both compute identical window
    boundaries.
    """

    def __init__(self, worker_id: int, arrivals: Sequence[StagedShare]):
        self.worker_id = worker_id
        self.clock_ms = 0.0
        self.pending: Dict[int, BucketQueueMeta] = {}
        self.next_staged_ms: Optional[float] = arrivals[0].arrival_ms if arrivals else None
        self.drained = not arrivals

    def apply_window(self, report: WindowReport) -> None:
        """Fold a window report into the coordinator's view of the shard."""
        self.clock_ms = report.clock_ms
        self.pending = {meta.bucket_index: meta for meta in report.pending}
        self.next_staged_ms = report.next_staged_ms
        self.drained = report.drained

    def boundary_candidate_ms(self) -> Optional[float]:
        """Earliest virtual time at which this shard can make progress."""
        if self.drained:
            return None
        if self.pending:
            return self.clock_ms
        if self.next_staged_ms is None:
            return None
        return max(self.clock_ms, self.next_staged_ms)


def run_steal_round(
    views: Sequence[ShardView],
    steal_records: List[StealRecord],
    events: WorkerEventLog,
    release: Callable[[ShardView, int], ReleasedBucket],
    adopt: Callable[[ShardView, AdoptBucket], None],
) -> List[Tuple[StealRecord, ReleasedBucket, AdoptBucket]]:
    """Window-barrier work stealing: idle shards adopt starving queues.

    The rule matches the in-process engine: each idle shard (no queued
    work) may adopt the globally most starving foreign queue — oldest
    pending entry first — provided it can start the service strictly
    earlier than the victim could (``max(thief clock, newest entry)``
    versus the victim's clock).  Queues migrate whole, together with
    their not-yet-ingested staged shares, so batching is preserved and
    future arrivals follow the queue.

    The single steal rule both coordinators share: the process backend
    drives it with plain pipe requests, the reliability coordinator with
    crash-recovering channel calls.  Returns the round's migrations as
    ``(record, released, adopt message)`` so callers can journal them
    (recovery re-settles bucket ownership by replaying the journal).
    """
    migrations: List[Tuple[StealRecord, ReleasedBucket, AdoptBucket]] = []
    thieves = sorted(
        (view for view in views if not view.pending),
        key=lambda view: (view.clock_ms, view.worker_id),
    )
    for thief in thieves:
        best: Optional[Tuple[float, int, ShardView]] = None
        for victim in views:
            if victim.worker_id == thief.worker_id:
                continue
            for meta in victim.pending.values():
                key = (meta.oldest_enqueue_ms, meta.bucket_index)
                if best is None or key < (best[0], best[1]):
                    best = (meta.oldest_enqueue_ms, meta.bucket_index, victim)
        if best is None:
            break  # nothing pending anywhere
        _oldest, bucket_index, victim = best
        meta = victim.pending[bucket_index]
        start_ms = max(thief.clock_ms, meta.newest_enqueue_ms)
        if start_ms >= victim.clock_ms:
            continue  # migration would not start the service any earlier
        released = release(victim, bucket_index)
        if not released.entries:
            continue  # defensive: the queue vanished between windows
        message = AdoptBucket(
            bucket_index=bucket_index,
            entries=released.entries,
            staged=released.staged,
            clock_ms=start_ms,
        )
        adopt(thief, message)
        del victim.pending[bucket_index]
        victim.next_staged_ms = released.next_staged_ms
        victim.drained = not victim.pending and victim.next_staged_ms is None
        enqueues = [entry.enqueue_time_ms for entry in released.entries]
        thief.pending[bucket_index] = BucketQueueMeta(
            bucket_index=bucket_index,
            entry_count=len(released.entries),
            oldest_enqueue_ms=min(enqueues),
            newest_enqueue_ms=max(enqueues),
        )
        if released.staged:
            staged_first = min(share.arrival_ms for share in released.staged)
            if thief.next_staged_ms is None or staged_first < thief.next_staged_ms:
                thief.next_staged_ms = staged_first
        thief.clock_ms = max(thief.clock_ms, start_ms)
        thief.drained = False
        record = StealRecord(
            time_ms=start_ms,
            bucket_index=bucket_index,
            victim_id=victim.worker_id,
            thief_id=thief.worker_id,
            entry_count=len(released.entries),
        )
        steal_records.append(record)
        migrations.append((record, released, message))
        events.record(
            thief.worker_id, Event(start_ms, EventKind.WORK_STOLEN, payload=record)
        )
    return migrations


class _ShardHandle(ShardView):
    """The coordinator's view of one worker process, plus its pipe."""

    def __init__(self, worker_id: int, process, conn, arrivals: Sequence[StagedShare]):
        super().__init__(worker_id, arrivals)
        self.process = process
        self.conn = conn
        self.result: Optional[WorkerResult] = None

    def send(self, message) -> None:
        self.conn.send(message)

    def recv(self):
        if not self.conn.poll(REPLY_TIMEOUT_S):
            raise RuntimeError(
                f"shard worker {self.worker_id} sent no reply within "
                f"{REPLY_TIMEOUT_S:g}s; aborting the run"
            )
        try:
            reply = self.conn.recv()
        except (EOFError, ConnectionResetError) as error:
            raise RuntimeError(
                f"shard worker {self.worker_id} died without replying "
                f"(exit code {self.process.exitcode})"
            ) from error
        if isinstance(reply, WorkerFailure):
            raise RuntimeError(
                f"shard worker {reply.worker_id} failed:\n{reply.traceback_text}"
            )
        return reply

    def request(self, message):
        self.send(message)
        return self.recv()


class ProcessBackend(ExecutionBackend):
    """One OS process per shard worker, coordinated over pipes.

    The coordinator pre-computes every shard's full arrival schedule (the
    same fan-out the virtual engine performs), ships it with a read-only
    store snapshot to each child, then advances all shards concurrently:

    * stealing disabled — a single drain message per shard, maximal
      parallelism, each shard a pure function of its schedule;
    * stealing enabled — bounded virtual-time windows; at every barrier
      idle shards adopt the most starving foreign bucket queue (entries
      *and* staged future), the same whole-queue migration rule as the
      in-process engine, now expressed as messages.

    Virtual-clock accounting (busy time, I/O, services, per-query bucket
    coverage) is identical to the virtual backend by construction; the
    parity tests pin that down.
    """

    name = "process"

    def __init__(self, start_method: str = "spawn"):
        self.start_method = start_method

    # -- setup ----------------------------------------------------------- #

    def execute(self, spec: ParallelRunSpec) -> BackendOutcome:
        if spec.reliability is not None:
            from repro.reliability.runtime import execute_with_reliability

            return execute_with_reliability(
                spec, backend_name=self.name, start_method=self.start_method
            )
        started = time.perf_counter()
        plan = spec.resolved_plan()
        tracker = CompletionTracker()
        events = WorkerEventLog()
        arrivals = fan_out_arrivals(spec, plan, tracker, events)
        snapshot = spec.store.snapshot()
        context = multiprocessing.get_context(self.start_method)
        handles: List[_ShardHandle] = []
        batches: List[BatchRecord] = []
        steal_records: List[StealRecord] = []
        try:
            for worker_id in range(spec.workers):
                policy = spec.policy if worker_id == 0 else self._clone(spec.policy)
                task = ShardTask(
                    worker_id=worker_id,
                    config=spec.config,
                    policy=policy,
                    snapshot=snapshot,
                    index=spec.index,
                    arrivals=tuple(arrivals[worker_id]),
                )
                parent_conn, child_conn = context.Pipe()
                process = context.Process(
                    target=shard_worker_main,
                    args=(child_conn, task),
                    daemon=True,
                    name=f"liferaft-shard-{worker_id}",
                )
                process.start()
                child_conn.close()
                handles.append(_ShardHandle(worker_id, process, parent_conn, arrivals[worker_id]))
            window_boundaries: List[float] = []
            if spec.enable_stealing and spec.workers > 1:
                self._windowed_run(
                    spec, handles, batches, steal_records, events, window_boundaries
                )
            else:
                self._run_window(handles, None, batches)
            results = [handle.request(Finalize()) for handle in handles]
        finally:
            self._shutdown(handles)
        elapsed = time.perf_counter() - started
        return merge_backend_outcome(
            self.name,
            spec,
            plan,
            tracker,
            events,
            batches,
            steal_records,
            results,
            elapsed,
            window_boundaries_ms=window_boundaries,
        )

    @staticmethod
    def _clone(policy: SchedulingPolicy) -> SchedulingPolicy:
        clone = getattr(policy, "clone", None)
        if clone is None:
            raise TypeError(
                f"policy {policy!r} does not support clone(); "
                "per-shard schedulers must be constructible per worker"
            )
        return clone()

    # -- the coordinator loop -------------------------------------------- #

    @staticmethod
    def _run_window(
        handles: Sequence[_ShardHandle],
        until_ms: Optional[float],
        batches: List[BatchRecord],
    ) -> None:
        """One concurrent window: broadcast first, then collect every reply."""
        active = [handle for handle in handles if not handle.drained]
        for handle in active:
            handle.send(RunWindow(until_ms))
        for handle in active:
            report = handle.recv()
            handle.apply_window(report)
            batches.extend(report.batches)

    def _windowed_run(
        self,
        spec: ParallelRunSpec,
        handles: List[_ShardHandle],
        batches: List[BatchRecord],
        steal_records: List[StealRecord],
        events: WorkerEventLog,
        window_boundaries: Optional[List[float]] = None,
    ) -> None:
        quantum = spec.quantum_ms()
        while True:
            candidates = [
                candidate
                for handle in handles
                if (candidate := handle.boundary_candidate_ms()) is not None
            ]
            if not candidates:
                return
            boundary = min(candidates) + quantum
            if window_boundaries is not None:
                window_boundaries.append(boundary)
            self._run_window(handles, boundary, batches)
            if all(handle.drained for handle in handles):
                return
            self._steal_round(handles, steal_records, events)

    @staticmethod
    def _steal_round(
        handles: Sequence[_ShardHandle],
        steal_records: List[StealRecord],
        events: WorkerEventLog,
    ) -> None:
        """One shared-rule steal round (see :func:`run_steal_round`),
        driven over plain pipe requests."""
        run_steal_round(
            handles,
            steal_records,
            events,
            release=lambda victim, bucket: victim.request(ReleaseBucket(bucket)),
            adopt=lambda thief, message: thief.request(message),
        )

    @staticmethod
    def _shutdown(handles: Sequence[_ShardHandle]) -> None:
        for handle in handles:
            try:
                handle.send(Shutdown())
            except (OSError, ValueError):
                pass
        for handle in handles:
            handle.process.join(timeout=10.0)
            if handle.process.is_alive():
                handle.process.terminate()
                handle.process.join(timeout=10.0)
            handle.conn.close()

#: Registry of execution backends by name.
EXECUTION_BACKENDS = {
    VirtualBackend.name: VirtualBackend,
    ProcessBackend.name: ProcessBackend,
}


def make_backend(backend: Union[str, ExecutionBackend]) -> ExecutionBackend:
    """Resolve a backend instance from a name or pass an instance through."""
    if isinstance(backend, ExecutionBackend):
        return backend
    if backend not in EXECUTION_BACKENDS:
        raise ValueError(
            f"unknown execution backend {backend!r}; available: "
            f"{sorted(EXECUTION_BACKENDS)}"
        )
    return EXECUTION_BACKENDS[backend]()
