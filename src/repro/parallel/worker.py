"""Shard workers: one service lane per shard of the bucket range.

A :class:`ShardWorker` wraps a :class:`~repro.core.engine.ServiceLoop`
(its own workload manager, scheduler instance, LRU bucket cache and hybrid
join evaluator) with a private virtual clock.  Workers advance
independently — the parallel engine always services the worker whose clock
is furthest behind, which is exactly how N independent servers interleave
in virtual time.

Arrivals reach a worker in one of two ways.  The eager path
(:meth:`~repro.core.workload_manager.WorkloadManager.add_query` via the
engine's ``submit``) enqueues immediately — the closed-system mode the
batch tests use.  The *staged* path (:meth:`ShardWorker.stage`,
:meth:`ShardWorker.ingest_due`) holds each per-bucket share until the
worker's own clock reaches its arrival time.  Staging makes a worker's
whole execution a pure function of its arrival schedule — no global state
leaks into local decisions — which is the property that lets an OS-process
replica (:mod:`repro.parallel.ipc`) reproduce the in-process interleaver
exactly.

:class:`WorkerPool` builds the workers from a shard plan: every worker
gets a *clone* of the scheduling-policy prototype (decision counters and
adaptive state are per-lane) and its own cache over the shared bucket
store, mirroring N servers with private buffer pools over one storage
backend.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Iterable, List, Optional, Tuple

from repro.core.engine import BatchResult, EngineConfig, ServiceLoop, build_service_loop
from repro.core.scheduler import SchedulingPolicy
from repro.storage.bucket_store import BucketStore
from repro.storage.index import SpatialIndex
from repro.storage.partitioner import PartitionLayout
from repro.parallel.sharding import ShardPlan, make_shard_plan

#: Slack used when comparing virtual timestamps, matching the arrival
#: delivery slack of the serial simulator loop.
TIME_EPS = 1e-9


@dataclass(frozen=True)
class StagedShare:
    """One query's pending work for one bucket, awaiting its arrival time.

    Shares are staged per bucket (not per query) so that work stealing can
    re-route the not-yet-ingested remainder of a migrated bucket without
    touching the query's shares for other buckets.
    """

    arrival_ms: float
    query_id: int
    bucket_index: int
    payload: object  # an int object count or a tuple of CrossMatchObject


class ShardWorker:
    """One simulated worker: a service loop plus a private virtual clock."""

    def __init__(self, worker_id: int, loop: ServiceLoop) -> None:
        self.worker_id = worker_id
        self.loop = loop
        self.now_ms = 0.0
        #: Buckets stolen *by* this worker (count, for reports and tests).
        self.steals = 0
        #: Arrivals not yet on the worker's timeline, in arrival order.
        self._staged: Deque[StagedShare] = deque()

    # -- convenience pass-throughs -------------------------------------- #

    @property
    def scheduler(self) -> SchedulingPolicy:
        """The worker's private scheduler instance."""
        return self.loop.scheduler

    @property
    def manager(self):
        """The worker's private workload manager."""
        return self.loop.manager

    @property
    def cache(self):
        """The worker's private bucket cache."""
        return self.loop.cache

    @property
    def busy_ms(self) -> float:
        """Total service time this worker has accumulated."""
        return self.loop.busy_ms

    def has_pending_work(self) -> bool:
        """``True`` while this shard's queues are non-empty."""
        return self.loop.has_pending_work()

    def pending_buckets(self) -> List[int]:
        """Buckets with pending work on this shard."""
        return self.loop.manager.pending_buckets()

    # -- staged arrivals ------------------------------------------------- #

    def stage(self, share: StagedShare) -> None:
        """Queue a per-bucket share for timed ingestion.

        Callers must stage shares in non-decreasing arrival order (the
        backends offer whole traces sorted by timestamp).
        """
        self._staged.append(share)

    def stage_merged(self, shares: Iterable[StagedShare]) -> None:
        """Merge re-routed shares (from a stolen bucket) into the stage.

        Both the existing stage and *shares* are sorted by arrival time, so
        a single linear merge keeps the deque ordered.
        """
        merged: List[StagedShare] = []
        incoming = deque(sorted(shares, key=lambda s: (s.arrival_ms, s.query_id)))
        while self._staged and incoming:
            if self._staged[0].arrival_ms <= incoming[0].arrival_ms:
                merged.append(self._staged.popleft())
            else:
                merged.append(incoming.popleft())
        merged.extend(self._staged)
        merged.extend(incoming)
        self._staged = deque(merged)

    def extract_staged(self, bucket_index: int) -> List[StagedShare]:
        """Remove and return the staged shares targeting *bucket_index*.

        Work stealing calls this on the victim so future arrivals follow
        the migrated queue instead of splitting the bucket across shards.
        """
        taken = [s for s in self._staged if s.bucket_index == bucket_index]
        if taken:
            self._staged = deque(
                s for s in self._staged if s.bucket_index != bucket_index
            )
        return taken

    def staged_shares(self) -> Tuple[StagedShare, ...]:
        """The not-yet-ingested stage, in arrival order (checkpoint capture)."""
        return tuple(self._staged)

    def restore_staged(self, shares: Iterable[StagedShare]) -> None:
        """Replace the stage wholesale (checkpoint restore).

        The incoming shares are a stage captured by :meth:`staged_shares`,
        so they are already in arrival order.
        """
        self._staged = deque(shares)

    def next_staged_ms(self) -> Optional[float]:
        """Arrival time of the earliest staged share, or ``None``."""
        if not self._staged:
            return None
        return self._staged[0].arrival_ms

    def has_staged(self) -> bool:
        """``True`` while any share awaits ingestion."""
        return bool(self._staged)

    def ingest_due(self) -> List[StagedShare]:
        """Move every share whose arrival time has been reached into the
        workload manager, exactly as the serial replay loop delivers
        arrivals at or before the current clock."""
        ingested: List[StagedShare] = []
        while self._staged and self._staged[0].arrival_ms <= self.now_ms + TIME_EPS:
            share = self._staged.popleft()
            self.manager.add_query(
                share.query_id,
                {share.bucket_index: share.payload},
                share.arrival_ms,
                merge=True,
            )
            ingested.append(share)
        return ingested

    # -- execution ------------------------------------------------------- #

    def observe_arrival(self, arrival_ms: float) -> None:
        """Advance the clock to an arrival (an idle worker cannot start
        work before the work exists; a busy worker's clock already models
        when it is next free, so ``max`` covers both cases)."""
        self.now_ms = max(self.now_ms, arrival_ms)

    def jump_to(self, time_ms: float) -> None:
        """Advance an idle worker's clock to the next arrival time."""
        self.now_ms = max(self.now_ms, time_ms)

    def service_next(self) -> Optional[BatchResult]:
        """Run one bucket service at this worker's clock, advancing it."""
        result = self.loop.service_next(self.now_ms)
        if result is not None:
            self.now_ms = result.finished_at_ms
        return result


def build_shard_worker(
    worker_id: int,
    layout: PartitionLayout,
    store: BucketStore,
    policy: SchedulingPolicy,
    config: EngineConfig,
    index: Optional[SpatialIndex] = None,
) -> ShardWorker:
    """Assemble one standalone shard worker (the process backend's unit).

    This is the same construction recipe :class:`WorkerPool` applies per
    shard; worker processes call it directly after restoring their store
    snapshot, so both backends execute identical per-worker machinery.
    """
    loop = build_service_loop(layout, store, policy, config, index=index, shard=worker_id)
    return ShardWorker(worker_id, loop)


class WorkerPool:
    """Builds and owns the shard workers of one parallel engine."""

    def __init__(
        self,
        layout: PartitionLayout,
        store: BucketStore,
        policy_prototype: SchedulingPolicy,
        config: EngineConfig,
        workers: int = 1,
        shard_strategy: str = "round_robin",
        index: Optional[SpatialIndex] = None,
        plan: Optional[ShardPlan] = None,
    ) -> None:
        if workers <= 0:
            raise ValueError("workers must be positive")
        self.layout = layout
        self.store = store
        self.config = config
        self.plan = plan or make_shard_plan(layout, workers, shard_strategy)
        if self.plan.worker_count != workers:
            raise ValueError(
                f"shard plan is for {self.plan.worker_count} workers, expected {workers}"
            )
        self.workers: List[ShardWorker] = []
        for worker_id in range(workers):
            policy = self._clone_policy(policy_prototype, worker_id)
            loop = build_service_loop(
                layout, store, policy, config, index=index, shard=worker_id
            )
            self.workers.append(ShardWorker(worker_id, loop))

    @staticmethod
    def _clone_policy(prototype: SchedulingPolicy, worker_id: int) -> SchedulingPolicy:
        """Per-shard scheduler: clone the prototype (worker 0 may reuse it).

        Worker 0 keeps the prototype itself so a single-worker pool behaves
        bit-for-bit like the serial engine built around the same instance.
        """
        if worker_id == 0:
            return prototype
        clone = getattr(prototype, "clone", None)
        if clone is None:
            raise TypeError(
                f"policy {prototype!r} does not support clone(); "
                "per-shard schedulers must be constructible per worker"
            )
        return clone()

    def __len__(self) -> int:
        return len(self.workers)

    def __iter__(self):
        return iter(self.workers)

    def __getitem__(self, worker_id: int) -> ShardWorker:
        return self.workers[worker_id]

    def owner_of(self, bucket_index: int) -> ShardWorker:
        """The worker owning *bucket_index* under the shard plan."""
        return self.workers[self.plan.owner_of(bucket_index)]

    def max_clock_ms(self) -> float:
        """The pool-wide virtual time: the furthest-ahead worker clock."""
        return max(worker.now_ms for worker in self.workers)

    def total_busy_ms(self) -> float:
        """Aggregate service time over all workers."""
        return sum(worker.busy_ms for worker in self.workers)

    def describe(self) -> Dict[str, float]:
        """Per-pool summary used by reports."""
        return {
            "workers": float(len(self.workers)),
            "total_busy_ms": self.total_busy_ms(),
            "max_clock_ms": self.max_clock_ms(),
            "steals": float(sum(worker.steals for worker in self.workers)),
        }
