"""Deterministic bucket → worker assignment.

Two strategies partition the :class:`~repro.storage.partitioner.PartitionLayout`
bucket range across N workers:

* **round_robin** — bucket *i* belongs to worker ``i % N``.  Spreads hot
  regions (which are contiguous along the HTM curve) across all workers,
  at the price of splitting a query's contiguous span over many shards.
* **zone** — contiguous zones of the HTM curve, cut so every zone carries
  roughly the same object population.  Preserves the spatial locality the
  bucket cache feeds on: a query's span usually lands on one or two
  shards.

Both are pure functions of the layout and the worker count, so the same
inputs always produce the same assignment — a property the determinism
tests pin down, and a prerequisite for reproducible parallel runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from repro.storage.partitioner import PartitionLayout


@dataclass(frozen=True)
class ShardPlan:
    """An immutable bucket → worker assignment over one layout.

    Attributes
    ----------
    strategy:
        Name of the strategy that produced the plan.
    worker_count:
        Number of shards.
    owners:
        ``owners[bucket_index]`` is the owning worker id.
    """

    strategy: str
    worker_count: int
    owners: Tuple[int, ...]

    def __post_init__(self) -> None:
        if self.worker_count <= 0:
            raise ValueError("worker_count must be positive")
        bad = [o for o in self.owners if not 0 <= o < self.worker_count]
        if bad:
            raise ValueError(f"owner ids out of range: {sorted(set(bad))[:5]}")

    def owner_of(self, bucket_index: int) -> int:
        """The worker owning *bucket_index*."""
        return self.owners[bucket_index]

    def buckets_of(self, worker_id: int) -> Tuple[int, ...]:
        """All buckets owned by *worker_id*, in curve order."""
        return tuple(
            index for index, owner in enumerate(self.owners) if owner == worker_id
        )

    def bucket_counts(self) -> List[int]:
        """Number of buckets owned by each worker."""
        counts = [0] * self.worker_count
        for owner in self.owners:
            counts[owner] += 1
        return counts

    def describe(self) -> Dict[str, float]:
        """Balance statistics used by tests and reports."""
        counts = self.bucket_counts()
        return {
            "worker_count": float(self.worker_count),
            "bucket_count": float(len(self.owners)),
            "min_buckets": float(min(counts)),
            "max_buckets": float(max(counts)),
        }


def partition_round_robin(layout: PartitionLayout, workers: int) -> ShardPlan:
    """Bucket *i* → worker ``i % workers``."""
    if workers <= 0:
        raise ValueError("workers must be positive")
    owners = tuple(index % workers for index in range(len(layout)))
    return ShardPlan("round_robin", workers, owners)


def partition_zones(layout: PartitionLayout, workers: int) -> ShardPlan:
    """Contiguous zones balanced by object population.

    Buckets are walked in curve order; a zone closes once it has
    accumulated its fair share ``total_objects / workers`` of the catalog
    (leaving enough buckets for the remaining zones, so every worker owns
    at least one bucket when ``workers <= len(layout)``).
    """
    if workers <= 0:
        raise ValueError("workers must be positive")
    bucket_count = len(layout)
    if workers > bucket_count:
        raise ValueError(
            f"cannot cut {bucket_count} buckets into {workers} non-empty zones"
        )
    total_objects = layout.total_objects()
    target = total_objects / workers if total_objects else 0.0
    owners: List[int] = []
    zone = 0
    accumulated = 0.0
    for index, bucket in enumerate(layout):
        owners.append(zone)
        accumulated += bucket.object_count
        remaining_buckets = bucket_count - index - 1
        remaining_zones = workers - zone - 1
        if (
            remaining_zones > 0
            and (accumulated >= target * (zone + 1) or remaining_buckets == remaining_zones)
        ):
            zone += 1
    return ShardPlan("zone", workers, tuple(owners))


#: Registry of shard strategies by name.
SHARD_STRATEGIES: Dict[str, Callable[[PartitionLayout, int], ShardPlan]] = {
    "round_robin": partition_round_robin,
    "zone": partition_zones,
}


def make_shard_plan(
    layout: PartitionLayout, workers: int, strategy: str = "round_robin"
) -> ShardPlan:
    """Build a shard plan by strategy name."""
    if strategy not in SHARD_STRATEGIES:
        raise ValueError(
            f"unknown shard strategy {strategy!r}; available: {sorted(SHARD_STRATEGIES)}"
        )
    return SHARD_STRATEGIES[strategy](layout, workers)
