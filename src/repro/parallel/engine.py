"""The parallel engine: N shard workers behind one intake path.

Queries enter through the same :class:`~repro.core.preprocessor.QueryPreProcessor`
as the serial engine; their per-bucket workloads are fanned out to the
workers that own each bucket under the shard plan.  Execution interleaves
the workers in virtual time: every step services one batch on the worker
whose clock is furthest behind, so N workers progress exactly as N
independent servers would.  When a worker runs dry while others still have
backlog, it steals the most starving bucket queue (oldest pending entry)
from a busier worker — queues migrate whole, so a bucket's batched service
is never split.

Query completion is tracked globally (a query finishes when its *last*
bucket anywhere is drained), which is what makes per-shard workload
managers composable: each manager only knows its shard's share of a query.

With ``workers=1`` the engine degenerates to the serial
:class:`~repro.core.engine.LifeRaftEngine` — same scheduling decisions,
same costs, same report — which the parity tests pin down.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.engine import BatchResult, EngineConfig, EngineReport
from repro.core.preprocessor import QueryPreProcessor
from repro.core.scheduler import LifeRaftScheduler, SchedulerConfig, SchedulingPolicy
from repro.parallel.sharding import ShardPlan
from repro.parallel.worker import ShardWorker, WorkerPool
from repro.sim.events import Event, EventKind, WorkerEventLog
from repro.storage.bucket_store import BucketStore
from repro.storage.index import SpatialIndex
from repro.storage.partitioner import PartitionLayout
from repro.workload.query import CrossMatchQuery


@dataclass(frozen=True)
class StealRecord:
    """One work-stealing migration, for reports and tests."""

    time_ms: float
    bucket_index: int
    victim_id: int
    thief_id: int
    entry_count: int


@dataclass
class ParallelReport:
    """The merged engine report plus per-worker parallelism metrics."""

    engine: EngineReport
    workers: int
    shard_strategy: str
    worker_busy_ms: List[float]
    worker_clocks_ms: List[float]
    worker_services: List[int]
    steals: int
    #: Virtual wall-clock of the run: the furthest-ahead worker clock.
    wall_clock_ms: float

    @property
    def aggregate_busy_ms(self) -> float:
        """Total service time summed over workers (the serial-equivalent work)."""
        return sum(self.worker_busy_ms)

    @property
    def utilisation(self) -> float:
        """Mean fraction of the wall clock each worker spent servicing."""
        if self.wall_clock_ms <= 0 or not self.worker_busy_ms:
            return 0.0
        per_worker = [busy / self.wall_clock_ms for busy in self.worker_busy_ms]
        return sum(per_worker) / len(per_worker)


class ParallelEngine:
    """Data-driven batch processing sharded across N virtual workers."""

    def __init__(
        self,
        layout: PartitionLayout,
        store: BucketStore,
        workers: int = 1,
        scheduler: Optional[SchedulingPolicy] = None,
        index: Optional[SpatialIndex] = None,
        config: Optional[EngineConfig] = None,
        shard_strategy: str = "round_robin",
        enable_stealing: bool = True,
        plan: Optional[ShardPlan] = None,
    ) -> None:
        self.config = config or EngineConfig()
        self.layout = layout
        self.store = store
        prototype = scheduler or LifeRaftScheduler(SchedulerConfig(cost=self.config.cost))
        self.pool = WorkerPool(
            layout,
            store,
            prototype,
            self.config,
            workers=workers,
            shard_strategy=shard_strategy,
            index=index,
            plan=plan,
        )
        self.preprocessor = QueryPreProcessor(layout)
        self.enable_stealing = enable_stealing
        self.events = WorkerEventLog()
        self.steal_log: List[StealRecord] = []
        self._prototype_name = prototype.name
        #: Ownership overlay: buckets whose queue migrated via stealing.
        #: Future arrivals follow the queue, so one bucket's workload is
        #: never split between two shards.
        self._adopted_owner: Dict[int, int] = {}
        self._remaining: Dict[int, Set[int]] = {}
        self._arrival_ms: Dict[int, float] = {}
        self._completion_ms: Dict[int, float] = {}
        self._completed_order: List[int] = []
        self._first_arrival_ms: Optional[float] = None

    # ------------------------------------------------------------------ #
    # intake
    # ------------------------------------------------------------------ #

    @property
    def workers(self) -> Sequence[ShardWorker]:
        """The shard workers, by worker id."""
        return self.pool.workers

    @property
    def worker_count(self) -> int:
        """Number of shards."""
        return len(self.pool)

    @property
    def now_ms(self) -> float:
        """The engine clock: the max of the worker completion clocks."""
        return self.pool.max_clock_ms()

    def submit(self, query: CrossMatchQuery, now_ms: Optional[float] = None) -> None:
        """Fan one query's per-bucket workloads out to the owning shards."""
        arrival_ms = now_ms if now_ms is not None else query.arrival_time_s * 1000.0
        assignments = self.preprocessor.assign(query)
        if not assignments:
            # No overlap at this site: completes immediately (as serially).
            return
        if query.query_id in self._remaining:
            raise ValueError(f"query {query.query_id} was already submitted")
        shares: Dict[int, Dict[int, object]] = {}
        for bucket_index, payload in assignments.items():
            worker_id = self._adopted_owner.get(
                bucket_index, self.pool.plan.owner_of(bucket_index)
            )
            shares.setdefault(worker_id, {})[bucket_index] = payload
        for worker_id, share in shares.items():
            worker = self.pool[worker_id]
            worker.manager.add_query(query.query_id, share, arrival_ms)
            worker.observe_arrival(arrival_ms)
            self.events.record(
                worker_id,
                Event(arrival_ms, EventKind.QUERY_ARRIVAL, payload=query.query_id),
            )
        self._remaining[query.query_id] = set(assignments.keys())
        self._arrival_ms[query.query_id] = arrival_ms
        if self._first_arrival_ms is None or arrival_ms < self._first_arrival_ms:
            self._first_arrival_ms = arrival_ms

    def has_pending_work(self) -> bool:
        """``True`` while any shard has a non-empty workload queue."""
        return any(worker.has_pending_work() for worker in self.pool)

    def next_decision_ms(self) -> Optional[float]:
        """Clock of the worker that will service next, or ``None`` if idle."""
        clocks = [w.now_ms for w in self.pool if w.has_pending_work()]
        return min(clocks) if clocks else None

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #

    def step(self) -> Optional[Tuple[int, BatchResult]]:
        """Advance the system by one bucket service.

        Idle workers first steal (at most one bucket queue each), then the
        worker with the earliest clock among those with pending work runs
        one service.  Returns ``(worker_id, batch)`` or ``None`` when the
        whole pool is drained.
        """
        if self.enable_stealing and len(self.pool) > 1:
            self._balance()
        candidates = [w for w in self.pool if w.has_pending_work()]
        if not candidates:
            return None
        worker = min(candidates, key=lambda w: (w.now_ms, w.worker_id))
        result = worker.service_next()
        if result is None:  # defensive: a scheduler refused pending work
            return None
        self._on_batch(worker, result)
        return worker.worker_id, result

    def run_until_idle(self, max_batches: Optional[int] = None) -> int:
        """Drain every shard, interleaving workers in virtual time."""
        processed = 0
        while self.has_pending_work():
            outcome = self.step()
            if outcome is None:
                break
            processed += 1
            if max_batches is not None and processed >= max_batches:
                break
        return processed

    # -- work stealing --------------------------------------------------- #

    def _balance(self) -> None:
        """Let every idle worker steal the most starving foreign queue.

        A steal must strictly improve the queue's service start time: the
        thief can begin at ``max(its clock, newest stolen entry)``, which
        has to beat the victim's clock (its earliest possible start).
        Queues migrate whole so batching (shared I/O within a service) is
        preserved; entries keep their enqueue times so ages are unchanged.
        """
        idle = [w for w in self.pool if not w.has_pending_work()]
        if not idle:
            return
        for thief in sorted(idle, key=lambda w: (w.now_ms, w.worker_id)):
            best: Optional[Tuple[float, int, ShardWorker]] = None
            for victim in self.pool:
                if victim.worker_id == thief.worker_id:
                    continue
                for bucket_index in victim.pending_buckets():
                    oldest = victim.manager.oldest_bucket_enqueue_ms(bucket_index)
                    if best is None or (oldest, bucket_index) < (best[0], best[1]):
                        best = (oldest, bucket_index, victim)
            if best is None:
                return  # nothing pending anywhere
            _oldest, bucket_index, victim = best
            entries = victim.manager.queue(bucket_index).entries
            start_ms = max(thief.now_ms, max(e.enqueue_time_ms for e in entries))
            if start_ms >= victim.now_ms:
                continue  # migration would not start the service any earlier
            moved = victim.manager.release_bucket(bucket_index)
            thief.manager.adopt_bucket(bucket_index, moved)
            self._adopted_owner[bucket_index] = thief.worker_id
            thief.now_ms = start_ms
            thief.steals += 1
            record = StealRecord(
                time_ms=start_ms,
                bucket_index=bucket_index,
                victim_id=victim.worker_id,
                thief_id=thief.worker_id,
                entry_count=len(moved),
            )
            self.steal_log.append(record)
            self.events.record(
                thief.worker_id, Event(start_ms, EventKind.WORK_STOLEN, payload=record)
            )

    # -- accounting ------------------------------------------------------ #

    def _on_batch(self, worker: ShardWorker, result: BatchResult) -> None:
        bucket = result.work_item.bucket_index
        self.events.record(
            worker.worker_id,
            Event(
                result.finished_at_ms,
                EventKind.SERVICE_COMPLETE,
                payload=(bucket, result.queries_served),
            ),
        )
        for query_id in result.queries_served:
            remaining = self._remaining.get(query_id)
            if remaining is None:
                continue
            remaining.discard(bucket)
            if not remaining and query_id not in self._completion_ms:
                self._completion_ms[query_id] = result.finished_at_ms
                self._completed_order.append(query_id)

    # ------------------------------------------------------------------ #
    # reporting
    # ------------------------------------------------------------------ #

    def completed_queries(self) -> List[int]:
        """Query ids in (global) completion order."""
        return list(self._completed_order)

    def response_time_ms(self, query_id: int) -> Optional[float]:
        """Response time of one query, or ``None`` while pending."""
        done = self._completion_ms.get(query_id)
        if done is None:
            return None
        return done - self._arrival_ms[query_id]

    @property
    def scheduler_name(self) -> str:
        """Merged policy name used in reports."""
        return (
            f"parallel(workers={len(self.pool)}, policy={self._prototype_name}, "
            f"shard={self.pool.plan.strategy})"
        )

    def report(self) -> EngineReport:
        """Merge per-worker accounting into one :class:`EngineReport`.

        Busy time, service counts, strategy counts and I/O totals are sums
        over workers; the cache hit rate is recomputed from the pooled
        hit/miss counters; the makespan spans first arrival to the last
        query completion anywhere, exactly as in the serial report.
        """
        response_times = {
            qid: self._completion_ms[qid] - self._arrival_ms[qid]
            for qid in self._completed_order
        }
        first_arrival = self._first_arrival_ms or 0.0
        last_completion = max(self._completion_ms.values(), default=0.0)
        makespan = max(0.0, last_completion - first_arrival)
        hits = misses = 0.0
        cache_stats: Dict[str, float] = {}
        strategy_counts: Dict[str, int] = {}
        scan_services = index_services = 0.0
        busy = io = match = 0.0
        matches = 0
        services = 0
        for worker in self.pool:
            snapshot = worker.cache.statistics()
            hits += snapshot.get("hits", 0.0)
            misses += snapshot.get("misses", 0.0)
            join_stats = worker.loop.evaluator.statistics()
            scan_services += join_stats.get("scan_services", 0.0)
            index_services += join_stats.get("index_services", 0.0)
            for key, value in worker.loop.strategy_counts.items():
                strategy_counts[key] = strategy_counts.get(key, 0) + value
            busy += worker.loop.busy_ms
            io += worker.loop.total_io_ms
            match += worker.loop.total_match_ms
            matches += worker.loop.total_matches
            services += len(worker.loop.batches)
        accesses = hits + misses
        cache_stats = {
            "hits": hits,
            "misses": misses,
            "accesses": accesses,
            "hit_rate": (hits / accesses) if accesses else 0.0,
        }
        total_join_services = scan_services + index_services
        join_stats = {
            "scan_services": scan_services,
            "index_services": index_services,
            "index_service_fraction": (
                index_services / total_join_services if total_join_services else 0.0
            ),
            "threshold_fraction": self.pool[0].loop.evaluator.threshold_fraction,
        }
        return EngineReport(
            scheduler_name=self.scheduler_name,
            submitted_queries=len(self._arrival_ms),
            completed_queries=len(self._completed_order),
            busy_time_ms=busy,
            makespan_ms=makespan,
            response_times_ms=response_times,
            bucket_services=services,
            cache_hit_rate=cache_stats["hit_rate"],
            cache_statistics=cache_stats,
            join_statistics=join_stats,
            strategy_counts=strategy_counts,
            total_io_ms=io,
            total_match_ms=match,
            total_matches=matches,
        )

    def parallel_report(self) -> ParallelReport:
        """The merged report plus per-worker parallelism metrics."""
        return ParallelReport(
            engine=self.report(),
            workers=len(self.pool),
            shard_strategy=self.pool.plan.strategy,
            worker_busy_ms=[w.busy_ms for w in self.pool],
            worker_clocks_ms=[w.now_ms for w in self.pool],
            worker_services=[len(w.loop.batches) for w in self.pool],
            steals=len(self.steal_log),
            wall_clock_ms=self.pool.max_clock_ms(),
        )
