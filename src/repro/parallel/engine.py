"""The parallel engine: N shard workers behind one intake path.

Queries enter through the same :class:`~repro.core.preprocessor.QueryPreProcessor`
as the serial engine; their per-bucket workloads are fanned out to the
workers that own each bucket under the shard plan.  Execution interleaves
the workers in virtual time: every step services one batch on the worker
whose clock is furthest behind, so N workers progress exactly as N
independent servers would.  When a worker runs dry while others still have
backlog, it steals the most starving bucket queue (oldest pending entry)
from a busier worker — queues migrate whole, so a bucket's batched service
is never split.

Two intake modes exist.  :meth:`ParallelEngine.submit` enqueues a query's
shares immediately and advances recipient clocks (the closed-system mode
the batch tests drive).  :meth:`ParallelEngine.offer` instead *stages* each
per-bucket share until the owning worker's own clock reaches the arrival
time, which replays an open-system trace with strictly local arrival
semantics: a worker's behaviour is a pure function of its own arrival
schedule.  The execution backends build on ``offer`` — it is the property
that lets OS-process workers (:mod:`repro.parallel.backend`) reproduce the
in-process interleaver exactly.

Query completion is tracked globally (a query finishes when its *last*
bucket anywhere is drained), which is what makes per-shard workload
managers composable: each manager only knows its shard's share of a query.

With ``workers=1`` the engine degenerates to the serial
:class:`~repro.core.engine.LifeRaftEngine` — same scheduling decisions,
same costs, same report — which the parity tests pin down.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.engine import BatchResult, EngineConfig, EngineReport
from repro.core.preprocessor import QueryPreProcessor
from repro.core.scheduler import LifeRaftScheduler, SchedulerConfig, SchedulingPolicy
from repro.parallel.sharding import ShardPlan
from repro.parallel.worker import TIME_EPS, ShardWorker, StagedShare, WorkerPool
from repro.sim.events import Event, EventKind, WorkerEventLog
from repro.storage.bucket_store import BucketStore
from repro.storage.index import SpatialIndex
from repro.storage.partitioner import PartitionLayout
from repro.workload.query import CrossMatchQuery

if TYPE_CHECKING:
    from repro.parallel.ipc import WorkerResult


@dataclass(frozen=True)
class StealRecord:
    """One work-stealing migration, for reports and tests."""

    time_ms: float
    bucket_index: int
    victim_id: int
    thief_id: int
    entry_count: int


class CompletionTracker:
    """Cross-shard query bookkeeping: arrivals, remaining buckets, completions.

    A query completes when its *last* pending bucket anywhere is drained.
    The tracker is deliberately standalone so the in-process engine and the
    multiprocessing coordinator (which replays per-worker batch records in
    global virtual-time order) share one notion of completion.
    """

    def __init__(self) -> None:
        self._remaining: Dict[int, Set[int]] = {}
        self._arrival_ms: Dict[int, float] = {}
        self._completion_ms: Dict[int, float] = {}
        self._order: List[int] = []
        self._first_arrival_ms: Optional[float] = None

    def register(self, query_id: int, buckets: Iterable[int], arrival_ms: float) -> None:
        """Record a query's arrival and the buckets it must still visit."""
        if query_id in self._remaining:
            raise ValueError(f"query {query_id} was already submitted")
        self._remaining[query_id] = set(buckets)
        self._arrival_ms[query_id] = arrival_ms
        if self._first_arrival_ms is None or arrival_ms < self._first_arrival_ms:
            self._first_arrival_ms = arrival_ms

    def known(self, query_id: int) -> bool:
        """``True`` once the query has been registered."""
        return query_id in self._remaining

    def on_serviced(self, query_id: int, bucket_index: int, finished_ms: float) -> bool:
        """Mark one bucket of a query as drained; ``True`` on completion."""
        remaining = self._remaining.get(query_id)
        if remaining is None:
            return False
        remaining.discard(bucket_index)
        if not remaining and query_id not in self._completion_ms:
            self._completion_ms[query_id] = finished_ms
            self._order.append(query_id)
            return True
        return False

    @property
    def submitted_count(self) -> int:
        """Queries registered so far."""
        return len(self._arrival_ms)

    @property
    def completed_order(self) -> List[int]:
        """Query ids in global completion order."""
        return list(self._order)

    @property
    def first_arrival_ms(self) -> Optional[float]:
        """Earliest registered arrival, or ``None`` before any intake."""
        return self._first_arrival_ms

    @property
    def last_completion_ms(self) -> float:
        """Latest completion timestamp (0 before any query finishes)."""
        return max(self._completion_ms.values(), default=0.0)

    def arrival_ms(self, query_id: int) -> float:
        """Arrival time of a registered query."""
        return self._arrival_ms[query_id]

    def response_time_ms(self, query_id: int) -> Optional[float]:
        """Response time of one query, or ``None`` while pending."""
        done = self._completion_ms.get(query_id)
        if done is None:
            return None
        return done - self._arrival_ms[query_id]

    def response_times_ms(self) -> Dict[int, float]:
        """Response times of every completed query, in completion order."""
        return {
            qid: self._completion_ms[qid] - self._arrival_ms[qid] for qid in self._order
        }


@dataclass
class ParallelReport:
    """The merged engine report plus per-worker parallelism metrics."""

    engine: EngineReport
    workers: int
    shard_strategy: str
    worker_busy_ms: List[float]
    worker_clocks_ms: List[float]
    worker_services: List[int]
    steals: int
    #: Virtual wall-clock of the run: the furthest-ahead worker clock.
    wall_clock_ms: float

    @property
    def aggregate_busy_ms(self) -> float:
        """Total service time summed over workers (the serial-equivalent work)."""
        return sum(self.worker_busy_ms)

    @property
    def utilisation(self) -> float:
        """Mean fraction of the wall clock each worker spent servicing."""
        if self.wall_clock_ms <= 0 or not self.worker_busy_ms:
            return 0.0
        per_worker = [busy / self.wall_clock_ms for busy in self.worker_busy_ms]
        return sum(per_worker) / len(per_worker)


def merge_worker_results(
    scheduler_name: str,
    completion: CompletionTracker,
    results: Sequence["WorkerResult"],
) -> EngineReport:
    """Merge per-worker accounting into one :class:`EngineReport`.

    The single aggregation rule both execution backends share: the
    in-process engine merges its live shard workers through it and the
    multiprocessing coordinator merges the :class:`WorkerResult` messages
    its worker processes return — so the merged report can never drift
    between backends.
    """
    response_times = completion.response_times_ms()
    first_arrival = completion.first_arrival_ms or 0.0
    makespan = max(0.0, completion.last_completion_ms - first_arrival)
    hits = sum(r.cache_statistics.get("hits", 0.0) for r in results)
    misses = sum(r.cache_statistics.get("misses", 0.0) for r in results)
    accesses = hits + misses
    cache_stats = {
        "hits": hits,
        "misses": misses,
        "accesses": accesses,
        "hit_rate": (hits / accesses) if accesses else 0.0,
    }
    scan_services = sum(r.join_statistics.get("scan_services", 0.0) for r in results)
    index_services = sum(r.join_statistics.get("index_services", 0.0) for r in results)
    total_join_services = scan_services + index_services
    join_stats = {
        "scan_services": scan_services,
        "index_services": index_services,
        "index_service_fraction": (
            index_services / total_join_services if total_join_services else 0.0
        ),
        "threshold_fraction": (
            results[0].join_statistics.get("threshold_fraction", 0.0) if results else 0.0
        ),
    }
    strategy_counts: Dict[str, int] = {}
    for result in results:
        for key, value in result.strategy_counts.items():
            strategy_counts[key] = strategy_counts.get(key, 0) + value
    return EngineReport(
        scheduler_name=scheduler_name,
        submitted_queries=completion.submitted_count,
        completed_queries=len(response_times),
        busy_time_ms=sum(r.busy_ms for r in results),
        makespan_ms=makespan,
        response_times_ms=response_times,
        bucket_services=sum(r.services for r in results),
        cache_hit_rate=cache_stats["hit_rate"],
        cache_statistics=cache_stats,
        join_statistics=join_stats,
        strategy_counts=strategy_counts,
        total_io_ms=sum(r.total_io_ms for r in results),
        total_match_ms=sum(r.total_match_ms for r in results),
        total_matches=sum(r.total_matches for r in results),
    )


class ParallelEngine:
    """Data-driven batch processing sharded across N virtual workers."""

    def __init__(
        self,
        layout: PartitionLayout,
        store: BucketStore,
        workers: int = 1,
        scheduler: Optional[SchedulingPolicy] = None,
        index: Optional[SpatialIndex] = None,
        config: Optional[EngineConfig] = None,
        shard_strategy: str = "round_robin",
        enable_stealing: bool = True,
        plan: Optional[ShardPlan] = None,
    ) -> None:
        self.config = config or EngineConfig()
        self.layout = layout
        self.store = store
        prototype = scheduler or LifeRaftScheduler(SchedulerConfig(cost=self.config.cost))
        self.pool = WorkerPool(
            layout,
            store,
            prototype,
            self.config,
            workers=workers,
            shard_strategy=shard_strategy,
            index=index,
            plan=plan,
        )
        self.preprocessor = QueryPreProcessor(layout)
        self.enable_stealing = enable_stealing
        self.events = WorkerEventLog()
        self.steal_log: List[StealRecord] = []
        self._prototype_name = prototype.name
        #: Ownership overlay: buckets whose queue migrated via stealing.
        #: Future arrivals follow the queue, so one bucket's workload is
        #: never split between two shards.
        self._adopted_owner: Dict[int, int] = {}
        self.completion = CompletionTracker()
        #: (worker_id, query_id) pairs whose arrival event was recorded,
        #: so staged per-bucket ingestion logs one event per fan-out.
        self._arrival_logged: Set[Tuple[int, int]] = set()

    # ------------------------------------------------------------------ #
    # intake
    # ------------------------------------------------------------------ #

    @property
    def workers(self) -> Sequence[ShardWorker]:
        """The shard workers, by worker id."""
        return self.pool.workers

    @property
    def worker_count(self) -> int:
        """Number of shards."""
        return len(self.pool)

    @property
    def now_ms(self) -> float:
        """The engine clock: the max of the worker completion clocks."""
        return self.pool.max_clock_ms()

    def submit(self, query: CrossMatchQuery, now_ms: Optional[float] = None) -> None:
        """Fan one query's per-bucket workloads out to the owning shards.

        The eager (closed-system) intake: shares are enqueued immediately
        and every recipient clock advances to the arrival time, exactly as
        the serial engine's ``submit`` advances its single clock.
        """
        arrival_ms = now_ms if now_ms is not None else query.arrival_time_s * 1000.0
        assignments = self.preprocessor.assign(query)
        if not assignments:
            # No overlap at this site: completes immediately (as serially).
            return
        if self.completion.known(query.query_id):
            raise ValueError(f"query {query.query_id} was already submitted")
        shares: Dict[int, Dict[int, object]] = {}
        for bucket_index, payload in assignments.items():
            worker_id = self._adopted_owner.get(
                bucket_index, self.pool.plan.owner_of(bucket_index)
            )
            shares.setdefault(worker_id, {})[bucket_index] = payload
        for worker_id, share in shares.items():
            worker = self.pool[worker_id]
            worker.manager.add_query(query.query_id, share, arrival_ms, merge=True)
            worker.observe_arrival(arrival_ms)
            self._record_arrival(worker_id, query.query_id, arrival_ms)
        self.completion.register(query.query_id, assignments.keys(), arrival_ms)

    def offer(self, query: CrossMatchQuery, now_ms: Optional[float] = None) -> None:
        """Stage one query for timed, per-worker arrival delivery.

        The open-system intake used by the execution backends: each
        per-bucket share is held until the owning worker's *own* clock
        reaches the arrival time (or the worker idles forward to it), so
        no worker ever sees work from its future.  Queries must be offered
        in non-decreasing arrival order.
        """
        arrival_ms = now_ms if now_ms is not None else query.arrival_time_s * 1000.0
        assignments = self.preprocessor.assign(query)
        if not assignments:
            return
        if self.completion.known(query.query_id):
            raise ValueError(f"query {query.query_id} was already submitted")
        for bucket_index, payload in assignments.items():
            worker_id = self._adopted_owner.get(
                bucket_index, self.pool.plan.owner_of(bucket_index)
            )
            self.pool[worker_id].stage(
                StagedShare(arrival_ms, query.query_id, bucket_index, payload)
            )
        self.completion.register(query.query_id, assignments.keys(), arrival_ms)

    def _record_arrival(self, worker_id: int, query_id: int, arrival_ms: float) -> None:
        """Log one QUERY_ARRIVAL event per (worker, query) fan-out."""
        key = (worker_id, query_id)
        if key in self._arrival_logged:
            return
        self._arrival_logged.add(key)
        self.events.record(
            worker_id, Event(arrival_ms, EventKind.QUERY_ARRIVAL, payload=query_id)
        )

    def _ingest_due(self) -> None:
        """Deliver staged shares whose arrival time each worker has reached."""
        for worker in self.pool:
            for share in worker.ingest_due():
                self._record_arrival(worker.worker_id, share.query_id, share.arrival_ms)

    def has_pending_work(self) -> bool:
        """``True`` while any shard has queued or staged work."""
        return any(
            worker.has_pending_work() or worker.has_staged() for worker in self.pool
        )

    def next_decision_ms(self) -> Optional[float]:
        """Virtual time of the next service or arrival, or ``None`` if drained."""
        times: List[float] = []
        for worker in self.pool:
            if worker.has_pending_work():
                times.append(worker.now_ms)
            else:
                staged = worker.next_staged_ms()
                if staged is not None:
                    times.append(max(staged, worker.now_ms))
        return min(times) if times else None

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #

    def step(self) -> Optional[Tuple[int, BatchResult]]:
        """Advance the system by one bucket service.

        Due staged arrivals are ingested first, then idle workers steal
        (at most one bucket queue each), then the earliest pending event
        happens: either an idle worker jumps forward to its next staged
        arrival, or the worker with the earliest clock among those with
        pending work runs one service.  Jumps loop internally; the method
        returns after one service as ``(worker_id, batch)``, or ``None``
        when the whole pool is drained.
        """
        while True:
            self._ingest_due()
            if self.enable_stealing and len(self.pool) > 1:
                self._balance()
            candidates = [w for w in self.pool if w.has_pending_work()]
            service_key: Optional[Tuple[float, int]] = None
            worker: Optional[ShardWorker] = None
            if candidates:
                worker = min(candidates, key=lambda w: (w.now_ms, w.worker_id))
                service_key = (worker.now_ms, worker.worker_id)
            jump_key: Optional[Tuple[float, int]] = None
            jumper: Optional[ShardWorker] = None
            for idle in self.pool:
                if idle.has_pending_work():
                    continue
                staged = idle.next_staged_ms()
                if staged is None:
                    continue
                key = (staged, idle.worker_id)
                if jump_key is None or key < jump_key:
                    jump_key = key
                    jumper = idle
            if jumper is not None and (
                service_key is None or jump_key[0] <= service_key[0] + TIME_EPS
            ):
                # The next event is an arrival on an idle worker: advance
                # its clock to the arrival and re-evaluate (the newly busy
                # worker may now hold the earliest clock).
                jumper.jump_to(jump_key[0])
                continue
            if worker is None:
                return None
            result = worker.service_next()
            if result is None:  # defensive: a scheduler refused pending work
                return None
            self._on_batch(worker, result)
            return worker.worker_id, result

    def run_until_idle(self, max_batches: Optional[int] = None) -> int:
        """Drain every shard, interleaving workers in virtual time."""
        processed = 0
        while self.has_pending_work():
            outcome = self.step()
            if outcome is None:
                break
            processed += 1
            if max_batches is not None and processed >= max_batches:
                break
        return processed

    # -- work stealing --------------------------------------------------- #

    def _balance(self) -> None:
        """Let every idle worker steal the most starving foreign queue.

        A steal must strictly improve the queue's service start time: the
        thief can begin at ``max(its clock, newest stolen entry)``, which
        has to beat the victim's clock (its earliest possible start).
        Queues migrate whole so batching (shared I/O within a service) is
        preserved; entries keep their enqueue times so ages are unchanged.
        """
        idle = [w for w in self.pool if not w.has_pending_work()]
        if not idle:
            return
        for thief in sorted(idle, key=lambda w: (w.now_ms, w.worker_id)):
            best: Optional[Tuple[float, int, ShardWorker]] = None
            for victim in self.pool:
                if victim.worker_id == thief.worker_id:
                    continue
                for bucket_index in victim.pending_buckets():
                    oldest = victim.manager.oldest_bucket_enqueue_ms(bucket_index)
                    if best is None or (oldest, bucket_index) < (best[0], best[1]):
                        best = (oldest, bucket_index, victim)
            if best is None:
                return  # nothing pending anywhere
            _oldest, bucket_index, victim = best
            entries = victim.manager.queue(bucket_index).entries
            start_ms = max(thief.now_ms, max(e.enqueue_time_ms for e in entries))
            if start_ms >= victim.now_ms:
                continue  # migration would not start the service any earlier
            moved = victim.manager.release_bucket(bucket_index)
            thief.manager.adopt_bucket(bucket_index, moved)
            # Future arrivals follow the queue: re-route the bucket's not
            # yet ingested staged shares along with the queue itself.
            thief.stage_merged(victim.extract_staged(bucket_index))
            self._adopted_owner[bucket_index] = thief.worker_id
            thief.now_ms = start_ms
            thief.steals += 1
            record = StealRecord(
                time_ms=start_ms,
                bucket_index=bucket_index,
                victim_id=victim.worker_id,
                thief_id=thief.worker_id,
                entry_count=len(moved),
            )
            self.steal_log.append(record)
            self.events.record(
                thief.worker_id, Event(start_ms, EventKind.WORK_STOLEN, payload=record)
            )

    # -- accounting ------------------------------------------------------ #

    def _on_batch(self, worker: ShardWorker, result: BatchResult) -> None:
        bucket = result.work_item.bucket_index
        self.events.record(
            worker.worker_id,
            Event(
                result.finished_at_ms,
                EventKind.SERVICE_COMPLETE,
                payload=(bucket, result.queries_served),
            ),
        )
        for query_id in result.queries_served:
            self.completion.on_serviced(query_id, bucket, result.finished_at_ms)

    # ------------------------------------------------------------------ #
    # reporting
    # ------------------------------------------------------------------ #

    def completed_queries(self) -> List[int]:
        """Query ids in (global) completion order."""
        return self.completion.completed_order

    def response_time_ms(self, query_id: int) -> Optional[float]:
        """Response time of one query, or ``None`` while pending."""
        return self.completion.response_time_ms(query_id)

    @property
    def scheduler_name(self) -> str:
        """Merged policy name used in reports."""
        return (
            f"parallel(workers={len(self.pool)}, policy={self._prototype_name}, "
            f"shard={self.pool.plan.strategy})"
        )

    def report(self) -> EngineReport:
        """Merge per-worker accounting into one :class:`EngineReport`.

        Busy time, service counts, strategy counts and I/O totals are sums
        over workers; the cache hit rate is recomputed from the pooled
        hit/miss counters; the makespan spans first arrival to the last
        query completion anywhere, exactly as in the serial report.  The
        aggregation itself is shared with the multiprocessing coordinator
        (:func:`merge_worker_results`), so both execution backends merge
        by exactly the same rules.
        """
        from repro.parallel.ipc import worker_result

        return merge_worker_results(
            self.scheduler_name,
            self.completion,
            [worker_result(worker) for worker in self.pool],
        )

    def parallel_report(self) -> ParallelReport:
        """The merged report plus per-worker parallelism metrics."""
        return ParallelReport(
            engine=self.report(),
            workers=len(self.pool),
            shard_strategy=self.pool.plan.strategy,
            worker_busy_ms=[w.busy_ms for w in self.pool],
            worker_clocks_ms=[w.now_ms for w in self.pool],
            worker_services=[len(w.loop.batches) for w in self.pool],
            steals=len(self.steal_log),
            wall_clock_ms=self.pool.max_clock_ms(),
        )
