"""Inter-process machinery of the multiprocessing execution backend.

One OS process per shard worker, one duplex pipe per process, and a small
synchronous message protocol driven by the coordinator in
:class:`repro.parallel.backend.ProcessBackend`:

* the child is constructed from a pickled :class:`ShardTask` — engine
  config, a cloned scheduling policy, a read-only
  :class:`~repro.storage.bucket_store.StoreSnapshot` and the shard's full
  arrival schedule as :class:`~repro.parallel.worker.StagedShare`s;
* :class:`RunWindow` advances the shard's virtual clock up to a boundary
  (or drains it completely), returning a :class:`WindowReport` with the
  clock, pending-queue metadata and the window's
  :class:`BatchRecord`s;
* :class:`ReleaseBucket` / :class:`AdoptBucket` migrate one whole workload
  queue (entries *and* its not-yet-ingested staged shares) between
  processes — work stealing as message passing;
* :class:`Finalize` collects the shard's aggregate accounting as a
  :class:`WorkerResult`;
* :class:`CaptureCheckpoint` has the child write its resumable state as a
  ``.lrcp`` file (see :mod:`repro.reliability.checkpoint`); a respawned
  child restores from :attr:`ShardTask.checkpoint_path` and resumes its
  batch numbering at the checkpoint's cursor.

Everything the protocol ships must pickle under the ``spawn`` start
method; the replay logic itself lives in :class:`ShardReplayer`, which is
plain in-process code so tests can drive it without forking.

The replayer applies the same local rule as the in-process engine's
staged intake — deliver arrivals at or before the clock, jump an idle
worker to its next arrival, service at the clock — so a shard's timeline
is bit-for-bit identical in both backends (the cross-backend parity tests
pin this down).
"""

from __future__ import annotations

import traceback
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.engine import EngineConfig
from repro.core.scheduler import SchedulingPolicy
from repro.core.workload_manager import WorkloadEntry
from repro.parallel.worker import ShardWorker, StagedShare, build_shard_worker
from repro.storage.bucket_store import BucketStore, StoreSnapshot
from repro.storage.index import SpatialIndex


# --------------------------------------------------------------------- #
# coordinator -> worker messages
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class ShardTask:
    """Everything a worker process needs to rebuild its shard."""

    worker_id: int
    config: EngineConfig
    policy: SchedulingPolicy
    snapshot: StoreSnapshot
    index: Optional[SpatialIndex]
    arrivals: Tuple[StagedShare, ...]
    #: Recovery only: restore the shard from this ``.lrcp`` checkpoint
    #: after rebuilding it, then resume the schedule tail from there.
    checkpoint_path: Optional[str] = None


@dataclass(frozen=True)
class RunWindow:
    """Advance the shard until *until_ms* (``None`` = drain everything)."""

    until_ms: Optional[float]


@dataclass(frozen=True)
class ReleaseBucket:
    """Hand bucket *bucket_index*'s queue to the coordinator (steal source)."""

    bucket_index: int


@dataclass(frozen=True)
class AdoptBucket:
    """Adopt a migrated queue and start it at *clock_ms* (steal target)."""

    bucket_index: int
    entries: Tuple[WorkloadEntry, ...]
    staged: Tuple[StagedShare, ...]
    clock_ms: float


@dataclass(frozen=True)
class ReleaseAllBuckets:
    """Hand *every* queue (pending and staged) to the coordinator.

    The planned scale-down message: a departing shard evacuates its whole
    remaining workload through the same release seam stealing uses, one
    :class:`ReleasedBucket` per queue.
    """


@dataclass(frozen=True)
class CaptureCheckpoint:
    """Capture the shard's state at the current barrier into *path*.

    The child serialises and writes the ``.lrcp`` file itself — real
    checkpoint I/O happens in parallel across shards, and the coordinator
    only learns the summary.
    """

    path: str
    window_index: int


@dataclass(frozen=True)
class Finalize:
    """Request the shard's final accounting."""


@dataclass(frozen=True)
class Shutdown:
    """Terminate the worker process loop."""


# --------------------------------------------------------------------- #
# worker -> coordinator messages
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class BatchRecord:
    """One bucket service, reduced to what the coordinator must know.

    Besides driving completion bookkeeping, batch records are the payload
    of the serving layer's incremental result streams: per served query
    they carry the drained object count, so partial-answer chunks ride the
    same message channel as the rest of the protocol.
    """

    worker_id: int
    seq: int
    bucket_index: int
    queries_served: Tuple[int, ...]
    started_at_ms: float
    finished_at_ms: float
    #: Objects drained per served query, aligned with ``queries_served``.
    objects_served: Tuple[int, ...] = ()
    #: The batch's I/O vs match cost split (virtual ms).  Rides the IPC
    #: seam so the cost ledger can attribute cache hits per query without
    #: a second channel; defaulted for producers that predate the ledger.
    io_ms: float = 0.0
    match_ms: float = 0.0


@dataclass(frozen=True)
class BucketQueueMeta:
    """Steal-relevant metadata of one pending workload queue."""

    bucket_index: int
    entry_count: int
    oldest_enqueue_ms: float
    newest_enqueue_ms: float


@dataclass(frozen=True)
class WindowReport:
    """State of one shard at a window boundary."""

    worker_id: int
    clock_ms: float
    #: ``True`` once the shard has neither queued nor staged work left.
    drained: bool
    #: Pending queues at the boundary (steal victims advertise these).
    pending: Tuple[BucketQueueMeta, ...]
    batches: Tuple[BatchRecord, ...]
    #: Arrival time of the shard's next staged share (``None`` when empty);
    #: the coordinator derives the next window boundary from it.
    next_staged_ms: Optional[float] = None


@dataclass(frozen=True)
class ReleasedBucket:
    """A migrated queue: its entries plus its un-ingested staged shares."""

    worker_id: int
    bucket_index: int
    entries: Tuple[WorkloadEntry, ...]
    staged: Tuple[StagedShare, ...]
    clock_ms: float
    #: The victim's next staged arrival *after* the extraction (``None``
    #: when its stage is empty); keeps the coordinator's view current.
    next_staged_ms: Optional[float] = None


@dataclass(frozen=True)
class ReleasedAll:
    """Reply to :class:`ReleaseAllBuckets`: the shard's evacuated queues."""

    worker_id: int
    buckets: Tuple[ReleasedBucket, ...]


@dataclass(frozen=True)
class Ack:
    """Plain acknowledgement keeping the protocol synchronous."""

    worker_id: int


@dataclass(frozen=True)
class CheckpointWritten:
    """Reply to :class:`CaptureCheckpoint`: the written file's summary."""

    worker_id: int
    window_index: int
    clock_ms: float
    #: Batch records emitted before the barrier (the replay cursor).
    seq: int
    byte_size: int
    #: Real seconds the capture + write took on the shard.
    real_elapsed_s: float


@dataclass(frozen=True)
class WorkerResult:
    """Final per-shard accounting, merged by the coordinator."""

    worker_id: int
    clock_ms: float
    busy_ms: float
    services: int
    steals: int
    total_io_ms: float
    total_match_ms: float
    total_matches: int
    strategy_counts: Dict[str, int]
    cache_statistics: Dict[str, float]
    join_statistics: Dict[str, float]
    store_reads: int
    store_megabytes: float
    #: File-backed stores only: this shard's physical read + decode time.
    store_real_read_s: float = 0.0
    #: The lane's telemetry snapshot (a plain picklable dict; see
    #: :mod:`repro.telemetry.registry`).  Merged order-insensitively by
    #: the coordinator.  ``None`` when the producer predates telemetry.
    telemetry: Optional[dict] = None


@dataclass(frozen=True)
class WorkerFailure:
    """A worker process died; carries the formatted traceback."""

    worker_id: int
    traceback_text: str


# --------------------------------------------------------------------- #
# the shard replayer (shared by the worker process and in-process tests)
# --------------------------------------------------------------------- #


class ShardReplayer:
    """Replays one shard's staged arrival schedule on its own timeline.

    The loop is the single-worker specialisation of the parallel engine's
    step rule: ingest every share whose arrival time the clock has
    reached, service at the clock while work is pending, and jump an idle
    worker forward to its next arrival.  ``advance(until_ms)`` stops
    before any service or jump that would start at or past the boundary,
    so window boundaries pause the timeline without altering it.
    """

    def __init__(self, worker: ShardWorker, start_seq: int = 0) -> None:
        self.worker = worker
        #: Next batch sequence number.  A recovered shard resumes at its
        #: checkpoint's cursor so replayed records carry the same numbers
        #: the lost originals did.
        self.seq = start_seq

    def advance(self, until_ms: Optional[float]) -> List[BatchRecord]:
        """Run services starting before *until_ms* (``None`` = drain all)."""
        worker = self.worker
        records: List[BatchRecord] = []
        while True:
            worker.ingest_due()
            if worker.has_pending_work():
                if until_ms is not None and worker.now_ms >= until_ms:
                    break
                result = worker.service_next()
                if result is None:  # defensive: scheduler refused pending work
                    break
                records.append(
                    BatchRecord(
                        worker_id=worker.worker_id,
                        seq=self.seq,
                        bucket_index=result.work_item.bucket_index,
                        queries_served=result.queries_served,
                        started_at_ms=result.started_at_ms,
                        finished_at_ms=result.finished_at_ms,
                        objects_served=result.objects_served,
                        io_ms=result.join.io_cost_ms,
                        match_ms=result.join.match_cost_ms,
                    )
                )
                self.seq += 1
            else:
                staged = worker.next_staged_ms()
                if staged is None:
                    break
                if until_ms is not None and staged >= until_ms:
                    break
                worker.jump_to(staged)
        return records

    def window_report(self, batches: List[BatchRecord]) -> WindowReport:
        """Summarise the shard's state at the current boundary."""
        worker = self.worker
        pending: List[BucketQueueMeta] = []
        for bucket_index in worker.pending_buckets():
            queue = worker.manager.queue(bucket_index)
            enqueue_times = [entry.enqueue_time_ms for entry in queue.entries]
            pending.append(
                BucketQueueMeta(
                    bucket_index=bucket_index,
                    entry_count=len(queue.entries),
                    oldest_enqueue_ms=min(enqueue_times),
                    newest_enqueue_ms=max(enqueue_times),
                )
            )
        pending.sort(key=lambda meta: meta.bucket_index)
        return WindowReport(
            worker_id=worker.worker_id,
            clock_ms=worker.now_ms,
            drained=not worker.has_pending_work() and not worker.has_staged(),
            pending=tuple(pending),
            batches=tuple(batches),
            next_staged_ms=worker.next_staged_ms(),
        )

    def release(self, bucket_index: int) -> ReleasedBucket:
        """Give up one whole workload queue plus its staged future."""
        worker = self.worker
        entries = worker.manager.release_bucket(bucket_index)
        staged = worker.extract_staged(bucket_index)
        return ReleasedBucket(
            worker_id=worker.worker_id,
            bucket_index=bucket_index,
            entries=tuple(entries),
            staged=tuple(staged),
            clock_ms=worker.now_ms,
            next_staged_ms=worker.next_staged_ms(),
        )

    def release_all(self) -> ReleasedAll:
        """Evacuate every queue — pending *and* staged — for scale-down.

        Buckets are released in index order so the migration schedule is
        deterministic regardless of internal dict ordering.
        """
        worker = self.worker
        buckets = sorted(
            set(worker.pending_buckets())
            | {share.bucket_index for share in worker.staged_shares()}
        )
        released = tuple(self.release(bucket_index) for bucket_index in buckets)
        return ReleasedAll(worker_id=worker.worker_id, buckets=released)

    def adopt(self, message: AdoptBucket) -> None:
        """Take ownership of a migrated queue, starting it at the steal time."""
        worker = self.worker
        worker.manager.adopt_bucket(message.bucket_index, list(message.entries))
        worker.stage_merged(message.staged)
        worker.now_ms = max(worker.now_ms, message.clock_ms)
        worker.steals += 1


def build_task_worker(task: ShardTask) -> ShardWorker:
    """Restore a shard worker from its pickled task (child-side setup).

    The layout comes from the restored store, not the snapshot directly:
    path-based snapshots carry no layout (the store file does), and the
    in-memory variant restores the same object either way.
    """
    store = BucketStore.from_snapshot(task.snapshot)
    worker = build_shard_worker(
        task.worker_id,
        store.layout,
        store,
        task.policy,
        task.config,
        index=task.index,
    )
    for share in task.arrivals:
        worker.stage(share)
    return worker


def prepare_task_worker(task: ShardTask) -> Tuple[ShardWorker, int]:
    """Build a task's worker, restoring it from a checkpoint when one is set.

    Returns ``(worker, start_seq)``: a fresh shard starts emitting batch
    records at 0, a recovered shard resumes at its checkpoint's cursor.
    The checkpoint is generation-bound — restoring against a store that
    was re-ingested since the capture fails cleanly.
    """
    worker = build_task_worker(task)
    if task.checkpoint_path is None:
        return worker, 0
    from repro.reliability.checkpoint import restore_worker

    state = restore_worker(
        task.checkpoint_path,
        worker,
        expected_generation=worker.loop.cache.store.generation,
    )
    return worker, state.seq


def worker_result(worker: ShardWorker, include_store_telemetry: bool = False) -> WorkerResult:
    """Collect one shard's final accounting for the coordinator.

    *include_store_telemetry* merges the store's real-domain registry
    into the lane snapshot.  Worker processes set it (each child owns a
    private store); in-process lanes leave it off — they share one store
    object, which the virtual backend merges exactly once at run level.
    """
    loop = worker.loop
    store = loop.cache.store
    telemetry = loop.telemetry.snapshot()
    if include_store_telemetry:
        store_registry = getattr(store, "telemetry", None)
        if store_registry is not None:
            from repro.telemetry.registry import merge_snapshots

            telemetry = merge_snapshots([telemetry, store_registry.snapshot()])
    return WorkerResult(
        worker_id=worker.worker_id,
        clock_ms=worker.now_ms,
        busy_ms=loop.busy_ms,
        services=loop.services,
        steals=worker.steals,
        total_io_ms=loop.total_io_ms,
        total_match_ms=loop.total_match_ms,
        total_matches=loop.total_matches,
        strategy_counts=dict(loop.strategy_counts),
        cache_statistics=loop.cache.statistics(),
        join_statistics=loop.evaluator.statistics(),
        store_reads=store.reads,
        store_megabytes=store.bytes_read_mb,
        store_real_read_s=getattr(store, "real_read_s", 0.0),
        telemetry=telemetry,
    )


def shard_worker_main(conn, task: ShardTask) -> None:
    """Entry point of one worker process (must be importable for spawn)."""
    try:
        worker, start_seq = prepare_task_worker(task)
        replayer = ShardReplayer(worker, start_seq=start_seq)
        while True:
            message = conn.recv()
            if isinstance(message, RunWindow):
                batches = replayer.advance(message.until_ms)
                conn.send(replayer.window_report(batches))
            elif isinstance(message, ReleaseBucket):
                conn.send(replayer.release(message.bucket_index))
            elif isinstance(message, ReleaseAllBuckets):
                conn.send(replayer.release_all())
            elif isinstance(message, AdoptBucket):
                replayer.adopt(message)
                conn.send(Ack(task.worker_id))
            elif isinstance(message, CaptureCheckpoint):
                import time

                from repro.reliability.checkpoint import checkpoint_worker

                started = time.perf_counter()
                info = checkpoint_worker(
                    message.path, worker, replayer.seq, message.window_index
                )
                conn.send(
                    CheckpointWritten(
                        worker_id=task.worker_id,
                        window_index=message.window_index,
                        clock_ms=worker.now_ms,
                        seq=replayer.seq,
                        byte_size=info.byte_size,
                        real_elapsed_s=time.perf_counter() - started,
                    )
                )
            elif isinstance(message, Finalize):
                conn.send(worker_result(worker, include_store_telemetry=True))
            elif isinstance(message, Shutdown):
                return
            else:
                raise TypeError(f"unexpected coordinator message: {message!r}")
    except EOFError:
        # Coordinator went away (e.g. it raised); exit quietly.
        return
    except BaseException:
        try:
            conn.send(WorkerFailure(task.worker_id, traceback.format_exc()))
        except Exception:
            pass
    finally:
        conn.close()
