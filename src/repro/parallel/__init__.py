"""Parallel multi-worker execution of the LifeRaft engine.

The serial :class:`~repro.core.engine.LifeRaftEngine` services one bucket
batch at a time; this package shards bucket ownership across N simulated
workers so the same data-driven scheduling policy runs on every shard
concurrently (in virtual time):

* :mod:`repro.parallel.sharding` — deterministic bucket → worker
  assignment (round-robin or zone-contiguous along the HTM curve);
* :mod:`repro.parallel.worker` — one :class:`ShardWorker` per shard, each
  owning a private bucket cache, hybrid join evaluator, scheduler instance
  and virtual clock;
* :mod:`repro.parallel.engine` — the :class:`ParallelEngine` that fans
  queries out through the shared pre-processor, repeatedly services the
  earliest-clock worker, steals the oldest starving bucket queue for idle
  workers, and merges per-worker accounting into one
  :class:`~repro.core.engine.EngineReport`;
* :mod:`repro.parallel.backend` — the :class:`ExecutionBackend` seam over
  the shard plan: :class:`VirtualBackend` (the deterministic in-process
  interleaver, default for tests) and :class:`ProcessBackend` (one OS
  process per shard via ``multiprocessing``, spawn-safe, with work
  stealing as message passing);
* :mod:`repro.parallel.ipc` — the pickled message protocol and the
  per-shard replayer the worker processes run.

Everything above the :class:`~repro.core.engine.ServiceLoop` is topology,
everything below is unchanged engine code — which is what makes the two
backends produce identical virtual-clock results (the cross-backend
parity tests pin this down).
"""

from repro.parallel.backend import (
    EXECUTION_BACKENDS,
    BackendOutcome,
    ExecutionBackend,
    ParallelRunSpec,
    ProcessBackend,
    VirtualBackend,
    make_backend,
)
from repro.parallel.engine import ParallelEngine, ParallelReport
from repro.parallel.sharding import (
    SHARD_STRATEGIES,
    ShardPlan,
    make_shard_plan,
    partition_round_robin,
    partition_zones,
)
from repro.parallel.worker import ShardWorker, WorkerPool

__all__ = [
    "EXECUTION_BACKENDS",
    "SHARD_STRATEGIES",
    "BackendOutcome",
    "ExecutionBackend",
    "ParallelEngine",
    "ParallelReport",
    "ParallelRunSpec",
    "ProcessBackend",
    "ShardPlan",
    "ShardWorker",
    "VirtualBackend",
    "WorkerPool",
    "make_backend",
    "make_shard_plan",
    "partition_round_robin",
    "partition_zones",
]
