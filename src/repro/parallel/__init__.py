"""Parallel multi-worker execution of the LifeRaft engine.

The serial :class:`~repro.core.engine.LifeRaftEngine` services one bucket
batch at a time; this package shards bucket ownership across N simulated
workers so the same data-driven scheduling policy runs on every shard
concurrently (in virtual time):

* :mod:`repro.parallel.sharding` — deterministic bucket → worker
  assignment (round-robin or zone-contiguous along the HTM curve);
* :mod:`repro.parallel.worker` — one :class:`ShardWorker` per shard, each
  owning a private bucket cache, hybrid join evaluator, scheduler instance
  and virtual clock;
* :mod:`repro.parallel.engine` — the :class:`ParallelEngine` that fans
  queries out through the shared pre-processor, repeatedly services the
  earliest-clock worker, steals the oldest starving bucket queue for idle
  workers, and merges per-worker accounting into one
  :class:`~repro.core.engine.EngineReport`.

This is the sharding seam later real multiprocessing, federation
parallelism and async intake plug into: everything above the
:class:`~repro.core.engine.ServiceLoop` is topology, everything below is
unchanged engine code.
"""

from repro.parallel.engine import ParallelEngine, ParallelReport
from repro.parallel.sharding import (
    SHARD_STRATEGIES,
    ShardPlan,
    make_shard_plan,
    partition_round_robin,
    partition_zones,
)
from repro.parallel.worker import ShardWorker, WorkerPool

__all__ = [
    "SHARD_STRATEGIES",
    "ParallelEngine",
    "ParallelReport",
    "ShardPlan",
    "ShardWorker",
    "WorkerPool",
    "make_shard_plan",
    "partition_round_robin",
    "partition_zones",
]
