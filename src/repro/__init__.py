"""Reproduction of LifeRaft (CIDR 2009).

LifeRaft is a data-driven, batch query scheduler for data-intensive
scientific workloads.  Rather than evaluating queries in arrival order, it
partitions the fact table into equal-sized buckets along the HTM
space-filling curve, groups the data requirements of concurrent queries by
bucket, and services the bucket with the highest *aged workload throughput*
next so that one sequential read satisfies many queries at once.

The package is organised as a set of substrates plus the core scheduler:

``repro.htm``
    Spherical geometry and the Hierarchical Triangular Mesh used to
    linearise the sky into a space-filling curve.
``repro.storage``
    Disk cost model, LRU cache, bucket partitioner/store and spatial index.
``repro.catalog``
    Synthetic astronomical catalogs and archives.
``repro.core``
    The LifeRaft scheduler itself: pre-processor, workload manager,
    scheduling metrics, hybrid join evaluator, baselines and the engine.
``repro.sim``
    Discrete-event simulation used to drive the evaluation.
``repro.workload``
    Cross-match query model, trace generators and arrival processes.
``repro.federation``
    A SkyQuery-style federation substrate (archives, plans, shipping).
``repro.experiments``
    One module per figure/table of the paper's evaluation.
"""

from repro.core.engine import LifeRaftEngine, EngineConfig
from repro.core.scheduler import LifeRaftScheduler, SchedulerConfig
from repro.core.metrics import CostModel, workload_throughput, aged_workload_throughput
from repro.core.baselines import (
    NoShareScheduler,
    RoundRobinScheduler,
    IndexOnlyScheduler,
    LeastSharableFirstScheduler,
)
from repro.workload.query import CrossMatchQuery, CrossMatchObject
from repro.workload.generator import TraceConfig, TraceGenerator
from repro.sim.simulator import SimulationConfig, Simulator, SimulationResult

__version__ = "1.0.0"

__all__ = [
    "LifeRaftEngine",
    "EngineConfig",
    "LifeRaftScheduler",
    "SchedulerConfig",
    "CostModel",
    "workload_throughput",
    "aged_workload_throughput",
    "NoShareScheduler",
    "RoundRobinScheduler",
    "IndexOnlyScheduler",
    "LeastSharableFirstScheduler",
    "CrossMatchQuery",
    "CrossMatchObject",
    "TraceConfig",
    "TraceGenerator",
    "SimulationConfig",
    "Simulator",
    "SimulationResult",
    "__version__",
]
