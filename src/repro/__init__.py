"""Reproduction of LifeRaft (CIDR 2009).

LifeRaft is a data-driven, batch query scheduler for data-intensive
scientific workloads.  Rather than evaluating queries in arrival order, it
partitions the fact table into equal-sized buckets along the HTM
space-filling curve, groups the data requirements of concurrent queries by
bucket, and services the bucket with the highest *aged workload throughput*
next so that one sequential read satisfies many queries at once.

The package is organised as a set of substrates plus the core scheduler:

``repro.htm``
    Spherical geometry and the Hierarchical Triangular Mesh used to
    linearise the sky into a space-filling curve.
``repro.storage``
    Disk cost model, LRU cache, bucket partitioner/store and spatial index.
``repro.catalog``
    Synthetic astronomical catalogs and archives.
``repro.core``
    The LifeRaft scheduler itself: pre-processor, workload manager,
    scheduling metrics, hybrid join evaluator, baselines and the engine.
``repro.sim``
    Discrete-event simulation used to drive the evaluation.
``repro.workload``
    Cross-match query model, trace generators and arrival processes.
``repro.federation``
    A SkyQuery-style federation substrate (archives, plans, shipping).
``repro.experiments``
    One module per figure/table of the paper's evaluation.
"""

from repro.core.baselines import (
    IndexOnlyScheduler,
    LeastSharableFirstScheduler,
    NoShareScheduler,
    RoundRobinScheduler,
)
from repro.core.engine import EngineConfig, LifeRaftEngine
from repro.core.metrics import CostModel, aged_workload_throughput, workload_throughput
from repro.core.scheduler import LifeRaftScheduler, SchedulerConfig
from repro.reliability.config import ReliabilityConfig
from repro.service.frontend import ServiceConfig
from repro.sim.runspec import RunSpec
from repro.sim.simulator import SimulationConfig, SimulationResult, Simulator
from repro.storage.bucket_store import BucketStore
from repro.storage.disk_store import DiskBucketStore, open_disk_store
from repro.workload.generator import TraceConfig, TraceGenerator
from repro.workload.query import CrossMatchObject, CrossMatchQuery

__version__ = "1.0.0"

#: The supported public API.  ``Simulator.execute(queries, RunSpec(...))``
#: is the one entry point for running simulations; everything else here
#: is configuration, result types and the storage tiers.
__all__ = [
    # engine & scheduling
    "LifeRaftEngine",
    "EngineConfig",
    "LifeRaftScheduler",
    "SchedulerConfig",
    "CostModel",
    "workload_throughput",
    "aged_workload_throughput",
    "NoShareScheduler",
    "RoundRobinScheduler",
    "IndexOnlyScheduler",
    "LeastSharableFirstScheduler",
    # workload model
    "CrossMatchQuery",
    "CrossMatchObject",
    "TraceConfig",
    "TraceGenerator",
    # simulation surface
    "RunSpec",
    "SimulationConfig",
    "Simulator",
    "SimulationResult",
    "ServiceConfig",
    "ReliabilityConfig",
    # storage tiers
    "BucketStore",
    "DiskBucketStore",
    "open_disk_store",
    "__version__",
]
