"""Spherical geometry primitives used by the HTM and the cross-match join.

All directions on the celestial sphere are represented either as
(right ascension, declination) pairs in degrees or as 3-D unit vectors.
Unit vectors make containment tests (dot products and triple products)
cheap and numerically stable, which is why the HTM literature and the SDSS
`Zones` work use them throughout.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence, Tuple

Vector = Tuple[float, float, float]

#: Numerical slack used for containment tests at trixel edges.  Points that
#: sit exactly on a shared edge must be assigned to exactly one trixel, so
#: the mesh uses a slightly asymmetric comparison against this epsilon.
EDGE_EPSILON = 1.0e-12


@dataclass(frozen=True)
class SkyPoint:
    """A direction on the celestial sphere.

    Parameters
    ----------
    ra:
        Right ascension in degrees, in ``[0, 360)``.
    dec:
        Declination in degrees, in ``[-90, +90]``.
    """

    ra: float
    dec: float

    def __post_init__(self) -> None:
        if not -90.0 <= self.dec <= 90.0:
            raise ValueError(f"declination {self.dec} outside [-90, 90]")
        # Normalise RA into [0, 360).  frozen dataclass -> object.__setattr__.
        object.__setattr__(self, "ra", self.ra % 360.0)

    def to_vector(self) -> Vector:
        """Return the unit vector pointing at this sky position."""
        return unit_vector(self.ra, self.dec)

    def separation(self, other: "SkyPoint") -> float:
        """Angular separation from *other* in degrees."""
        return angular_separation(self.ra, self.dec, other.ra, other.dec)


def unit_vector(ra: float, dec: float) -> Vector:
    """Convert (RA, Dec) in degrees into a Cartesian unit vector.

    The convention matches the SDSS science archive: x points at
    (RA=0, Dec=0), z at the north celestial pole.
    """
    ra_rad = math.radians(ra)
    dec_rad = math.radians(dec)
    cos_dec = math.cos(dec_rad)
    return (
        cos_dec * math.cos(ra_rad),
        cos_dec * math.sin(ra_rad),
        math.sin(dec_rad),
    )


def radec_from_vector(v: Sequence[float]) -> Tuple[float, float]:
    """Convert a (not necessarily normalised) vector back to (RA, Dec) degrees."""
    x, y, z = v
    norm = math.sqrt(x * x + y * y + z * z)
    if norm == 0.0:
        raise ValueError("zero vector has no direction")
    x, y, z = x / norm, y / norm, z / norm
    dec = math.degrees(math.asin(max(-1.0, min(1.0, z))))
    ra = math.degrees(math.atan2(y, x)) % 360.0
    return ra, dec


def normalize(v: Sequence[float]) -> Vector:
    """Return *v* scaled to unit length."""
    x, y, z = v
    norm = math.sqrt(x * x + y * y + z * z)
    if norm == 0.0:
        raise ValueError("cannot normalise the zero vector")
    return (x / norm, y / norm, z / norm)


def dot(a: Sequence[float], b: Sequence[float]) -> float:
    """Dot product of two 3-vectors."""
    return a[0] * b[0] + a[1] * b[1] + a[2] * b[2]


def cross(a: Sequence[float], b: Sequence[float]) -> Vector:
    """Cross product of two 3-vectors."""
    return (
        a[1] * b[2] - a[2] * b[1],
        a[2] * b[0] - a[0] * b[2],
        a[0] * b[1] - a[1] * b[0],
    )


def midpoint(a: Sequence[float], b: Sequence[float]) -> Vector:
    """Normalised midpoint of two unit vectors (great-circle bisector)."""
    return normalize((a[0] + b[0], a[1] + b[1], a[2] + b[2]))


def angular_separation(ra1: float, dec1: float, ra2: float, dec2: float) -> float:
    """Angular separation between two sky positions, in degrees.

    Uses the Vincenty formula, which is accurate for both small and large
    separations (the plain arccos formula loses precision for the
    arc-second separations that cross-match cares about).
    """
    lon1, lat1 = math.radians(ra1), math.radians(dec1)
    lon2, lat2 = math.radians(ra2), math.radians(dec2)
    dlon = lon2 - lon1
    cos_lat1, sin_lat1 = math.cos(lat1), math.sin(lat1)
    cos_lat2, sin_lat2 = math.cos(lat2), math.sin(lat2)
    num = math.hypot(
        cos_lat2 * math.sin(dlon),
        cos_lat1 * sin_lat2 - sin_lat1 * cos_lat2 * math.cos(dlon),
    )
    den = sin_lat1 * sin_lat2 + cos_lat1 * cos_lat2 * math.cos(dlon)
    return math.degrees(math.atan2(num, den))


def cone_contains(center: SkyPoint, radius_deg: float, point: SkyPoint) -> bool:
    """Return ``True`` when *point* lies within *radius_deg* of *center*."""
    return center.separation(point) <= radius_deg


def triangle_contains(corners: Sequence[Vector], v: Sequence[float]) -> bool:
    """Return ``True`` when unit vector *v* lies inside the spherical triangle.

    The triangle is given by three corner unit vectors in counter-clockwise
    order (seen from outside the sphere).  A point is inside when it is on
    the positive side of all three edge planes.  The comparison uses a small
    negative epsilon so points on an edge are accepted; callers that need a
    unique owner (the mesh) disambiguate by child visiting order.
    """
    c0, c1, c2 = corners
    return (
        dot(cross(c0, c1), v) >= -EDGE_EPSILON
        and dot(cross(c1, c2), v) >= -EDGE_EPSILON
        and dot(cross(c2, c0), v) >= -EDGE_EPSILON
    )


def triangle_circumcircle(corners: Sequence[Vector]) -> Tuple[Vector, float]:
    """Return (center unit vector, angular radius in degrees) of the
    circumscribed cone of a spherical triangle.

    Used by the cone-cover computation to quickly reject trixels that cannot
    intersect a query cone.
    """
    c0, c1, c2 = corners
    # The circumcircle axis is orthogonal to the differences of the corners.
    axis = cross(
        (c1[0] - c0[0], c1[1] - c0[1], c1[2] - c0[2]),
        (c2[0] - c1[0], c2[1] - c1[1], c2[2] - c1[2]),
    )
    try:
        axis = normalize(axis)
    except ValueError:
        # Degenerate (collinear) corners: fall back to the centroid.
        axis = midpoint(midpoint(c0, c1), c2)
    if dot(axis, c0) < 0:
        axis = (-axis[0], -axis[1], -axis[2])
    radius = math.degrees(math.acos(max(-1.0, min(1.0, dot(axis, c0)))))
    return axis, radius


def spherical_triangle_area(corners: Sequence[Vector]) -> float:
    """Solid angle of a spherical triangle in steradians (Girard's theorem)."""
    c0, c1, c2 = corners
    a = _arc_angle(c1, c2)
    b = _arc_angle(c0, c2)
    c = _arc_angle(c0, c1)
    s = 0.5 * (a + b + c)
    # L'Huilier's formula is numerically stable for small triangles.
    tan_term = (
        math.tan(0.5 * s)
        * math.tan(0.5 * (s - a))
        * math.tan(0.5 * (s - b))
        * math.tan(0.5 * (s - c))
    )
    tan_term = max(0.0, tan_term)
    return 4.0 * math.atan(math.sqrt(tan_term))


def _arc_angle(a: Sequence[float], b: Sequence[float]) -> float:
    """Angle between two unit vectors, in radians."""
    d = max(-1.0, min(1.0, dot(a, b)))
    return math.acos(d)


def bounding_cap_of_points(points: Iterable[SkyPoint]) -> Tuple[SkyPoint, float]:
    """Return a (center, radius_deg) cap covering all *points*.

    This is not the minimal enclosing cap — it centres the cap on the
    normalised mean direction, which is what SkyQuery uses when turning a
    list of cross-match objects into a coarse spatial bounding box.
    """
    pts = list(points)
    if not pts:
        raise ValueError("cannot bound an empty set of points")
    sx = sy = sz = 0.0
    for p in pts:
        x, y, z = p.to_vector()
        sx += x
        sy += y
        sz += z
    try:
        center_vec = normalize((sx, sy, sz))
    except ValueError:
        # Antipodal cancellation: arbitrarily centre on the first point.
        center_vec = pts[0].to_vector()
    ra, dec = radec_from_vector(center_vec)
    center = SkyPoint(ra, dec)
    radius = max(center.separation(p) for p in pts)
    return center, radius
