"""Range arithmetic on the HTM space-filling curve.

Because the HTM numbering preserves spatial locality, a spatial region maps
to a small set of contiguous ID intervals ("ranges") at the leaf level.
SkyQuery attaches such a range to every cross-match object as its bounding
box; LifeRaft's pre-processor intersects those ranges with the bucket
boundaries to build workload queues.  This module provides the range type,
a set-of-ranges container with union/intersection, and the cover
computation that turns a cone on the sky into ranges.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.htm import ids as htm_ids
from repro.htm.geometry import SkyPoint, angular_separation, radec_from_vector
from repro.htm.mesh import HTMMesh, Trixel


@dataclass(frozen=True, order=True)
class HTMRange:
    """An inclusive interval ``[low, high]`` of HTM IDs at a single level."""

    low: int
    high: int

    def __post_init__(self) -> None:
        if self.low > self.high:
            raise ValueError(f"empty HTM range [{self.low}, {self.high}]")

    def __len__(self) -> int:
        return self.high - self.low + 1

    def __contains__(self, htm_id: int) -> bool:
        return self.low <= htm_id <= self.high

    def overlaps(self, other: "HTMRange") -> bool:
        """Return ``True`` when the two ranges share at least one ID."""
        return self.low <= other.high and other.low <= self.high

    def intersect(self, other: "HTMRange") -> Optional["HTMRange"]:
        """Return the overlap of the two ranges, or ``None`` when disjoint."""
        low = max(self.low, other.low)
        high = min(self.high, other.high)
        if low > high:
            return None
        return HTMRange(low, high)

    def union_if_adjacent(self, other: "HTMRange") -> Optional["HTMRange"]:
        """Merge with *other* when the ranges overlap or touch."""
        if self.low > other.high + 1 or other.low > self.high + 1:
            return None
        return HTMRange(min(self.low, other.low), max(self.high, other.high))


class HTMRangeSet:
    """A normalised (sorted, disjoint, non-adjacent) set of HTM ranges.

    This is the "list of HTM ID values serving as a bounding box" that each
    cross-match object carries in the paper (§3.1), and the representation
    of a bucket's extent on the curve.
    """

    __slots__ = ("_ranges",)

    def __init__(self, ranges: Iterable[HTMRange] = ()) -> None:
        self._ranges: List[HTMRange] = _normalise(ranges)

    @classmethod
    def from_pairs(cls, pairs: Iterable[Tuple[int, int]]) -> "HTMRangeSet":
        """Build a range set from ``(low, high)`` integer pairs."""
        return cls(HTMRange(low, high) for low, high in pairs)

    @property
    def ranges(self) -> Tuple[HTMRange, ...]:
        """The normalised ranges, in increasing curve order."""
        return tuple(self._ranges)

    def __iter__(self) -> Iterator[HTMRange]:
        return iter(self._ranges)

    def __len__(self) -> int:
        return len(self._ranges)

    def __bool__(self) -> bool:
        return bool(self._ranges)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, HTMRangeSet):
            return NotImplemented
        return self._ranges == other._ranges

    def __repr__(self) -> str:
        inner = ", ".join(f"[{r.low}, {r.high}]" for r in self._ranges)
        return f"HTMRangeSet({inner})"

    def id_count(self) -> int:
        """Total number of leaf IDs covered."""
        return sum(len(r) for r in self._ranges)

    def contains_id(self, htm_id: int) -> bool:
        """Binary-search membership test for a single ID."""
        lo, hi = 0, len(self._ranges) - 1
        while lo <= hi:
            mid = (lo + hi) // 2
            r = self._ranges[mid]
            if htm_id < r.low:
                hi = mid - 1
            elif htm_id > r.high:
                lo = mid + 1
            else:
                return True
        return False

    def union(self, other: "HTMRangeSet") -> "HTMRangeSet":
        """Set union of the two covers."""
        return HTMRangeSet(list(self._ranges) + list(other._ranges))

    def intersection(self, other: "HTMRangeSet") -> "HTMRangeSet":
        """Set intersection of the two covers (merge-scan over sorted ranges)."""
        result: List[HTMRange] = []
        i = j = 0
        a, b = self._ranges, other._ranges
        while i < len(a) and j < len(b):
            overlap = a[i].intersect(b[j])
            if overlap is not None:
                result.append(overlap)
            if a[i].high < b[j].high:
                i += 1
            else:
                j += 1
        return HTMRangeSet(result)

    def overlaps(self, other: "HTMRangeSet") -> bool:
        """Return ``True`` when the two covers share at least one ID."""
        i = j = 0
        a, b = self._ranges, other._ranges
        while i < len(a) and j < len(b):
            if a[i].overlaps(b[j]):
                return True
            if a[i].high < b[j].high:
                i += 1
            else:
                j += 1
        return False

    def clipped_to(self, bound: HTMRange) -> "HTMRangeSet":
        """Return the part of this cover falling inside *bound*."""
        clipped = []
        for r in self._ranges:
            overlap = r.intersect(bound)
            if overlap is not None:
                clipped.append(overlap)
        return HTMRangeSet(clipped)


def _normalise(ranges: Iterable[HTMRange]) -> List[HTMRange]:
    """Sort and merge overlapping/adjacent ranges."""
    ordered = sorted(ranges, key=lambda r: (r.low, r.high))
    merged: List[HTMRange] = []
    for r in ordered:
        if merged:
            joined = merged[-1].union_if_adjacent(r)
            if joined is not None:
                merged[-1] = joined
                continue
        merged.append(r)
    return merged


def range_for_trixel(htm_id: int, leaf_level: int = htm_ids.SKYQUERY_LEVEL) -> HTMRange:
    """Leaf-level ID range spanned by trixel *htm_id*."""
    low, high = htm_ids.id_range_at_level(htm_id, leaf_level)
    return HTMRange(low, high)


def cone_cover(
    center: SkyPoint,
    radius_deg: float,
    cover_level: int = 7,
    leaf_level: int = htm_ids.SKYQUERY_LEVEL,
    mesh: Optional[HTMMesh] = None,
) -> HTMRangeSet:
    """Compute a conservative HTM cover of a cone (circular sky region).

    The cover descends the mesh from the root faces.  A trixel is

    * **rejected** when its circumscribed cone is disjoint from the query
      cone (the angular separation of the two axes exceeds the sum of the
      radii),
    * **fully accepted** when its circumscribed cone lies inside the query
      cone, and
    * **recursed into** otherwise, down to *cover_level*, where the
      remaining candidates are accepted conservatively (the coarse filter of
      §3.1 is allowed to over-approximate; the refine step removes false
      positives).

    Returns the cover as leaf-level ranges so it can be intersected directly
    with bucket boundaries.
    """
    if radius_deg < 0:
        raise ValueError("radius must be non-negative")
    if cover_level > leaf_level:
        raise ValueError("cover_level cannot exceed leaf_level")
    mesh = mesh or HTMMesh()
    accepted: List[HTMRange] = []
    stack: List[Trixel] = list(mesh.root_trixels())
    while stack:
        trixel = stack.pop()
        axis, circum_radius = trixel.circumcircle()
        axis_ra, axis_dec = radec_from_vector(axis)
        separation = angular_separation(center.ra, center.dec, axis_ra, axis_dec)
        if separation > radius_deg + circum_radius:
            continue  # disjoint
        if separation + circum_radius <= radius_deg or trixel.level >= cover_level:
            accepted.append(range_for_trixel(trixel.htm_id, leaf_level))
            continue
        stack.extend(trixel.children())
    return HTMRangeSet(accepted)


def point_range(
    center: SkyPoint,
    radius_deg: float,
    leaf_level: int = htm_ids.SKYQUERY_LEVEL,
    mesh: Optional[HTMMesh] = None,
    cover_level: int = 10,
) -> HTMRangeSet:
    """Cover for a single cross-match object's error circle.

    This is the per-object "range of HTM ID values, which serve as a
    bounding box covering all potential regions for cross matching"
    described in §3.1 of the paper.  Error circles are arcsecond-scale, so a
    deeper cover level is used than for query-region cones.
    """
    return cone_cover(center, radius_deg, cover_level, leaf_level, mesh)


def bucket_boundaries(
    leaf_level: int, bucket_count: int
) -> List[HTMRange]:
    """Split the full HTM curve at *leaf_level* into *bucket_count* equal ranges.

    This is the idealised equal-width split used when object positions are
    uniform; the storage partitioner offers an equal-*population* split as
    well (the paper's buckets contain equal numbers of objects).
    """
    if bucket_count <= 0:
        raise ValueError("bucket_count must be positive")
    start = 8 << (2 * leaf_level)
    stop = 16 << (2 * leaf_level)
    total = stop - start
    if bucket_count > total:
        raise ValueError("more buckets than leaf trixels")
    boundaries: List[HTMRange] = []
    for i in range(bucket_count):
        low = start + (total * i) // bucket_count
        high = start + (total * (i + 1)) // bucket_count - 1
        boundaries.append(HTMRange(low, high))
    return boundaries


def ranges_to_pairs(ranges: Sequence[HTMRange]) -> List[Tuple[int, int]]:
    """Convert ranges to plain integer pairs (useful for serialisation)."""
    return [(r.low, r.high) for r in ranges]
