"""Encoding and decoding of HTM identifiers.

An HTM ID names one trixel of the mesh.  The encoding is the standard one
used by the SDSS science archive [Kunszt et al., ADASS 2000]:

* the eight root faces are numbered 8–15 (``S0``–``S3`` are 8–11 and
  ``N0``–``N3`` are 12–15), i.e. a leading ``1`` bit followed by three face
  bits;
* each level of subdivision appends two bits naming the child (0–3).

A level-``L`` ID therefore occupies ``4 + 2·L`` bits; the level-14 IDs that
SkyQuery assigns to every observation fit in 32 bits, which is the form
LifeRaft stores in the fact table and uses to order buckets.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

#: The level at which SkyQuery assigns HTM IDs to observations (paper §3.1).
SKYQUERY_LEVEL = 14

_FACE_NAMES = ("S0", "S1", "S2", "S3", "N0", "N1", "N2", "N3")
_FACE_IDS = {name: 8 + index for index, name in enumerate(_FACE_NAMES)}


def is_valid_htm_id(htm_id: int) -> bool:
    """Return ``True`` when *htm_id* is a syntactically valid HTM ID."""
    if htm_id < 8:
        return False
    # A valid ID has an even number of bits above the leading "1xxx" face
    # prefix, i.e. bit_length is 4 + 2k for some k >= 0.
    return (htm_id.bit_length() - 4) % 2 == 0


def htm_level(htm_id: int) -> int:
    """Return the subdivision level encoded in *htm_id* (0 for a root face)."""
    if not is_valid_htm_id(htm_id):
        raise ValueError(f"{htm_id} is not a valid HTM ID")
    return (htm_id.bit_length() - 4) // 2


def htm_name_to_id(name: str) -> int:
    """Convert a textual HTM name such as ``"N012"`` into its integer ID."""
    if len(name) < 2 or name[:2] not in _FACE_IDS:
        raise ValueError(f"{name!r} does not start with a valid face name")
    htm_id = _FACE_IDS[name[:2]]
    for digit in name[2:]:
        if digit not in "0123":
            raise ValueError(f"invalid child digit {digit!r} in {name!r}")
        htm_id = (htm_id << 2) | int(digit)
    return htm_id


def htm_id_to_name(htm_id: int) -> str:
    """Convert an integer HTM ID back into its textual name."""
    level = htm_level(htm_id)
    digits: List[str] = []
    value = htm_id
    for _ in range(level):
        digits.append(str(value & 0b11))
        value >>= 2
    face = _FACE_NAMES[value - 8]
    return face + "".join(reversed(digits))


def parent_id(htm_id: int) -> int:
    """Return the ID of the parent trixel.

    Raises ``ValueError`` for a root face, which has no parent.
    """
    if htm_level(htm_id) == 0:
        raise ValueError(f"root face {htm_id} has no parent")
    return htm_id >> 2


def child_ids(htm_id: int) -> Tuple[int, int, int, int]:
    """Return the IDs of the four children of *htm_id*, in child order."""
    if not is_valid_htm_id(htm_id):
        raise ValueError(f"{htm_id} is not a valid HTM ID")
    base = htm_id << 2
    return (base, base + 1, base + 2, base + 3)


def ancestor_at_level(htm_id: int, level: int) -> int:
    """Return the ancestor of *htm_id* at the (shallower) *level*."""
    own_level = htm_level(htm_id)
    if level > own_level:
        raise ValueError(f"level {level} is deeper than the ID's level {own_level}")
    return htm_id >> (2 * (own_level - level))


def id_range_at_level(htm_id: int, level: int) -> Tuple[int, int]:
    """Return the inclusive range of descendant IDs of *htm_id* at *level*.

    Because children extend their parent's bit pattern, all descendants of a
    trixel occupy one contiguous interval of IDs at any deeper level — this
    is what makes the HTM numbering a space-filling curve and lets LifeRaft
    express buckets as (start, end) HTM ID pairs.
    """
    own_level = htm_level(htm_id)
    if level < own_level:
        raise ValueError(f"level {level} is shallower than the ID's level {own_level}")
    shift = 2 * (level - own_level)
    low = htm_id << shift
    high = ((htm_id + 1) << shift) - 1
    return low, high


def root_face_ids() -> Tuple[int, ...]:
    """Return the IDs of the eight root faces (8 through 15)."""
    return tuple(range(8, 16))


def iter_ids_at_level(level: int) -> Iterator[int]:
    """Iterate over every HTM ID at *level*, in curve (numeric) order."""
    if level < 0:
        raise ValueError("level must be non-negative")
    start = 8 << (2 * level)
    stop = 16 << (2 * level)
    return iter(range(start, stop))


def count_at_level(level: int) -> int:
    """Number of trixels at *level* (8 · 4^level)."""
    if level < 0:
        raise ValueError("level must be non-negative")
    return 8 * (4**level)
