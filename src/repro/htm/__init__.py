"""Hierarchical Triangular Mesh (HTM) substrate.

The HTM indexes points on the celestial sphere by recursively subdividing
the eight faces of an octahedron into spherical triangles ("trixels").
Each trixel is named by an integer ID whose bit pattern encodes the path
from the root face down to the trixel; sibling trixels therefore have
adjacent IDs and the numbering forms a space-filling curve that preserves
spatial locality.  SkyQuery assigns every observation a level-14 HTM ID;
LifeRaft exploits the curve to partition the sky into equal-sized buckets
that are contiguous in HTM order.

Modules
-------
``geometry``
    Unit-vector math on the sphere: RA/Dec conversion, angular separation,
    triangle containment tests, circular (cone) regions.
``mesh``
    The trixel decomposition itself: computing trixel corners, locating the
    trixel that contains a point, and enumerating trixels at a level.
``ids``
    Encoding and decoding of HTM IDs and conversions between levels.
``curve``
    Range arithmetic on the HTM curve: covers of cone regions, range
    unions/intersections, and mapping ranges onto bucket boundaries.
"""

from repro.htm.geometry import (
    SkyPoint,
    unit_vector,
    radec_from_vector,
    angular_separation,
    cone_contains,
)
from repro.htm.mesh import HTMMesh, Trixel
from repro.htm.ids import (
    htm_level,
    htm_name_to_id,
    htm_id_to_name,
    parent_id,
    child_ids,
    id_range_at_level,
)
from repro.htm.curve import HTMRange, HTMRangeSet, cone_cover

__all__ = [
    "SkyPoint",
    "unit_vector",
    "radec_from_vector",
    "angular_separation",
    "cone_contains",
    "HTMMesh",
    "Trixel",
    "htm_level",
    "htm_name_to_id",
    "htm_id_to_name",
    "parent_id",
    "child_ids",
    "id_range_at_level",
    "HTMRange",
    "HTMRangeSet",
    "cone_cover",
]
