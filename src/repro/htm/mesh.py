"""The Hierarchical Triangular Mesh decomposition of the sphere.

The mesh starts from the eight faces of an octahedron inscribed in the
celestial sphere and recursively splits every spherical triangle into four
children by connecting the midpoints of its edges.  ``HTMMesh`` provides
the two operations LifeRaft needs:

* :meth:`HTMMesh.locate` — assign a sky position the HTM ID of the trixel
  containing it at a given level (this is how observations receive their
  32-bit level-14 IDs), and
* :meth:`HTMMesh.trixel` — recover the spherical triangle for an ID, used
  when computing covers of query regions.

Trixel corner vectors are memoised because the cross-match pre-processor
locates millions of objects against the same shallow prefix of the tree.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Optional, Tuple

from repro.htm import ids as htm_ids
from repro.htm.geometry import (
    SkyPoint,
    Vector,
    midpoint,
    spherical_triangle_area,
    triangle_circumcircle,
    triangle_contains,
    unit_vector,
)

# Octahedron vertices: v0 = north pole, v5 = south pole, v1..v4 on the equator.
_V0: Vector = (0.0, 0.0, 1.0)
_V1: Vector = (1.0, 0.0, 0.0)
_V2: Vector = (0.0, 1.0, 0.0)
_V3: Vector = (-1.0, 0.0, 0.0)
_V4: Vector = (0.0, -1.0, 0.0)
_V5: Vector = (0.0, 0.0, -1.0)

#: Root face corner assignments in the standard HTM order (Kunszt et al.).
_ROOT_FACES: Dict[int, Tuple[Vector, Vector, Vector]] = {
    8: (_V1, _V5, _V2),   # S0
    9: (_V2, _V5, _V3),   # S1
    10: (_V3, _V5, _V4),  # S2
    11: (_V4, _V5, _V1),  # S3
    12: (_V1, _V0, _V4),  # N0
    13: (_V4, _V0, _V3),  # N1
    14: (_V3, _V0, _V2),  # N2
    15: (_V2, _V0, _V1),  # N3
}


@dataclass(frozen=True)
class Trixel:
    """One spherical triangle of the mesh.

    Attributes
    ----------
    htm_id:
        The trixel's HTM ID (encodes its level and path from the root).
    corners:
        The three corner unit vectors, in the orientation used by the
        containment test.
    """

    htm_id: int
    corners: Tuple[Vector, Vector, Vector]

    @property
    def level(self) -> int:
        """Subdivision level of this trixel."""
        return htm_ids.htm_level(self.htm_id)

    @property
    def name(self) -> str:
        """Textual HTM name, e.g. ``"N012"``."""
        return htm_ids.htm_id_to_name(self.htm_id)

    def contains(self, point: SkyPoint) -> bool:
        """Return ``True`` when *point* lies inside this trixel."""
        return triangle_contains(self.corners, point.to_vector())

    def contains_vector(self, v: Vector) -> bool:
        """Return ``True`` when unit vector *v* lies inside this trixel."""
        return triangle_contains(self.corners, v)

    def circumcircle(self) -> Tuple[Vector, float]:
        """Return the (axis, angular radius in degrees) bounding cone."""
        return triangle_circumcircle(self.corners)

    def area_steradians(self) -> float:
        """Solid angle subtended by this trixel."""
        return spherical_triangle_area(self.corners)

    def children(self) -> Tuple["Trixel", "Trixel", "Trixel", "Trixel"]:
        """Return the four child trixels produced by midpoint subdivision."""
        c0, c1, c2 = self.corners
        w0 = midpoint(c1, c2)
        w1 = midpoint(c0, c2)
        w2 = midpoint(c0, c1)
        base = self.htm_id << 2
        return (
            Trixel(base, (c0, w2, w1)),
            Trixel(base + 1, (c1, w0, w2)),
            Trixel(base + 2, (c2, w1, w0)),
            Trixel(base + 3, (w0, w1, w2)),
        )


class HTMMesh:
    """Locator and enumerator for the hierarchical triangular mesh.

    Parameters
    ----------
    cache_levels:
        Trixels at levels up to this depth are memoised after first use.
        Shallow levels are hit constantly while locating points, so caching
        them is a large win; deep levels are cheap to recompute and would
        otherwise exhaust memory (level 14 has 2.1 billion trixels).
    """

    def __init__(self, cache_levels: int = 6) -> None:
        self._cache_levels = cache_levels
        self._trixel_cache: Dict[int, Trixel] = {
            face_id: Trixel(face_id, corners)
            for face_id, corners in _ROOT_FACES.items()
        }

    def root_trixels(self) -> Tuple[Trixel, ...]:
        """Return the eight root trixels (the octahedron faces)."""
        return tuple(self._trixel_cache[face_id] for face_id in htm_ids.root_face_ids())

    def trixel(self, htm_id: int) -> Trixel:
        """Return the :class:`Trixel` for *htm_id*, computing corners on demand."""
        cached = self._trixel_cache.get(htm_id)
        if cached is not None:
            return cached
        parent = self.trixel(htm_ids.parent_id(htm_id))
        child = parent.children()[htm_id & 0b11]
        if child.level <= self._cache_levels:
            self._trixel_cache[htm_id] = child
        return child

    def locate(self, point: SkyPoint, level: int = htm_ids.SKYQUERY_LEVEL) -> int:
        """Return the HTM ID of the trixel at *level* containing *point*.

        Every point belongs to exactly one trixel per level; points that
        fall on shared edges are assigned to the first containing child in
        child order, which keeps the assignment deterministic.
        """
        if level < 0:
            raise ValueError("level must be non-negative")
        v = point.to_vector()
        current: Optional[Trixel] = None
        for root in self.root_trixels():
            if root.contains_vector(v):
                current = root
                break
        if current is None:
            # Numerical corner case exactly on a root edge/vertex: pick the
            # face whose circumcircle axis is closest to the point.
            current = max(
                self.root_trixels(),
                key=lambda t: _axis_alignment(t, v),
            )
        for _ in range(level):
            for child in self._children_of(current):
                if child.contains_vector(v):
                    current = child
                    break
            else:
                # Again a numerical edge case: descend into the closest child.
                current = max(
                    self._children_of(current), key=lambda t: _axis_alignment(t, v)
                )
        return current.htm_id

    def locate_radec(self, ra: float, dec: float, level: int = htm_ids.SKYQUERY_LEVEL) -> int:
        """Convenience wrapper around :meth:`locate` taking degrees directly."""
        return self.locate(SkyPoint(ra, dec), level)

    def trixels_at_level(self, level: int) -> Iterator[Trixel]:
        """Yield every trixel at *level* in HTM-curve order.

        Only sensible for shallow levels (the count grows as ``8 · 4^level``).
        """
        for htm_id in htm_ids.iter_ids_at_level(level):
            yield self.trixel(htm_id)

    def _children_of(self, trixel: Trixel) -> Tuple[Trixel, ...]:
        """Children of *trixel*, going through the cache when possible."""
        if trixel.level < self._cache_levels:
            return tuple(self.trixel(cid) for cid in htm_ids.child_ids(trixel.htm_id))
        return trixel.children()


def _axis_alignment(trixel: Trixel, v: Vector) -> float:
    """Dot product between the trixel's circumcircle axis and *v*."""
    axis, _radius = trixel.circumcircle()
    return axis[0] * v[0] + axis[1] * v[1] + axis[2] * v[2]


def htm_id_for(ra: float, dec: float, level: int = htm_ids.SKYQUERY_LEVEL,
               mesh: Optional[HTMMesh] = None) -> int:
    """Module-level helper: HTM ID of (*ra*, *dec*) at *level*."""
    mesh = mesh or _default_mesh()
    return mesh.locate(SkyPoint(ra, dec), level)


_DEFAULT_MESH: Optional[HTMMesh] = None


def _default_mesh() -> HTMMesh:
    """Lazily constructed process-wide mesh used by the convenience helpers."""
    global _DEFAULT_MESH
    if _DEFAULT_MESH is None:
        _DEFAULT_MESH = HTMMesh()
    return _DEFAULT_MESH


def unit_vector_for(ra: float, dec: float) -> Vector:
    """Re-export of :func:`repro.htm.geometry.unit_vector` for convenience."""
    return unit_vector(ra, dec)
