"""Workload substrate: cross-match queries, traces and arrival processes.

The paper evaluates LifeRaft with a 2,000-query trace of long-running
cross-match queries taken from the SkyQuery web log.  That trace is not
public, so this package generates synthetic traces whose published
statistics are reproduced instead:

* the top ten buckets are reused heavily and touched by ~61 % of queries
  (Figure 5),
* roughly 2 % of the buckets carry ~50 % of the total workload while a long
  tail of buckets sees little work (Figure 6), and
* queries that overlap in data access arrive close together in time, which
  is what makes a small bucket cache effective.

Modules
-------
``query``       the cross-match query/object model shared by all components
``generator``   the synthetic trace generator (skew + temporal locality)
``arrival``     arrival processes used to impose a saturation level
``stats``       trace statistics (drives Figures 5 and 6)
``replay``      replay helpers (``replay_recorded`` re-runs ``.lrtr`` traces)
``trace_io``    the versioned, CRC-checked ``.lrtr`` recorded-trace codec
``scenarios``   named, seeded adversarial scenario builders
"""

from repro.workload.query import CrossMatchObject, CrossMatchQuery, QueryStatus
from repro.workload.generator import TraceConfig, TraceGenerator, QueryTrace
from repro.workload.arrival import (
    PoissonArrivalProcess,
    UniformArrivalProcess,
    BurstyArrivalProcess,
    apply_arrival_times,
)
from repro.workload.stats import TraceStatistics
from repro.workload.trace_io import (
    TRACE_SUFFIX,
    RecordedTrace,
    TraceFormatError,
    read_trace,
    run_digest,
    write_trace,
)
from repro.workload.scenarios import (
    SCENARIOS,
    DiurnalFlashCrowdProcess,
    Scenario,
    build_scenario,
)

__all__ = [
    "CrossMatchObject",
    "CrossMatchQuery",
    "QueryStatus",
    "TraceConfig",
    "TraceGenerator",
    "QueryTrace",
    "PoissonArrivalProcess",
    "UniformArrivalProcess",
    "BurstyArrivalProcess",
    "apply_arrival_times",
    "TraceStatistics",
    "TRACE_SUFFIX",
    "RecordedTrace",
    "TraceFormatError",
    "read_trace",
    "run_digest",
    "write_trace",
    "SCENARIOS",
    "DiurnalFlashCrowdProcess",
    "Scenario",
    "build_scenario",
]
