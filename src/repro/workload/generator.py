"""Synthetic cross-match trace generation.

The generator reproduces the *statistical shape* of the SkyQuery trace used
in the paper rather than its exact queries:

* **Bucket popularity skew** — the focus of each query is drawn from a
  Zipf-like distribution over buckets, so a small fraction of the sky
  (popular survey regions) receives most of the workload.  Figure 6 of the
  paper reports ~2 % of buckets carrying ~50 % of the workload.
* **Temporal locality** — with some probability a query re-uses the focus
  of a recently generated query ("queries that overlap in data access are
  close temporally, which benefits caching", §5.1, Figure 5).
* **Heavy-tailed spans** — cross-match queries range from small regions to
  scans that "navigate the entire sky"; the number of buckets a query
  touches follows a bounded Pareto distribution.

Each generated query carries an aggregated bucket footprint (objects per
bucket).  The per-query object totals land in the tens-to-thousands range,
matching long-running, data-intensive cross-matches.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.workload.query import CrossMatchQuery


@dataclass(frozen=True)
class TraceConfig:
    """Parameters of the synthetic cross-match trace.

    The defaults are scaled for laptop execution: 2,000 queries (as in the
    paper) against 4,096 buckets (the paper's SDSS table has ~20,000).  The
    statistical targets (skew, locality) are independent of the scale.
    """

    query_count: int = 2_000
    bucket_count: int = 4_096
    objects_per_bucket: int = 10_000
    #: Zipf exponent of the bucket-popularity distribution.  Together with
    #: ``temporal_locality`` and ``focus_boost`` the default reproduces the
    #: paper's workload skew: the top ten buckets are touched by ~60 % of
    #: queries (Figure 5) and ~2 % of buckets carry ~50 % of the workload
    #: (Figure 6).
    zipf_exponent: float = 1.5
    #: Probability that a query re-uses the focus bucket of a recent query.
    temporal_locality: float = 0.6
    #: Number of recent queries whose focus can be re-used.
    locality_window: int = 25
    #: Bounded-Pareto span (number of consecutive buckets a query touches).
    min_span: int = 1
    max_span: int = 24
    span_pareto_alpha: float = 1.1
    #: Objects contributed per touched bucket (log-normal).  The paper's
    #: trace consists of *data-intensive* cross-matches whose per-bucket
    #: workloads are large relative to the 3 % hybrid-join break-even of a
    #: 10,000-object bucket, so the default median sits well above it.
    objects_per_query_bucket_median: int = 500
    objects_per_query_bucket_sigma: float = 0.9
    #: Fraction of additional objects concentrated on the focus bucket.
    focus_boost: float = 5.0
    #: Archives joined by each query (2 to 5 in the paper, mostly 3).
    min_archives: int = 2
    max_archives: int = 5
    #: Default arrival rate in queries/second used when the trace is built
    #: with arrival times attached.
    default_saturation_qps: float = 0.25
    seed: int = 8675309

    def __post_init__(self) -> None:
        if self.query_count <= 0 or self.bucket_count <= 0:
            raise ValueError("query_count and bucket_count must be positive")
        if not 0.0 <= self.temporal_locality <= 1.0:
            raise ValueError("temporal_locality must be within [0, 1]")
        if self.min_span < 1 or self.max_span < self.min_span:
            raise ValueError("span bounds must satisfy 1 <= min_span <= max_span")
        if self.max_span > self.bucket_count:
            raise ValueError("max_span cannot exceed bucket_count")
        if self.objects_per_query_bucket_median <= 0:
            raise ValueError("objects_per_query_bucket_median must be positive")
        if self.zipf_exponent <= 0:
            raise ValueError("zipf_exponent must be positive")


@dataclass
class QueryTrace:
    """A generated trace: the queries plus the popularity ground truth."""

    queries: List[CrossMatchQuery]
    config: TraceConfig
    #: Bucket indices ordered from most to least popular (generator's truth).
    popularity_order: Tuple[int, ...]

    def __len__(self) -> int:
        return len(self.queries)

    def __iter__(self):
        return iter(self.queries)

    def __getitem__(self, index: int) -> CrossMatchQuery:
        return self.queries[index]

    def total_objects(self) -> int:
        """Total number of cross-match objects across the trace."""
        return sum(q.object_count for q in self.queries)

    def with_saturation(self, qps: float, seed: Optional[int] = None) -> "QueryTrace":
        """Return a copy of the trace with Poisson arrival times at *qps*."""
        from repro.workload.arrival import PoissonArrivalProcess, apply_arrival_times

        process = PoissonArrivalProcess(qps, seed=seed if seed is not None else self.config.seed)
        return QueryTrace(
            apply_arrival_times(self.queries, process),
            self.config,
            self.popularity_order,
        )


class TraceGenerator:
    """Generates :class:`QueryTrace` instances from a :class:`TraceConfig`."""

    def __init__(self, config: Optional[TraceConfig] = None) -> None:
        self.config = config or TraceConfig()
        self._rng = random.Random(self.config.seed)
        self._popularity = self._build_popularity()

    @property
    def popularity_order(self) -> Tuple[int, ...]:
        """Bucket indices from most to least popular."""
        return self._popularity

    def generate(self, attach_arrivals: bool = True) -> QueryTrace:
        """Generate the full trace.

        When *attach_arrivals* is true, Poisson arrival times at the
        config's default saturation are attached; experiments that sweep
        saturation call :meth:`QueryTrace.with_saturation` afterwards.
        """
        cfg = self.config
        recent_focus: List[int] = []
        queries: List[CrossMatchQuery] = []
        for query_id in range(cfg.query_count):
            focus = self._choose_focus(recent_focus)
            recent_focus.append(focus)
            if len(recent_focus) > cfg.locality_window:
                recent_focus.pop(0)
            footprint = self._build_footprint(focus)
            archives = self._choose_archives()
            queries.append(
                CrossMatchQuery(
                    query_id=query_id,
                    bucket_footprint=footprint,
                    archives=archives,
                )
            )
        trace = QueryTrace(queries, cfg, self._popularity)
        if attach_arrivals:
            trace = trace.with_saturation(cfg.default_saturation_qps)
        return trace

    # ------------------------------------------------------------------ #
    # internal helpers
    # ------------------------------------------------------------------ #

    def _build_popularity(self) -> Tuple[int, ...]:
        """Random permutation of bucket indices defining the popularity ranks."""
        order = list(range(self.config.bucket_count))
        self._rng.shuffle(order)
        return tuple(order)

    def _zipf_rank(self) -> int:
        """Draw a popularity rank from a Zipf distribution (0 = most popular).

        Uses the rejection-free inversion approximation for bounded Zipf,
        which is accurate enough for workload generation.
        """
        cfg = self.config
        n = cfg.bucket_count
        s = cfg.zipf_exponent
        u = self._rng.random()
        if abs(s - 1.0) < 1e-9:
            # Harmonic case: invert the continuous approximation ln(x)/ln(n).
            rank = int(math.exp(u * math.log(n)))
        else:
            one_minus_s = 1.0 - s
            # Invert the CDF of the continuous density x^-s on [1, n].
            rank = int((u * (n**one_minus_s - 1.0) + 1.0) ** (1.0 / one_minus_s))
        return min(n - 1, max(0, rank - 1))

    def _choose_focus(self, recent_focus: Sequence[int]) -> int:
        cfg = self.config
        if recent_focus and self._rng.random() < cfg.temporal_locality:
            return self._rng.choice(list(recent_focus))
        return self._popularity[self._zipf_rank()]

    def _draw_span(self) -> int:
        """Bounded Pareto span (number of buckets touched)."""
        cfg = self.config
        low, high, alpha = cfg.min_span, cfg.max_span, cfg.span_pareto_alpha
        u = self._rng.random()
        # Inverse CDF of the bounded Pareto distribution.
        numerator = u * (high**alpha - low**alpha) + low**alpha
        value = (high**alpha * low**alpha / (high**alpha - u * (high**alpha - low**alpha))) ** (
            1.0 / alpha
        )
        del numerator  # kept for clarity of the standard formula derivation
        return int(min(high, max(low, round(value))))

    def _draw_bucket_objects(self) -> int:
        cfg = self.config
        value = self._rng.lognormvariate(
            math.log(cfg.objects_per_query_bucket_median), cfg.objects_per_query_bucket_sigma
        )
        return max(1, int(round(value)))

    def _build_footprint(self, focus: int) -> Dict[int, int]:
        cfg = self.config
        span = self._draw_span()
        start = focus - self._rng.randint(0, span - 1)
        start = max(0, min(cfg.bucket_count - span, start))
        footprint: Dict[int, int] = {}
        for bucket in range(start, start + span):
            count = self._draw_bucket_objects()
            if bucket == focus:
                count = int(round(count * cfg.focus_boost))
            footprint[bucket] = max(1, count)
        return footprint

    def _choose_archives(self) -> Tuple[str, ...]:
        cfg = self.config
        pool = ["twomass", "usnob", "first", "rosat", "galex"]
        count = self._rng.randint(cfg.min_archives, cfg.max_archives) - 1
        # The evaluated site (sdss) is always part of the plan; the majority
        # of cross-matches involve twomass and usnob (§5.1), so those two
        # lead the pool.
        chosen = pool[: max(1, count)]
        return tuple(chosen[: count]) + ("sdss",) if count else ("twomass", "sdss")
