"""Scenario SLA envelopes: committed expected-outcome fixtures per scenario.

A ``.lrtr`` trace pins a scenario's raw virtual-clock digest; an
**envelope** pins what the *serving* layer makes of it — admission rates,
per-deadline-class SLA attainment and completion counts of one canonical
serving replay.  Every :data:`~repro.workload.scenarios.SCENARIOS` catalog
entry carries one committed JSON fixture under
``tests/fixtures/envelopes/``, and CI re-derives each envelope and fails
on any drift.  The serving run is a pure function of
``(scenario, query_count, bucket_count, seed)`` — admission decisions,
deadline-class draws and the virtual clock are all deterministic — so the
comparison is exact equality, not a tolerance band.

Ratcheting is deliberate: when a code change legitimately shifts an
envelope (say, an admission-control fix sheds fewer queries), re-record
the fixtures with ``liferaft envelopes --record`` and commit the diff —
the review then shows exactly which SLA numbers moved and by how much.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional

from repro.workload.scenarios import SCENARIOS, build_scenario

__all__ = [
    "DEFAULT_ENVELOPE_DIR",
    "ENVELOPE_VERSION",
    "check_envelope",
    "compute_envelope",
    "envelope_path",
    "read_envelope",
    "write_envelope",
]

#: Where the committed fixtures live, relative to the repo root.
DEFAULT_ENVELOPE_DIR = "tests/fixtures/envelopes"

ENVELOPE_VERSION = 1

#: The canonical serving gate every envelope is derived under: defer-based
#: backpressure with a bounded intake, so admission control actually sheds
#: and defers under the adversarial arrival patterns.
_ENVELOPE_INTAKE_BOUND = 48


def _serving_config(seed: int):
    from repro.service.frontend import ServiceConfig

    return ServiceConfig(admission="defer", intake_bound=_ENVELOPE_INTAKE_BOUND, seed=seed)


def compute_envelope(
    name: str,
    query_count: Optional[int] = None,
    bucket_count: Optional[int] = None,
    seed: Optional[int] = None,
) -> dict:
    """Run the named scenario's canonical serving replay and summarise it.

    The returned dict is the envelope fixture: plain JSON-serialisable
    admission/completion/SLA tallies plus the run's ``result_digest``.
    """
    # Imported lazily: ``sim`` imports the workload package at module level.
    from repro.sim.runspec import RunSpec
    from repro.sim.simulator import SimulationConfig, Simulator

    if name not in SCENARIOS:
        raise KeyError(f"unknown scenario {name!r}; available: {sorted(SCENARIOS)}")
    scenario = SCENARIOS[name]
    resolved_queries = (
        query_count if query_count is not None else scenario.default_query_count
    )
    resolved_buckets = (
        bucket_count if bucket_count is not None else scenario.default_bucket_count
    )
    resolved_seed = seed if seed is not None else scenario.default_seed
    queries = build_scenario(name, resolved_queries, resolved_buckets, resolved_seed)
    simulator = Simulator(SimulationConfig(bucket_count=resolved_buckets))
    result = simulator.execute(
        queries,
        RunSpec(label=name, service=_serving_config(resolved_seed)),
    )
    serving = result.serving
    assert serving is not None  # the spec configured a front-end
    sla: Dict[str, Dict[str, int]] = {
        class_name: {
            "admitted": admitted,
            "rejected": rejected,
            "completed": completed,
            "first_result_hit_rate": round(first_rate, 6),
            "completion_hit_rate": round(completion_rate, 6),
        }
        for class_name, admitted, rejected, completed, first_rate, completion_rate in (
            serving.deadline_rows
        )
    }
    return {
        "version": ENVELOPE_VERSION,
        "scenario": name,
        "query_count": resolved_queries,
        "bucket_count": resolved_buckets,
        "seed": resolved_seed,
        "admission": {
            "offered": serving.offered,
            "admitted": serving.admitted,
            "rejected": serving.rejected,
            "deferrals": serving.deferrals,
            "rejection_rate": round(serving.rejection_rate, 6),
        },
        "completion": {
            "completed": serving.completed,
            "chunks": serving.chunks,
        },
        "sla": sla,
        "result_digest": result.result_digest,
    }


def envelope_path(name: str, directory: str = DEFAULT_ENVELOPE_DIR) -> str:
    """The fixture file of the named scenario under *directory*."""
    return os.path.join(directory, f"{name}.json")


def write_envelope(envelope: dict, directory: str = DEFAULT_ENVELOPE_DIR) -> str:
    """Commit an envelope fixture (stable key order, trailing newline)."""
    os.makedirs(directory, exist_ok=True)
    path = envelope_path(envelope["scenario"], directory)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(envelope, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def read_envelope(name: str, directory: str = DEFAULT_ENVELOPE_DIR) -> dict:
    """Load the committed fixture of the named scenario."""
    path = envelope_path(name, directory)
    with open(path, "r", encoding="utf-8") as handle:
        envelope = json.load(handle)
    version = envelope.get("version")
    if version != ENVELOPE_VERSION:
        raise ValueError(
            f"envelope {path!r} has version {version!r}, expected {ENVELOPE_VERSION}"
        )
    return envelope


def check_envelope(name: str, directory: str = DEFAULT_ENVELOPE_DIR) -> List[str]:
    """Re-derive the named scenario's envelope and diff it against the fixture.

    Returns a list of human-readable mismatch lines — empty means the
    committed envelope still holds exactly.
    """
    expected = read_envelope(name, directory)
    actual = compute_envelope(
        name,
        query_count=expected["query_count"],
        bucket_count=expected["bucket_count"],
        seed=expected["seed"],
    )
    mismatches: List[str] = []

    def compare(path: str, want, got) -> None:
        if isinstance(want, dict) and isinstance(got, dict):
            for key in sorted(set(want) | set(got)):
                compare(f"{path}.{key}" if path else key, want.get(key), got.get(key))
        elif want != got:
            mismatches.append(f"{name}: {path}: expected {want!r}, got {got!r}")

    compare("", expected, actual)
    return mismatches
