"""Helpers to replay a trace — recorded or in-memory — through the simulator.

The paper replays "for each cross-match query, only the work that is
performed at SDSS" (§5.1): queries are pre-processed offline and their
per-site object lists submitted according to the trace's arrival times.
:func:`replay_recorded` is the canonical replay loop: it re-runs a
``.lrtr`` trace through :meth:`~repro.sim.simulator.Simulator.execute`
under the recorded run description (or caller overrides) and reports
whether the result digest reproduced bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Tuple

from repro.workload.query import CrossMatchQuery
from repro.workload.trace_io import RecordedTrace, read_trace


def in_arrival_order(queries: Iterable[CrossMatchQuery]) -> List[CrossMatchQuery]:
    """Return the queries sorted by arrival time (ties broken by query id)."""
    return sorted(queries, key=lambda q: (q.arrival_time_s, q.query_id))


def arrival_schedule(
    queries: Iterable[CrossMatchQuery],
) -> Iterator[Tuple[float, CrossMatchQuery]]:
    """Yield ``(arrival_time, query)`` pairs in arrival order."""
    for query in in_arrival_order(queries):
        yield query.arrival_time_s, query


@dataclass(frozen=True)
class ReplayOutcome:
    """Result of replaying one recorded trace.

    ``digest_checked`` is ``False`` when the replay ran under a different
    execution shape than the recording (worker count or stealing
    changed), where only completion-set equality — not a bit-identical
    timeline — is guaranteed.
    """

    trace: RecordedTrace
    result: object  # SimulationResult (typed loosely: workload must not import sim)
    expected_digest: str
    digest_checked: bool

    @property
    def digest_matches(self) -> bool:
        """Whether the replay reproduced the recorded digest bit-for-bit."""
        return bool(
            self.expected_digest
            and getattr(self.result, "result_digest", "") == self.expected_digest
        )


def replay_recorded(
    path: str,
    workers: Optional[int] = None,
    backend: Optional[str] = None,
    store_path: Optional[str] = None,
    enable_stealing: Optional[bool] = None,
) -> ReplayOutcome:
    """Re-run a ``.lrtr`` trace through ``Simulator.execute``.

    The run description (policy, alpha, worker count, stealing) comes
    from the trace's metadata; *workers*, *backend* and
    *enable_stealing* override it.  The site is rebuilt from the
    recorded bucket count, or from *store_path* when the replay should
    read a real on-disk store.

    Digest verification is meaningful only when the execution shape
    matches the recording: each shard is a pure function of its admitted
    arrival schedule, so the timeline is bit-identical across backends
    at the same worker count (the scenario-parity suite pins this), but
    a different worker count or stealing toggle legitimately changes
    per-query finish times.  In that case ``digest_checked`` is False.
    """
    # Imported lazily: ``sim`` imports ``workload.trace_io`` at module
    # level, so a module-level import here would be circular.
    from repro.sim.runspec import RunSpec
    from repro.sim.simulator import SimulationConfig, Simulator

    trace = read_trace(path)
    meta = trace.meta
    recorded_workers = int(meta.get("workers", 1))
    recorded_stealing = bool(meta.get("enable_stealing", True))
    run_workers = recorded_workers if workers is None else workers
    run_stealing = recorded_stealing if enable_stealing is None else enable_stealing
    if store_path is not None:
        simulator = Simulator.from_store(store_path)
    else:
        simulator = Simulator(SimulationConfig(bucket_count=int(meta.get("bucket_count", 2048))))
    spec = RunSpec(
        policy=str(meta.get("policy", "liferaft")).partition("(")[0] or "liferaft",
        alpha=float(meta.get("alpha") or 0.25),
        workers=run_workers,
        backend=backend,
        enable_stealing=run_stealing,
        saturation_qps=meta.get("saturation_qps"),
        label=str(meta.get("label", "")),
    )
    result = simulator.execute(trace.queries, spec)
    digest_checked = (
        bool(trace.expected_digest)
        and run_workers == recorded_workers
        and (run_workers == 1 or run_stealing == recorded_stealing)
    )
    return ReplayOutcome(
        trace=trace,
        result=result,
        expected_digest=trace.expected_digest,
        digest_checked=digest_checked,
    )
