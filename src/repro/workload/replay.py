"""Helpers to stream a trace into an engine or simulator.

The paper replays "for each cross-match query, only the work that is
performed at SDSS" (§5.1): queries are pre-processed offline and their
per-site object lists submitted according to the trace's arrival times.
These helpers provide the same replay loop for both the online engine
(examples) and the discrete-event simulator (experiments).
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Sequence, Tuple

from repro.workload.query import CrossMatchQuery


def in_arrival_order(queries: Iterable[CrossMatchQuery]) -> List[CrossMatchQuery]:
    """Return the queries sorted by arrival time (ties broken by query id)."""
    return sorted(queries, key=lambda q: (q.arrival_time_s, q.query_id))


def arrival_schedule(
    queries: Iterable[CrossMatchQuery],
) -> Iterator[Tuple[float, CrossMatchQuery]]:
    """Yield ``(arrival_time, query)`` pairs in arrival order."""
    for query in in_arrival_order(queries):
        yield query.arrival_time_s, query


def replay_into_engine(engine, queries: Sequence[CrossMatchQuery], drain: bool = True):
    """Submit every query to an online engine and optionally drain it.

    The engine is driven in "as fast as possible" mode: queries are
    submitted at their arrival timestamps (the engine uses them for aging)
    and the engine is stepped until no work remains.  Returns the engine's
    completion report.
    """
    for query in in_arrival_order(queries):
        engine.submit(query, now_ms=query.arrival_time_s * 1000.0)
    if drain:
        engine.run_until_idle()
    return engine.report()
