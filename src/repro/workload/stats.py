"""Trace statistics: the workload characterisation of Figures 5 and 6.

The paper characterises the SkyQuery trace before presenting scheduling
results: Figure 5 plots, for each query in arrival order, which of the ten
most-reused buckets it touches (showing temporal locality), and Figure 6
plots the cumulative fraction of the total workload captured by buckets
ranked from largest to smallest workload (showing that ~2 % of buckets
carry ~50 % of the work).  :class:`TraceStatistics` computes both views
plus the headline scalar statistics quoted in the text.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, List, Mapping, Sequence, Tuple

from repro.workload.query import CrossMatchQuery


def _footprint_of(query: CrossMatchQuery, layout=None) -> Mapping[int, int]:
    """Per-bucket object counts of a query.

    Abstract queries carry the footprint directly; explicit-object queries
    need a partition layout to map object HTM ranges onto buckets.
    """
    if query.bucket_footprint is not None:
        return query.bucket_footprint
    if layout is None:
        raise ValueError(
            f"query {query.query_id} has explicit objects; a PartitionLayout is "
            "required to compute its bucket footprint"
        )
    footprint: Dict[int, int] = {}
    for obj in query.objects:
        for bucket in layout.buckets_for_range(obj.htm_range):
            footprint[bucket.index] = footprint.get(bucket.index, 0) + 1
    return footprint


class TraceStatistics:
    """Aggregate statistics of a cross-match trace."""

    def __init__(self, queries: Sequence[CrossMatchQuery], layout=None) -> None:
        self.queries = list(queries)
        self._footprints: List[Mapping[int, int]] = [
            _footprint_of(q, layout) for q in self.queries
        ]
        self._bucket_workload: Counter = Counter()
        self._bucket_reuse: Counter = Counter()
        for footprint in self._footprints:
            for bucket, count in footprint.items():
                self._bucket_workload[bucket] += count
                self._bucket_reuse[bucket] += 1

    # ------------------------------------------------------------------ #
    # scalar summaries
    # ------------------------------------------------------------------ #

    @property
    def query_count(self) -> int:
        """Number of queries in the trace."""
        return len(self.queries)

    @property
    def touched_bucket_count(self) -> int:
        """Number of distinct buckets with any workload."""
        return len(self._bucket_workload)

    @property
    def total_objects(self) -> int:
        """Total number of cross-match objects (the total workload size)."""
        return sum(self._bucket_workload.values())

    def bucket_workload(self) -> Dict[int, int]:
        """Total objects routed to each bucket."""
        return dict(self._bucket_workload)

    def bucket_reuse(self) -> Dict[int, int]:
        """Number of distinct queries touching each bucket."""
        return dict(self._bucket_reuse)

    def top_buckets_by_reuse(self, n: int = 10) -> List[Tuple[int, int]]:
        """The *n* buckets touched by the most queries, as (bucket, query count)."""
        return self._bucket_reuse.most_common(n)

    def top_buckets_by_workload(self, n: int = 10) -> List[Tuple[int, int]]:
        """The *n* buckets with the largest total workload."""
        return self._bucket_workload.most_common(n)

    def fraction_of_queries_touching(self, buckets: Iterable[int]) -> float:
        """Fraction of queries whose footprint intersects *buckets*.

        The paper reports ~61 % for the top ten buckets by reuse.
        """
        bucket_set = set(buckets)
        if not self.queries:
            return 0.0
        touching = sum(
            1 for footprint in self._footprints if bucket_set.intersection(footprint)
        )
        return touching / len(self.queries)

    def fraction_of_workload_in_top_fraction(self, bucket_fraction: float) -> float:
        """Fraction of the workload carried by the top *bucket_fraction* of buckets.

        ``bucket_fraction`` is taken relative to the number of *touched*
        buckets.  The paper reports ~50 % of the workload in ~2 % of buckets.
        """
        if not 0.0 < bucket_fraction <= 1.0:
            raise ValueError("bucket_fraction must be in (0, 1]")
        total = self.total_objects
        if total == 0:
            return 0.0
        ranked = [count for _bucket, count in self._bucket_workload.most_common()]
        top_k = max(1, int(round(bucket_fraction * len(ranked))))
        return sum(ranked[:top_k]) / total

    # ------------------------------------------------------------------ #
    # figure series
    # ------------------------------------------------------------------ #

    def reuse_timeline(self, top_n: int = 10) -> List[Tuple[int, int]]:
        """Figure 5 series: (query number, bucket rank) hits on the top-*n* buckets.

        Bucket rank 1 is the most reused bucket.  A query contributes one
        point per top bucket it touches, exactly like the scatter in the
        paper.
        """
        top = [bucket for bucket, _count in self.top_buckets_by_reuse(top_n)]
        rank_of = {bucket: rank + 1 for rank, bucket in enumerate(top)}
        points: List[Tuple[int, int]] = []
        for query_number, footprint in enumerate(self._footprints, start=1):
            for bucket in footprint:
                rank = rank_of.get(bucket)
                if rank is not None:
                    points.append((query_number, rank))
        return points

    def cumulative_workload_curve(self) -> List[Tuple[int, float]]:
        """Figure 6 series: cumulative workload fraction by bucket rank.

        Buckets are ranked from largest to smallest workload; the curve
        gives, for rank *k*, the percentage of the total workload captured
        by the top *k* buckets.
        """
        total = self.total_objects
        curve: List[Tuple[int, float]] = []
        cumulative = 0
        for rank, (_bucket, count) in enumerate(self._bucket_workload.most_common(), start=1):
            cumulative += count
            curve.append((rank, 100.0 * cumulative / total))
        return curve

    def buckets_for_workload_fraction(self, workload_fraction: float) -> int:
        """Smallest number of buckets capturing *workload_fraction* of the work."""
        if not 0.0 < workload_fraction <= 1.0:
            raise ValueError("workload_fraction must be in (0, 1]")
        target = workload_fraction * self.total_objects
        cumulative = 0
        for rank, (_bucket, count) in enumerate(self._bucket_workload.most_common(), start=1):
            cumulative += count
            if cumulative >= target:
                return rank
        return self.touched_bucket_count

    def describe(self) -> Dict[str, float]:
        """Headline numbers used by the experiment reports."""
        top10 = [b for b, _ in self.top_buckets_by_reuse(10)]
        return {
            "queries": float(self.query_count),
            "touched_buckets": float(self.touched_bucket_count),
            "total_objects": float(self.total_objects),
            "fraction_queries_touching_top10": self.fraction_of_queries_touching(top10),
            "workload_fraction_in_top_2pct": self.fraction_of_workload_in_top_fraction(0.02),
        }
