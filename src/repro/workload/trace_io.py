"""The ``.lrtr`` recorded-trace codec: versioned, CRC-checked trace files.

The paper's evaluation replays a recorded SDSS query trace (§5.1); this
module gives the reproduction the same capability.  A ``.lrtr`` file
captures one arrival stream — arrival times, query payloads (bucket
footprints or explicit objects), client ids and deadline classes — plus a
JSON metadata block describing the run that recorded it (policy, alpha,
worker topology, bucket count, scenario name) and the run's **result
digest**: a SHA-256 over the per-query completion timeline and every
virtual-clock parity field.  Replaying the file through any backend and
comparing digests turns "the run reproduced bit-for-bit" into a one-line
regression check (``liferaft replay``).

Layout (all little-endian, like the ``.lrbs``/``.lrcp`` codecs)::

    header   <4sHHIQQI>  magic "LRTR", version, flags, query count,
                         meta length, body length, CRC-32 of meta+body
    meta     UTF-8 JSON, sorted keys (digest, tables, run description)
    body     one variable-length record per query (see _QUERY_FIXED)

Wall-clock timestamps are deliberately **not** recorded: a trace is a pure
function of its queries and seeds, so two recordings of the same run are
byte-identical.  Queries carrying a live ``predicate`` or ``region``
cannot be serialised and fail loudly — recorded traces are for the
footprint/object representations every experiment uses.
"""

from __future__ import annotations

import json
import math
import os
import struct
import tempfile
import zlib
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.htm.curve import HTMRange
from repro.workload.query import CrossMatchObject, CrossMatchQuery

__all__ = [
    "TRACE_SUFFIX",
    "RecordedTrace",
    "TraceFormatError",
    "TraceInfo",
    "read_trace",
    "run_digest",
    "write_trace",
]

#: Canonical file suffix of recorded traces.
TRACE_SUFFIX = ".lrtr"

_MAGIC = b"LRTR"
_VERSION = 1

#: magic, version, flags, query_count, meta_len, body_len, crc32(meta+body)
_HEADER = struct.Struct("<4sHHIQQI")

#: query_id, arrival_time_s, client_id (-1 = none), deadline index
#: (-1 = none), archive count, footprint entry count, object count
_QUERY_FIXED = struct.Struct("<qdqhBII")
_ARCHIVE_INDEX = struct.Struct("<H")
_FOOTPRINT_ENTRY = struct.Struct("<II")
#: object_id, htm low, htm high, ra, dec, match radius, magnitude
#: (ra/dec use NaN for "no position")
_OBJECT = struct.Struct("<qqqdddd")


class TraceFormatError(ValueError):
    """A trace file (or a query being recorded) violates the format."""


@dataclass(frozen=True)
class TraceInfo:
    """Summary of one written trace file."""

    path: str
    query_count: int
    byte_size: int


@dataclass(frozen=True)
class RecordedTrace:
    """One decoded ``.lrtr`` file: the queries plus the recording context."""

    queries: Tuple[CrossMatchQuery, ...]
    meta: Dict[str, object]

    @property
    def expected_digest(self) -> str:
        """The recording run's result digest ("" when none was recorded)."""
        return str(self.meta.get("expected_digest", ""))

    def __len__(self) -> int:
        return len(self.queries)


def run_digest(
    response_times_ms: Mapping[int, float], parity_values: Sequence[float]
) -> str:
    """SHA-256 of a run's completion timeline plus its parity totals.

    The digest covers every ``(query_id, response_ms)`` pair in query-id
    order and every :data:`~repro.sim.simulator.VIRTUAL_CLOCK_PARITY_FIELDS`
    value, packed as little-endian doubles — so two runs share a digest
    exactly when their virtual-clock outcomes are bit-identical.
    """
    import hashlib

    hasher = hashlib.sha256()
    for query_id in sorted(response_times_ms):
        hasher.update(struct.pack("<qd", query_id, response_times_ms[query_id]))
    for value in parity_values:
        hasher.update(struct.pack("<d", float(value)))
    return hasher.hexdigest()


# --------------------------------------------------------------------- #
# encoding
# --------------------------------------------------------------------- #


def _encode_query(
    query: CrossMatchQuery,
    archive_index: Dict[str, int],
    deadline_index: Dict[str, int],
) -> bytes:
    if query.predicate is not None or query.region is not None:
        raise TraceFormatError(
            f"query {query.query_id} carries a live predicate/region; "
            "recorded traces hold only footprint/object payloads"
        )
    client_id = -1 if query.client_id is None else int(query.client_id)
    if query.client_id is not None and client_id < 0:
        raise TraceFormatError(
            f"query {query.query_id} has negative client id {client_id}"
        )
    deadline = (
        -1 if query.deadline_class is None else deadline_index[query.deadline_class]
    )
    footprint = query.bucket_footprint or {}
    for bucket, count in footprint.items():
        if bucket < 0:
            raise TraceFormatError(
                f"query {query.query_id} footprint has negative bucket {bucket}"
            )
        del count  # positivity is enforced by CrossMatchQuery itself
    parts: List[bytes] = [
        _QUERY_FIXED.pack(
            query.query_id,
            query.arrival_time_s,
            client_id,
            deadline,
            len(query.archives),
            len(footprint),
            len(query.objects),
        )
    ]
    parts.extend(
        _ARCHIVE_INDEX.pack(archive_index[name]) for name in query.archives
    )
    parts.extend(
        _FOOTPRINT_ENTRY.pack(bucket, count)
        for bucket, count in sorted(footprint.items())
    )
    for obj in query.objects:
        parts.append(
            _OBJECT.pack(
                obj.object_id,
                obj.htm_range.low,
                obj.htm_range.high,
                obj.ra if obj.ra is not None else math.nan,
                obj.dec if obj.dec is not None else math.nan,
                obj.match_radius_arcsec,
                obj.magnitude,
            )
        )
    return b"".join(parts)


def write_trace(
    path: str,
    queries: Sequence[CrossMatchQuery],
    meta: Optional[Mapping[str, object]] = None,
    expected_digest: str = "",
) -> TraceInfo:
    """Record *queries* (plus *meta* and the run's digest) into *path*.

    The write is atomic (temp file + ``os.replace``), so a crashed
    recording never leaves a truncated trace behind.
    """
    archives: List[str] = []
    archive_index: Dict[str, int] = {}
    deadlines: List[str] = []
    deadline_index: Dict[str, int] = {}
    for query in queries:
        for name in query.archives:
            if name not in archive_index:
                archive_index[name] = len(archives)
                archives.append(name)
        if query.deadline_class is not None and query.deadline_class not in deadline_index:
            deadline_index[query.deadline_class] = len(deadlines)
            deadlines.append(query.deadline_class)
    if len(archives) > 0xFFFF:
        raise TraceFormatError("more than 65,535 distinct archive names")
    body = b"".join(_encode_query(q, archive_index, deadline_index) for q in queries)
    full_meta: Dict[str, object] = dict(meta or {})
    full_meta["archives"] = archives
    full_meta["deadline_classes"] = deadlines
    if expected_digest:
        full_meta["expected_digest"] = expected_digest
    meta_bytes = json.dumps(full_meta, sort_keys=True).encode("utf-8")
    header = _HEADER.pack(
        _MAGIC,
        _VERSION,
        0,
        len(queries),
        len(meta_bytes),
        len(body),
        zlib.crc32(meta_bytes + body) & 0xFFFFFFFF,
    )
    path = os.fspath(path)
    directory = os.path.dirname(os.path.abspath(path)) or "."
    os.makedirs(directory, exist_ok=True)
    fd, tmp_path = tempfile.mkstemp(dir=directory, suffix=".lrtr.tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(header)
            handle.write(meta_bytes)
            handle.write(body)
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise
    return TraceInfo(
        path=path,
        query_count=len(queries),
        byte_size=_HEADER.size + len(meta_bytes) + len(body),
    )


# --------------------------------------------------------------------- #
# decoding
# --------------------------------------------------------------------- #


def _decode_query(
    blob: bytes,
    offset: int,
    archives: Sequence[str],
    deadlines: Sequence[str],
) -> Tuple[CrossMatchQuery, int]:
    try:
        (
            query_id,
            arrival_s,
            client_id,
            deadline,
            n_archives,
            n_footprint,
            n_objects,
        ) = _QUERY_FIXED.unpack_from(blob, offset)
    except struct.error as error:
        raise TraceFormatError(f"truncated query record at offset {offset}") from error
    offset += _QUERY_FIXED.size
    try:
        query_archives = tuple(
            archives[_ARCHIVE_INDEX.unpack_from(blob, offset + i * _ARCHIVE_INDEX.size)[0]]
            for i in range(n_archives)
        )
        offset += n_archives * _ARCHIVE_INDEX.size
        footprint: Optional[Dict[int, int]] = None
        if n_footprint:
            footprint = {}
            for i in range(n_footprint):
                bucket, count = _FOOTPRINT_ENTRY.unpack_from(
                    blob, offset + i * _FOOTPRINT_ENTRY.size
                )
                footprint[bucket] = count
            offset += n_footprint * _FOOTPRINT_ENTRY.size
        objects: List[CrossMatchObject] = []
        for i in range(n_objects):
            object_id, low, high, ra, dec, radius, magnitude = _OBJECT.unpack_from(
                blob, offset + i * _OBJECT.size
            )
            objects.append(
                CrossMatchObject(
                    object_id=object_id,
                    htm_range=HTMRange(low, high),
                    ra=None if math.isnan(ra) else ra,
                    dec=None if math.isnan(dec) else dec,
                    match_radius_arcsec=radius,
                    magnitude=magnitude,
                )
            )
        offset += n_objects * _OBJECT.size
    except (struct.error, IndexError) as error:
        raise TraceFormatError(
            f"corrupt query record for query {query_id}"
        ) from error
    query = CrossMatchQuery(
        query_id=query_id,
        objects=tuple(objects),
        bucket_footprint=footprint,
        arrival_time_s=arrival_s,
        archives=query_archives,
        client_id=None if client_id < 0 else client_id,
        deadline_class=None if deadline < 0 else deadlines[deadline],
    )
    return query, offset


def read_trace(path: str) -> RecordedTrace:
    """Decode one ``.lrtr`` file, validating magic, version and CRC."""
    path = os.fspath(path)
    with open(path, "rb") as handle:
        blob = handle.read()
    if len(blob) < _HEADER.size:
        raise TraceFormatError(f"{path!r} is too short to be a trace file")
    magic, version, _flags, query_count, meta_len, body_len, crc = _HEADER.unpack_from(
        blob, 0
    )
    if magic != _MAGIC:
        raise TraceFormatError(f"{path!r} is not a .lrtr trace (bad magic {magic!r})")
    if version != _VERSION:
        raise TraceFormatError(
            f"{path!r} is trace format version {version}; this build reads "
            f"version {_VERSION}"
        )
    payload = blob[_HEADER.size :]
    if len(payload) != meta_len + body_len:
        raise TraceFormatError(
            f"{path!r} is truncated: expected {meta_len + body_len} payload "
            f"bytes, found {len(payload)}"
        )
    if zlib.crc32(payload) & 0xFFFFFFFF != crc:
        raise TraceFormatError(f"{path!r} failed its CRC check (corrupt payload)")
    try:
        meta = json.loads(payload[:meta_len].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise TraceFormatError(f"{path!r} has a corrupt metadata block") from error
    archives = [str(name) for name in meta.get("archives", [])]
    deadlines = [str(name) for name in meta.get("deadline_classes", [])]
    body = payload[meta_len:]
    queries: List[CrossMatchQuery] = []
    offset = 0
    for _ in range(query_count):
        query, offset = _decode_query(body, offset, archives, deadlines)
        queries.append(query)
    if offset != len(body):
        raise TraceFormatError(
            f"{path!r} has {len(body) - offset} trailing bytes after the last query"
        )
    return RecordedTrace(queries=tuple(queries), meta=meta)
