"""Arrival processes used to impose a workload saturation level.

The paper's Figure 8 sweeps "saturation" — the query arrival rate — from
0.1 to 0.5 queries per second and studies how the throughput/response-time
trade-off moves.  These classes assign arrival times to an existing trace;
the queries themselves are unchanged, so the same data-access pattern can
be replayed at different saturations.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, List, Protocol, Sequence

from repro.workload.query import CrossMatchQuery


class ArrivalProcess(Protocol):
    """Anything that can produce a monotone sequence of arrival times."""

    def arrival_times(self, count: int) -> List[float]:
        """Return *count* arrival times in seconds, non-decreasing."""
        ...


@dataclass
class PoissonArrivalProcess:
    """Memoryless arrivals at a fixed average rate (queries per second)."""

    rate_qps: float
    seed: int = 0
    start_time_s: float = 0.0

    def __post_init__(self) -> None:
        if self.rate_qps <= 0:
            raise ValueError("arrival rate must be positive")

    def arrival_times(self, count: int) -> List[float]:
        rng = random.Random(self.seed)
        times: List[float] = []
        now = self.start_time_s
        for _ in range(count):
            now += rng.expovariate(self.rate_qps)
            times.append(now)
        return times


@dataclass
class UniformArrivalProcess:
    """Perfectly regular arrivals at a fixed rate (useful in tests)."""

    rate_qps: float
    start_time_s: float = 0.0

    def __post_init__(self) -> None:
        if self.rate_qps <= 0:
            raise ValueError("arrival rate must be positive")

    def arrival_times(self, count: int) -> List[float]:
        interval = 1.0 / self.rate_qps
        return [self.start_time_s + interval * (i + 1) for i in range(count)]


@dataclass
class BurstyArrivalProcess:
    """ON/OFF arrivals: bursts at a high rate separated by quiet gaps.

    The paper motivates adaptivity with "bursty workloads with no steady
    state" (§6); this process exercises that case in the ablations.
    """

    burst_rate_qps: float
    burst_length: int
    gap_seconds: float
    seed: int = 0
    start_time_s: float = 0.0

    def __post_init__(self) -> None:
        if self.burst_rate_qps <= 0:
            raise ValueError("burst rate must be positive")
        if self.burst_length <= 0:
            raise ValueError("burst length must be positive")
        if self.gap_seconds < 0:
            raise ValueError("gap must be non-negative")

    def arrival_times(self, count: int) -> List[float]:
        rng = random.Random(self.seed)
        times: List[float] = []
        now = self.start_time_s
        in_burst = 0
        for _ in range(count):
            if in_burst >= self.burst_length:
                now += self.gap_seconds
                in_burst = 0
            now += rng.expovariate(self.burst_rate_qps)
            times.append(now)
            in_burst += 1
        return times


def apply_arrival_times(
    queries: Sequence[CrossMatchQuery], process: ArrivalProcess
) -> List[CrossMatchQuery]:
    """Return copies of *queries* stamped with times from *process*.

    Query order is preserved: the i-th query receives the i-th arrival time.
    """
    times = process.arrival_times(len(queries))
    return [query.with_arrival_time(t) for query, t in zip(queries, times)]


def observed_rate_qps(queries: Iterable[CrossMatchQuery]) -> float:
    """Empirical arrival rate of a trace (queries per second)."""
    times = sorted(q.arrival_time_s for q in queries)
    if len(times) < 2 or times[-1] == times[0]:
        return 0.0
    return (len(times) - 1) / (times[-1] - times[0])
