"""The cross-match query model.

A cross-match query, as it reaches one site of the federation, is "a list
of objects to be cross-matched", each object carrying "its mean cartesian
coordinate and a range of HTM ID values, which serve as a bounding box
covering all potential regions for cross matching" (§3.1).  The query's
result is the union of the per-bucket sub-query results, so sub-queries can
be evaluated in any order — the property LifeRaft's data-driven scheduling
relies on.

Two representations are supported and can be mixed freely:

* **explicit objects** (:attr:`CrossMatchQuery.objects`) — used by the
  full-fidelity join evaluator and by the federation examples;
* **bucket footprints** (:attr:`CrossMatchQuery.bucket_footprint`) — an
  aggregated ``{bucket index: object count}`` mapping used by the scaled
  experiments, where materialising millions of per-object rows would add
  nothing (only counts enter the cost model).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Dict, Mapping, Optional, Tuple

from repro.htm.curve import HTMRange
from repro.htm.geometry import SkyPoint


class QueryStatus(enum.Enum):
    """Lifecycle of a query inside the scheduler."""

    PENDING = "pending"
    RUNNING = "running"
    COMPLETED = "completed"
    CANCELLED = "cancelled"


@dataclass(frozen=True)
class CrossMatchObject:
    """One object shipped to a site to be cross-matched against its catalog.

    Attributes
    ----------
    object_id:
        Identifier of the object within its parent query.
    htm_range:
        Bounding box of potential matches, as a range of leaf-level HTM IDs.
    ra, dec:
        Mean position in degrees (``None`` for abstract workload objects).
    match_radius_arcsec:
        Radius of the probabilistic match; positional error circles in the
        SkyQuery cross-match are arcsecond scale.
    magnitude:
        Magnitude carried along for query-specific predicates.
    """

    object_id: int
    htm_range: HTMRange
    ra: Optional[float] = None
    dec: Optional[float] = None
    match_radius_arcsec: float = 2.0
    magnitude: float = 20.0

    @property
    def position(self) -> Optional[SkyPoint]:
        """Sky position, when the object carries one."""
        if self.ra is None or self.dec is None:
            return None
        return SkyPoint(self.ra, self.dec)

    def overlaps_range(self, other: HTMRange) -> bool:
        """Return ``True`` when the object's bounding box overlaps *other*."""
        return self.htm_range.overlaps(other)


@dataclass
class CrossMatchQuery:
    """A cross-match query as submitted to one site.

    Attributes
    ----------
    query_id:
        Trace-unique identifier.
    objects:
        Explicit objects to be cross-matched (may be empty when
        ``bucket_footprint`` is supplied instead).
    bucket_footprint:
        Aggregated ``{bucket index: object count}`` workload description.
    arrival_time_s:
        Arrival time in simulated seconds.
    archives:
        Names of the archives the full federated query joins; informational
        at a single site but used by the federation substrate.
    predicate:
        Optional per-row predicate applied to matched pairs ("query specific
        predicates are applied on the output tuples that succeed in the
        spatial join", §3.1).
    region:
        Optional ``(center, radius_deg)`` describing the sky region the
        query explores.
    client_id:
        Submitting client, when the trace knows it (recorded traces and
        the serving scenarios).  ``None`` lets the serving front-end fall
        back to its hash-based client assignment.
    deadline_class:
        SLA class name carried by the trace (``"interactive"``,
        ``"standard"``, ``"batch"``); ``None`` lets the front-end draw one
        from its configured deadline mix.
    """

    query_id: int
    objects: Tuple[CrossMatchObject, ...] = ()
    bucket_footprint: Optional[Dict[int, int]] = None
    arrival_time_s: float = 0.0
    archives: Tuple[str, ...] = ("twomass", "sdss")
    predicate: Optional[Callable[[object], bool]] = None
    region: Optional[Tuple[SkyPoint, float]] = None
    client_id: Optional[int] = None
    deadline_class: Optional[str] = None
    status: QueryStatus = QueryStatus.PENDING

    def __post_init__(self) -> None:
        if not self.objects and not self.bucket_footprint:
            raise ValueError(
                f"query {self.query_id} needs explicit objects or a bucket footprint"
            )
        if self.bucket_footprint is not None:
            bad = {b: c for b, c in self.bucket_footprint.items() if c <= 0}
            if bad:
                raise ValueError(f"query {self.query_id} has non-positive footprint entries: {bad}")

    @property
    def object_count(self) -> int:
        """Total number of objects this query asks the site to cross-match."""
        if self.objects:
            return len(self.objects)
        assert self.bucket_footprint is not None
        return sum(self.bucket_footprint.values())

    @property
    def is_abstract(self) -> bool:
        """``True`` when the query is described only by its bucket footprint."""
        return not self.objects

    def with_arrival_time(self, arrival_time_s: float) -> "CrossMatchQuery":
        """Return a copy of the query with a different arrival time."""
        return CrossMatchQuery(
            query_id=self.query_id,
            objects=self.objects,
            bucket_footprint=dict(self.bucket_footprint) if self.bucket_footprint else None,
            arrival_time_s=arrival_time_s,
            archives=self.archives,
            predicate=self.predicate,
            region=self.region,
            client_id=self.client_id,
            deadline_class=self.deadline_class,
        )

    def footprint_or_none(self) -> Optional[Mapping[int, int]]:
        """The aggregated footprint, if the query carries one."""
        return self.bucket_footprint
