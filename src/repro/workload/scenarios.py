"""Named, seeded adversarial scenarios: recorded traces that stress the system.

The paper's trace is real SkyQuery traffic; the sweeps elsewhere in this
repo are statistically faithful but *friendly* — smooth Poisson arrivals,
one skew profile.  Real traffic misbehaves, so this module ships a small
library of adversarial scenario builders, each a pure function of
``(query_count, bucket_count, seed)``:

``diurnal_flash_crowd``
    Sinusoidal day/night load with superimposed flash crowds; queries
    arriving inside a flash carry an ``"interactive"`` deadline class.
``hotspot_zone_skew``
    Popularity skew cranked far beyond the paper's Figure 6 — a handful
    of buckets absorb most of the workload, with strong temporal locality.
``slow_client_backpressure``
    A fixed client pool where one client dumps a clustered burst far above
    the per-client rate limit; queries carry real ``client_id``s so the
    serving front-end's per-client gate is what gets exercised.
``heavy_tail``
    Heavy-tailed query sizes (wide bounded-Pareto spans, fat log-normal
    per-bucket workloads) under bursty ON/OFF arrivals.

Scenarios become regression fixtures through :func:`record_scenario`,
which runs the scenario once on the serial engine and writes a ``.lrtr``
trace (queries + result digest) for ``liferaft replay`` to pin forever.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from repro.workload.arrival import (
    BurstyArrivalProcess,
    PoissonArrivalProcess,
    apply_arrival_times,
)
from repro.workload.generator import TraceConfig, TraceGenerator
from repro.workload.query import CrossMatchQuery
from repro.workload.trace_io import TraceInfo, write_trace

__all__ = [
    "SCENARIOS",
    "DiurnalFlashCrowdProcess",
    "Scenario",
    "build_scenario",
    "record_scenario",
]


@dataclass
class DiurnalFlashCrowdProcess:
    """Non-homogeneous Poisson arrivals: diurnal rate plus flash crowds.

    The instantaneous rate follows a raised cosine between
    ``base_rate_qps`` (midnight) and ``peak_rate_qps`` (midday) with
    period ``period_s``; inside each flash window the rate is multiplied
    by ``flash_multiplier``.  Sampling uses thinning against the maximum
    rate, so the stream is exact, deterministic per seed, and
    non-decreasing like every other :class:`ArrivalProcess`.
    """

    base_rate_qps: float
    peak_rate_qps: float
    period_s: float
    flash_starts_s: Tuple[float, ...] = ()
    flash_duration_s: float = 30.0
    flash_multiplier: float = 6.0
    seed: int = 0
    start_time_s: float = 0.0

    def __post_init__(self) -> None:
        if self.base_rate_qps <= 0:
            raise ValueError("base rate must be positive")
        if self.peak_rate_qps < self.base_rate_qps:
            raise ValueError("peak rate cannot be below the base rate")
        if self.period_s <= 0:
            raise ValueError("period must be positive")
        if self.flash_duration_s <= 0:
            raise ValueError("flash duration must be positive")
        if self.flash_multiplier < 1.0:
            raise ValueError("flash multiplier must be >= 1")

    def in_flash(self, time_s: float) -> bool:
        """Whether *time_s* falls inside a flash-crowd window."""
        return any(
            start <= time_s < start + self.flash_duration_s
            for start in self.flash_starts_s
        )

    def rate_at(self, time_s: float) -> float:
        """Instantaneous arrival rate at *time_s* (queries per second)."""
        phase = (1.0 - math.cos(2.0 * math.pi * time_s / self.period_s)) / 2.0
        rate = self.base_rate_qps + (self.peak_rate_qps - self.base_rate_qps) * phase
        if self.in_flash(time_s):
            rate *= self.flash_multiplier
        return rate

    def arrival_times(self, count: int) -> List[float]:
        rng = random.Random(self.seed)
        ceiling = self.peak_rate_qps * (
            self.flash_multiplier if self.flash_starts_s else 1.0
        )
        times: List[float] = []
        now = self.start_time_s
        while len(times) < count:
            now += rng.expovariate(ceiling)
            if rng.random() < self.rate_at(now) / ceiling:
                times.append(now)
        return times


def _base_trace(query_count: int, bucket_count: int, seed: int, **overrides):
    """A scale-clamped synthetic trace without arrival times."""
    if "max_span" not in overrides:
        default_span = TraceConfig.__dataclass_fields__["max_span"].default
        overrides["max_span"] = min(default_span, bucket_count)
    config = TraceConfig(
        query_count=query_count, bucket_count=bucket_count, seed=seed, **overrides
    )
    return TraceGenerator(config).generate(attach_arrivals=False)


def diurnal_flash_crowd(
    query_count: int, bucket_count: int, seed: int
) -> List[CrossMatchQuery]:
    """Diurnal load with flash crowds; flash arrivals are interactive-class."""
    trace = _base_trace(query_count, bucket_count, seed)
    process = DiurnalFlashCrowdProcess(
        base_rate_qps=0.4,
        peak_rate_qps=1.6,
        period_s=240.0,
        flash_starts_s=(90.0, 300.0),
        flash_duration_s=40.0,
        flash_multiplier=6.0,
        seed=seed,
    )
    queries = apply_arrival_times(trace.queries, process)
    for query in queries:
        query.deadline_class = (
            "interactive" if process.in_flash(query.arrival_time_s) else "standard"
        )
    return queries


def hotspot_zone_skew(
    query_count: int, bucket_count: int, seed: int
) -> List[CrossMatchQuery]:
    """Extreme hot-spot skew: a few buckets absorb most of the workload."""
    trace = _base_trace(
        query_count,
        bucket_count,
        seed,
        zipf_exponent=2.4,
        temporal_locality=0.85,
        locality_window=40,
        focus_boost=8.0,
        max_span=min(12, bucket_count),
    )
    process = PoissonArrivalProcess(rate_qps=0.5, seed=seed)
    return apply_arrival_times(trace.queries, process)


def slow_client_backpressure(
    query_count: int, bucket_count: int, seed: int
) -> List[CrossMatchQuery]:
    """One misbehaving client floods the intake while three behave.

    Three well-behaved clients offer steady Poisson traffic; a fourth
    dumps its whole share as one clustered burst far above any sane
    per-client rate limit.  Queries carry their real ``client_id``, so a
    serving replay exercises the per-client admission gate rather than
    the hash-assignment fallback.
    """
    trace = _base_trace(query_count, bucket_count, seed)
    burst_share = max(1, query_count // 4)
    steady = trace.queries[: query_count - burst_share]
    flood = trace.queries[query_count - burst_share :]
    steady_times = PoissonArrivalProcess(rate_qps=0.6, seed=seed).arrival_times(
        len(steady)
    )
    # The flood lands mid-run as a near-instantaneous clump.
    flood_start = steady_times[len(steady_times) // 2] if steady_times else 0.0
    flood_times = BurstyArrivalProcess(
        burst_rate_qps=50.0,
        burst_length=burst_share,
        gap_seconds=0.0,
        seed=seed + 1,
        start_time_s=flood_start,
    ).arrival_times(len(flood))
    queries: List[CrossMatchQuery] = []
    for position, (query, time_s) in enumerate(zip(steady, steady_times)):
        stamped = query.with_arrival_time(time_s)
        stamped.client_id = position % 3
        queries.append(stamped)
    for query, time_s in zip(flood, flood_times):
        stamped = query.with_arrival_time(time_s)
        stamped.client_id = 3
        queries.append(stamped)
    queries.sort(key=lambda q: (q.arrival_time_s, q.query_id))
    return queries


def heavy_tail(
    query_count: int, bucket_count: int, seed: int
) -> List[CrossMatchQuery]:
    """Heavy-tailed query sizes under bursty ON/OFF arrivals."""
    trace = _base_trace(
        query_count,
        bucket_count,
        seed,
        max_span=min(128, bucket_count),
        span_pareto_alpha=0.7,
        objects_per_query_bucket_sigma=1.6,
    )
    process = BurstyArrivalProcess(
        burst_rate_qps=3.0, burst_length=12, gap_seconds=45.0, seed=seed
    )
    return apply_arrival_times(trace.queries, process)


@dataclass(frozen=True)
class Scenario:
    """One catalog entry: a named, seeded adversarial workload builder."""

    name: str
    description: str
    build: Callable[[int, int, int], List[CrossMatchQuery]]
    default_query_count: int = 120
    default_bucket_count: int = 256
    default_seed: int = 1841


#: The scenario catalog, in documentation order.
SCENARIOS: Dict[str, Scenario] = {
    scenario.name: scenario
    for scenario in (
        Scenario(
            "diurnal_flash_crowd",
            "sinusoidal day/night load with interactive-class flash crowds",
            diurnal_flash_crowd,
        ),
        Scenario(
            "hotspot_zone_skew",
            "extreme bucket-popularity skew with strong temporal locality",
            hotspot_zone_skew,
        ),
        Scenario(
            "slow_client_backpressure",
            "one client floods the intake; per-client admission must hold",
            slow_client_backpressure,
        ),
        Scenario(
            "heavy_tail",
            "heavy-tailed query spans and workloads under bursty arrivals",
            heavy_tail,
        ),
    )
}


def build_scenario(
    name: str,
    query_count: int | None = None,
    bucket_count: int | None = None,
    seed: int | None = None,
) -> List[CrossMatchQuery]:
    """Build the named scenario's query stream (defaults from the catalog)."""
    if name not in SCENARIOS:
        raise KeyError(f"unknown scenario {name!r}; available: {sorted(SCENARIOS)}")
    scenario = SCENARIOS[name]
    return scenario.build(
        query_count if query_count is not None else scenario.default_query_count,
        bucket_count if bucket_count is not None else scenario.default_bucket_count,
        seed if seed is not None else scenario.default_seed,
    )


def record_scenario(
    name: str,
    path: str,
    query_count: int | None = None,
    bucket_count: int | None = None,
    seed: int | None = None,
) -> TraceInfo:
    """Run the named scenario serially and record it as a ``.lrtr`` fixture.

    The recorded trace carries the serial run's result digest, so a
    replay on any backend can assert bit-identical reproduction.
    """
    # Imported lazily: ``sim`` imports this package at module level.
    from repro.sim.runspec import RunSpec
    from repro.sim.simulator import SimulationConfig, Simulator

    if name not in SCENARIOS:
        raise KeyError(f"unknown scenario {name!r}; available: {sorted(SCENARIOS)}")
    scenario = SCENARIOS[name]
    resolved_buckets = (
        bucket_count if bucket_count is not None else scenario.default_bucket_count
    )
    resolved_seed = seed if seed is not None else scenario.default_seed
    queries = build_scenario(name, query_count, resolved_buckets, resolved_seed)
    simulator = Simulator(SimulationConfig(bucket_count=resolved_buckets))
    result = simulator.execute(queries, RunSpec(label=name))
    meta = {
        "scenario": name,
        "policy": "liferaft",
        "alpha": 0.25,
        "workers": 1,
        "backend": "serial",
        "shard_strategy": "round_robin",
        "enable_stealing": True,
        "saturation_qps": None,
        "label": name,
        "bucket_count": resolved_buckets,
        "seed": resolved_seed,
        "store_backend": "memory",
    }
    return write_trace(path, queries, meta=meta, expected_digest=result.result_digest)
