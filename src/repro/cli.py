"""Command-line interface: run experiments and inspect traces.

Examples
--------
Run the whole experiment suite at the default scale::

    liferaft experiments --scale default

Run only the headline scheduling comparison and the cache study::

    liferaft experiments figure7 cache_hits --scale small

Print the workload characterisation of a freshly generated trace::

    liferaft trace --scale small
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.experiments import EXPERIMENTS, run_all
from repro.experiments.common import SCALES, build_trace
from repro.workload.stats import TraceStatistics


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="liferaft",
        description="LifeRaft (CIDR 2009) reproduction: experiments and trace tools",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    experiments = subparsers.add_parser(
        "experiments", help="run the paper's experiments and print their tables"
    )
    experiments.add_argument(
        "names",
        nargs="*",
        choices=sorted(EXPERIMENTS) + [[]],
        help="experiments to run (default: all)",
    )
    experiments.add_argument(
        "--scale",
        default="small",
        choices=sorted(SCALES),
        help="experiment scale (trace and partition size)",
    )

    trace = subparsers.add_parser("trace", help="generate a trace and print its statistics")
    trace.add_argument("--scale", default="small", choices=sorted(SCALES))
    trace.add_argument("--seed", type=int, default=8675309)

    subparsers.add_parser("list", help="list available experiments")
    return parser


def _run_experiments(names: List[str], scale: str) -> int:
    results = run_all(scale=scale, names=names or None)
    for result in results:
        print(result.render())
        print()
    return 0


def _run_trace(scale: str, seed: int) -> int:
    trace = build_trace(scale, seed=seed)
    stats = TraceStatistics(trace.queries)
    print(f"trace: {len(trace)} queries, {trace.total_objects()} cross-match objects")
    for key, value in stats.describe().items():
        print(f"  {key}: {value:.4g}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "list":
        for name in sorted(EXPERIMENTS):
            print(name)
        return 0
    if args.command == "experiments":
        return _run_experiments(list(args.names), args.scale)
    if args.command == "trace":
        return _run_trace(args.scale, args.seed)
    parser.error(f"unknown command {args.command!r}")
    return 2


if __name__ == "__main__":
    sys.exit(main())
