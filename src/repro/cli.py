"""Command-line interface: run experiments and inspect traces.

Examples
--------
Run the whole experiment suite at the default scale::

    liferaft experiments --scale default

Run only the headline scheduling comparison and the cache study::

    liferaft experiments figure7 cache_hits --scale small

Run the worker-scaling experiment, sweeping 1..8 parallel workers::

    liferaft experiments scaling --scale small --workers 8

Measure real wall-clock speedup with one OS process per shard worker::

    liferaft experiments scaling --scale small --workers 4 --backend process

Serve a trace through the front-end with admission control and print the
intake, latency and SLA summary::

    liferaft serve --scale small --admission reject --intake-bound 48 \
        --deadline-mix interactive=0.3,standard=0.5,batch=0.2

Print the workload characterisation of a freshly generated trace::

    liferaft trace --scale small
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.experiments import EXPERIMENTS, run_all
from repro.experiments.common import SCALES, build_simulator, build_trace, render_table
from repro.workload.stats import TraceStatistics


def _positive_int(text: str) -> int:
    """argparse type for flags that must be strictly positive integers."""
    value = int(text)
    if value <= 0:
        raise argparse.ArgumentTypeError(f"must be a positive integer, got {value}")
    return value


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="liferaft",
        description="LifeRaft (CIDR 2009) reproduction: experiments and trace tools",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    experiments = subparsers.add_parser(
        "experiments", help="run the paper's experiments and print their tables"
    )
    experiments.add_argument(
        "names",
        nargs="*",
        choices=sorted(EXPERIMENTS) + [[]],
        help="experiments to run (default: all)",
    )
    experiments.add_argument(
        "--scale",
        default="small",
        choices=sorted(SCALES),
        help="experiment scale (trace and partition size)",
    )
    experiments.add_argument(
        "--workers",
        type=_positive_int,
        default=None,
        metavar="N",
        help=(
            "max parallel workers for the scaling experiment: sweeps powers "
            "of two up to N (experiments without a parallel mode ignore it)"
        ),
    )
    experiments.add_argument(
        "--shard-strategy",
        default=None,
        choices=("round_robin", "zone"),
        help="bucket-to-worker assignment used by the scaling experiment",
    )
    experiments.add_argument(
        "--backend",
        default=None,
        choices=("virtual", "process"),
        help=(
            "execution backend for the scaling experiment: 'virtual' "
            "interleaves shard workers in-process (deterministic), "
            "'process' runs one OS process per shard for real wall-clock "
            "speedup"
        ),
    )

    trace = subparsers.add_parser("trace", help="generate a trace and print its statistics")
    trace.add_argument("--scale", default="small", choices=sorted(SCALES))
    trace.add_argument("--seed", type=int, default=8675309)

    serve = subparsers.add_parser(
        "serve",
        help=(
            "replay a trace through the serving front-end (admission control, "
            "result streaming, SLA scoring) and print the serving report"
        ),
    )
    serve.add_argument("--scale", default="small", choices=sorted(SCALES))
    serve.add_argument("--seed", type=int, default=8675309)
    serve.add_argument(
        "--alpha", type=float, default=0.25, help="LifeRaft age bias (starvation knob)"
    )
    serve.add_argument(
        "--saturation",
        type=float,
        default=None,
        metavar="QPS",
        help="replay arrival rate (default: the trace's attached arrivals)",
    )
    serve.add_argument(
        "--admission",
        default="admit",
        choices=("admit", "reject", "defer"),
        help="admission policy at the intake gate",
    )
    serve.add_argument(
        "--intake-bound",
        type=_positive_int,
        default=None,
        metavar="N",
        help="max admitted-but-undrained queries before the gate trips",
    )
    serve.add_argument(
        "--max-pending-buckets",
        type=_positive_int,
        default=None,
        metavar="N",
        help="max distinct pending buckets across in-flight admissions",
    )
    serve.add_argument(
        "--max-client-qps",
        type=float,
        default=None,
        metavar="QPS",
        help="per-client offered-rate limit over the trailing minute",
    )
    serve.add_argument(
        "--clients",
        type=_positive_int,
        default=4,
        metavar="N",
        help="synthetic client pool size (queries hash onto it)",
    )
    serve.add_argument(
        "--deadline-mix",
        default=None,
        metavar="SPEC",
        help=(
            "deadline class mix as name=weight,... "
            "(classes: interactive, standard, batch)"
        ),
    )
    serve.add_argument(
        "--workers",
        type=_positive_int,
        default=1,
        metavar="N",
        help="shard workers (>1 serves through the parallel engine)",
    )
    serve.add_argument(
        "--backend",
        default=None,
        choices=("virtual", "process"),
        help=(
            "execution backend when serving with multiple workers "
            "(requires --workers > 1; default: virtual)"
        ),
    )

    subparsers.add_parser("list", help="list available experiments")
    return parser


def worker_sweep(max_workers: int) -> List[int]:
    """Powers of two up to *max_workers*, always ending at *max_workers*."""
    if max_workers <= 0:
        raise ValueError("--workers must be positive")
    sweep: List[int] = []
    count = 1
    while count < max_workers:
        sweep.append(count)
        count *= 2
    sweep.append(max_workers)
    return sweep


def _run_experiments(
    names: List[str],
    scale: str,
    workers: Optional[int] = None,
    shard_strategy: Optional[str] = None,
    backend: Optional[str] = None,
) -> int:
    results = run_all(
        scale=scale,
        names=names or None,
        workers=worker_sweep(workers) if workers is not None else None,
        shard_strategy=shard_strategy,
        backend=backend,
    )
    for result in results:
        print(result.render())
        print()
    return 0


def _run_trace(scale: str, seed: int) -> int:
    trace = build_trace(scale, seed=seed)
    stats = TraceStatistics(trace.queries)
    print(f"trace: {len(trace)} queries, {trace.total_objects()} cross-match objects")
    for key, value in stats.describe().items():
        print(f"  {key}: {value:.4g}")
    return 0


def _run_serve(args: argparse.Namespace) -> int:
    from repro.service.deadline import parse_deadline_mix
    from repro.service.frontend import ServiceConfig

    trace = build_trace(args.scale, seed=args.seed)
    if args.saturation is not None:
        trace = trace.with_saturation(args.saturation)
    simulator = build_simulator(args.scale)
    config_kwargs = dict(
        admission=args.admission,
        intake_bound=args.intake_bound,
        max_pending_buckets=args.max_pending_buckets,
        max_client_qps=args.max_client_qps,
        clients=args.clients,
        seed=args.seed,
    )
    if args.deadline_mix:
        config_kwargs["deadline_mix"] = parse_deadline_mix(args.deadline_mix)
    service = ServiceConfig(**config_kwargs)
    if args.workers > 1:
        result = simulator.run_parallel(
            trace.queries,
            "liferaft",
            workers=args.workers,
            alpha=args.alpha,
            backend=args.backend or "virtual",
            service=service,
        )
        engine_label = f"{result.backend} backend x{args.workers}"
    else:
        if args.backend is not None:
            raise SystemExit("--backend requires --workers > 1 (the serial engine has no backend)")
        result = simulator.run(trace.queries, "liferaft", alpha=args.alpha, service=service)
        engine_label = "serial engine"
    serving = result.serving
    assert serving is not None
    print(
        f"serving report ({serving.admission_policy} admission, "
        f"{serving.clients} clients, alpha={args.alpha:g}, {engine_label})"
    )
    print(
        f"  offered {serving.offered} | admitted {serving.admitted} | "
        f"rejected {serving.rejected} ({serving.rejection_rate:.1%}) | "
        f"deferrals {serving.deferrals}"
    )
    print(
        f"  completed {serving.completed} | chunks {serving.chunks} | "
        f"avg TTFR {serving.avg_time_to_first_result_s:.2f}s | "
        f"avg completion {serving.avg_time_to_completion_s:.2f}s"
    )
    print()
    print(
        render_table(
            (
                "class",
                "admitted",
                "rejected",
                "completed",
                "first-result SLA",
                "completion SLA",
            ),
            serving.deadline_rows,
        )
    )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "list":
        for name in sorted(EXPERIMENTS):
            print(name)
        return 0
    if args.command == "experiments":
        return _run_experiments(
            list(args.names),
            args.scale,
            workers=args.workers,
            shard_strategy=args.shard_strategy,
            backend=args.backend,
        )
    if args.command == "trace":
        return _run_trace(args.scale, args.seed)
    if args.command == "serve":
        return _run_serve(args)
    parser.error(f"unknown command {args.command!r}")
    return 2


if __name__ == "__main__":
    sys.exit(main())
