"""Command-line interface: run experiments and inspect traces.

Examples
--------
Run the whole experiment suite at the default scale::

    liferaft experiments --scale default

Run only the headline scheduling comparison and the cache study::

    liferaft experiments figure7 cache_hits --scale small

Run the worker-scaling experiment, sweeping 1..8 parallel workers::

    liferaft experiments scaling --scale small --workers 8

Measure real wall-clock speedup with one OS process per shard worker::

    liferaft experiments scaling --scale small --workers 4 --backend process

Serve a trace through the front-end with admission control and print the
intake, latency and SLA summary::

    liferaft serve --scale small --admission reject --intake-bound 48 \
        --deadline-mix interactive=0.3,standard=0.5,batch=0.2

Materialise the small scale's partition as a columnar on-disk bucket
store, then replay against it (real seeks, reads and decoding; identical
virtual-clock numbers) and verify file/memory parity in one shot::

    liferaft ingest --scale small --out /tmp/small.lrbs
    liferaft run --scale small --store-path /tmp/small.lrbs \
        --verify-against-memory

Kill shard worker 1 during window 1 of a two-worker run (a real SIGKILL
on the process backend), recover it from its checkpoint, and verify the
crash-injected run is bit-identical to an uninterrupted one::

    liferaft run --scale small --store-path /tmp/small.lrbs --workers 2 \
        --backend process --inject-crash 1@1 --checkpoint-every windows:2 \
        --verify-recovery

Shrink a three-worker run to two mid-run, then grow back to three — the
departing shard's queues migrate over the stealing seam and the run's
completion set is unchanged::

    liferaft run --scale small --workers 3 --scale-down 1@2 --scale-up 4

Record a run as a ``.lrtr`` trace, then replay it elsewhere and verify
the result digest is bit-identical::

    liferaft run --scale small --record-trace /tmp/run.lrtr
    liferaft replay /tmp/run.lrtr --backend virtual

List the adversarial scenario library, record one as a trace fixture::

    liferaft scenarios
    liferaft scenarios --record hotspot_zone_skew --out /tmp/hotspot.lrtr

Export a run's metrics snapshot and its Perfetto-loadable span timeline
(including per-query causal flows), then pretty-print the metrics::

    liferaft run --scale small --metrics-out /tmp/metrics.json \
        --trace-out /tmp/spans.json
    liferaft inspect /tmp/metrics.json

Render the full run report — metrics, windowed time series, SLA summary
and recovery/scale events — and diff two snapshots metric by metric::

    liferaft report /tmp/metrics.json
    liferaft inspect /tmp/metrics.json --diff /tmp/other-metrics.json

Check the committed per-scenario SLA envelope fixtures (CI runs this),
or re-record them after an intentional behaviour change::

    liferaft envelopes --check
    liferaft envelopes --record hotspot_zone_skew

Print the workload characterisation of a freshly generated trace::

    liferaft trace --scale small
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.experiments import EXPERIMENTS, run_all
from repro.experiments.common import SCALES, build_simulator, build_trace, render_table
from repro.workload.stats import TraceStatistics


def _positive_int(text: str) -> int:
    """argparse type for flags that must be strictly positive integers."""
    value = int(text)
    if value <= 0:
        raise argparse.ArgumentTypeError(f"must be a positive integer, got {value}")
    return value


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="liferaft",
        description="LifeRaft (CIDR 2009) reproduction: experiments and trace tools",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    experiments = subparsers.add_parser(
        "experiments", help="run the paper's experiments and print their tables"
    )
    experiments.add_argument(
        "names",
        nargs="*",
        choices=sorted(EXPERIMENTS) + [[]],
        help="experiments to run (default: all)",
    )
    experiments.add_argument(
        "--scale",
        default="small",
        choices=sorted(SCALES),
        help="experiment scale (trace and partition size)",
    )
    experiments.add_argument(
        "--workers",
        type=_positive_int,
        default=None,
        metavar="N",
        help=(
            "max parallel workers for the scaling experiment: sweeps powers "
            "of two up to N (experiments without a parallel mode ignore it)"
        ),
    )
    experiments.add_argument(
        "--shard-strategy",
        default=None,
        choices=("round_robin", "zone"),
        help="bucket-to-worker assignment used by the scaling experiment",
    )
    experiments.add_argument(
        "--backend",
        default=None,
        choices=("virtual", "process"),
        help=(
            "execution backend for the scaling experiment: 'virtual' "
            "interleaves shard workers in-process (deterministic), "
            "'process' runs one OS process per shard for real wall-clock "
            "speedup"
        ),
    )
    experiments.add_argument(
        "--store-path",
        default=None,
        metavar="FILE",
        help=(
            "ingested .lrbs bucket store for the scaling experiment: shard "
            "workers read materialised on-disk buckets instead of the "
            "in-memory cost model (see 'liferaft ingest')"
        ),
    )

    trace = subparsers.add_parser("trace", help="generate a trace and print its statistics")
    trace.add_argument("--scale", default="small", choices=sorted(SCALES))
    trace.add_argument("--seed", type=int, default=8675309)

    serve = subparsers.add_parser(
        "serve",
        help=(
            "replay a trace through the serving front-end (admission control, "
            "result streaming, SLA scoring) and print the serving report"
        ),
    )
    serve.add_argument("--scale", default="small", choices=sorted(SCALES))
    serve.add_argument("--seed", type=int, default=8675309)
    serve.add_argument(
        "--alpha", type=float, default=0.25, help="LifeRaft age bias (starvation knob)"
    )
    serve.add_argument(
        "--saturation",
        type=float,
        default=None,
        metavar="QPS",
        help="replay arrival rate (default: the trace's attached arrivals)",
    )
    serve.add_argument(
        "--admission",
        default="admit",
        choices=("admit", "reject", "defer"),
        help="admission policy at the intake gate",
    )
    serve.add_argument(
        "--intake-bound",
        type=_positive_int,
        default=None,
        metavar="N",
        help="max admitted-but-undrained queries before the gate trips",
    )
    serve.add_argument(
        "--max-pending-buckets",
        type=_positive_int,
        default=None,
        metavar="N",
        help="max distinct pending buckets across in-flight admissions",
    )
    serve.add_argument(
        "--max-client-qps",
        type=float,
        default=None,
        metavar="QPS",
        help="per-client offered-rate limit over the trailing minute",
    )
    serve.add_argument(
        "--clients",
        type=_positive_int,
        default=4,
        metavar="N",
        help="synthetic client pool size (queries hash onto it)",
    )
    serve.add_argument(
        "--deadline-mix",
        default=None,
        metavar="SPEC",
        help=(
            "deadline class mix as name=weight,... "
            "(classes: interactive, standard, batch)"
        ),
    )
    serve.add_argument(
        "--workers",
        type=_positive_int,
        default=1,
        metavar="N",
        help="shard workers (>1 serves through the parallel engine)",
    )
    serve.add_argument(
        "--backend",
        default=None,
        choices=("virtual", "process"),
        help=(
            "execution backend when serving with multiple workers "
            "(requires --workers > 1; default: virtual)"
        ),
    )
    serve.add_argument(
        "--store-path",
        default=None,
        metavar="FILE",
        help="serve from an ingested .lrbs bucket store (real storage I/O)",
    )
    serve.add_argument(
        "--live-series-window-ms",
        type=float,
        default=None,
        metavar="MS",
        help=(
            "sample live wall-clock occupancy series (open streams, pending "
            "admissions, chunks) every MS real milliseconds; real-domain "
            "telemetry, never parity-asserted"
        ),
    )
    serve.add_argument(
        "--metrics-out",
        default=None,
        metavar="FILE",
        help=(
            "write the serving run's merged metrics snapshot (including any "
            "live series) as JSON for 'liferaft inspect'/'liferaft report'"
        ),
    )

    ingest = subparsers.add_parser(
        "ingest",
        help=(
            "materialise a partition layout (or a synthetic sky catalog) as "
            "a columnar on-disk bucket store file"
        ),
    )
    ingest.add_argument("--out", required=True, metavar="FILE", help="store file to write")
    ingest.add_argument("--scale", default="small", choices=sorted(SCALES))
    ingest.add_argument(
        "--bucket-count",
        type=_positive_int,
        default=None,
        metavar="N",
        help="override the scale's bucket count",
    )
    ingest.add_argument(
        "--rows-per-bucket",
        type=_positive_int,
        default=None,
        metavar="N",
        help=(
            "physical rows materialised per bucket (default 512; cost-model "
            "numbers always come from the layout's full object counts)"
        ),
    )
    ingest.add_argument("--seed", type=int, default=8675309)
    ingest.add_argument(
        "--workers",
        type=_positive_int,
        default=1,
        metavar="N",
        help=(
            "processes synthesising and encoding bucket pages in parallel "
            "(single-writer assembly keeps the file byte-identical to a "
            "serial ingest; density ingests only)"
        ),
    )
    ingest.add_argument(
        "--sky-objects",
        type=_positive_int,
        default=None,
        metavar="N",
        help=(
            "instead of materialising the scale's density layout, generate "
            "a synthetic sky of N objects and ingest it exactly (equal-"
            "population partitioning over the generated catalog)"
        ),
    )
    ingest.add_argument(
        "--objects-per-bucket",
        type=_positive_int,
        default=None,
        metavar="N",
        help="bucket population for --sky-objects ingests (default 10,000)",
    )

    run = subparsers.add_parser(
        "run",
        help=(
            "replay one trace under one policy and print the virtual-clock "
            "summary (optionally against an on-disk bucket store)"
        ),
    )
    run.add_argument("--scale", default="small", choices=sorted(SCALES))
    run.add_argument("--seed", type=int, default=8675309)
    run.add_argument("--policy", default="liferaft", help="scheduling policy name")
    run.add_argument(
        "--alpha", type=float, default=0.25, help="LifeRaft age bias (starvation knob)"
    )
    run.add_argument(
        "--saturation",
        type=float,
        default=None,
        metavar="QPS",
        help="replay arrival rate (default: the trace's attached arrivals)",
    )
    run.add_argument(
        "--workers",
        type=_positive_int,
        default=1,
        metavar="N",
        help="shard workers (>1 runs the parallel engine)",
    )
    run.add_argument(
        "--backend",
        default=None,
        choices=("virtual", "process"),
        help="execution backend when --workers > 1 (default: virtual)",
    )
    run.add_argument(
        "--store-path",
        default=None,
        metavar="FILE",
        help="replay against an ingested .lrbs bucket store (real storage I/O)",
    )
    run.add_argument(
        "--bucket-count",
        type=_positive_int,
        default=None,
        metavar="N",
        help="override the scale's bucket count (in-memory runs only)",
    )
    run.add_argument(
        "--verify-against-memory",
        action="store_true",
        help=(
            "run the same trace twice — file-backed and in-memory — and "
            "fail unless every virtual-clock total is identical "
            "(requires --store-path)"
        ),
    )
    run.add_argument(
        "--checkpoint-dir",
        default=None,
        metavar="DIR",
        help=(
            "write .lrcp shard checkpoints to DIR (enables the reliability "
            "subsystem; default without --checkpoint-every/--inject-crash: "
            "off).  Omitting DIR while other reliability flags are set uses "
            "a private temporary directory"
        ),
    )
    run.add_argument(
        "--checkpoint-every",
        default=None,
        metavar="CADENCE",
        help=(
            "checkpoint cadence: 'windows:K' (every K window barriers) or "
            "'interval:MS' (every MS of virtual time); default windows:1 "
            "when the reliability subsystem is active"
        ),
    )
    run.add_argument(
        "--inject-crash",
        action="append",
        default=None,
        metavar="W@N",
        help=(
            "deterministically kill shard worker W during window N and "
            "recover it from its latest checkpoint (repeatable, or a comma "
            "list; real SIGKILL on --backend process).  Crash injection "
            "disables work stealing so the recovered run is bit-comparable "
            "to an uninterrupted one"
        ),
    )
    run.add_argument(
        "--checkpoint-window-ms",
        type=float,
        default=None,
        metavar="MS",
        help=(
            "virtual-time window between reliability barriers (default: "
            "the steal quantum, 64 bucket reads)"
        ),
    )
    run.add_argument(
        "--verify-recovery",
        action="store_true",
        help=(
            "after a crash-injected run, replay the same trace without "
            "faults and fail unless every virtual-clock total is identical "
            "(requires --inject-crash)"
        ),
    )
    run.add_argument(
        "--scale-down",
        action="append",
        default=None,
        metavar="W@N",
        help=(
            "planned departure: shard worker W leaves at window barrier N, "
            "migrating every queue to the survivors (repeatable, or a "
            "comma list; enables the reliability subsystem)"
        ),
    )
    run.add_argument(
        "--scale-up",
        action="append",
        default=None,
        metavar="N",
        help=(
            "planned join: one cold shard worker spawns at window barrier "
            "N and acquires work through steal rounds (repeatable, or a "
            "comma list; requires stealing, so it cannot be combined with "
            "--inject-crash)"
        ),
    )
    run.add_argument(
        "--record-trace",
        default=None,
        metavar="FILE",
        help=(
            "record the run's arrival stream and result digest as a .lrtr "
            "trace FILE for 'liferaft replay'"
        ),
    )
    run.add_argument(
        "--metrics-out",
        default=None,
        metavar="FILE",
        help=(
            "write the run's merged metrics snapshot (virtual + real "
            "domains) as JSON; inspect it with 'liferaft inspect FILE'"
        ),
    )
    run.add_argument(
        "--trace-out",
        default=None,
        metavar="FILE",
        help=(
            "write the run's span timeline as Chrome-trace JSON "
            "(load it in Perfetto or chrome://tracing)"
        ),
    )
    run.add_argument(
        "--series-window-ms",
        type=float,
        default=None,
        metavar="MS",
        help=(
            "virtual-time window between telemetry series barriers "
            "(default: 64 bucket reads); purely an observation cadence"
        ),
    )
    run.add_argument(
        "--archive-out",
        default=None,
        metavar="FILE",
        help=(
            "write a .lrrun run archive (spec + metrics + per-query cost "
            "ledger + result digest) for later 'liferaft compare'"
        ),
    )

    replay = subparsers.add_parser(
        "replay",
        help=(
            "re-run a recorded .lrtr trace and verify the result digest is "
            "bit-identical to the recording"
        ),
    )
    replay.add_argument("trace", metavar="FILE", help=".lrtr trace file to replay")
    replay.add_argument(
        "--workers",
        type=_positive_int,
        default=None,
        metavar="N",
        help="shard workers (default: the recorded worker count)",
    )
    replay.add_argument(
        "--backend",
        default=None,
        choices=("virtual", "process"),
        help="execution backend when replaying with multiple workers",
    )
    replay.add_argument(
        "--store-path",
        default=None,
        metavar="FILE",
        help="replay against an ingested .lrbs bucket store",
    )
    replay.add_argument(
        "--no-verify",
        action="store_true",
        help="skip the digest comparison (report-only replay)",
    )

    scenarios = subparsers.add_parser(
        "scenarios",
        help=(
            "list the adversarial scenario library, or record one scenario "
            "as a .lrtr trace fixture"
        ),
    )
    scenarios.add_argument(
        "--record",
        default=None,
        metavar="NAME",
        help="scenario to run serially and record (see the bare listing)",
    )
    scenarios.add_argument(
        "--out", default=None, metavar="FILE", help=".lrtr file to write"
    )
    scenarios.add_argument(
        "--queries",
        type=_positive_int,
        default=None,
        metavar="N",
        help="override the scenario's default query count",
    )
    scenarios.add_argument(
        "--buckets",
        type=_positive_int,
        default=None,
        metavar="N",
        help="override the scenario's default bucket count",
    )
    scenarios.add_argument(
        "--seed", type=int, default=None, help="override the scenario's default seed"
    )

    inspect_cmd = subparsers.add_parser(
        "inspect",
        help=(
            "pretty-print a metrics snapshot written by "
            "'liferaft run --metrics-out'"
        ),
    )
    inspect_cmd.add_argument(
        "metrics", metavar="FILE", help="metrics snapshot (.json) to inspect"
    )
    inspect_cmd.add_argument(
        "--diff",
        default=None,
        metavar="OTHER",
        help=(
            "compare FILE against a second snapshot and print per-metric "
            "deltas instead of the summary table"
        ),
    )

    report = subparsers.add_parser(
        "report",
        help=(
            "render a full run report (metrics, time series, SLA summary, "
            "recovery/scale events) from an exported metrics snapshot"
        ),
    )
    report.add_argument(
        "metrics", metavar="FILE", help="metrics snapshot (.json) to report on"
    )
    report.add_argument(
        "--format",
        default="text",
        choices=("text", "json"),
        help="output format: human-readable text (default) or machine-readable JSON",
    )

    compare = subparsers.add_parser(
        "compare",
        help=(
            "diff two .lrrun run archives: per-metric (virtual domain) and "
            "per-query cost-ledger deltas, with drift exit codes "
            "(0 none, 1 telemetry drift, 2 result-digest drift)"
        ),
    )
    compare.add_argument("archive_a", metavar="A", help="baseline .lrrun archive")
    compare.add_argument("archive_b", metavar="B", help="candidate .lrrun archive")

    envelopes = subparsers.add_parser(
        "envelopes",
        help=(
            "check or (re-)record the committed per-scenario SLA envelope "
            "fixtures (admission rates, SLA attainment, completion counts)"
        ),
    )
    envelopes.add_argument(
        "names",
        nargs="*",
        metavar="SCENARIO",
        help="scenarios to check/record (default: the whole catalog)",
    )
    group = envelopes.add_mutually_exclusive_group(required=True)
    group.add_argument(
        "--check",
        action="store_true",
        help="re-derive each envelope and fail on any drift from its fixture",
    )
    group.add_argument(
        "--record",
        action="store_true",
        help="run each scenario and (re-)write its envelope fixture",
    )
    envelopes.add_argument(
        "--dir",
        default=None,
        metavar="DIR",
        help="fixture directory (default: tests/fixtures/envelopes)",
    )

    subparsers.add_parser("list", help="list available experiments")
    return parser


def worker_sweep(max_workers: int) -> List[int]:
    """Powers of two up to *max_workers*, always ending at *max_workers*."""
    if max_workers <= 0:
        raise ValueError("--workers must be positive")
    sweep: List[int] = []
    count = 1
    while count < max_workers:
        sweep.append(count)
        count *= 2
    sweep.append(max_workers)
    return sweep


def _run_experiments(
    names: List[str],
    scale: str,
    workers: Optional[int] = None,
    shard_strategy: Optional[str] = None,
    backend: Optional[str] = None,
    store_path: Optional[str] = None,
) -> int:
    results = run_all(
        scale=scale,
        names=names or None,
        workers=worker_sweep(workers) if workers is not None else None,
        shard_strategy=shard_strategy,
        backend=backend,
        store_path=store_path,
    )
    for result in results:
        print(result.render())
        print()
    return 0


def _run_trace(scale: str, seed: int) -> int:
    trace = build_trace(scale, seed=seed)
    stats = TraceStatistics(trace.queries)
    print(f"trace: {len(trace)} queries, {trace.total_objects()} cross-match objects")
    for key, value in stats.describe().items():
        print(f"  {key}: {value:.4g}")
    return 0


def _run_ingest(args: argparse.Namespace) -> int:
    from repro.experiments.common import scale_preset
    from repro.storage.ingest import (
        DEFAULT_ROWS_PER_BUCKET,
        ingest_catalog,
        materialize_layout,
    )
    from repro.storage.partitioner import BucketPartitioner

    if args.sky_objects is not None:
        from repro.catalog.generator import SkyGenerator, SkyGeneratorConfig

        if args.rows_per_bucket is not None or args.bucket_count is not None or args.workers > 1:
            raise SystemExit(
                "--rows-per-bucket/--bucket-count/--workers apply to density "
                "ingests only; a --sky-objects ingest writes the generated "
                "catalog exactly (size it with --sky-objects and "
                "--objects-per-bucket)"
            )
        generator = SkyGenerator(SkyGeneratorConfig(object_count=args.sky_objects, seed=args.seed))
        table = generator.generate("sdss")
        manifest = ingest_catalog(
            args.out, table, objects_per_bucket=args.objects_per_bucket or 10_000
        )
        mode = f"synthetic sky ({args.sky_objects} objects, exact rows)"
    else:
        if args.objects_per_bucket is not None:
            raise SystemExit(
                "--objects-per-bucket applies to --sky-objects ingests only; "
                "density ingests take their bucket population from the layout"
            )
        bucket_count = args.bucket_count or scale_preset(args.scale).bucket_count
        layout = BucketPartitioner().partition_density(bucket_count)
        manifest = materialize_layout(
            args.out,
            layout,
            rows_per_bucket=args.rows_per_bucket or DEFAULT_ROWS_PER_BUCKET,
            seed=args.seed,
            workers=args.workers,
        )
        mode = f"density layout ({args.scale} scale)"
    print(f"ingested {mode} -> {manifest.path}")
    print(
        f"  generation {manifest.generation} | {manifest.bucket_count} buckets | "
        f"{manifest.total_objects:,} layout objects | "
        f"{manifest.total_rows:,} materialised rows | "
        f"{manifest.file_bytes / 1024 / 1024:.2f} MiB"
    )
    return 0


def _build_reliability(args: argparse.Namespace):
    """Assemble a ReliabilityConfig from the run command's flags (or None)."""
    if (
        args.checkpoint_dir is None
        and args.checkpoint_every is None
        and args.inject_crash is None
        and args.scale_down is None
        and args.scale_up is None
    ):
        if args.checkpoint_window_ms is not None:
            # A bare tuning knob must not silently turn the subsystem on.
            raise SystemExit(
                "--checkpoint-window-ms tunes the reliability window and "
                "requires --checkpoint-dir, --checkpoint-every, "
                "--inject-crash, --scale-down or --scale-up"
            )
        return None
    from repro.reliability import FaultPlan, ReliabilityConfig, ScalePlan

    if args.inject_crash and args.scale_up:
        # Crash injection disables stealing (bit-comparability), but a
        # joining worker can only acquire work through steal rounds.
        raise SystemExit(
            "--inject-crash cannot be combined with --scale-up: crash "
            "injection disables work stealing, and a joining worker "
            "acquires work only through steal rounds"
        )
    try:
        faults = FaultPlan.parse(args.inject_crash) if args.inject_crash else None
        scale = (
            ScalePlan.parse(args.scale_down or (), args.scale_up or ())
            if args.scale_down or args.scale_up
            else None
        )
        if scale:
            scale.validate(args.workers)
        total_workers = args.workers + (scale.total_ups() if scale else 0)
        if faults:
            for point in faults.crashes:
                if point.worker_id >= total_workers:
                    raise ValueError(
                        f"--inject-crash {point.spec} targets worker "
                        f"{point.worker_id}, but the run has workers "
                        f"0..{total_workers - 1} (worker ids are 0-based)"
                    )
        return ReliabilityConfig(
            checkpoint_dir=args.checkpoint_dir,
            cadence=args.checkpoint_every or "windows:1",
            faults=faults,
            scale=scale,
            window_quantum_ms=args.checkpoint_window_ms,
        )
    except ValueError as error:
        raise SystemExit(str(error)) from error


def _single_run(
    simulator,
    queries,
    args: argparse.Namespace,
    store_path,
    reliability=None,
    enable_stealing: bool = True,
    record_trace=None,
    metrics_out=None,
    trace_out=None,
    archive_out=None,
):
    from repro.sim.runspec import RunSpec

    # Reliability runs always go through the parallel path: RunSpec's
    # dispatch sends any spec with a reliability config (or workers > 1)
    # to the parallel engine, whose window barriers host the checkpoints
    # (a 1-worker parallel run reproduces the serial engine exactly —
    # the parity tests pin that down).
    return simulator.execute(
        queries,
        RunSpec(
            policy=args.policy,
            alpha=args.alpha,
            workers=args.workers,
            backend=args.backend if args.workers > 1 or reliability is not None else None,
            enable_stealing=enable_stealing,
            reliability=reliability,
            store_path=store_path,
            record_trace=record_trace,
            metrics_out=metrics_out,
            trace_out=trace_out,
            archive_out=archive_out,
            series_window_ms=getattr(args, "series_window_ms", None),
        ),
    )


def _run_single(args: argparse.Namespace) -> int:
    from repro.sim.simulator import VIRTUAL_CLOCK_PARITY_FIELDS, Simulator

    if args.backend is not None and args.workers <= 1:
        raise SystemExit("--backend requires --workers > 1")
    if args.verify_against_memory and args.store_path is None:
        raise SystemExit("--verify-against-memory requires --store-path")
    if args.verify_recovery and not args.inject_crash:
        raise SystemExit("--verify-recovery requires --inject-crash")
    if args.store_path is not None:
        if args.bucket_count is not None:
            raise SystemExit("--bucket-count cannot override an ingested store's layout")
        simulator = Simulator.from_store(args.store_path)
        bucket_count = len(simulator.layout)
    else:
        bucket_count = args.bucket_count
        simulator = build_simulator(
            args.scale, **({"bucket_count": bucket_count} if bucket_count else {})
        )
        bucket_count = len(simulator.layout)
    trace = build_trace(args.scale, seed=args.seed, bucket_count=bucket_count)
    if args.saturation is not None:
        trace = trace.with_saturation(args.saturation)

    reliability = _build_reliability(args)
    # Injected crashes disable stealing: each shard is then a pure function
    # of its schedule, so the recovered run is bit-comparable to a clean one.
    stealing = not (reliability is not None and reliability.faults)
    result = _single_run(
        simulator,
        trace.queries,
        args,
        store_path=args.store_path,
        reliability=reliability,
        enable_stealing=stealing,
        record_trace=args.record_trace,
        metrics_out=args.metrics_out,
        trace_out=args.trace_out,
        archive_out=args.archive_out,
    )
    if args.record_trace:
        print(f"recorded trace -> {args.record_trace}")
    if args.metrics_out:
        print(f"wrote metrics snapshot -> {args.metrics_out}")
    if args.trace_out:
        print(f"wrote span timeline -> {args.trace_out}")
    if args.archive_out:
        print(f"wrote run archive -> {args.archive_out}")
    engine = (
        "serial engine"
        if args.workers == 1 and reliability is None
        else f"{result.backend} backend x{args.workers}"
    )
    print(
        f"run: {result.policy_name} on {engine}, {result.store_backend} store "
        f"({len(trace)} queries, {bucket_count} buckets)"
    )
    rows = [(field, getattr(result, field)) for field in VIRTUAL_CLOCK_PARITY_FIELDS]
    rows.append(("makespan_s", result.makespan_s))
    rows.append(("avg_response_s", result.avg_response_time_s))
    if result.store_backend == "file":
        rows.append(("real_read_s", result.real_read_s))
    print(render_table(("metric", "value"), rows))
    if result.reliability is not None:
        print("\nreliability:")
        print(
            render_table(
                ("metric", "value"),
                list(result.reliability.describe().items()),
            )
        )
    if result.serving is not None:
        summary = result.serving.deadline_summary
        print("\nserving SLA:")
        print(render_table(("metric", "value"), sorted(summary.items())))

    status = 0
    if args.verify_recovery:
        planned = len(reliability.faults) if reliability and reliability.faults else 0
        injected = result.reliability.crashes_injected if result.reliability else 0
        if injected < planned:
            # A crash point whose window the run never reached (or whose
            # shard had already drained) verifies nothing; fail loudly
            # rather than comparing two effectively-clean runs.
            print(
                f"\nRECOVERY VERIFICATION INVALID: only {injected} of "
                f"{planned} planned crashes fired — the run drained before "
                "the crash windows (shrink --checkpoint-window-ms or the "
                "--inject-crash window indices)"
            )
            return 1
        clean = _single_run(
            simulator,
            trace.queries,
            args,
            store_path=args.store_path,
            reliability=None,
            enable_stealing=stealing,
        )
        mismatches = [
            (field, getattr(result, field), getattr(clean, field))
            for field in VIRTUAL_CLOCK_PARITY_FIELDS
            if getattr(result, field) != getattr(clean, field)
        ]
        if mismatches:
            print("\nRECOVERY PARITY FAILURE: crash-injected run diverged from clean run")
            print(render_table(("metric", "crashed", "clean"), mismatches))
            status = 1
        else:
            print(
                f"\nrecovery parity OK: all {len(VIRTUAL_CLOCK_PARITY_FIELDS)} "
                "virtual-clock totals identical across crash-injected and clean runs"
            )

    if not args.verify_against_memory:
        return status
    memory = _single_run(
        simulator,
        trace.queries,
        args,
        store_path=None,
        reliability=reliability,
        enable_stealing=stealing,
    )
    mismatches = []
    for field in VIRTUAL_CLOCK_PARITY_FIELDS:
        file_value, memory_value = getattr(result, field), getattr(memory, field)
        if file_value != memory_value:
            mismatches.append((field, file_value, memory_value))
    if mismatches:
        print("\nPARITY FAILURE: file-backed run diverged from in-memory run")
        print(render_table(("metric", "file", "memory"), mismatches))
        return 1
    print(
        f"\nparity OK: all {len(VIRTUAL_CLOCK_PARITY_FIELDS)} virtual-clock totals identical "
        "across file-backed and in-memory stores"
    )
    return status


def _run_replay(args: argparse.Namespace) -> int:
    from repro.workload.replay import replay_recorded

    try:
        outcome = replay_recorded(
            args.trace,
            workers=args.workers,
            backend=args.backend,
            store_path=args.store_path,
        )
    except (OSError, ValueError) as error:
        raise SystemExit(str(error)) from error
    trace = outcome.trace
    result = outcome.result
    meta = trace.meta
    print(
        f"replayed {args.trace}: {len(trace)} queries "
        f"(recorded on {meta.get('backend', '?')} x{meta.get('workers', '?')}, "
        f"policy {meta.get('policy', '?')})"
    )
    print(
        f"  completed {result.completed_queries} | "
        f"makespan {result.makespan_s:.2f}s | "
        f"throughput {result.throughput_qps:.3f} qps"
    )
    if args.no_verify:
        print("  digest check skipped (--no-verify)")
        return 0
    if not trace.expected_digest:
        print("  trace carries no expected digest; nothing to verify")
        return 0
    if not outcome.digest_checked:
        print(
            "  digest not comparable: replay configuration (workers/stealing) "
            "differs from the recording — completion sets still match, but "
            "per-query timings legitimately shift"
        )
        return 0
    if outcome.digest_matches:
        print(f"  digest OK: {result.result_digest}")
        return 0
    print(
        "  DIGEST MISMATCH:\n"
        f"    expected {trace.expected_digest}\n"
        f"    got      {result.result_digest}"
    )
    return 1


def _run_scenarios(args: argparse.Namespace) -> int:
    from repro.workload.scenarios import SCENARIOS, record_scenario

    if args.record is None:
        if args.out is not None:
            raise SystemExit("--out requires --record NAME")
        width = max(len(name) for name in SCENARIOS)
        for name, scenario in SCENARIOS.items():
            print(
                f"{name:<{width}}  {scenario.description} "
                f"(defaults: {scenario.default_query_count} queries, "
                f"{scenario.default_bucket_count} buckets, "
                f"seed {scenario.default_seed})"
            )
        return 0
    if args.out is None:
        raise SystemExit("--record requires --out FILE")
    try:
        info = record_scenario(
            args.record,
            args.out,
            query_count=args.queries,
            bucket_count=args.buckets,
            seed=args.seed,
        )
    except KeyError as error:
        raise SystemExit(error.args[0]) from error
    print(
        f"recorded scenario {args.record!r} -> {info.path} "
        f"({info.query_count} queries, {info.byte_size / 1024:.1f} KiB)"
    )
    return 0


def _run_serve(args: argparse.Namespace) -> int:
    from repro.service.deadline import parse_deadline_mix
    from repro.service.frontend import ServiceConfig

    if args.store_path is not None:
        from repro.sim.simulator import Simulator

        simulator = Simulator.from_store(args.store_path)
    else:
        simulator = build_simulator(args.scale)
    trace = build_trace(args.scale, seed=args.seed, bucket_count=len(simulator.layout))
    if args.saturation is not None:
        trace = trace.with_saturation(args.saturation)
    config_kwargs = dict(
        admission=args.admission,
        intake_bound=args.intake_bound,
        max_pending_buckets=args.max_pending_buckets,
        max_client_qps=args.max_client_qps,
        clients=args.clients,
        seed=args.seed,
        live_series_window_ms=args.live_series_window_ms,
    )
    if args.deadline_mix:
        config_kwargs["deadline_mix"] = parse_deadline_mix(args.deadline_mix)
    service = ServiceConfig(**config_kwargs)
    from repro.sim.runspec import RunSpec

    if args.workers <= 1 and args.backend is not None:
        raise SystemExit("--backend requires --workers > 1 (the serial engine has no backend)")
    result = simulator.execute(
        trace.queries,
        RunSpec(
            policy="liferaft",
            alpha=args.alpha,
            workers=args.workers,
            backend=args.backend,
            service=service,
            metrics_out=args.metrics_out,
        ),
    )
    if args.metrics_out:
        print(f"wrote metrics snapshot -> {args.metrics_out}")
    engine_label = (
        f"{result.backend} backend x{args.workers}" if args.workers > 1 else "serial engine"
    )
    serving = result.serving
    assert serving is not None
    print(
        f"serving report ({serving.admission_policy} admission, "
        f"{serving.clients} clients, alpha={args.alpha:g}, {engine_label}, "
        f"{result.store_backend} store)"
    )
    print(
        f"  offered {serving.offered} | admitted {serving.admitted} | "
        f"rejected {serving.rejected} ({serving.rejection_rate:.1%}) | "
        f"deferrals {serving.deferrals}"
    )
    print(
        f"  completed {serving.completed} | chunks {serving.chunks} | "
        f"avg TTFR {serving.avg_time_to_first_result_s:.2f}s | "
        f"avg completion {serving.avg_time_to_completion_s:.2f}s"
    )
    print()
    print(
        render_table(
            (
                "class",
                "admitted",
                "rejected",
                "completed",
                "first-result SLA",
                "completion SLA",
            ),
            serving.deadline_rows,
        )
    )
    summary = serving.deadline_summary
    print(
        f"\n  SLA overall: first-result {summary['first_result_hit_rate']:.1%} | "
        f"completion {summary['completion_hit_rate']:.1%} over "
        f"{int(summary['completed'])} completed"
    )
    return 0


def _run_inspect(args: argparse.Namespace) -> int:
    from repro.telemetry.inspect import domain_counts, load_snapshot, summary_rows
    from repro.telemetry.report import diff_snapshots, render_diff

    try:
        snapshot = load_snapshot(args.metrics)
        other = load_snapshot(args.diff) if args.diff else None
    except (OSError, ValueError) as error:
        raise SystemExit(str(error)) from error
    if other is not None:
        print(render_diff(snapshot, other, label_a=args.metrics, label_b=args.diff))
        return 1 if diff_snapshots(snapshot, other) else 0
    virtual, real = domain_counts(snapshot)
    print(
        f"metrics snapshot {args.metrics}: "
        f"{virtual} virtual-domain + {real} real-domain metrics"
    )
    print(render_table(("domain", "metric", "type", "value"), summary_rows(snapshot)))
    return 0


def _run_report(args: argparse.Namespace) -> int:
    from repro.telemetry.inspect import load_snapshot
    from repro.telemetry.report import render_report, report_to_json

    try:
        snapshot = load_snapshot(args.metrics)
    except (OSError, ValueError) as error:
        raise SystemExit(str(error)) from error
    if args.format == "json":
        print(json.dumps(report_to_json(snapshot), sort_keys=True, indent=2))
        return 0
    print(f"run report from {args.metrics}")
    print(render_report(snapshot))
    return 0


def _run_compare(args: argparse.Namespace) -> int:
    from repro.telemetry.archive import (
        ArchiveFormatError,
        compare_archives,
        read_run_archive,
        render_compare,
    )

    try:
        archive_a = read_run_archive(args.archive_a)
        archive_b = read_run_archive(args.archive_b)
    except (OSError, ArchiveFormatError) as error:
        raise SystemExit(str(error)) from error
    report = compare_archives(archive_a, archive_b)
    print(render_compare(report, label_a=args.archive_a, label_b=args.archive_b))
    return report.exit_code


def _run_envelopes(args: argparse.Namespace) -> int:
    from repro.workload.envelopes import (
        DEFAULT_ENVELOPE_DIR,
        check_envelope,
        compute_envelope,
        write_envelope,
    )
    from repro.workload.scenarios import SCENARIOS

    directory = args.dir if args.dir is not None else DEFAULT_ENVELOPE_DIR
    names = args.names or sorted(SCENARIOS)
    unknown = [name for name in names if name not in SCENARIOS]
    if unknown:
        raise SystemExit(
            f"unknown scenarios {unknown}; available: {sorted(SCENARIOS)}"
        )
    if args.record:
        for name in names:
            path = write_envelope(compute_envelope(name), directory)
            print(f"recorded envelope {name} -> {path}")
        return 0
    failures = 0
    for name in names:
        try:
            mismatches = check_envelope(name, directory)
        except (OSError, ValueError) as error:
            raise SystemExit(str(error)) from error
        if mismatches:
            failures += 1
            print(f"ENVELOPE DRIFT: {name}")
            for line in mismatches:
                print(f"  {line}")
        else:
            print(f"envelope OK: {name}")
    if failures:
        print(
            f"\n{failures} of {len(names)} envelopes drifted; if the change "
            "is intentional, re-record with 'liferaft envelopes --record' "
            "and commit the fixture diff"
        )
        return 1
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "list":
        for name in sorted(EXPERIMENTS):
            print(name)
        return 0
    if args.command == "experiments":
        return _run_experiments(
            list(args.names),
            args.scale,
            workers=args.workers,
            shard_strategy=args.shard_strategy,
            backend=args.backend,
            store_path=args.store_path,
        )
    if args.command == "trace":
        return _run_trace(args.scale, args.seed)
    if args.command == "serve":
        return _run_serve(args)
    if args.command == "ingest":
        return _run_ingest(args)
    if args.command == "run":
        return _run_single(args)
    if args.command == "replay":
        return _run_replay(args)
    if args.command == "scenarios":
        return _run_scenarios(args)
    if args.command == "inspect":
        return _run_inspect(args)
    if args.command == "report":
        return _run_report(args)
    if args.command == "compare":
        return _run_compare(args)
    if args.command == "envelopes":
        return _run_envelopes(args)
    parser.error(f"unknown command {args.command!r}")
    return 2


if __name__ == "__main__":
    sys.exit(main())
