"""Command-line interface: run experiments and inspect traces.

Examples
--------
Run the whole experiment suite at the default scale::

    liferaft experiments --scale default

Run only the headline scheduling comparison and the cache study::

    liferaft experiments figure7 cache_hits --scale small

Run the worker-scaling experiment, sweeping 1..8 parallel workers::

    liferaft experiments scaling --scale small --workers 8

Measure real wall-clock speedup with one OS process per shard worker::

    liferaft experiments scaling --scale small --workers 4 --backend process

Print the workload characterisation of a freshly generated trace::

    liferaft trace --scale small
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.experiments import EXPERIMENTS, run_all
from repro.experiments.common import SCALES, build_trace
from repro.workload.stats import TraceStatistics


def _positive_int(text: str) -> int:
    """argparse type for flags that must be strictly positive integers."""
    value = int(text)
    if value <= 0:
        raise argparse.ArgumentTypeError(f"must be a positive integer, got {value}")
    return value


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="liferaft",
        description="LifeRaft (CIDR 2009) reproduction: experiments and trace tools",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    experiments = subparsers.add_parser(
        "experiments", help="run the paper's experiments and print their tables"
    )
    experiments.add_argument(
        "names",
        nargs="*",
        choices=sorted(EXPERIMENTS) + [[]],
        help="experiments to run (default: all)",
    )
    experiments.add_argument(
        "--scale",
        default="small",
        choices=sorted(SCALES),
        help="experiment scale (trace and partition size)",
    )
    experiments.add_argument(
        "--workers",
        type=_positive_int,
        default=None,
        metavar="N",
        help=(
            "max parallel workers for the scaling experiment: sweeps powers "
            "of two up to N (experiments without a parallel mode ignore it)"
        ),
    )
    experiments.add_argument(
        "--shard-strategy",
        default=None,
        choices=("round_robin", "zone"),
        help="bucket-to-worker assignment used by the scaling experiment",
    )
    experiments.add_argument(
        "--backend",
        default=None,
        choices=("virtual", "process"),
        help=(
            "execution backend for the scaling experiment: 'virtual' "
            "interleaves shard workers in-process (deterministic), "
            "'process' runs one OS process per shard for real wall-clock "
            "speedup"
        ),
    )

    trace = subparsers.add_parser("trace", help="generate a trace and print its statistics")
    trace.add_argument("--scale", default="small", choices=sorted(SCALES))
    trace.add_argument("--seed", type=int, default=8675309)

    subparsers.add_parser("list", help="list available experiments")
    return parser


def worker_sweep(max_workers: int) -> List[int]:
    """Powers of two up to *max_workers*, always ending at *max_workers*."""
    if max_workers <= 0:
        raise ValueError("--workers must be positive")
    sweep: List[int] = []
    count = 1
    while count < max_workers:
        sweep.append(count)
        count *= 2
    sweep.append(max_workers)
    return sweep


def _run_experiments(
    names: List[str],
    scale: str,
    workers: Optional[int] = None,
    shard_strategy: Optional[str] = None,
    backend: Optional[str] = None,
) -> int:
    results = run_all(
        scale=scale,
        names=names or None,
        workers=worker_sweep(workers) if workers is not None else None,
        shard_strategy=shard_strategy,
        backend=backend,
    )
    for result in results:
        print(result.render())
        print()
    return 0


def _run_trace(scale: str, seed: int) -> int:
    trace = build_trace(scale, seed=seed)
    stats = TraceStatistics(trace.queries)
    print(f"trace: {len(trace)} queries, {trace.total_objects()} cross-match objects")
    for key, value in stats.describe().items():
        print(f"  {key}: {value:.4g}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "list":
        for name in sorted(EXPERIMENTS):
            print(name)
        return 0
    if args.command == "experiments":
        return _run_experiments(
            list(args.names),
            args.scale,
            workers=args.workers,
            shard_strategy=args.shard_strategy,
            backend=args.backend,
        )
    if args.command == "trace":
        return _run_trace(args.scale, args.seed)
    parser.error(f"unknown command {args.command!r}")
    return 2


if __name__ == "__main__":
    sys.exit(main())
