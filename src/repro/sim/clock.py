"""A virtual clock for discrete-event simulation.

All simulated components express costs in milliseconds; the clock only
moves forward, which catches accounting bugs (a service that would "end
before it started") early.
"""

from __future__ import annotations


class VirtualClock:
    """Monotonically non-decreasing simulated time in milliseconds."""

    def __init__(self, start_ms: float = 0.0) -> None:
        if start_ms < 0:
            raise ValueError("the clock cannot start before time zero")
        self._now_ms = start_ms

    @property
    def now_ms(self) -> float:
        """Current simulated time in milliseconds."""
        return self._now_ms

    @property
    def now_s(self) -> float:
        """Current simulated time in seconds."""
        return self._now_ms / 1000.0

    def advance(self, delta_ms: float) -> float:
        """Move the clock forward by *delta_ms* and return the new time."""
        if delta_ms < 0:
            raise ValueError("cannot advance the clock backwards")
        self._now_ms += delta_ms
        return self._now_ms

    def advance_to(self, time_ms: float) -> float:
        """Jump forward to *time_ms* (no-op if already past it)."""
        if time_ms > self._now_ms:
            self._now_ms = time_ms
        return self._now_ms

    def __repr__(self) -> str:
        return f"VirtualClock(now_ms={self._now_ms:.3f})"
