"""Discrete-event simulation used to drive the evaluation.

The paper measures wall-clock throughput and response time on a real
SQL Server installation.  The reproduction replaces wall-clock time with a
virtual clock advanced by the cost model (``Tb``, ``Tm``, index probe
costs), which makes every experiment deterministic and fast while
preserving the *relative* behaviour of the scheduling policies — the thing
the figures actually compare.

``clock``      a monotonically advancing virtual clock
``events``     a tiny priority event queue (arrivals, service completions)
``stats``      response-time / throughput statistics helpers
``simulator``  the open-system simulator replaying a trace against an engine
"""

from repro.sim.clock import VirtualClock
from repro.sim.events import Event, EventKind, EventQueue
from repro.sim.runspec import DEFAULT_STORE, RunSpec
from repro.sim.stats import ResponseTimeStats, summarize_response_times
from repro.sim.simulator import SimulationConfig, SimulationResult, Simulator, run_policy_comparison

__all__ = [
    "VirtualClock",
    "Event",
    "EventKind",
    "EventQueue",
    "ResponseTimeStats",
    "summarize_response_times",
    "DEFAULT_STORE",
    "RunSpec",
    "SimulationConfig",
    "SimulationResult",
    "Simulator",
    "run_policy_comparison",
]
