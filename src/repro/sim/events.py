"""A minimal event queue for discrete-event simulation.

The main simulator's service loop is sequential (one bucket batch at a
time), so it mostly needs ordered query arrivals; the federation examples
additionally schedule network-transfer completions.  Both use this queue.
"""

from __future__ import annotations

import enum
import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Iterator, List, Optional, Tuple


class EventKind(enum.Enum):
    """Categories of simulated events."""

    QUERY_ARRIVAL = "query_arrival"
    SERVICE_COMPLETE = "service_complete"
    TRANSFER_COMPLETE = "transfer_complete"
    CONTROL = "control"


@dataclass(frozen=True)
class Event:
    """One scheduled event."""

    time_ms: float
    kind: EventKind
    payload: Any = None

    def __post_init__(self) -> None:
        if self.time_ms < 0:
            raise ValueError("events cannot be scheduled before time zero")


class EventQueue:
    """A priority queue of events ordered by time (FIFO within a timestamp)."""

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, Event]] = []
        self._counter = itertools.count()

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def push(self, event: Event) -> None:
        """Schedule *event*."""
        heapq.heappush(self._heap, (event.time_ms, next(self._counter), event))

    def peek(self) -> Optional[Event]:
        """The earliest pending event, without removing it."""
        if not self._heap:
            return None
        return self._heap[0][2]

    def pop(self) -> Event:
        """Remove and return the earliest pending event."""
        if not self._heap:
            raise IndexError("pop from an empty event queue")
        return heapq.heappop(self._heap)[2]

    def pop_until(self, time_ms: float) -> Iterator[Event]:
        """Yield and remove every event scheduled at or before *time_ms*."""
        while self._heap and self._heap[0][0] <= time_ms:
            yield heapq.heappop(self._heap)[2]

    def next_time_ms(self) -> Optional[float]:
        """Timestamp of the earliest pending event, or ``None`` when empty."""
        if not self._heap:
            return None
        return self._heap[0][0]
