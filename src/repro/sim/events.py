"""Event queues and multi-worker event streams for discrete-event simulation.

The main simulator's service loop is sequential (one bucket batch at a
time), so it mostly needs ordered query arrivals; the federation examples
additionally schedule network-transfer completions.  Both use
:class:`EventQueue`.

The parallel engine additionally emits one event *stream* per worker —
arrivals fanned out to a shard, service completions, steals — which
:class:`WorkerEventLog` records and can merge back into one time-ordered
timeline for tests and trace inspection.
"""

from __future__ import annotations

import enum
import heapq
import itertools
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Tuple


class EventKind(enum.Enum):
    """Categories of simulated events."""

    QUERY_ARRIVAL = "query_arrival"
    SERVICE_COMPLETE = "service_complete"
    TRANSFER_COMPLETE = "transfer_complete"
    WORK_STOLEN = "work_stolen"
    CONTROL = "control"


@dataclass(frozen=True)
class Event:
    """One scheduled event."""

    time_ms: float
    kind: EventKind
    payload: Any = None

    def __post_init__(self) -> None:
        if self.time_ms < 0:
            raise ValueError("events cannot be scheduled before time zero")


class EventQueue:
    """A priority queue of events ordered by time (FIFO within a timestamp)."""

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, Event]] = []
        self._counter = itertools.count()

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def push(self, event: Event) -> None:
        """Schedule *event*."""
        heapq.heappush(self._heap, (event.time_ms, next(self._counter), event))

    def peek(self) -> Optional[Event]:
        """The earliest pending event, without removing it."""
        if not self._heap:
            return None
        return self._heap[0][2]

    def pop(self) -> Event:
        """Remove and return the earliest pending event."""
        if not self._heap:
            raise IndexError("pop from an empty event queue")
        return heapq.heappop(self._heap)[2]

    def pop_until(self, time_ms: float) -> Iterator[Event]:
        """Yield and remove every event scheduled at or before *time_ms*."""
        while self._heap and self._heap[0][0] <= time_ms:
            yield heapq.heappop(self._heap)[2]

    def next_time_ms(self) -> Optional[float]:
        """Timestamp of the earliest pending event, or ``None`` when empty."""
        if not self._heap:
            return None
        return self._heap[0][0]


class WorkerEventLog:
    """Per-worker event streams with a merged, time-ordered view.

    The parallel engine appends events as they happen on each worker's
    virtual timeline (arrivals fanned to the shard, service completions,
    steals).  Within one worker the stream is append-ordered; across
    workers :meth:`merged` re-interleaves by timestamp (stable by record
    order within a timestamp), giving tests one global timeline to assert
    over.
    """

    def __init__(self) -> None:
        self._streams: Dict[int, List[Event]] = {}
        self._order = itertools.count()
        self._sequenced: List[Tuple[float, int, int, Event]] = []

    def record(self, worker_id: int, event: Event) -> None:
        """Append *event* to the stream of *worker_id*."""
        self._streams.setdefault(worker_id, []).append(event)
        self._sequenced.append((event.time_ms, next(self._order), worker_id, event))

    def worker_ids(self) -> List[int]:
        """Workers that have recorded at least one event."""
        return sorted(self._streams)

    def stream(self, worker_id: int) -> List[Event]:
        """The events of one worker, in record order."""
        return list(self._streams.get(worker_id, []))

    def merged(self) -> List[Tuple[int, Event]]:
        """All events as ``(worker_id, event)``, ordered by time."""
        return [
            (worker_id, event)
            for _time, _seq, worker_id, event in sorted(self._sequenced)
        ]

    def counts_by_kind(self) -> Dict[EventKind, int]:
        """How many events of each kind were recorded (all workers)."""
        counts: Dict[EventKind, int] = {}
        for _time, _seq, _worker, event in self._sequenced:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return counts

    def __len__(self) -> int:
        return len(self._sequenced)
