"""The open-system simulator that replays a trace against a LifeRaft engine.

The simulator owns virtual time.  Queries are delivered to the engine at
their arrival timestamps; the engine services one work item at a time (the
scheduler's choice), each service advancing the clock by the cost the
evaluator charges.  Arrivals that occur during a service are enqueued with
their true arrival time, so request ages — and therefore the aged workload
throughput metric — behave exactly as in a live system.

A :class:`SimulationResult` gathers everything the paper's evaluation
reports: query throughput, average response time and its coefficient of
variance, cache hit rate, and per-strategy service counts.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Sequence, Union

from repro.core.baselines import POLICY_NAMES, make_policy
from repro.core.bucket_cache import PAPER_CACHE_BUCKETS
from repro.core.engine import EngineConfig, LifeRaftEngine
from repro.core.metrics import CostModel
from repro.core.scheduler import SchedulingPolicy
from repro.sim.runspec import DEFAULT_STORE, RunSpec
from repro.sim.stats import ResponseTimeStats, summarize_response_times
from repro.storage.bucket_store import BucketStore
from repro.storage.disk_model import calibrated_disk_for_bucket_read
from repro.storage.disk_store import DiskBucketStore, open_disk_store
from repro.storage.format import read_layout
from repro.storage.index import SpatialIndex
from repro.storage.partitioner import BucketPartitioner, PartitionLayout
from repro.telemetry.ledger import build_run_ledger
from repro.telemetry.registry import merge_snapshots, snapshot_to_json
from repro.telemetry.spans import build_chrome_trace, write_chrome_trace
from repro.workload.query import CrossMatchQuery
from repro.workload.trace_io import run_digest, write_trace

if TYPE_CHECKING:
    from repro.reliability.config import ReliabilityReport
    from repro.service.frontend import ServingFrontEnd, ServingReport

__all__ = [
    "POLICY_NAMES",
    "RunSpec",
    "SimulationConfig",
    "SimulationResult",
    "Simulator",
    "VIRTUAL_CLOCK_PARITY_FIELDS",
    "make_policy",
    "run_policy_comparison",
]

#: The :class:`SimulationResult` fields that must be bit-identical across
#: storage tiers (in-memory vs file-backed) and execution backends — the
#: single source of truth for the CLI's ``--verify-against-memory`` gate,
#: the storage demo and the parity docs.  Every deterministic virtual-clock
#: total belongs here; real-time measurements (``real_elapsed_s``,
#: ``real_read_s``) do not.
VIRTUAL_CLOCK_PARITY_FIELDS = (
    "completed_queries",
    "busy_time_s",
    "total_io_s",
    "total_match_s",
    "bucket_services",
    "bucket_reads",
    "cache_hit_rate",
    "throughput_qps",
)


@dataclass(frozen=True)
class SimulationConfig:
    """Static configuration of the simulated site.

    Defaults follow the paper's setup (10,000-object / 40 MB buckets,
    20-bucket cache, paper cost constants); ``bucket_count`` is the scaled
    knob — the paper's SDSS table has ~20,000 buckets, the default here is
    sized for minutes-long laptop runs.
    """

    bucket_count: int = 2_048
    objects_per_bucket: int = 10_000
    bucket_megabytes: float = 40.0
    cache_buckets: int = PAPER_CACHE_BUCKETS
    cost: CostModel = field(default_factory=CostModel.paper_defaults)
    enable_hybrid: bool = True
    hybrid_threshold_fraction: Optional[float] = None
    match_probability: float = 0.85
    #: File-backed runs only: tier-2 decoded-page cache capacity.  ``None``
    #: uses the storage default; ``0`` disables the tier entirely (every
    #: tier-1 miss performs a physical read — the cache ablation's "off"
    #: arm).  Virtual-clock numbers are tier-invariant either way.
    page_cache_buckets: Optional[int] = None

    def __post_init__(self) -> None:
        if self.bucket_count <= 0:
            raise ValueError("bucket_count must be positive")
        if self.page_cache_buckets is not None and self.page_cache_buckets < 0:
            raise ValueError("page_cache_buckets must be non-negative")


@dataclass
class SimulationResult:
    """Outcome of one simulated run of one policy over one trace."""

    policy_name: str
    alpha: Optional[float]
    submitted_queries: int
    completed_queries: int
    makespan_s: float
    busy_time_s: float
    throughput_qps: float
    response_stats: ResponseTimeStats
    cache_hit_rate: float
    bucket_services: int
    bucket_reads: int
    strategy_counts: Dict[str, int]
    total_io_s: float
    total_match_s: float
    saturation_qps: Optional[float] = None
    label: str = ""
    #: Parallel runs only: shard count, steal count and virtual wall clock.
    workers: int = 1
    steals: int = 0
    wall_clock_s: float = 0.0
    #: Execution backend that produced the run ("serial" for :meth:`Simulator.run`).
    backend: str = "serial"
    #: Real (measured) wall-clock seconds of the run, including backend setup.
    real_elapsed_s: float = 0.0
    #: Serving runs only: the front-end's report (intake, streams, SLAs).
    serving: Optional["ServingReport"] = None
    #: Which storage tier served bucket reads: "memory" or "file".
    store_backend: str = "memory"
    #: File-backed runs only: wall-clock seconds spent in physical page
    #: reads + columnar decoding (summed over workers for process runs).
    real_read_s: float = 0.0
    #: File-backed serial runs only: physical page reads that reached the
    #: store file (tier-2 misses) — what the cache ablation compares.
    page_reads: int = 0
    #: Reliability runs only: checkpoints written, crashes, recoveries.
    reliability: Optional["ReliabilityReport"] = None
    #: Merged metrics snapshot of the run (``None`` when the spec disabled
    #: collection).  The virtual domain of this snapshot is bit-identical
    #: across storage tiers and execution backends at a fixed worker count;
    #: the real domain is wall-clock profile and never parity-asserted.
    telemetry: Optional[dict] = None
    #: Per-query cost ledger (``None`` when the spec disabled telemetry):
    #: each query's makespan decomposed into admission/queue/service/IO
    #: components with sharing attribution (see
    #: :mod:`repro.telemetry.ledger`).  Entirely virtual-domain, so
    #: bit-identical across execution backends at a fixed worker count
    #: (stealing off) and across crash/recovery.
    ledger: Optional[dict] = None
    #: SHA-256 over the per-query completion timeline plus every
    #: :data:`VIRTUAL_CLOCK_PARITY_FIELDS` value — equal digests mean
    #: bit-identical virtual-clock outcomes (``liferaft replay`` pins it).
    result_digest: str = ""

    @property
    def avg_response_time_s(self) -> float:
        """Mean query response time in seconds.

        Zero-completed runs — e.g. a serving run whose admission gate shed
        everything — report 0.0: :func:`summarize_response_times` returns
        an all-zero summary for an empty sample (the regression tests in
        ``tests/service/test_frontend.py`` pin this down).
        """
        return self.response_stats.mean_s

    @property
    def response_time_cov(self) -> float:
        """Coefficient of variance of the response time (Figure 7b).

        Like :attr:`avg_response_time_s`, reports 0.0 on zero-completed
        runs (the stats layer never divides by an empty mean).
        """
        return self.response_stats.coefficient_of_variance

    def to_row(self) -> Dict[str, float]:
        """Flatten the result for table rendering."""
        return {
            "policy": self.policy_name,
            "alpha": self.alpha if self.alpha is not None else float("nan"),
            "completed": self.completed_queries,
            "throughput_qps": self.throughput_qps,
            "avg_response_s": self.avg_response_time_s,
            "response_cov": self.response_time_cov,
            "cache_hit_rate": self.cache_hit_rate,
            "bucket_services": self.bucket_services,
            "bucket_reads": self.bucket_reads,
        }


def _stamp_digest(result: SimulationResult, response_times_ms: Dict[int, float]) -> None:
    """Stamp the run's :attr:`SimulationResult.result_digest` in place."""
    result.result_digest = run_digest(
        response_times_ms,
        [float(getattr(result, name)) for name in VIRTUAL_CLOCK_PARITY_FIELDS],
    )


#: Backwards-compatible alias of :data:`repro.sim.runspec.DEFAULT_STORE`.
_DEFAULT_STORE = DEFAULT_STORE


class Simulator:
    """Replays traces against a freshly built engine per run.

    With *store_path* set, every run opens the columnar on-disk bucket
    store at that path instead of building an in-memory
    :class:`BucketStore`: bucket services then perform real seeks, reads
    and columnar decoding while charging identical virtual-clock costs.
    A per-run :attr:`RunSpec.store_path` overrides the default (``None``
    explicitly forces in-memory, which is how the parity checks compare
    the two tiers on one simulator).
    """

    def __init__(
        self,
        config: Optional[SimulationConfig] = None,
        store_path: Optional[Union[str, os.PathLike]] = None,
        _store_layout: Optional[PartitionLayout] = None,
    ) -> None:
        self.config = config or SimulationConfig()
        self.store_path = os.fspath(store_path) if store_path is not None else None
        if self.store_path is not None:
            # The file defines the site: adopt its layout (validating the
            # configured partition size so cost-model assumptions hold).
            # ``_store_layout`` lets :meth:`from_store` hand over the layout
            # it already parsed instead of reading the directory twice.
            self._layout = (
                _store_layout if _store_layout is not None else read_layout(self.store_path)
            )
            if len(self._layout) != self.config.bucket_count:
                raise ValueError(
                    f"store file {self.store_path!r} has {len(self._layout)} "
                    f"buckets but the simulation is configured for "
                    f"{self.config.bucket_count}"
                )
        else:
            self._layout = self._build_layout()

    @classmethod
    def from_store(
        cls,
        store_path: Union[str, os.PathLike],
        config: Optional[SimulationConfig] = None,
    ) -> "Simulator":
        """Build a simulator whose site is defined by a store file.

        When *config* is omitted it is derived from the file (bucket
        count from the directory, paper defaults elsewhere), so any
        ingested store — density-materialised or catalog-partitioned —
        can be replayed against directly.
        """
        layout = read_layout(store_path)
        if config is None:
            config = SimulationConfig(bucket_count=len(layout))
        return cls(config, store_path=store_path, _store_layout=layout)

    @property
    def layout(self) -> PartitionLayout:
        """The partition layout shared by every run of this simulator."""
        return self._layout

    def _build_layout(self) -> PartitionLayout:
        partitioner = BucketPartitioner(
            objects_per_bucket=self.config.objects_per_bucket,
            bucket_megabytes=self.config.bucket_megabytes,
        )
        return partitioner.partition_density(self.config.bucket_count)

    def _resolve_store_path(self, store_path) -> Optional[str]:
        if store_path is _DEFAULT_STORE:
            return self.store_path
        return os.fspath(store_path) if store_path is not None else None

    def _build_store(self, store_path=_DEFAULT_STORE) -> BucketStore:
        disk = calibrated_disk_for_bucket_read(
            self.config.bucket_megabytes, self.config.cost.tb_ms / 1000.0
        )
        path = self._resolve_store_path(store_path)
        if path is None:
            return BucketStore(self._layout, disk)
        if self.config.page_cache_buckets is not None:
            store = open_disk_store(
                path, disk, page_cache_buckets=self.config.page_cache_buckets
            )
        else:
            store = open_disk_store(path, disk)
        if store.layout != self._layout:
            store.close()
            raise ValueError(
                f"store file {path!r} describes a different partition than "
                "this simulator's layout (bucket boundaries, counts or sizes "
                "differ); re-ingest it for this site"
            )
        return store

    def _engine_config(self, spec: Optional[RunSpec] = None) -> EngineConfig:
        return EngineConfig(
            cache_buckets=self.config.cache_buckets,
            cost=self.config.cost,
            hybrid_threshold_fraction=self.config.hybrid_threshold_fraction,
            enable_hybrid=self.config.enable_hybrid,
            match_probability=self.config.match_probability,
            series_window_ms=spec.series_window_ms if spec is not None else None,
        )

    def _build_engine(
        self,
        policy: SchedulingPolicy,
        store: Optional[BucketStore] = None,
        spec: Optional[RunSpec] = None,
    ) -> LifeRaftEngine:
        # An (empty) index object signals that an index on the join key
        # exists, enabling the hybrid strategy; cost accounting for index
        # services flows through the cost model, not through this object.
        index = SpatialIndex([], rows=None, disk=None)
        return LifeRaftEngine(
            self._layout,
            store if store is not None else self._build_store(),
            scheduler=policy,
            index=index,
            config=self._engine_config(spec),
        )

    # ------------------------------------------------------------------ #
    # running
    # ------------------------------------------------------------------ #

    def execute(
        self, queries: Sequence[CrossMatchQuery], spec: Optional[RunSpec] = None
    ) -> SimulationResult:
        """Simulate one trace under one :class:`RunSpec` — the public entry point.

        The spec decides everything that varies per run: scheduling
        policy, execution engine (serial vs sharded, and which backend),
        serving front-end, reliability plan, and storage-tier override.
        ``execute(queries)`` runs the defaults: serial LifeRaft at
        α = 0.25 against the simulator's default store.

        Dispatch follows :attr:`RunSpec.is_parallel`: a named backend,
        ``workers > 1`` or a reliability config selects the sharded
        parallel engine; everything else runs the serial discrete-event
        loop.  Virtual-clock results are dispatch-invariant (the parity
        tests pin ``workers=1`` parallel runs to the serial numbers).
        """
        spec = spec if spec is not None else RunSpec()
        if spec.is_parallel:
            result = self._execute_parallel(queries, spec)
        else:
            result = self._execute_serial(queries, spec)
        if spec.record_trace:
            # Record the *original* (pre-admission) arrival stream:
            # admission is a pure function of it, so a replay reproduces
            # the recorded run end to end, shed queries included.
            self._record_trace(spec.record_trace, queries, spec, result)
        return result

    def _record_trace(
        self,
        path: str,
        queries: Sequence[CrossMatchQuery],
        spec: RunSpec,
        result: SimulationResult,
    ) -> None:
        """Write the run's arrival stream + digest as a ``.lrtr`` trace."""
        meta = {
            # The registry name (replayable); constructed policy objects
            # fall back to their display name.
            "policy": spec.policy if isinstance(spec.policy, str) else result.policy_name,
            "alpha": result.alpha,
            "workers": spec.workers,
            "backend": result.backend,
            "shard_strategy": spec.shard_strategy,
            "enable_stealing": spec.enable_stealing,
            "saturation_qps": spec.saturation_qps,
            "label": spec.label,
            "bucket_count": self.config.bucket_count,
            "store_backend": result.store_backend,
            "served_with_admission": spec.service is not None,
        }
        write_trace(path, queries, meta=meta, expected_digest=result.result_digest)

    def _execute_serial(
        self, queries: Sequence[CrossMatchQuery], spec: RunSpec
    ) -> SimulationResult:
        """The serial discrete-event loop (arrivals in virtual time)."""
        policy = spec.policy
        if isinstance(policy, str):
            policy = make_policy(policy, alpha=spec.alpha, cost=self.config.cost)
        # Client arrivals (pre-admission): the ledger charges gate wait
        # against these, not the rewritten engine hand-off times.
        client_arrivals_ms = {q.query_id: q.arrival_time_s * 1000.0 for q in queries}
        frontend = self._build_frontend(spec)
        if frontend is not None:
            queries = frontend.admit(queries).admitted_queries()
        # Every store is a context manager (a no-op close for the in-memory
        # store), so a failed run can never leak an open store fd.
        with self._build_store(spec.store_path) as store:
            engine = self._build_engine(policy, store=store, spec=spec)
            ordered = sorted(queries, key=lambda q: (q.arrival_time_s, q.query_id))
            arrivals_ms = [q.arrival_time_s * 1000.0 for q in ordered]
            index = 0
            total = len(ordered)
            now_ms = arrivals_ms[0] if ordered else 0.0
            while index < total or engine.has_pending_work():
                if not engine.has_pending_work() and index < total:
                    # Idle: jump to the next arrival.
                    now_ms = max(now_ms, arrivals_ms[index])
                while index < total and arrivals_ms[index] <= now_ms + 1e-9:
                    engine.submit(ordered[index], now_ms=arrivals_ms[index])
                    index += 1
                if not engine.has_pending_work():
                    continue
                result = engine.process_next(now_ms)
                if result is None:
                    break
                if frontend is not None:
                    frontend.on_batch(result)
                now_ms = result.finished_at_ms
            summary = self._summarise(
                engine, policy, spec.alpha, spec.label, spec.saturation_qps
            )
            if frontend is not None:
                summary.serving = frontend.report()
            if isinstance(store, DiskBucketStore):
                summary.store_backend = "file"
                summary.real_read_s = store.real_read_s
                summary.page_reads = store.page_reads
            store_registry = getattr(store, "telemetry", None)
            snapshot = merge_snapshots(
                [
                    engine.loop.telemetry.snapshot(),
                    store_registry.snapshot() if store_registry is not None else None,
                    frontend.telemetry.snapshot() if frontend is not None else None,
                ]
            )
            if spec.telemetry:
                summary.telemetry = snapshot
            self._export_telemetry(
                spec,
                summary,
                snapshot,
                engine.loop.batches,
                admission_records=(
                    frontend.admission_records() if frontend is not None else ()
                ),
                arrivals_ms=client_arrivals_ms,
            )
            return summary

    def _build_frontend(self, spec: RunSpec) -> Optional["ServingFrontEnd"]:
        """Assemble a serving front-end over this simulator's layout."""
        if spec.service is None:
            return None
        from repro.service.frontend import ServingFrontEnd

        return ServingFrontEnd(
            spec.service,
            self._layout,
            self.config.cost,
            series_window_ms=spec.series_window_ms,
        )

    def _summarise(
        self,
        engine: LifeRaftEngine,
        policy: SchedulingPolicy,
        alpha: float,
        label: str,
        saturation_qps: Optional[float],
    ) -> SimulationResult:
        report = engine.report()
        response_s = [ms / 1000.0 for ms in report.response_times_ms.values()]
        effective_alpha = getattr(policy, "alpha", None)
        summary = SimulationResult(
            policy_name=policy.name,
            alpha=effective_alpha,
            submitted_queries=report.submitted_queries,
            completed_queries=report.completed_queries,
            makespan_s=report.makespan_ms / 1000.0,
            busy_time_s=report.busy_time_ms / 1000.0,
            throughput_qps=report.throughput_qps,
            response_stats=summarize_response_times(response_s),
            cache_hit_rate=report.cache_hit_rate,
            bucket_services=report.bucket_services,
            bucket_reads=engine.store.reads,
            strategy_counts=report.strategy_counts,
            total_io_s=report.total_io_ms / 1000.0,
            total_match_s=report.total_match_ms / 1000.0,
            saturation_qps=saturation_qps,
            label=label or policy.name,
        )
        _stamp_digest(summary, report.response_times_ms)
        return summary

    def _execute_parallel(
        self, queries: Sequence[CrossMatchQuery], spec: RunSpec
    ) -> SimulationResult:
        """Replay a trace against a sharded engine on an execution backend.

        :attr:`RunSpec.effective_backend` selects where the shard workers
        run: ``"virtual"`` interleaves them deterministically inside this
        process in virtual time; ``"process"`` runs each shard in its own
        OS process for real hardware parallelism.  Virtual-clock results
        are backend-invariant (the parity tests pin this down); only
        :attr:`SimulationResult.real_elapsed_s` differs.  ``workers=1``
        reproduces the serial engine exactly on either backend.

        With :attr:`RunSpec.service` set, the same serving front-end as
        the serial path gates the trace first; the backends replay the
        admitted schedule and their service records — which rode the IPC
        channel on the process backend — feed the result streams.
        Because admission is a pure function of the arrival stream, the
        admitted schedule (and therefore every chunk) is identical
        across backends.

        :attr:`RunSpec.store_path` behaves as in the serial path.  On the
        process backend a file-backed store ships as a small path-based
        snapshot: each worker child reopens the file read-only and
        performs its own physical I/O instead of unpickling the catalog.

        With :attr:`RunSpec.reliability` set, the run checkpoints
        per-shard state at window barriers under the configured cadence,
        injects the configured crash plan (really killing worker
        processes on the process backend), and recovers dead shards from
        their latest checkpoint.  Virtual-clock results of a
        crash-injected run are identical to an uninterrupted one (the
        reliability parity tests pin this down with stealing off); the
        returned result carries the
        :class:`~repro.reliability.config.ReliabilityReport` in
        :attr:`SimulationResult.reliability`.
        """
        from repro.parallel.backend import ParallelRunSpec, make_backend

        policy = spec.policy
        if isinstance(policy, str):
            policy = make_policy(policy, alpha=spec.alpha, cost=self.config.cost)
        client_arrivals_ms = {q.query_id: q.arrival_time_s * 1000.0 for q in queries}
        frontend = self._build_frontend(spec)
        if frontend is not None:
            queries = frontend.admit(queries).admitted_queries()
        execution = make_backend(spec.effective_backend)
        with self._build_store(spec.store_path) as store:
            plan = ParallelRunSpec(
                layout=self._layout,
                store=store,
                queries=tuple(queries),
                policy=policy,
                config=self._engine_config(spec),
                workers=spec.workers,
                shard_strategy=spec.shard_strategy,
                index=SpatialIndex([], rows=None, disk=None),
                enable_stealing=spec.enable_stealing,
                steal_quantum_ms=spec.steal_quantum_ms,
                reliability=spec.reliability,
            )
            outcome = execution.execute(plan)
        if frontend is not None:
            frontend.ingest_records(outcome.services)
        report = outcome.report
        response_s = [ms / 1000.0 for ms in report.response_times_ms.values()]
        effective_alpha = getattr(policy, "alpha", None)
        serving_report = frontend.report() if frontend is not None else None
        summary = SimulationResult(
            policy_name=report.scheduler_name,
            alpha=effective_alpha,
            submitted_queries=report.submitted_queries,
            completed_queries=report.completed_queries,
            makespan_s=report.makespan_ms / 1000.0,
            busy_time_s=report.busy_time_ms / 1000.0,
            throughput_qps=report.throughput_qps,
            response_stats=summarize_response_times(response_s),
            cache_hit_rate=report.cache_hit_rate,
            bucket_services=report.bucket_services,
            bucket_reads=outcome.bucket_reads,
            strategy_counts=report.strategy_counts,
            total_io_s=report.total_io_ms / 1000.0,
            total_match_s=report.total_match_ms / 1000.0,
            saturation_qps=spec.saturation_qps,
            label=spec.label or f"{policy.name} x{spec.workers}",
            workers=spec.workers,
            steals=outcome.parallel.steals,
            wall_clock_s=outcome.parallel.wall_clock_ms / 1000.0,
            backend=outcome.backend,
            real_elapsed_s=outcome.real_elapsed_s,
            serving=serving_report,
            store_backend="file" if isinstance(store, DiskBucketStore) else "memory",
            real_read_s=outcome.store_real_read_s,
            reliability=outcome.reliability,
        )
        _stamp_digest(summary, report.response_times_ms)
        snapshot = merge_snapshots(
            [outcome.telemetry]
            + ([frontend.telemetry.snapshot()] if frontend is not None else [])
        )
        if spec.telemetry:
            summary.telemetry = snapshot
        self._export_telemetry(
            spec,
            summary,
            snapshot,
            outcome.services,
            steal_records=outcome.steal_records,
            window_boundaries_ms=outcome.window_boundaries_ms,
            reliability=outcome.reliability,
            admission_records=(
                frontend.admission_records() if frontend is not None else ()
            ),
            arrivals_ms=client_arrivals_ms,
        )
        return summary

    @staticmethod
    def _export_telemetry(
        spec: RunSpec,
        result: SimulationResult,
        snapshot: dict,
        services,
        steal_records=(),
        window_boundaries_ms=(),
        reliability=None,
        admission_records=(),
        arrivals_ms=None,
    ) -> None:
        """Assemble the cost ledger and write export files when asked to.

        Everything here runs after the digest is stamped, so it can never
        perturb the deterministic outcome (the zero-perturbation tests
        compare digests with ledger/exports on and off).
        """
        if spec.telemetry or spec.archive_out:
            ledger = build_run_ledger(
                services,
                admission_records=admission_records,
                steal_records=steal_records,
                arrivals_ms=arrivals_ms,
            )
            if spec.telemetry:
                result.ledger = ledger
        else:
            ledger = None
        if spec.metrics_out:
            with open(spec.metrics_out, "w", encoding="utf-8") as handle:
                handle.write(snapshot_to_json(snapshot))
        if spec.trace_out:
            trace = build_chrome_trace(
                services,
                steal_records=steal_records,
                window_boundaries_ms=window_boundaries_ms,
                reliability=reliability,
                label=result.label,
                backend=result.backend,
                admission_records=admission_records,
                include_query_flows=True,
            )
            write_chrome_trace(spec.trace_out, trace)
        if spec.archive_out:
            from repro.telemetry.archive import (
                RunArchive,
                describe_run_spec,
                summarise_result,
                write_run_archive,
            )

            write_run_archive(
                spec.archive_out,
                RunArchive(
                    spec=describe_run_spec(spec),
                    result=summarise_result(result),
                    telemetry=snapshot,
                    ledger=ledger,
                ),
            )

    def run_alpha_sweep(
        self,
        queries: Sequence[CrossMatchQuery],
        alphas: Iterable[float] = (0.0, 0.25, 0.5, 0.75, 1.0),
        saturation_qps: Optional[float] = None,
    ) -> List[SimulationResult]:
        """Run the LifeRaft scheduler across a sweep of age-bias values."""
        results = []
        for alpha in alphas:
            results.append(
                self.execute(
                    queries,
                    RunSpec(
                        policy="liferaft",
                        alpha=alpha,
                        label=f"liferaft(alpha={alpha:g})",
                        saturation_qps=saturation_qps,
                    ),
                )
            )
        return results


def run_policy_comparison(
    queries: Sequence[CrossMatchQuery],
    config: Optional[SimulationConfig] = None,
    alphas: Iterable[float] = (1.0, 0.75, 0.5, 0.25, 0.0),
    include_baselines: Iterable[str] = ("noshare", "round_robin"),
    saturation_qps: Optional[float] = None,
) -> Dict[str, SimulationResult]:
    """Figure 7 style comparison: NoShare, the α sweep and Round Robin.

    Returns a mapping from label to result, in the same order as the
    paper's x-axis (NoShare, α = 1.0 … 0.0, RR).
    """
    simulator = Simulator(config)
    results: Dict[str, SimulationResult] = {}
    baselines = list(include_baselines)

    def comparison_run(policy: str, label: str, alpha: float = 0.25) -> SimulationResult:
        return simulator.execute(
            queries,
            RunSpec(policy=policy, alpha=alpha, label=label, saturation_qps=saturation_qps),
        )

    if "noshare" in baselines:
        results["NoShare"] = comparison_run("noshare", "NoShare")
    for alpha in alphas:
        label = f"alpha={alpha:g}"
        results[label] = comparison_run("liferaft", label, alpha=alpha)
    if "round_robin" in baselines:
        results["RR"] = comparison_run("round_robin", "RR")
    if "index_only" in baselines:
        results["IndexOnly"] = comparison_run("index_only", "IndexOnly")
    if "least_sharable_first" in baselines:
        results["LeastSharableFirst"] = comparison_run(
            "least_sharable_first", "LeastSharableFirst"
        )
    return results
