"""Response-time and throughput statistics.

The paper reports average response time, its coefficient of variance
(Figure 7b) and query throughput (completed queries per second).  These
helpers compute those summaries from raw per-query response times.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Sequence


@dataclass(frozen=True)
class ResponseTimeStats:
    """Summary statistics over a set of response times (seconds)."""

    count: int
    mean_s: float
    std_s: float
    minimum_s: float
    maximum_s: float
    median_s: float
    p95_s: float

    @property
    def coefficient_of_variance(self) -> float:
        """Standard deviation divided by the mean (Figure 7b's second series)."""
        if self.mean_s == 0:
            return 0.0
        return self.std_s / self.mean_s


def _percentile(sorted_values: Sequence[float], fraction: float) -> float:
    """Linear-interpolated percentile of already sorted values."""
    if not sorted_values:
        return 0.0
    if len(sorted_values) == 1:
        return sorted_values[0]
    position = fraction * (len(sorted_values) - 1)
    lower = int(math.floor(position))
    upper = int(math.ceil(position))
    weight = position - lower
    return sorted_values[lower] * (1.0 - weight) + sorted_values[upper] * weight


def summarize_response_times(response_times_s: Iterable[float]) -> ResponseTimeStats:
    """Compute :class:`ResponseTimeStats` from raw response times in seconds."""
    values: List[float] = sorted(response_times_s)
    if not values:
        return ResponseTimeStats(0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
    count = len(values)
    mean = sum(values) / count
    variance = sum((v - mean) ** 2 for v in values) / count
    return ResponseTimeStats(
        count=count,
        mean_s=mean,
        std_s=math.sqrt(variance),
        minimum_s=values[0],
        maximum_s=values[-1],
        median_s=_percentile(values, 0.5),
        p95_s=_percentile(values, 0.95),
    )


def throughput_qps(completed: int, makespan_s: float) -> float:
    """Completed queries per second of makespan (0 for an empty run)."""
    if makespan_s <= 0:
        return 0.0
    return completed / makespan_s


def normalize_to(values: Sequence[float], reference: float) -> List[float]:
    """Divide *values* by *reference* (Figure 7b normalises to NoShare)."""
    if reference == 0:
        return [0.0 for _ in values]
    return [v / reference for v in values]
