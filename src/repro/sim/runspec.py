"""RunSpec: the one declarative description of a simulated run.

The run entry points grew more than ten ad-hoc keyword parameters
across PRs 1–5 (policy, alpha, workers, shard strategy, execution
backend, serving config, reliability config, store overrides, …).
:class:`RunSpec` collapses that sprawl into a single frozen dataclass
consumed by :meth:`repro.sim.simulator.Simulator.execute` — the one
public entry point.

Dispatch rule: a spec runs on the sharded parallel engine when it names
an execution ``backend``, asks for more than one worker, or configures
``reliability`` (checkpoint/recovery is a parallel-engine feature);
otherwise the serial discrete-event engine runs it.  ``workers=1`` on
the parallel engine reproduces the serial engine's numbers exactly —
the backend-parity tests pin that down — so the dispatch seam is not
observable in virtual-clock results.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Optional, Union

from repro.core.scheduler import SchedulingPolicy

if TYPE_CHECKING:
    from repro.parallel.backend import ExecutionBackend
    from repro.reliability.config import ReliabilityConfig
    from repro.service.frontend import ServiceConfig

#: Sentinel for "use the simulator's default store" on per-run overrides
#: (``store_path=None`` explicitly forces an in-memory run).
DEFAULT_STORE = object()


@dataclass(frozen=True)
class RunSpec:
    """Everything that varies between two runs on one :class:`Simulator`.

    Site-level knobs (bucket count, cache sizes, cost constants) stay on
    :class:`~repro.sim.simulator.SimulationConfig`; a ``RunSpec`` only
    describes *one run*: what to schedule, where to execute it, and
    which storage tier to read.
    """

    #: Scheduling policy: a registry name (``"liferaft"``, ``"noshare"``,
    #: ``"round_robin"``, …) or a constructed policy object.
    policy: Union[str, SchedulingPolicy] = "liferaft"
    #: LifeRaft age bias (only consulted when *policy* is a name).
    alpha: float = 0.25
    #: Shard count; ``> 1`` runs the sharded parallel engine.
    workers: int = 1
    #: How queries map to shards (parallel runs).
    shard_strategy: str = "round_robin"
    #: Execution backend: ``"virtual"`` (deterministic in-process
    #: interleaving), ``"process"`` (one OS process per shard) or a
    #: constructed backend.  ``None`` selects the serial engine unless
    #: ``workers`` or ``reliability`` force the parallel one (then
    #: ``"virtual"`` is used).
    backend: Optional[Union[str, "ExecutionBackend"]] = None
    #: Allow idle shards to steal work (parallel runs).
    enable_stealing: bool = True
    #: Override the steal check cadence (parallel runs).
    steal_quantum_ms: Optional[float] = None
    #: Serving front-end configuration; ``None`` bypasses admission
    #: control and result streaming.
    service: Optional["ServiceConfig"] = None
    #: Checkpoint/crash-injection/recovery configuration (parallel runs).
    reliability: Optional["ReliabilityConfig"] = None
    #: Storage tier override: :data:`DEFAULT_STORE` uses the simulator's
    #: default, ``None`` forces in-memory, a path replays against that
    #: on-disk columnar store.
    store_path: object = DEFAULT_STORE
    #: Label stamped on the result (defaults to the policy name).
    label: str = ""
    #: Arrival rate the trace was flooded at (recorded, not enforced).
    saturation_qps: Optional[float] = None
    #: Record the run's arrival stream (and result digest) into this
    #: ``.lrtr`` trace file for later ``liferaft replay``.
    record_trace: Optional[str] = None
    #: Collect the run's metrics snapshot onto the result.  Instrumentation
    #: itself always records (it never perturbs the virtual clock — the
    #: zero-perturbation tests pin that); this only gates snapshot
    #: collection and export.
    telemetry: bool = True
    #: Write the merged metrics snapshot to this JSON file after the run.
    metrics_out: Optional[str] = None
    #: Write the run's span timeline to this Chrome-trace JSON file
    #: (loadable in Perfetto / ``chrome://tracing``).
    trace_out: Optional[str] = None
    #: Barrier spacing of the windowed telemetry series (virtual ms).
    #: ``None`` uses the engine default (64 bucket reads).  Purely an
    #: observation cadence: it never feeds back into scheduling.
    series_window_ms: Optional[float] = None
    #: Write a ``.lrrun`` run archive (spec description + metrics +
    #: per-query cost ledger + result digest) to this path after the run,
    #: for later ``liferaft compare``.  Like the other exports it runs
    #: after the digest is stamped, so it never perturbs the outcome.
    archive_out: Optional[str] = None

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("workers must be positive")
        if self.series_window_ms is not None and self.series_window_ms <= 0:
            raise ValueError("series_window_ms must be positive")

    @property
    def is_parallel(self) -> bool:
        """Whether this spec runs on the sharded parallel engine."""
        return (
            self.backend is not None
            or self.workers > 1
            or self.reliability is not None
        )

    @property
    def effective_backend(self) -> Union[str, "ExecutionBackend"]:
        """The execution backend a parallel run will use."""
        return self.backend if self.backend is not None else "virtual"

    def with_store(self, store_path) -> "RunSpec":
        """A copy of this spec replaying against *store_path*.

        Parity checks sweep one spec across storage tiers; this keeps
        the sweep literal at call sites (``spec.with_store(None)`` vs
        ``spec.with_store(path)``).
        """
        resolved = (
            store_path
            if store_path is None or store_path is DEFAULT_STORE
            else os.fspath(store_path)
        )
        return replace(self, store_path=resolved)


__all__ = ["DEFAULT_STORE", "RunSpec"]
