#!/usr/bin/env python3
"""Workload characterisation: the analysis behind Figures 5 and 6.

Generates the standard cross-match trace, computes the statistics the paper
uses to argue that data-driven batching will pay off — bucket reuse,
temporal locality and workload skew — and prints the same summaries the
evaluation section quotes (top-ten buckets touched by ~61 % of queries,
~2 % of buckets carrying ~50 % of the workload).  It then verifies the
premise by comparing bucket reads with and without shared scheduling.

Run with::

    python examples/workload_analysis.py
"""

from repro.experiments.common import render_table
from repro.sim.runspec import RunSpec
from repro.sim.simulator import SimulationConfig, Simulator
from repro.workload.generator import TraceConfig, TraceGenerator
from repro.workload.stats import TraceStatistics


def main() -> None:
    trace_config = TraceConfig(query_count=400, bucket_count=1024, seed=5)
    trace = TraceGenerator(trace_config).generate()
    stats = TraceStatistics(trace.queries)

    print(f"trace: {stats.query_count} queries, {stats.total_objects:,} cross-match objects, "
          f"{stats.touched_bucket_count} buckets touched")
    print()

    # ---- Figure 5 view: bucket reuse ------------------------------------
    top10 = stats.top_buckets_by_reuse(10)
    rows = [
        (rank, bucket, count, f"{100.0 * count / stats.query_count:.1f}%")
        for rank, (bucket, count) in enumerate(top10, start=1)
    ]
    print("top ten buckets by reuse (Figure 5):")
    print(render_table(("rank", "bucket", "queries touching", "fraction of trace"), rows))
    fraction = stats.fraction_of_queries_touching(bucket for bucket, _ in top10)
    print(f"-> {100.0 * fraction:.0f}% of queries touch at least one of the top ten buckets "
          "(paper: ~61%)")
    print()

    # ---- Figure 6 view: cumulative workload ------------------------------
    print("cumulative workload by bucket rank (Figure 6):")
    curve = stats.cumulative_workload_curve()
    marks = [1, 2, 5, 10, 20, 50, 100, len(curve)]
    rows = [(rank, f"{curve[rank - 1][1]:.1f}%") for rank in marks if rank <= len(curve)]
    print(render_table(("bucket rank", "cumulative workload"), rows))
    top_2pct_share = stats.fraction_of_workload_in_top_fraction(0.02)
    print(
        f"-> the top 2% of buckets carry {100.0 * top_2pct_share:.0f}% of the workload "
        "(paper: ~50%)"
    )
    print()

    # ---- why this matters: shared vs unshared bucket reads ---------------
    simulator = Simulator(SimulationConfig(bucket_count=trace_config.bucket_count))
    queries = trace.with_saturation(1.0).queries
    shared = simulator.execute(queries, RunSpec(policy="liferaft", alpha=0.0))
    unshared = simulator.execute(queries, RunSpec(policy="noshare"))
    print("consequence for I/O (same trace, high saturation):")
    print(render_table(
        ("policy", "bucket reads", "busy time (s)", "throughput (q/s)"),
        [
            ("NoShare", unshared.bucket_reads, unshared.busy_time_s, unshared.throughput_qps),
            ("LifeRaft alpha=0", shared.bucket_reads, shared.busy_time_s, shared.throughput_qps),
        ],
    ))
    print(
        f"-> contention-aware batching eliminates "
        f"{100.0 * (1 - shared.bucket_reads / unshared.bucket_reads):.0f}% of bucket reads"
    )


if __name__ == "__main__":
    main()
