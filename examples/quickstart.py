#!/usr/bin/env python3
"""Quickstart: batch-schedule cross-match queries with LifeRaft.

This example builds the smallest end-to-end pipeline:

1. generate a synthetic trace of data-intensive cross-match queries whose
   skew matches the SkyQuery workload characterised in the paper,
2. replay it against a simulated SDSS-like site under the NoShare baseline
   (per-query execution in arrival order) and under LifeRaft's data-driven
   scheduler at several age biases, and
3. print the throughput / response-time comparison of Figure 7.

Run with::

    python examples/quickstart.py

Select where the engine executes with ``--backend``: ``serial`` (the
default single service loop), ``virtual`` (N shard workers interleaved
deterministically in-process) or ``process`` (one OS process per shard
worker for real hardware parallelism)::

    python examples/quickstart.py --backend process --workers 4
"""

import argparse

from repro.experiments.common import render_table
from repro.sim.runspec import RunSpec
from repro.sim.simulator import SimulationConfig, Simulator
from repro.workload.generator import TraceConfig, TraceGenerator


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--backend",
        default="serial",
        choices=("serial", "virtual", "process"),
        help="execution backend: one serial loop, or N shard workers "
        "(virtual = in-process deterministic, process = one OS process each)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=2,
        help="shard workers for the parallel backends (ignored for serial)",
    )
    return parser.parse_args()


def main() -> None:
    args = parse_args()
    # A scaled-down trace: 300 queries over 512 buckets (the paper uses
    # 2,000 queries over ~20,000 buckets; the skew statistics are the same).
    trace_config = TraceConfig(query_count=300, bucket_count=512, seed=42)
    trace = TraceGenerator(trace_config).generate()
    print(f"generated {len(trace)} queries, {trace.total_objects():,} cross-match objects")

    # Replay at a high saturation so scheduling differences matter.
    queries = trace.with_saturation(1.0).queries
    simulator = Simulator(SimulationConfig(bucket_count=trace_config.bucket_count))
    if args.backend != "serial":
        print(f"executing on the {args.backend} backend with {args.workers} shard workers")

    def replay(policy, alpha, label):
        spec = RunSpec(
            policy=policy,
            alpha=alpha,
            label=label,
            workers=args.workers if args.backend != "serial" else 1,
            backend=None if args.backend == "serial" else args.backend,
        )
        return simulator.execute(queries, spec)

    rows = []
    for label, policy, alpha in [
        ("NoShare (arrival order, no sharing)", "noshare", 0.0),
        ("LifeRaft alpha=1.0 (arrival order, shared I/O)", "liferaft", 1.0),
        ("LifeRaft alpha=0.5", "liferaft", 0.5),
        ("LifeRaft alpha=0.0 (most contentious data first)", "liferaft", 0.0),
        ("Round Robin (HTM order)", "round_robin", 0.0),
    ]:
        result = replay(policy, alpha, label)
        rows.append(
            (
                label,
                result.throughput_qps,
                result.avg_response_time_s,
                result.cache_hit_rate,
                result.bucket_reads,
            )
        )

    print()
    print(
        render_table(
            ("scheduler", "throughput (q/s)", "avg response (s)", "cache hit rate", "bucket reads"),
            rows,
        )
    )
    noshare_tp, greedy_tp = rows[0][1], rows[3][1]
    print()
    print(
        f"data-driven batch processing improves throughput by "
        f"{greedy_tp / noshare_tp:.2f}x over per-query execution"
    )


if __name__ == "__main__":
    main()
