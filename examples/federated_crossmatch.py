#!/usr/bin/env python3
"""Federated cross-match: the SkyQuery scenario from the paper's introduction.

Builds a three-archive federation (SDSS, 2MASS, USNO-B) from synthetic but
correlated skies, submits federated cross-match queries over sky regions,
and reports where each query spends its time: cross-matching at each site
(in LifeRaft's data-driven batches) versus shipping intermediate results
over the wide-area network.

Run with::

    python examples/federated_crossmatch.py
"""

from repro.catalog.archive import ArchiveConfig, build_archive
from repro.catalog.generator import SkyGenerator, SkyGeneratorConfig
from repro.experiments.common import render_table
from repro.federation.network import NetworkModel
from repro.federation.skyquery import FederatedQuery, SkyQueryFederation
from repro.htm.geometry import SkyPoint


def build_federation() -> tuple[SkyQueryFederation, SkyGenerator]:
    """Create three correlated survey archives and register them."""
    generator = SkyGenerator(SkyGeneratorConfig(object_count=1_500, cluster_count=5, seed=77))
    sdss = generator.generate("sdss")
    twomass = generator.derive_companion(sdss, "twomass", completeness=0.8, extra_fraction=0.1)
    usnob = generator.derive_companion(sdss, "usnob", completeness=0.9, extra_fraction=0.2)

    archive_config = ArchiveConfig(
        objects_per_bucket=200, bucket_megabytes=8.0, target_bucket_read_s=0.3
    )
    federation = SkyQueryFederation(NetworkModel(latency_ms=120.0, bandwidth_mbps=60.0))
    for name, catalog in (("sdss", sdss), ("twomass", twomass), ("usnob", usnob)):
        federation.register_archive(build_archive(name, catalog, archive_config))
    return federation, generator


def main() -> None:
    federation, generator = build_federation()
    print(f"federation archives: {', '.join(federation.archives)}")

    rows = []
    for query_id, center in enumerate(generator.cluster_centers[:4]):
        query = FederatedQuery(
            query_id=query_id,
            archives=("twomass", "sdss", "usnob"),
            center=SkyPoint(center.ra, center.dec),
            radius_deg=2.0,
            match_radius_arcsec=3.0,
        )
        result = federation.execute(query)
        rows.append(
            (
                query_id,
                " -> ".join(result.plan.archives),
                result.final_matches,
                result.total_site_time_ms / 1000.0,
                result.total_network_time_ms / 1000.0,
            )
        )

    print()
    print(
        render_table(
            ("query", "left-deep plan", "final matches", "site time (s)", "network time (s)"),
            rows,
        )
    )

    print()
    print("per-archive engine statistics (data-driven batching at each site):")
    for name, stats in federation.statistics().items():
        print(
            f"  {name:8s} services={stats['bucket_services']:.0f} "
            f"cache hit rate={stats['cache_hit_rate']:.2f} matches={stats['total_matches']:.0f}"
        )


if __name__ == "__main__":
    main()
