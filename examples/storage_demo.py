#!/usr/bin/env python3
"""Storage demo: real on-disk buckets under the LifeRaft engines.

This example exercises the PR 4 storage subsystem end to end:

1. generate a synthetic sky catalog and **ingest** it into a columnar
   ``.lrbs`` bucket store file (equal-population partitioning, HTM-sorted
   struct-packed column pages, checksums),
2. replay the same trace against the **in-memory** cost-model store and
   against the **file-backed** store (real seeks, reads, CRC checks and
   columnar decoding per bucket service),
3. show that every virtual-clock number is identical — only the physical
   work differs — and print the tiered cache behaviour (engine-side LRU
   bucket cache over the decoded-page tier).

Run with::

    python examples/storage_demo.py
"""

import os
import tempfile

from repro.experiments.common import build_trace, render_table
from repro.sim.runspec import RunSpec
from repro.sim.simulator import (
    VIRTUAL_CLOCK_PARITY_FIELDS,
    SimulationConfig,
    Simulator,
)
from repro.storage.ingest import materialize_layout

BUCKETS = 128
ROWS_PER_BUCKET = 256


def main() -> None:
    workdir = tempfile.mkdtemp(prefix="liferaft-storage-")
    store_path = os.path.join(workdir, "site.lrbs")

    # Materialise the site's partition layout as a real file: the layout's
    # cost-model numbers are written unchanged, and every bucket carries
    # physical rows for the engines to actually read and decode.
    scaffold = Simulator(SimulationConfig(bucket_count=BUCKETS))
    manifest = materialize_layout(store_path, scaffold.layout, rows_per_bucket=ROWS_PER_BUCKET)
    print(
        f"ingested {manifest.bucket_count} buckets "
        f"({manifest.total_rows:,} rows, {manifest.file_bytes / 1024:.0f} KiB) "
        f"-> {manifest.path}"
    )
    print(f"file generation: {manifest.generation}")

    simulator = Simulator(SimulationConfig(bucket_count=BUCKETS), store_path=store_path)
    trace = build_trace("small", bucket_count=BUCKETS).with_saturation(1.0)

    spec = RunSpec(policy="liferaft")
    memory = simulator.execute(trace.queries, spec.with_store(None))
    file_backed = simulator.execute(trace.queries, spec)

    rows = []
    for metric in VIRTUAL_CLOCK_PARITY_FIELDS:
        memory_value = getattr(memory, metric)
        file_value = getattr(file_backed, metric)
        rows.append((metric, memory_value, file_value, memory_value == file_value))
    print()
    print(render_table(("virtual-clock metric", "in-memory", "file-backed", "identical"), rows))
    assert all(row[3] for row in rows), "file-backed run diverged from in-memory run"

    print()
    print(
        f"physical work (file-backed only): {file_backed.bucket_reads} bucket reads "
        f"decoded in {file_backed.real_read_s * 1000:.1f} ms of real I/O"
    )
    print(
        "every deterministic number above is identical: the disk store charges "
        "the paper's virtual-clock costs while doing real storage work"
    )


if __name__ == "__main__":
    main()
