#!/usr/bin/env python3
"""Workload-adaptive tuning of the age bias α.

Reproduces the control loop described in §4 of the paper:

1. Offline, measure one throughput/response-time trade-off curve per
   saturation level by sweeping the age bias α over a representative trace.
2. Online, estimate the current saturation from recent arrivals and pick,
   for the closest curve, the α that minimises response time while staying
   within a tolerance threshold (20 %) of the maximum throughput.

The example then plays a bursty day — quiet mornings, a saturated evening —
and shows the controller moving α as the arrival rate changes.

Run with::

    python examples/adaptive_scheduling.py
"""

from repro.core.adaptive import AlphaController
from repro.experiments.common import render_table
from repro.experiments.figure4 import build_tradeoff_curves
from repro.sim.simulator import SimulationConfig, Simulator
from repro.workload.arrival import BurstyArrivalProcess
from repro.workload.generator import TraceConfig, TraceGenerator


def main() -> None:
    trace_config = TraceConfig(query_count=250, bucket_count=512, seed=11)
    trace = TraceGenerator(trace_config).generate()
    simulator = Simulator(SimulationConfig(bucket_count=trace_config.bucket_count))

    # ---- offline: measure the trade-off curves -------------------------
    print("measuring offline trade-off curves (alpha sweep per saturation)...")
    curves = build_tradeoff_curves(
        trace, simulator, saturation_fractions={"low": 0.45, "medium": 1.0, "high": 2.2}
    )
    rows = []
    for label, curve in curves.items():
        for alpha, throughput_norm, response_norm in curve.normalized():
            rows.append(
                (label, f"{curve.saturation_qps:.3f}", alpha, throughput_norm, response_norm)
            )
    print(
        render_table(
            ("saturation", "q/s", "alpha", "throughput/max", "response/max"), rows
        )
    )

    # ---- online: let the controller follow a bursty arrival stream ------
    controller = AlphaController(list(curves.values()), tolerance=0.2)
    print()
    print("tolerance threshold: give up at most 20% of the maximum throughput")
    for label, curve in curves.items():
        chosen = curve.select_alpha(0.2)
        print(f"  saturation {label:6s} ({curve.saturation_qps:.3f} q/s) -> alpha = {chosen:g}")

    print()
    print("online adaptation over a bursty arrival stream:")
    arrivals = BurstyArrivalProcess(
        burst_rate_qps=2.0, burst_length=40, gap_seconds=600.0, seed=3
    ).arrival_times(160)
    checkpoints = (20, 60, 100, 140)
    for index, time_s in enumerate(arrivals):
        controller.observe_arrival(time_s)
        if index in checkpoints:
            rate = controller.estimator.rate_qps(now_s=time_s)
            alpha = controller.current_alpha(now_s=time_s)
            print(
                f"  after {index + 1:3d} arrivals (t={time_s:8.1f}s): "
                f"estimated rate {rate:.3f} q/s -> alpha = {alpha:g}"
            )


if __name__ == "__main__":
    main()
