#!/usr/bin/env python3
"""Serving demo: watch partial answers stream in as buckets drain.

The demo replays a small saturated trace through the serving front-end
and prints every result chunk as it is emitted: which query advanced,
which bucket produced the increment, how many objects it matched, and
how far along the query now is.  The closing summary contrasts
time-to-first-result with time-to-completion — the gap is the point of
incremental, data-driven evaluation.

Run with::

    python examples/serving_demo.py
    python examples/serving_demo.py --admission reject --intake-bound 24
    python examples/serving_demo.py --backend process --workers 4
"""

import argparse

from repro.experiments.common import build_simulator, build_trace
from repro.service.frontend import ServiceConfig
from repro.service.streams import ResultChunk
from repro.sim.runspec import RunSpec

#: How many chunk lines to print before eliding the rest.
MAX_PRINTED_CHUNKS = 40


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--alpha", type=float, default=0.25)
    parser.add_argument("--saturation", type=float, default=1.5, metavar="QPS")
    parser.add_argument("--admission", default="admit", choices=("admit", "reject", "defer"))
    parser.add_argument("--intake-bound", type=int, default=None, metavar="N")
    parser.add_argument("--workers", type=int, default=1, metavar="N")
    parser.add_argument("--backend", default="virtual", choices=("virtual", "process"))
    return parser.parse_args()


class ChunkPrinter:
    """Streams chunk lines to stdout, eliding after a budget."""

    def __init__(self, budget: int = MAX_PRINTED_CHUNKS) -> None:
        self.budget = budget
        self.seen = 0

    def __call__(self, chunk: ResultChunk) -> None:
        self.seen += 1
        if self.seen == self.budget + 1:
            print("  ... (further chunks elided)")
        if self.seen > self.budget:
            return
        marker = "done" if chunk.final else f"{chunk.progress:5.0%}"
        print(
            f"  t={chunk.time_ms / 1000.0:8.1f}s  query {chunk.query_id:3d}  "
            f"bucket {chunk.bucket_index:4d}  +{chunk.objects_matched:5d} objects  "
            f"[{marker}]"
        )


def main() -> None:
    args = parse_args()
    trace = build_trace("small", query_count=40, bucket_count=128)
    queries = trace.with_saturation(args.saturation).queries
    simulator = build_simulator("small", bucket_count=128)
    printer = ChunkPrinter()
    service = ServiceConfig(
        admission=args.admission, intake_bound=args.intake_bound, on_chunk=printer
    )
    print(
        f"serving {len(queries)} queries "
        f"({args.admission} admission, alpha={args.alpha:g}, "
        f"{'serial engine' if args.workers <= 1 else f'{args.backend} backend x{args.workers}'})"
    )
    print()
    print("result stream:")
    if args.workers > 1:
        # Parallel serving: chunks are derived from the backends' service
        # records (on the process backend they rode the IPC channel from
        # the shard children), in global finish-time order.
        spec = RunSpec(
            policy="liferaft",
            workers=args.workers,
            alpha=args.alpha,
            backend=args.backend,
            service=service,
        )
    else:
        spec = RunSpec(policy="liferaft", alpha=args.alpha, service=service)
    result = simulator.execute(queries, spec)

    serving = result.serving
    assert serving is not None
    print()
    print(
        f"offered {serving.offered} | admitted {serving.admitted} | "
        f"rejected {serving.rejected} ({serving.rejection_rate:.1%})"
    )
    print(
        f"completed {serving.completed} queries via {serving.chunks} chunks | "
        f"avg time-to-first-result {serving.avg_time_to_first_result_s:.1f}s | "
        f"avg time-to-completion {serving.avg_time_to_completion_s:.1f}s"
    )
    if serving.avg_time_to_first_result_s > 0:
        ratio = serving.avg_time_to_completion_s / serving.avg_time_to_first_result_s
        print(f"first results arrive {ratio:.1f}x sooner than full answers")


if __name__ == "__main__":
    main()
