"""The ``.lrcp`` codec: round trip, corruption handling, state fidelity."""

import os
import pickle

import pytest

from repro.core.engine import EngineConfig
from repro.core.scheduler import LifeRaftScheduler, SchedulerConfig
from repro.parallel.ipc import ShardReplayer
from repro.parallel.worker import StagedShare, build_shard_worker
from repro.reliability.checkpoint import (
    CHECKPOINT_VERSION,
    MAGIC,
    CheckpointError,
    RunCheckpoint,
    ShardCheckpoint,
    capture_shard,
    checkpoint_worker,
    read_checkpoint,
    restore_worker,
    write_checkpoint,
)
from repro.storage.bucket_store import BucketStore
from repro.storage.partitioner import BucketPartitioner

BUCKETS = 16


@pytest.fixture()
def layout():
    return BucketPartitioner().partition_density(BUCKETS)


def build_worker(layout, worker_id=0):
    store = BucketStore(layout)
    policy = LifeRaftScheduler(SchedulerConfig())
    return build_shard_worker(worker_id, layout, store, policy, EngineConfig())


def stage_workload(worker, count=12, seed=3):
    """Stage a deterministic per-bucket arrival schedule."""
    for i in range(count):
        bucket = (i * 5 + seed) % BUCKETS
        worker.stage(
            StagedShare(
                arrival_ms=100.0 * i,
                query_id=i,
                bucket_index=bucket,
                payload=50 + (i % 3) * 25,
            )
        )


class TestEnvelope:
    def test_round_trip_arbitrary_payload(self, tmp_path):
        path = tmp_path / "state.lrcp"
        payload = {"queues": [1, 2, 3], "clock": 42.5}
        info = write_checkpoint(
            path,
            worker_id=3,
            window_index=7,
            clock_ms=42.5,
            generation="a" * 16,
            payload_obj=payload,
        )
        assert info.byte_size == os.path.getsize(path)
        restored, read_info = read_checkpoint(path, expected_generation="a" * 16)
        assert restored == payload
        assert read_info.worker_id == 3
        assert read_info.window_index == 7
        assert read_info.clock_ms == 42.5
        assert read_info.generation == "a" * 16

    def test_write_is_atomic_no_temp_left_behind(self, tmp_path):
        path = tmp_path / "state.lrcp"
        write_checkpoint(path, 0, 0, 0.0, "b" * 16, {"x": 1})
        assert not os.path.exists(str(path) + ".tmp")

    def test_generation_mismatch_rejected(self, tmp_path):
        path = tmp_path / "state.lrcp"
        write_checkpoint(path, 0, 0, 0.0, "c" * 16, {})
        with pytest.raises(CheckpointError, match="re-ingested"):
            read_checkpoint(path, expected_generation="d" * 16)

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "state.lrcp"
        path.write_bytes(b"NOPE" + b"\x00" * 64)
        with pytest.raises(CheckpointError, match="bad magic"):
            read_checkpoint(path)

    def test_version_skew_rejected(self, tmp_path):
        path = tmp_path / "state.lrcp"
        write_checkpoint(path, 0, 0, 0.0, "e" * 16, {})
        data = bytearray(path.read_bytes())
        # Bump the version field (offset 4, little-endian H) and re-seal
        # the header CRC so only the version check can fire.
        data[4] = CHECKPOINT_VERSION + 1
        from zlib import crc32

        from repro.reliability.checkpoint import _CRC, _HEADER

        body = bytes(data[: _HEADER.size - _CRC.size])
        data[_HEADER.size - _CRC.size : _HEADER.size] = _CRC.pack(
            crc32(body) & 0xFFFFFFFF
        )
        path.write_bytes(bytes(data))
        with pytest.raises(CheckpointError, match="version"):
            read_checkpoint(path)

    def test_header_corruption_rejected(self, tmp_path):
        path = tmp_path / "state.lrcp"
        write_checkpoint(path, 0, 0, 0.0, "f" * 16, {})
        data = bytearray(path.read_bytes())
        data[10] ^= 0xFF  # flip a header byte without fixing the CRC
        path.write_bytes(bytes(data))
        with pytest.raises(CheckpointError, match="header checksum"):
            read_checkpoint(path)

    def test_payload_corruption_rejected(self, tmp_path):
        path = tmp_path / "state.lrcp"
        write_checkpoint(path, 0, 0, 0.0, "0" * 16, {"key": "value"})
        data = bytearray(path.read_bytes())
        data[-6] ^= 0x01  # flip a payload byte
        path.write_bytes(bytes(data))
        with pytest.raises(CheckpointError, match="payload checksum"):
            read_checkpoint(path)

    def test_truncation_rejected(self, tmp_path):
        path = tmp_path / "state.lrcp"
        write_checkpoint(path, 0, 0, 0.0, "1" * 16, {"key": list(range(100))})
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(CheckpointError, match="truncated"):
            read_checkpoint(path)
        path.write_bytes(data[:10])
        with pytest.raises(CheckpointError, match="truncated"):
            read_checkpoint(path)

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(CheckpointError, match="cannot open"):
            read_checkpoint(tmp_path / "absent.lrcp")

    def test_magic_is_lrcp(self):
        assert MAGIC == b"LRCP"


class TestShardStateFidelity:
    """A restored worker must continue exactly as the original would have."""

    def test_capture_restore_mid_run_produces_identical_tail(self, layout, tmp_path):
        # Reference: run one worker straight through.
        reference = build_worker(layout)
        stage_workload(reference)
        ref_replayer = ShardReplayer(reference)
        reference_records = ref_replayer.advance(None)

        # Subject: advance halfway, checkpoint, restore into a fresh
        # worker, drain the tail there.
        subject = build_worker(layout)
        stage_workload(subject)
        replayer = ShardReplayer(subject)
        barrier_ms = reference_records[len(reference_records) // 2].finished_at_ms
        head = replayer.advance(barrier_ms)
        path = tmp_path / "mid.lrcp"
        info = checkpoint_worker(path, subject, replayer.seq, window_index=1)
        assert info.seq == len(head)

        recovered = build_worker(layout)
        stage_workload(recovered)
        state = restore_worker(path, recovered)
        tail_replayer = ShardReplayer(recovered, start_seq=state.seq)
        tail = tail_replayer.advance(None)

        def as_tuples(records):
            return [
                (r.seq, r.bucket_index, r.queries_served, r.started_at_ms, r.finished_at_ms)
                for r in records
            ]

        assert as_tuples(head + tail) == as_tuples(reference_records)
        # Final accounting matches the uninterrupted worker exactly.
        assert recovered.loop.busy_ms == pytest.approx(reference.loop.busy_ms)
        assert recovered.loop.services == reference.loop.services
        assert recovered.loop.total_io_ms == pytest.approx(reference.loop.total_io_ms)
        assert recovered.cache.statistics() == reference.cache.statistics()
        assert recovered.cache.resident_buckets() == reference.cache.resident_buckets()
        assert (
            recovered.manager.completed_queries()[len(state.manager.completed_queries()):]
            or recovered.manager.completed_queries()
        )

    def test_restore_rejects_wrong_worker(self, layout, tmp_path):
        worker = build_worker(layout, worker_id=0)
        stage_workload(worker)
        path = tmp_path / "w0.lrcp"
        checkpoint_worker(path, worker, 0, window_index=0)
        other = build_worker(layout, worker_id=1)
        with pytest.raises(CheckpointError, match="belongs to worker 0"):
            restore_worker(path, other)

    def test_restore_rejects_generation_mismatch(self, layout, tmp_path):
        worker = build_worker(layout)
        stage_workload(worker)
        path = tmp_path / "gen.lrcp"
        checkpoint_worker(path, worker, 0, window_index=0)
        other_layout = BucketPartitioner().partition_density(BUCKETS * 2)
        other = build_worker(other_layout)
        with pytest.raises(CheckpointError, match="re-ingested"):
            restore_worker(
                path, other, expected_generation=other.loop.cache.store.generation
            )

    def test_restore_rejects_run_checkpoint_payload(self, layout, tmp_path):
        path = tmp_path / "run.lrcp"
        write_checkpoint(
            path,
            0,
            0,
            0.0,
            build_worker(layout).loop.cache.store.generation,
            RunCheckpoint(window_index=0, tracker=None, accepted_seq={}),
        )
        worker = build_worker(layout)
        with pytest.raises(CheckpointError, match="not a shard checkpoint"):
            restore_worker(path, worker)

    def test_captured_state_is_picklable_and_complete(self, layout):
        worker = build_worker(layout)
        stage_workload(worker)
        ShardReplayer(worker).advance(500.0)
        state = capture_shard(worker, seq=4, window_index=2)
        clone = pickle.loads(pickle.dumps(state))
        assert isinstance(clone, ShardCheckpoint)
        assert clone.seq == 4
        assert clone.window_index == 2
        assert clone.clock_ms == worker.now_ms
        assert clone.staged == worker.staged_shares()
        assert clone.services == worker.loop.services
