"""Planned elasticity: scale events preserve the completion set.

The elasticity contract generalises PR 5's crash parity: a run that
shrinks and grows its worker pool at window barriers must complete
exactly the queries the static run completes — no query lost when a
departing shard evacuates its queues, none duplicated when a cold shard
steals its way into the work.  Per-query finish times and cache-dependent
totals legitimately shift as capacity changes, so (unlike crash parity)
only the completion set is pinned.
"""

import pytest

from repro.core.engine import EngineConfig
from repro.core.scheduler import LifeRaftScheduler, SchedulerConfig
from repro.parallel.backend import ParallelRunSpec, make_backend
from repro.reliability import (
    FaultPlan,
    ReliabilityConfig,
    ScaleDown,
    ScalePlan,
    ScaleUp,
)
from repro.sim.simulator import SimulationConfig
from repro.storage.bucket_store import BucketStore
from repro.storage.disk_model import calibrated_disk_for_bucket_read
from repro.storage.index import SpatialIndex
from repro.storage.partitioner import BucketPartitioner
from repro.workload.generator import TraceConfig, TraceGenerator

BUCKETS = 64
WORKERS = 3
WINDOW_BUCKET_READS = 4.0
#: Mid-run shrink then grow: worker 1 leaves at window 2, one joins at 4.
ELASTIC_PLAN = ScalePlan.parse("1@2", "4")


class TestScaleEvents:
    def test_scale_down_validates_and_round_trips_its_spec(self):
        event = ScaleDown(worker_id=1, window_index=3)
        assert event.spec == "1@3"
        with pytest.raises(ValueError, match="worker ids"):
            ScaleDown(worker_id=-1, window_index=0)
        with pytest.raises(ValueError, match="window indices"):
            ScaleDown(worker_id=0, window_index=-1)

    def test_scale_up_validates_and_round_trips_its_spec(self):
        assert ScaleUp(window_index=4).spec == "4"
        with pytest.raises(ValueError, match="window indices"):
            ScaleUp(window_index=-2)


class TestScalePlan:
    def test_parse_accepts_comma_lists_and_repeated_flags(self):
        plan = ScalePlan.parse(["1@2,0@5", "2@2"], ["3", "3,6"])
        assert plan.downs == (ScaleDown(1, 2), ScaleDown(2, 2), ScaleDown(0, 5))
        assert plan.ups == (ScaleUp(3), ScaleUp(3), ScaleUp(6))
        assert plan.downs_due(2) == [1, 2]
        assert plan.ups_due(3) == 2
        assert plan.total_ups() == 3
        assert len(plan) == 6 and bool(plan)

    def test_parse_rejects_malformed_specs(self):
        with pytest.raises(ValueError, match="WORKER@WINDOW"):
            ScalePlan.parse("3")
        with pytest.raises(ValueError, match="invalid scale-down"):
            ScalePlan.parse("a@b")
        with pytest.raises(ValueError, match="invalid scale-up"):
            ScalePlan.parse("", "soon")

    def test_empty_plan_is_falsy(self):
        plan = ScalePlan.parse("", "")
        assert not plan and len(plan) == 0
        plan.validate(1)  # vacuously fine

    def test_validate_rejects_departed_or_unknown_targets(self):
        with pytest.raises(ValueError, match="not active"):
            ScalePlan.parse("5@1").validate(2)
        with pytest.raises(ValueError, match="not active"):
            ScalePlan.parse("0@1,0@3").validate(2)

    def test_validate_rejects_emptying_the_pool(self):
        with pytest.raises(ValueError, match="empties the worker pool"):
            ScalePlan.parse("0@1,1@1").validate(2)
        # A join at the same window keeps the pool alive (ups first).
        ScalePlan.parse("0@1,1@1", "1").validate(2)

    def test_joins_take_sequential_ids(self):
        # The joiner at window 1 becomes worker 2 and may depart later.
        ScalePlan.parse("2@3", "1").validate(2)
        with pytest.raises(ValueError, match="not active"):
            ScalePlan.parse("2@0", "1").validate(2)


@pytest.fixture(scope="module")
def layout():
    return BucketPartitioner().partition_density(BUCKETS)


@pytest.fixture(scope="module")
def sim_config():
    return SimulationConfig(bucket_count=BUCKETS)


@pytest.fixture(scope="module")
def timed_queries():
    config = TraceConfig(query_count=40, bucket_count=BUCKETS, seed=21)
    return tuple(TraceGenerator(config).generate().with_saturation(3.0).queries)


def build_spec(layout, sim_config, queries, workers, **kwargs):
    disk = calibrated_disk_for_bucket_read(
        sim_config.bucket_megabytes, sim_config.cost.tb_ms / 1000.0
    )
    return ParallelRunSpec(
        layout=layout,
        store=BucketStore(layout, disk),
        queries=queries,
        policy=LifeRaftScheduler(SchedulerConfig(cost=sim_config.cost)),
        config=EngineConfig(cache_buckets=sim_config.cache_buckets, cost=sim_config.cost),
        workers=workers,
        shard_strategy="round_robin",
        index=SpatialIndex([], rows=None, disk=None),
        enable_stealing=True,
        **kwargs,
    )


def reliability_config(sim_config, scale=None, faults=None):
    return ReliabilityConfig(
        cadence="windows:2",
        scale=scale,
        faults=faults,
        window_quantum_ms=sim_config.cost.tb_ms * WINDOW_BUCKET_READS,
    )


@pytest.fixture(scope="module")
def static_outcomes(layout, sim_config, timed_queries):
    return {
        name: make_backend(name).execute(
            build_spec(layout, sim_config, timed_queries, WORKERS)
        )
        for name in ("virtual", "process")
    }


@pytest.fixture(scope="module")
def elastic_outcomes(layout, sim_config, timed_queries):
    return {
        name: make_backend(name).execute(
            build_spec(
                layout,
                sim_config,
                timed_queries,
                WORKERS,
                reliability=reliability_config(sim_config, scale=ELASTIC_PLAN),
            )
        )
        for name in ("virtual", "process")
    }


@pytest.mark.parametrize("backend_name", ("virtual", "process"))
class TestElasticParity:
    def test_scale_events_actually_fired(self, elastic_outcomes, backend_name):
        report = elastic_outcomes[backend_name].reliability
        assert report is not None
        assert report.scale_downs == 1
        assert report.scale_ups == 1
        kinds = [(event.kind, event.worker_id, event.window_index) for event in report.scale_events]
        assert ("down", 1, 2) in kinds
        assert ("up", WORKERS, 4) in kinds

    def test_departure_migrated_real_work(self, elastic_outcomes, backend_name):
        report = elastic_outcomes[backend_name].reliability
        (down,) = [event for event in report.scale_events if event.kind == "down"]
        assert down.buckets_migrated > 0
        assert down.entries_migrated >= down.buckets_migrated

    def test_completion_set_matches_static_run(
        self, elastic_outcomes, static_outcomes, backend_name
    ):
        elastic = elastic_outcomes[backend_name]
        static = static_outcomes[backend_name]
        assert frozenset(elastic.completed) == frozenset(static.completed)
        assert len(elastic.completed) == len(set(elastic.completed))
        assert elastic.report.response_times_ms.keys() == static.report.response_times_ms.keys()

    def test_every_query_completes(self, elastic_outcomes, backend_name, timed_queries):
        outcome = elastic_outcomes[backend_name]
        assert len(outcome.completed) == len(timed_queries)
        assert outcome.coverage() == static_coverage(timed_queries)


def static_coverage(queries):
    return {q.query_id: frozenset(q.bucket_footprint) for q in queries}


class TestScaleUpOnly:
    def test_joiner_steals_its_way_to_real_work(self, layout, sim_config, timed_queries):
        spec = build_spec(
            layout,
            sim_config,
            timed_queries,
            2,
            reliability=reliability_config(sim_config, scale=ScalePlan.parse("", "1")),
        )
        outcome = make_backend("virtual").execute(spec)
        assert outcome.reliability.scale_ups == 1
        assert len(outcome.parallel.worker_busy_ms) == 3
        assert outcome.parallel.worker_busy_ms[2] > 0.0
        assert len(outcome.completed) == len(timed_queries)

    def test_scale_up_requires_stealing(self, layout, sim_config, timed_queries):
        spec = build_spec(
            layout,
            sim_config,
            timed_queries,
            2,
            reliability=reliability_config(sim_config, scale=ScalePlan.parse("", "1")),
        )
        object.__setattr__(spec, "enable_stealing", False)
        with pytest.raises(ValueError, match="work stealing"):
            make_backend("virtual").execute(spec)


class TestMixedFaultsAndScale:
    def test_crash_recovery_composes_with_scale_events(
        self, layout, sim_config, timed_queries, static_outcomes
    ):
        spec = build_spec(
            layout,
            sim_config,
            timed_queries,
            WORKERS,
            reliability=reliability_config(
                sim_config, scale=ELASTIC_PLAN, faults=FaultPlan.parse("0@1")
            ),
        )
        outcome = make_backend("virtual").execute(spec)
        report = outcome.reliability
        assert report.crashes_injected == 1
        assert report.recovery_count == 1
        assert report.scale_downs == 1 and report.scale_ups == 1
        assert frozenset(outcome.completed) == frozenset(
            static_outcomes["virtual"].completed
        )

    def test_crash_point_may_target_a_joined_worker(self, layout, sim_config, timed_queries):
        # Worker 3 only exists after the join at window 1; crashing it at
        # window 3 exercises the broadened crash-point validation.
        spec = build_spec(
            layout,
            sim_config,
            timed_queries,
            WORKERS,
            reliability=reliability_config(
                sim_config,
                scale=ScalePlan.parse("", "1"),
                faults=FaultPlan.parse("3@3"),
            ),
        )
        outcome = make_backend("virtual").execute(spec)
        assert outcome.reliability.crashes_injected == 1
        assert len(outcome.completed) == len(timed_queries)

    def test_crash_point_beyond_the_pool_is_rejected(self, layout, sim_config, timed_queries):
        spec = build_spec(
            layout,
            sim_config,
            timed_queries,
            WORKERS,
            reliability=reliability_config(sim_config, faults=FaultPlan.parse("7@1")),
        )
        with pytest.raises(ValueError, match="crash"):
            make_backend("virtual").execute(spec)
