"""Cadence policies and deterministic fault plans."""

import pytest

from repro.reliability.config import ReliabilityConfig
from repro.reliability.faults import CrashPoint, FaultPlan
from repro.reliability.policy import EveryKWindows, VirtualInterval, parse_cadence


class TestEveryKWindows:
    def test_first_barrier_always_checkpoints(self):
        policy = EveryKWindows(4)
        assert policy.due(0, 0.0)

    def test_stride_semantics(self):
        policy = EveryKWindows(3)
        decisions = [policy.due(w, float(w)) for w in range(10)]
        assert decisions == [True, False, False, True, False, False, True, False, False, True]

    def test_rejects_non_positive_stride(self):
        with pytest.raises(ValueError):
            EveryKWindows(0)


class TestVirtualInterval:
    def test_first_barrier_always_checkpoints(self):
        policy = VirtualInterval(1000.0)
        assert policy.due(0, 0.0)

    def test_waits_for_virtual_time(self):
        policy = VirtualInterval(1000.0)
        assert policy.due(0, 0.0)
        assert not policy.due(1, 400.0)
        assert not policy.due(2, 999.0)
        assert policy.due(3, 1000.0)
        assert not policy.due(4, 1500.0)
        assert policy.due(5, 2100.0)

    def test_rejects_non_positive_interval(self):
        with pytest.raises(ValueError):
            VirtualInterval(0.0)


class TestParseCadence:
    def test_windows_spec(self):
        policy = parse_cadence("windows:5")
        assert isinstance(policy, EveryKWindows)
        assert policy.k == 5

    def test_bare_integer_is_windows(self):
        policy = parse_cadence("7")
        assert isinstance(policy, EveryKWindows)
        assert policy.k == 7

    def test_interval_spec(self):
        policy = parse_cadence("interval:2500")
        assert isinstance(policy, VirtualInterval)
        assert policy.interval_ms == 2500.0

    @pytest.mark.parametrize("bad", ["", "often", "epochs:3", "windows:x"])
    def test_bad_specs_rejected(self, bad):
        with pytest.raises(ValueError):
            parse_cadence(bad)

    def test_instances_are_independent(self):
        first = parse_cadence("windows:2")
        second = parse_cadence("windows:2")
        assert first.due(0, 0.0)
        assert second.due(0, 0.0)  # its own state, not the first's


class TestFaultPlan:
    def test_parse_single_and_comma_list(self):
        plan = FaultPlan.parse("1@3,0@5")
        assert plan.crash_due(1, 3)
        assert plan.crash_due(0, 5)
        assert not plan.crash_due(0, 3)
        assert len(plan) == 2
        assert plan.crashes == (CrashPoint(1, 3), CrashPoint(0, 5))

    def test_parse_repeated_flags(self):
        plan = FaultPlan.parse(["2@1", "0@0"])
        assert plan.crash_due(2, 1) and plan.crash_due(0, 0)

    @pytest.mark.parametrize("bad", ["3", "a@b", "1@", "@2", "-1@2", "1@-2"])
    def test_bad_specs_rejected(self, bad):
        with pytest.raises(ValueError):
            FaultPlan.parse(bad)

    def test_empty_plan_is_falsy(self):
        assert not FaultPlan()
        assert not FaultPlan.parse("")
        assert FaultPlan.parse("").crashes == ()

    def test_seeded_plans_are_deterministic(self):
        first = FaultPlan.seeded(seed=17, workers=4, crashes=3)
        second = FaultPlan.seeded(seed=17, workers=4, crashes=3)
        assert first == second
        assert len(first) == 3
        different = FaultPlan.seeded(seed=18, workers=4, crashes=3)
        assert first != different

    def test_seeded_plan_targets_valid_workers_and_windows(self):
        plan = FaultPlan.seeded(seed=5, workers=3, crashes=4, max_window=6)
        for point in plan.crashes:
            assert 0 <= point.worker_id < 3
            assert 0 <= point.window_index < 6

    def test_seeded_validation(self):
        with pytest.raises(ValueError):
            FaultPlan.seeded(seed=1, workers=0)
        with pytest.raises(ValueError):
            FaultPlan.seeded(seed=1, workers=2, crashes=-1)

    def test_repr_lists_crash_specs(self):
        assert "1@3" in repr(FaultPlan.parse("1@3"))
        assert "none" in repr(FaultPlan())


class TestReliabilityConfig:
    def test_bad_cadence_fails_fast(self):
        with pytest.raises(ValueError):
            ReliabilityConfig(cadence="sometimes")

    def test_bad_quantum_rejected(self):
        with pytest.raises(ValueError):
            ReliabilityConfig(window_quantum_ms=0.0)

    def test_bad_recovery_budget_rejected(self):
        with pytest.raises(ValueError):
            ReliabilityConfig(max_recoveries_per_worker=0)

    def test_policies_built_per_call(self):
        config = ReliabilityConfig(cadence="windows:2")
        first = config.build_policy()
        second = config.build_policy()
        assert first is not second
        assert config.fault_plan() == FaultPlan()


class TestCoordinatorValidation:
    def test_out_of_range_crash_worker_fails_fast(self):
        from repro.sim.runspec import RunSpec
        from repro.sim.simulator import SimulationConfig, Simulator
        from repro.workload.generator import TraceConfig, TraceGenerator

        trace = TraceGenerator(
            TraceConfig(query_count=8, bucket_count=32, seed=9)
        ).generate()
        simulator = Simulator(SimulationConfig(bucket_count=32))
        with pytest.raises(ValueError, match="0-based"):
            simulator.execute(
                trace.queries,
                RunSpec(
                    workers=2,
                    enable_stealing=False,
                    reliability=ReliabilityConfig(faults=FaultPlan.parse("5@0")),
                ),
            )
