"""The headline reliability invariant: crashes change nothing.

A crash-injected run with recovery must produce *identical* virtual-clock
results to an uninterrupted run — completion sets, per-query chunk
sequences, every parity field — across the serial engine, the virtual
backend and the process backend, workers {1, 2, 4}, with stealing off.
The schedule-purity property makes this possible; the checkpoint/restore
machinery makes it true; this harness pins it down.
"""

import pytest

from repro.core.engine import EngineConfig, LifeRaftEngine
from repro.core.scheduler import LifeRaftScheduler, SchedulerConfig
from repro.parallel.backend import ParallelRunSpec, make_backend
from repro.reliability import FaultPlan, ReliabilityConfig
from repro.service.streams import StreamHub
from repro.sim.runspec import RunSpec
from repro.sim.simulator import (
    VIRTUAL_CLOCK_PARITY_FIELDS,
    SimulationConfig,
    Simulator,
)
from repro.storage.bucket_store import BucketStore
from repro.storage.disk_model import calibrated_disk_for_bucket_read
from repro.storage.index import SpatialIndex
from repro.storage.partitioner import BucketPartitioner
from repro.workload.generator import TraceConfig, TraceGenerator

BUCKETS = 64
WORKER_COUNTS = (1, 2, 4)
#: Window quantum: fine enough that every run spans several barriers, so
#: the crash plans below actually fire.
WINDOW_BUCKET_READS = 4.0
#: Per worker count: a deterministic crash plan that targets live shards.
CRASH_PLANS = {1: "0@1,0@3", 2: "1@1,0@3", 4: "1@1,3@2,0@4"}


@pytest.fixture(scope="module")
def layout():
    return BucketPartitioner().partition_density(BUCKETS)


@pytest.fixture(scope="module")
def sim_config():
    return SimulationConfig(bucket_count=BUCKETS)


@pytest.fixture(scope="module")
def engine_config(sim_config):
    return EngineConfig(cache_buckets=sim_config.cache_buckets, cost=sim_config.cost)


@pytest.fixture(scope="module")
def timed_queries():
    config = TraceConfig(query_count=40, bucket_count=BUCKETS, seed=21)
    return tuple(TraceGenerator(config).generate().with_saturation(3.0).queries)


def build_store(layout, sim_config):
    disk = calibrated_disk_for_bucket_read(
        sim_config.bucket_megabytes, sim_config.cost.tb_ms / 1000.0
    )
    return BucketStore(layout, disk)


def build_spec(layout, sim_config, engine_config, queries, workers, **kwargs):
    return ParallelRunSpec(
        layout=layout,
        store=build_store(layout, sim_config),
        queries=queries,
        policy=LifeRaftScheduler(SchedulerConfig(cost=sim_config.cost)),
        config=engine_config,
        workers=workers,
        shard_strategy="round_robin",
        index=SpatialIndex([], rows=None, disk=None),
        enable_stealing=False,
        **kwargs,
    )


def reliability_config(workers, cadence="windows:1", plan=None, tb_ms=1200.0):
    return ReliabilityConfig(
        cadence=cadence,
        faults=FaultPlan.parse(plan if plan is not None else CRASH_PLANS[workers]),
        window_quantum_ms=tb_ms * WINDOW_BUCKET_READS,
    )


def chunk_sequences(outcome, coverage, arrivals):
    """Derive every query's chunk sequence from an outcome's services."""
    hub = StreamHub()
    for query_id, buckets in coverage.items():
        hub.register(query_id, buckets, arrivals[query_id])
    hub.ingest_records(outcome.services)
    return {
        stream.query_id: tuple(
            (c.seq, c.bucket_index, c.objects_matched, round(c.time_ms, 6), c.final)
            for c in stream.chunks
        )
        for stream in hub.streams()
    }


@pytest.fixture(scope="module")
def serial_reference(layout, sim_config, engine_config, timed_queries):
    """The uninterrupted serial engine's outcome on the timed trace."""
    engine = LifeRaftEngine(
        layout,
        build_store(layout, sim_config),
        scheduler=LifeRaftScheduler(SchedulerConfig(cost=sim_config.cost)),
        index=SpatialIndex([], rows=None, disk=None),
        config=engine_config,
    )
    ordered = sorted(timed_queries, key=lambda q: (q.arrival_time_s, q.query_id))
    arrivals_ms = [q.arrival_time_s * 1000.0 for q in ordered]
    index, total = 0, len(ordered)
    now_ms = arrivals_ms[0] if ordered else 0.0
    while index < total or engine.has_pending_work():
        if not engine.has_pending_work() and index < total:
            now_ms = max(now_ms, arrivals_ms[index])
        while index < total and arrivals_ms[index] <= now_ms + 1e-9:
            engine.submit(ordered[index], now_ms=arrivals_ms[index])
            index += 1
        if not engine.has_pending_work():
            continue
        result = engine.process_next(now_ms)
        if result is None:
            break
        now_ms = result.finished_at_ms
    coverage = {}
    for batch in engine.batches:
        for query_id in batch.queries_served:
            coverage.setdefault(query_id, set()).add(batch.work_item.bucket_index)
    return {
        "report": engine.report(),
        "completed": list(engine.manager.completed_queries()),
        "coverage": {qid: frozenset(b) for qid, b in coverage.items()},
        "arrivals": {q.query_id: q.arrival_time_s * 1000.0 for q in ordered},
        "bucket_reads": engine.store.reads,
    }


@pytest.fixture(scope="module")
def clean_outcomes(layout, sim_config, engine_config, timed_queries):
    """Uninterrupted runs of both backends at every worker count."""
    outcomes = {}
    for backend_name in ("virtual", "process"):
        for workers in WORKER_COUNTS:
            spec = build_spec(layout, sim_config, engine_config, timed_queries, workers)
            outcomes[(backend_name, workers)] = make_backend(backend_name).execute(spec)
    return outcomes


@pytest.fixture(scope="module")
def crashed_outcomes(layout, sim_config, engine_config, timed_queries):
    """Crash-injected runs with recovery, both backends, every worker count."""
    outcomes = {}
    for backend_name in ("virtual", "process"):
        for workers in WORKER_COUNTS:
            spec = build_spec(
                layout,
                sim_config,
                engine_config,
                timed_queries,
                workers,
                reliability=reliability_config(workers, tb_ms=sim_config.cost.tb_ms),
            )
            outcomes[(backend_name, workers)] = make_backend(backend_name).execute(spec)
    return outcomes


@pytest.mark.parametrize("workers", WORKER_COUNTS)
@pytest.mark.parametrize("backend_name", ("virtual", "process"))
class TestCrashParity:
    def test_crashes_actually_happened(self, crashed_outcomes, backend_name, workers):
        outcome = crashed_outcomes[(backend_name, workers)]
        assert outcome.reliability is not None
        assert outcome.reliability.crashes_injected > 0
        assert outcome.reliability.recovery_count == outcome.reliability.crashes_injected
        assert outcome.reliability.checkpoints_written > 0

    def test_completion_sequence_matches_serial(
        self, crashed_outcomes, serial_reference, backend_name, workers
    ):
        outcome = crashed_outcomes[(backend_name, workers)]
        assert frozenset(outcome.completed) == frozenset(serial_reference["completed"])
        assert len(outcome.completed) == len(set(outcome.completed))

    def test_chunk_sequences_match_clean_run(
        self, crashed_outcomes, clean_outcomes, serial_reference, backend_name, workers
    ):
        crashed = crashed_outcomes[(backend_name, workers)]
        clean = clean_outcomes[(backend_name, workers)]
        coverage = serial_reference["coverage"]
        arrivals = serial_reference["arrivals"]
        assert chunk_sequences(crashed, coverage, arrivals) == chunk_sequences(
            clean, coverage, arrivals
        )

    def test_virtual_clock_totals_match_clean_run(
        self, crashed_outcomes, clean_outcomes, backend_name, workers
    ):
        crashed = crashed_outcomes[(backend_name, workers)]
        clean = clean_outcomes[(backend_name, workers)]
        assert crashed.report.busy_time_ms == pytest.approx(
            clean.report.busy_time_ms, rel=1e-12
        )
        assert crashed.report.total_io_ms == pytest.approx(
            clean.report.total_io_ms, rel=1e-12
        )
        assert crashed.report.total_match_ms == pytest.approx(
            clean.report.total_match_ms, rel=1e-12
        )
        assert crashed.report.bucket_services == clean.report.bucket_services
        assert crashed.report.strategy_counts == clean.report.strategy_counts
        assert crashed.report.cache_hit_rate == pytest.approx(
            clean.report.cache_hit_rate, rel=1e-12
        )
        assert crashed.bucket_reads == clean.bucket_reads
        assert crashed.coverage() == clean.coverage()

    def test_exact_batch_timelines_match_clean_run(
        self, crashed_outcomes, clean_outcomes, backend_name, workers
    ):
        def timeline(outcome):
            return sorted(
                (
                    r.worker_id,
                    r.seq,
                    r.bucket_index,
                    r.queries_served,
                    round(r.started_at_ms, 6),
                    round(r.finished_at_ms, 6),
                )
                for r in outcome.services
            )

        assert timeline(crashed_outcomes[(backend_name, workers)]) == timeline(
            clean_outcomes[(backend_name, workers)]
        )

    def test_response_times_match_serial(
        self, crashed_outcomes, serial_reference, backend_name, workers
    ):
        outcome = crashed_outcomes[(backend_name, workers)]
        serial = serial_reference["report"]
        assert outcome.report.response_times_ms.keys() == serial.response_times_ms.keys()
        if workers == 1:
            for query_id, expected in serial.response_times_ms.items():
                assert outcome.report.response_times_ms[query_id] == pytest.approx(
                    expected, rel=1e-9
                )


class TestRecoveryThroughSimulator:
    """`RunSpec(reliability=...)` end to end, including parity fields."""

    def test_simulator_parity_fields(self, timed_queries, sim_config):
        simulator = Simulator(sim_config)
        clean = simulator.execute(
            timed_queries, RunSpec(workers=2, enable_stealing=False)
        )
        crashed = simulator.execute(
            timed_queries,
            RunSpec(
                workers=2,
                enable_stealing=False,
                reliability=reliability_config(2, tb_ms=sim_config.cost.tb_ms),
            ),
        )
        assert crashed.reliability is not None
        assert crashed.reliability.crashes_injected > 0
        for field in VIRTUAL_CLOCK_PARITY_FIELDS:
            assert getattr(crashed, field) == getattr(clean, field), field

    def test_sparse_cadence_loses_then_replays_work(self, timed_queries, sim_config):
        simulator = Simulator(sim_config)
        clean = simulator.execute(
            timed_queries, RunSpec(workers=2, enable_stealing=False)
        )
        crashed = simulator.execute(
            timed_queries,
            RunSpec(
                workers=2,
                enable_stealing=False,
                reliability=reliability_config(
                    2, cadence="windows:4", plan="1@3", tb_ms=sim_config.cost.tb_ms
                ),
            ),
        )
        report = crashed.reliability
        assert report is not None
        assert report.services_replayed > 0  # the sparse cadence lost work
        for field in VIRTUAL_CLOCK_PARITY_FIELDS:
            assert getattr(crashed, field) == getattr(clean, field), field

    def test_cold_restart_before_any_checkpoint(self, timed_queries, sim_config):
        simulator = Simulator(sim_config)
        clean = simulator.execute(
            timed_queries, RunSpec(workers=2, enable_stealing=False)
        )
        crashed = simulator.execute(
            timed_queries,
            RunSpec(
                workers=2,
                enable_stealing=False,
                reliability=reliability_config(
                    2, cadence="windows:2", plan="0@0", tb_ms=sim_config.cost.tb_ms
                ),
            ),
        )
        report = crashed.reliability
        assert report is not None
        assert report.recoveries[0].checkpoint_window == -1  # no checkpoint yet
        for field in VIRTUAL_CLOCK_PARITY_FIELDS:
            assert getattr(crashed, field) == getattr(clean, field), field

    def test_stealing_with_every_window_cadence_is_bit_identical(
        self, layout, sim_config, engine_config, timed_queries
    ):
        """Regression: a checkpoint at window w already contains window
        w's steals (the steal round runs before the checkpoint round), so
        re-settlement must not replay them — double adoption inflated
        busy time and serviced duplicated entries.  With an every-window
        cadence the restored state equals the barrier state exactly, so a
        crash-injected stealing run must be bit-identical to a clean
        reliability run."""

        def run(faults):
            spec = ParallelRunSpec(
                layout=layout,
                store=build_store(layout, sim_config),
                queries=timed_queries,
                policy=LifeRaftScheduler(SchedulerConfig(cost=sim_config.cost)),
                config=engine_config,
                workers=4,
                shard_strategy="zone",
                index=SpatialIndex([], rows=None, disk=None),
                enable_stealing=True,
                reliability=ReliabilityConfig(
                    cadence="windows:1",
                    faults=faults,
                    window_quantum_ms=sim_config.cost.tb_ms * 2,
                ),
            )
            return make_backend("virtual").execute(spec)

        clean = run(None)
        crashed = run(FaultPlan.parse("0@1,2@3"))
        assert clean.steal_records, "the scenario must actually steal"
        assert crashed.reliability.crashes_injected == 2

        def timeline(outcome):
            return sorted(
                (
                    r.worker_id,
                    r.seq,
                    r.bucket_index,
                    r.queries_served,
                    round(r.started_at_ms, 6),
                    round(r.finished_at_ms, 6),
                )
                for r in outcome.services
            )

        assert crashed.report.busy_time_ms == pytest.approx(
            clean.report.busy_time_ms, rel=1e-12
        )
        assert crashed.report.bucket_services == clean.report.bucket_services
        assert timeline(crashed) == timeline(clean)

    def test_stealing_on_preserves_completion_set(self, timed_queries, sim_config):
        """With stealing the windowed schedules differ, but recovery must
        still complete every query exactly once."""
        simulator = Simulator(sim_config)
        clean = simulator.execute(
            timed_queries, RunSpec(workers=4, enable_stealing=False)
        )
        crashed = simulator.execute(
            timed_queries,
            RunSpec(
                workers=4,
                enable_stealing=True,
                reliability=reliability_config(4, tb_ms=sim_config.cost.tb_ms),
            ),
        )
        assert crashed.completed_queries == clean.completed_queries
        assert crashed.reliability is not None
        assert crashed.reliability.crashes_injected > 0


class TestRecoveryGuards:
    def test_checkpoint_dir_retains_lrcp_files(self, timed_queries, sim_config, tmp_path):
        simulator = Simulator(sim_config)
        target = tmp_path / "checkpoints"
        simulator.execute(
            timed_queries,
            RunSpec(
                workers=2,
                enable_stealing=False,
                reliability=ReliabilityConfig(
                    checkpoint_dir=str(target),
                    cadence="windows:2",
                    window_quantum_ms=sim_config.cost.tb_ms * WINDOW_BUCKET_READS,
                ),
            ),
        )
        shard_files = sorted(p.name for p in target.glob("shard*.lrcp"))
        run_files = sorted(p.name for p in target.glob("run*.lrcp"))
        assert shard_files, "explicit checkpoint dirs must retain shard checkpoints"
        assert run_files, "run-level checkpoints ride alongside shard ones"

    def test_run_checkpoint_round_trips_tracker_state(
        self, timed_queries, sim_config, tmp_path
    ):
        from repro.reliability.checkpoint import RunCheckpoint, read_checkpoint

        simulator = Simulator(sim_config)
        target = tmp_path / "checkpoints"
        result = simulator.execute(
            timed_queries,
            RunSpec(
                workers=2,
                enable_stealing=False,
                reliability=ReliabilityConfig(
                    checkpoint_dir=str(target),
                    cadence="windows:1",
                    window_quantum_ms=sim_config.cost.tb_ms * WINDOW_BUCKET_READS,
                ),
            ),
        )
        latest = sorted(target.glob("run*.lrcp"))[-1]
        payload, info = read_checkpoint(latest)
        assert isinstance(payload, RunCheckpoint)
        assert info.worker_id == -1
        # The durable tracker resumed from disk is usable coordinator state:
        # its completion order is a consistent prefix of the finished run.
        tracker = payload.tracker
        assert len(tracker.completed_order) == len(set(tracker.completed_order))
        assert set(payload.accepted_seq) == {0, 1}
        assert result.completed_queries >= len(tracker.completed_order)
