"""Tests for the bucket cache manager (LRU over the bucket store)."""

import pytest

from repro.core.bucket_cache import BucketCacheManager, PAPER_CACHE_BUCKETS
from repro.storage.bucket_store import BucketStore
from repro.storage.disk_model import calibrated_disk_for_bucket_read
from repro.storage.partitioner import BucketPartitioner


@pytest.fixture()
def store():
    layout = BucketPartitioner(objects_per_bucket=100, bucket_megabytes=40.0).partition_density(8)
    return BucketStore(layout, calibrated_disk_for_bucket_read(40.0, 1.2))


class TestBucketCacheManager:
    def test_paper_default_capacity_is_twenty(self, store):
        assert BucketCacheManager(store).capacity == PAPER_CACHE_BUCKETS == 20

    def test_miss_then_hit(self, store):
        cache = BucketCacheManager(store, capacity=2)
        first = cache.load(0)
        assert not first.hit
        assert first.io_cost_ms == pytest.approx(1200.0)
        second = cache.load(0)
        assert second.hit
        assert second.io_cost_ms == 0.0
        assert cache.hit_rate == pytest.approx(0.5)
        assert store.reads == 1

    def test_resident_probe_has_no_side_effects(self, store):
        cache = BucketCacheManager(store, capacity=2)
        assert not cache.resident(3)
        cache.load(3)
        assert cache.resident(3)
        stats = cache.statistics()
        assert stats["hits"] == 0 and stats["misses"] == 1

    def test_lru_eviction_of_buckets(self, store):
        cache = BucketCacheManager(store, capacity=2)
        cache.load(0)
        cache.load(1)
        cache.load(0)  # refresh 0, so 1 becomes the eviction victim
        cache.load(2)
        assert cache.resident(0) and cache.resident(2)
        assert not cache.resident(1)
        assert cache.resident_buckets() == (0, 2)

    def test_invalidate_clear_and_resize(self, store):
        cache = BucketCacheManager(store, capacity=4)
        for bucket in range(3):
            cache.load(bucket)
        assert cache.invalidate(1)
        assert not cache.invalidate(1)
        cache.resize(1)
        assert len(cache.resident_buckets()) == 1
        cache.clear()
        assert cache.resident_buckets() == ()

    def test_reload_after_invalidation_pays_io_again(self, store):
        cache = BucketCacheManager(store, capacity=2)
        cache.load(5)
        cache.invalidate(5)
        reload = cache.load(5)
        assert not reload.hit
        assert store.reads == 2
