"""Property tests pinning the columnar kernels to the row-at-a-time join.

The zero-copy read path only earns its keep if it is invisible: a bucket
decoded into :class:`~repro.storage.format.ColumnBlock` columns must
produce *object-for-object* the same matches, in the same order, with the
same separations, as the same bucket materialised into
:class:`CelestialObject` rows.  These tests drive both paths over
randomized buckets — including empty buckets and single-row pages — and
assert exact equality of the outputs.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.catalog.objects import CelestialObject
from repro.core.bucket_cache import BucketCacheManager
from repro.core.join_evaluator import HybridJoinEvaluator
from repro.core.kernels import MatchedPair, crossmatch_block, refine_block
from repro.core.metrics import CostModel
from repro.core.workload_manager import WorkloadEntry
from repro.htm.curve import HTMRange
from repro.storage.bucket_store import Bucket, BucketStore
from repro.storage.disk_model import calibrated_disk_for_bucket_read
from repro.storage.format import decode_column_block, encode_bucket_page
from repro.storage.partitioner import BucketPartitioner
from repro.workload.query import CrossMatchObject

LEAF_LEVEL = 8
CURVE_START = 8 << (2 * LEAF_LEVEL)
CURVE_END = (16 << (2 * LEAF_LEVEL)) - 1
SURVEYS = ("sdss", "twomass", "usnob")


def make_evaluator():
    """A scan-only evaluator over a virtual store (the join needs no I/O)."""
    cost = CostModel.paper_defaults()
    layout = BucketPartitioner(objects_per_bucket=10_000, bucket_megabytes=40.0).partition_density(
        8
    )
    store = BucketStore(layout, calibrated_disk_for_bucket_read(40.0, 1.2))
    cache = BucketCacheManager(store, capacity=4)
    return HybridJoinEvaluator(cost, cache)


@st.composite
def catalog_rows(draw, min_size=0, max_size=80):
    """HTM-sorted catalog rows, exactly as a bucket page stores them."""
    ids = draw(
        st.lists(
            st.integers(min_value=CURVE_START, max_value=CURVE_END),
            min_size=min_size,
            max_size=max_size,
        )
    )
    ids.sort()
    rows = []
    for position, htm_id in enumerate(ids):
        rows.append(
            CelestialObject(
                object_id=draw(st.integers(min_value=-(2**40), max_value=2**40)),
                ra=draw(st.floats(0.0, 360.0, allow_nan=False)),
                dec=draw(st.floats(-90.0, 90.0, allow_nan=False)),
                htm_id=htm_id,
                magnitude=draw(st.floats(5.0, 30.0, allow_nan=False)),
                survey=SURVEYS[position % len(SURVEYS)],
            )
        )
    return rows


@st.composite
def workload_entries(draw, min_queries=1, max_queries=4):
    """Workload entries whose HTM windows overlap the test curve range."""
    entries = []
    query_count = draw(st.integers(min_value=min_queries, max_value=max_queries))
    for query_id in range(query_count):
        object_count = draw(st.integers(min_value=1, max_value=6))
        objects = []
        for index in range(object_count):
            low = draw(st.integers(min_value=CURVE_START, max_value=CURVE_END))
            width = draw(st.integers(min_value=0, max_value=(CURVE_END - CURVE_START) // 4))
            objects.append(
                CrossMatchObject(
                    object_id=query_id * 1_000 + index,
                    htm_range=HTMRange(low, min(low + width, CURVE_END)),
                    ra=draw(st.floats(0.0, 360.0, allow_nan=False)),
                    dec=draw(st.floats(-90.0, 90.0, allow_nan=False)),
                    # A huge radius guarantees some windows actually match;
                    # small radii exercise the all-rejected branch.
                    match_radius_arcsec=draw(
                        st.sampled_from([0.5, 2.0, 3600.0, 90.0 * 3600.0, 360.0 * 3600.0])
                    ),
                )
            )
        entries.append(
            WorkloadEntry(
                query_id=query_id,
                object_count=len(objects),
                enqueue_time_ms=0.0,
                objects=tuple(objects),
            )
        )
    return entries


def as_block(rows):
    """Round one bucket's rows through the columnar codec."""
    codes = {}
    for row in rows:
        codes.setdefault(row.survey, len(codes))
    page = encode_bucket_page([row.htm_id for row in rows], rows, codes)
    return decode_column_block(page, tuple(codes))


def assert_same_matches(columnar, row_wise):
    """Object-for-object equality of two match lists."""
    assert len(columnar) == len(row_wise)
    for left, right in zip(columnar, row_wise):
        assert left.query_id == right.query_id
        assert left.workload_object is right.workload_object
        assert left.separation_arcsec == right.separation_arcsec
        assert left.catalog_object == right.catalog_object


class TestCrossmatchParity:
    @settings(max_examples=60, suppress_health_check=[HealthCheck.too_slow], deadline=None)
    @given(rows=catalog_rows(), entries=workload_entries())
    def test_columnar_kernel_matches_row_path(self, rows, entries):
        """crossmatch_block == the evaluator's row-at-a-time merge join."""
        evaluator = make_evaluator()
        spec = evaluator.cache.store.layout[0]
        row_bucket = Bucket(spec, objects=tuple(rows), htm_ids=tuple(r.htm_id for r in rows))
        col_matches, col_per_query = crossmatch_block(as_block(rows), entries)
        row_matches, row_per_query = evaluator._merge_join(row_bucket, entries)
        assert_same_matches(col_matches, row_matches)
        assert col_per_query == row_per_query

    @settings(max_examples=40, suppress_health_check=[HealthCheck.too_slow], deadline=None)
    @given(rows=catalog_rows(min_size=1), entries=workload_entries())
    def test_columnar_bucket_through_merge_join(self, rows, entries):
        """A columns-backed Bucket rides the kernel inside _merge_join."""
        evaluator = make_evaluator()
        spec = evaluator.cache.store.layout[0]
        row_bucket = Bucket(spec, objects=tuple(rows), htm_ids=tuple(r.htm_id for r in rows))
        col_bucket = Bucket(spec, columns=as_block(rows))
        col_matches, col_per_query = evaluator._merge_join(col_bucket, entries)
        row_matches, row_per_query = evaluator._merge_join(row_bucket, entries)
        assert_same_matches(col_matches, row_matches)
        assert col_per_query == row_per_query

    def test_empty_block_matches_empty_bucket(self):
        """Empty buckets short-circuit identically on both paths."""
        evaluator = make_evaluator()
        spec = evaluator.cache.store.layout[0]
        entries = [
            WorkloadEntry(
                query_id=7,
                object_count=1,
                enqueue_time_ms=0.0,
                objects=(
                    CrossMatchObject(
                        object_id=1,
                        htm_range=HTMRange(CURVE_START, CURVE_END),
                        ra=10.0,
                        dec=10.0,
                    ),
                ),
            )
        ]
        col_matches, col_per_query = crossmatch_block(as_block([]), entries)
        row_matches, row_per_query = evaluator._merge_join(
            Bucket(spec, objects=(), htm_ids=()), entries
        )
        assert col_matches == row_matches == []
        assert col_per_query == row_per_query == {}

    def test_single_row_page(self):
        """A one-row page matches iff the window and radius admit the row."""
        row = CelestialObject(
            object_id=42,
            ra=180.0,
            dec=0.0,
            htm_id=CURVE_START + 5,
            magnitude=20.0,
            survey="sdss",
        )
        block = as_block([row])
        hit = CrossMatchObject(
            object_id=1,
            htm_range=HTMRange(CURVE_START, CURVE_START + 10),
            ra=180.0,
            dec=0.0,
            match_radius_arcsec=2.0,
        )
        miss_window = CrossMatchObject(
            object_id=2,
            htm_range=HTMRange(CURVE_START + 6, CURVE_END),
            ra=180.0,
            dec=0.0,
            match_radius_arcsec=2.0,
        )
        matches: list[MatchedPair] = []
        assert refine_block(1, hit, block, matches) == 1
        assert matches[0].catalog_object == row
        assert matches[0].separation_arcsec == 0.0
        assert refine_block(1, miss_window, block, matches) == 0

    def test_abstract_objects_never_match(self):
        """Workload objects without positions are skipped, as on the row path."""
        rows = [
            CelestialObject(
                object_id=1,
                ra=10.0,
                dec=10.0,
                htm_id=CURVE_START,
                magnitude=20.0,
                survey="sdss",
            )
        ]
        abstract = CrossMatchObject(object_id=9, htm_range=HTMRange(CURVE_START, CURVE_END))
        matches: list[MatchedPair] = []
        assert refine_block(3, abstract, as_block(rows), matches) == 0
        assert matches == []
