"""Tests for the query pre-processor (query → per-bucket sub-queries)."""

import pytest

from repro.core.preprocessor import QueryPreProcessor
from repro.htm.curve import HTMRange
from repro.storage.partitioner import BucketPartitioner
from repro.workload.query import CrossMatchObject, CrossMatchQuery

LEAF_LEVEL = 8
CURVE_START = 8 << (2 * LEAF_LEVEL)


@pytest.fixture(scope="module")
def layout():
    # Four equal-width buckets over the whole curve.
    return BucketPartitioner(objects_per_bucket=100, leaf_level=LEAF_LEVEL).partition_density(4)


@pytest.fixture(scope="module")
def preprocessor(layout):
    return QueryPreProcessor(layout)


def obj(object_id, low, high):
    return CrossMatchObject(object_id=object_id, htm_range=HTMRange(low, high))


class TestExplicitObjects:
    def test_object_assigned_to_containing_bucket(self, preprocessor, layout):
        first_bucket = layout[0]
        query = CrossMatchQuery(
            query_id=1,
            objects=(obj(0, first_bucket.htm_range.low, first_bucket.htm_range.low + 5),),
        )
        assignment = preprocessor.assign(query)
        assert set(assignment.keys()) == {0}
        assert len(assignment[0]) == 1

    def test_object_spanning_two_buckets_is_duplicated(self, preprocessor, layout):
        boundary = layout[0].htm_range.high
        query = CrossMatchQuery(query_id=2, objects=(obj(0, boundary - 1, boundary + 2),))
        assignment = preprocessor.assign(query)
        assert set(assignment.keys()) == {0, 1}
        # The same object appears in both buckets (no duplicate elimination
        # is needed because the spatial join is on point data, §3.1).
        assert assignment[0][0].object_id == assignment[1][0].object_id == 0

    def test_footprint_counts_objects_per_bucket(self, preprocessor, layout):
        low = layout[2].htm_range.low
        query = CrossMatchQuery(
            query_id=3,
            objects=(
                obj(0, low, low + 1),
                obj(1, low + 2, low + 3),
                obj(2, layout[3].htm_range.low, layout[3].htm_range.low),
            ),
        )
        footprint = preprocessor.footprint(query)
        assert footprint == {2: 2, 3: 1}

    def test_batch_footprint_aggregates_queries(self, preprocessor, layout):
        low = layout[1].htm_range.low
        queries = [
            CrossMatchQuery(query_id=i, objects=(obj(0, low, low + 1),)) for i in range(3)
        ]
        assert preprocessor.batch_footprint(queries) == {1: 3}


class TestAbstractQueries:
    def test_footprint_passes_through(self, preprocessor):
        query = CrossMatchQuery(query_id=10, bucket_footprint={0: 5, 3: 7})
        assert preprocessor.assign(query) == {0: 5, 3: 7}
        assert preprocessor.footprint(query) == {0: 5, 3: 7}

    def test_out_of_range_bucket_rejected(self, preprocessor):
        query = CrossMatchQuery(query_id=11, bucket_footprint={99: 5})
        with pytest.raises(ValueError):
            preprocessor.assign(query)
