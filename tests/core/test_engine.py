"""Tests for the LifeRaft engine (submit → schedule → evaluate → complete)."""

import pytest

from repro.core.baselines import NoShareScheduler
from repro.core.engine import EngineConfig, LifeRaftEngine
from repro.core.scheduler import LifeRaftScheduler, SchedulerConfig
from repro.storage.bucket_store import BucketStore
from repro.storage.disk_model import calibrated_disk_for_bucket_read
from repro.storage.index import SpatialIndex
from repro.storage.partitioner import BucketPartitioner
from repro.workload.query import CrossMatchQuery


def make_engine(scheduler=None, bucket_count=16, cache_buckets=4, enable_hybrid=True):
    layout = BucketPartitioner(objects_per_bucket=10_000, bucket_megabytes=40.0).partition_density(
        bucket_count
    )
    store = BucketStore(layout, calibrated_disk_for_bucket_read(40.0, 1.2))
    config = EngineConfig(cache_buckets=cache_buckets, enable_hybrid=enable_hybrid)
    return LifeRaftEngine(
        layout,
        store,
        scheduler=scheduler or LifeRaftScheduler(SchedulerConfig(alpha=0.0)),
        index=SpatialIndex([]),
        config=config,
    )


def abstract_query(query_id, footprint, arrival_s=0.0):
    return CrossMatchQuery(query_id=query_id, bucket_footprint=footprint, arrival_time_s=arrival_s)


class TestConfig:
    def test_cache_capacity_validated(self):
        with pytest.raises(ValueError):
            EngineConfig(cache_buckets=0)


class TestSubmitAndProcess:
    def test_single_query_single_bucket(self):
        engine = make_engine()
        engine.submit(abstract_query(1, {3: 1_000}), now_ms=0.0)
        assert engine.has_pending_work()
        result = engine.process_next(0.0)
        assert result.work_item.bucket_index == 3
        assert result.queries_served == (1,)
        assert result.queries_completed == (1,)
        assert result.cost_ms == pytest.approx(1200.0 + 1_000 * 0.13)
        assert not engine.has_pending_work()

    def test_process_next_when_idle_returns_none(self):
        engine = make_engine()
        assert engine.process_next(0.0) is None

    def test_batching_two_queries_on_same_bucket_reads_once(self):
        engine = make_engine()
        engine.submit(abstract_query(1, {5: 600}), now_ms=0.0)
        engine.submit(abstract_query(2, {5: 700}), now_ms=10.0)
        result = engine.process_next(20.0)
        assert sorted(result.queries_served) == [1, 2]
        assert sorted(result.queries_completed) == [1, 2]
        assert engine.store.reads == 1
        report = engine.report()
        assert report.completed_queries == 2
        assert report.bucket_services == 1

    def test_query_completes_only_after_all_buckets(self):
        engine = make_engine()
        engine.submit(abstract_query(1, {0: 500, 1: 600}), now_ms=0.0)
        first = engine.process_next(0.0)
        assert first.queries_completed == ()
        second = engine.process_next(first.finished_at_ms)
        assert second.queries_completed == (1,)

    def test_run_until_idle_processes_everything(self):
        engine = make_engine()
        for query_id in range(5):
            engine.submit(abstract_query(query_id, {query_id: 400, query_id + 5: 500}), now_ms=0.0)
        batches = engine.run_until_idle()
        assert batches == len(engine.batches)
        assert not engine.has_pending_work()
        assert engine.report().completed_queries == 5

    def test_run_until_idle_respects_max_batches(self):
        engine = make_engine()
        engine.submit(abstract_query(1, {0: 400, 1: 400, 2: 400}), now_ms=0.0)
        assert engine.run_until_idle(max_batches=2) == 2
        assert engine.has_pending_work()

    def test_query_outside_layout_raises(self):
        engine = make_engine(bucket_count=4)
        with pytest.raises(ValueError):
            engine.submit(abstract_query(1, {99: 10}), now_ms=0.0)


class TestSchedulingIntegration:
    def test_noshare_scheduler_bypasses_cache(self):
        engine = make_engine(scheduler=NoShareScheduler())
        engine.submit(abstract_query(1, {2: 600}), now_ms=0.0)
        engine.submit(abstract_query(2, {2: 600}), now_ms=0.0)
        engine.run_until_idle()
        # Both queries scanned the same bucket but shared nothing.
        assert engine.store.reads == 2
        assert engine.report().cache_hit_rate == 0.0

    def test_liferaft_uses_hybrid_index_path_for_tiny_queues(self):
        engine = make_engine()
        engine.submit(abstract_query(1, {2: 20}), now_ms=0.0)
        result = engine.process_next(0.0)
        assert result.join.strategy.value == "indexed_join"
        assert engine.report().strategy_counts["indexed_join"] == 1

    def test_hybrid_disabled_forces_scans(self):
        engine = make_engine(enable_hybrid=False)
        engine.submit(abstract_query(1, {2: 20}), now_ms=0.0)
        result = engine.process_next(0.0)
        assert result.join.strategy.value == "sequential_scan"


class TestReporting:
    def test_report_tracks_throughput_and_response_times(self):
        engine = make_engine()
        engine.submit(abstract_query(1, {0: 1_000}, arrival_s=0.0), now_ms=0.0)
        engine.submit(abstract_query(2, {1: 1_000}, arrival_s=1.0), now_ms=1_000.0)
        engine.run_until_idle()
        report = engine.report()
        assert report.completed_queries == 2
        assert set(report.response_times_ms) == {1, 2}
        assert report.makespan_ms > 0
        assert report.throughput_qps > 0
        assert report.avg_response_time_s > 0
        assert report.total_io_ms > 0
        assert report.busy_time_ms == pytest.approx(
            sum(batch.cost_ms for batch in engine.batches)
        )

    def test_empty_report(self):
        engine = make_engine()
        report = engine.report()
        assert report.completed_queries == 0
        assert report.throughput_qps == 0.0
        assert report.avg_response_time_s == 0.0
