"""Tests for the LifeRaft scheduler (aged workload throughput selection)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bucket_cache import BucketCacheManager
from repro.core.scheduler import LifeRaftScheduler, SchedulerConfig, WorkItem
from repro.core.workload_manager import WorkloadManager
from repro.storage.bucket_store import BucketStore
from repro.storage.disk_model import calibrated_disk_for_bucket_read
from repro.storage.partitioner import BucketPartitioner


def make_environment(bucket_count=16, cache_capacity=4):
    layout = BucketPartitioner(objects_per_bucket=10_000, bucket_megabytes=40.0).partition_density(
        bucket_count
    )
    store = BucketStore(layout, calibrated_disk_for_bucket_read(40.0, 1.2))
    return WorkloadManager(), BucketCacheManager(store, cache_capacity)


class TestConfig:
    def test_alpha_bounds_validated(self):
        with pytest.raises(ValueError):
            SchedulerConfig(alpha=1.2)
        with pytest.raises(ValueError):
            SchedulerConfig(alpha=-0.1)

    def test_with_alpha_returns_new_config(self):
        config = SchedulerConfig(alpha=0.25)
        updated = config.with_alpha(0.75)
        assert updated.alpha == 0.75
        assert config.alpha == 0.25

    def test_set_alpha_on_scheduler(self):
        scheduler = LifeRaftScheduler(SchedulerConfig(alpha=0.0))
        scheduler.set_alpha(1.0)
        assert scheduler.alpha == 1.0
        assert "alpha=1" in scheduler.name


class TestSelection:
    def test_no_pending_work_returns_none(self):
        manager, cache = make_environment()
        assert LifeRaftScheduler().next_work(manager, cache, 0.0) is None

    def test_greedy_prefers_larger_queue_when_all_cold(self):
        manager, cache = make_environment()
        manager.add_query(1, {2: 100}, 0.0)
        manager.add_query(2, {7: 5_000}, 0.0)
        scheduler = LifeRaftScheduler(SchedulerConfig(alpha=0.0))
        work = scheduler.next_work(manager, cache, 1_000.0)
        assert work == WorkItem(bucket_index=7)

    def test_greedy_prefers_resident_bucket_over_larger_cold_queue(self):
        manager, cache = make_environment()
        manager.add_query(1, {2: 50}, 0.0)
        manager.add_query(2, {7: 5_000}, 0.0)
        cache.load(2)  # bucket 2 is now in memory: phi(2) = 0
        scheduler = LifeRaftScheduler(SchedulerConfig(alpha=0.0))
        work = scheduler.next_work(manager, cache, 1_000.0)
        assert work.bucket_index == 2

    def test_age_bias_one_follows_arrival_order(self):
        manager, cache = make_environment()
        manager.add_query(1, {5: 10}, 100.0)
        manager.add_query(2, {9: 10_000}, 5_000.0)
        scheduler = LifeRaftScheduler(SchedulerConfig(alpha=1.0))
        work = scheduler.next_work(manager, cache, 10_000.0)
        assert work.bucket_index == 5

    def test_intermediate_alpha_can_flip_to_old_small_queue(self):
        manager, cache = make_environment()
        # A contentious young bucket vs. a starving old one.
        manager.add_query(1, {3: 200}, 0.0)
        manager.add_query(2, {8: 9_000}, 990_000.0)
        greedy = LifeRaftScheduler(SchedulerConfig(alpha=0.0))
        balanced = LifeRaftScheduler(SchedulerConfig(alpha=0.9))
        now = 1_000_000.0
        assert greedy.next_work(manager, cache, now).bucket_index == 8
        assert balanced.next_work(manager, cache, now).bucket_index == 3

    def test_ties_break_toward_lower_bucket_index(self):
        manager, cache = make_environment()
        manager.add_query(1, {4: 100, 9: 100}, 0.0)
        scheduler = LifeRaftScheduler(SchedulerConfig(alpha=0.0))
        assert scheduler.next_work(manager, cache, 10.0).bucket_index == 4

    def test_decision_counter_increments(self):
        manager, cache = make_environment()
        manager.add_query(1, {0: 10}, 0.0)
        scheduler = LifeRaftScheduler()
        scheduler.next_work(manager, cache, 1.0)
        scheduler.next_work(manager, cache, 2.0)
        assert scheduler.decisions == 2

    def test_work_item_defaults_to_shared_full_drain(self):
        manager, cache = make_environment()
        manager.add_query(1, {0: 10}, 0.0)
        work = LifeRaftScheduler().next_work(manager, cache, 1.0)
        assert work.query_ids is None
        assert work.share_io
        assert work.force_strategy is None


class TestScoring:
    def test_score_matches_rank_buckets(self):
        manager, cache = make_environment()
        manager.add_query(1, {1: 100, 2: 5_000}, 0.0)
        scheduler = LifeRaftScheduler(SchedulerConfig(alpha=0.3))
        ranks = scheduler.rank_buckets(manager, cache, 60_000.0)
        assert set(ranks) == {1, 2}
        assert ranks[2] > ranks[1]
        assert scheduler.score(2, manager, cache, 60_000.0) == pytest.approx(ranks[2])

    @given(
        st.dictionaries(
            st.integers(min_value=0, max_value=15),
            st.integers(min_value=1, max_value=20_000),
            min_size=1,
            max_size=10,
        ),
        st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_selected_bucket_maximises_the_score(self, footprint, alpha):
        manager, cache = make_environment()
        manager.add_query(1, footprint, 0.0)
        scheduler = LifeRaftScheduler(SchedulerConfig(alpha=alpha))
        now = 30_000.0
        work = scheduler.next_work(manager, cache, now)
        ranks = scheduler.rank_buckets(manager, cache, now)
        assert work.bucket_index in ranks
        assert ranks[work.bucket_index] == pytest.approx(max(ranks.values()), abs=1e-12)
