"""Tests for the baseline scheduling policies."""


from repro.core.baselines import (
    IndexOnlyScheduler,
    LeastSharableFirstScheduler,
    NoShareScheduler,
    RoundRobinScheduler,
)
from repro.core.bucket_cache import BucketCacheManager
from repro.core.join_evaluator import JoinStrategy
from repro.core.workload_manager import WorkloadManager
from repro.storage.bucket_store import BucketStore
from repro.storage.disk_model import calibrated_disk_for_bucket_read
from repro.storage.partitioner import BucketPartitioner


def make_environment(bucket_count=16):
    layout = BucketPartitioner(objects_per_bucket=10_000, bucket_megabytes=40.0).partition_density(
        bucket_count
    )
    store = BucketStore(layout, calibrated_disk_for_bucket_read(40.0, 1.2))
    return WorkloadManager(), BucketCacheManager(store, 4)


class TestNoShare:
    def test_picks_oldest_query_and_its_lowest_bucket(self):
        manager, cache = make_environment()
        manager.add_query(7, {5: 10, 2: 10}, 100.0)
        manager.add_query(8, {0: 10}, 200.0)
        work = NoShareScheduler().next_work(manager, cache, 1_000.0)
        assert work.bucket_index == 2
        assert work.query_ids == (7,)
        assert not work.share_io

    def test_moves_to_next_query_after_completion(self):
        manager, cache = make_environment()
        manager.add_query(7, {2: 10}, 100.0)
        manager.add_query(8, {0: 10}, 200.0)
        scheduler = NoShareScheduler()
        first = scheduler.next_work(manager, cache, 1_000.0)
        manager.drain_bucket(first.bucket_index, 1_500.0, query_ids=first.query_ids)
        second = scheduler.next_work(manager, cache, 2_000.0)
        assert second.query_ids == (8,)
        assert second.bucket_index == 0

    def test_returns_none_when_idle(self):
        manager, cache = make_environment()
        assert NoShareScheduler().next_work(manager, cache, 0.0) is None


class TestIndexOnly:
    def test_forces_indexed_join(self):
        manager, cache = make_environment()
        manager.add_query(1, {3: 10_000}, 0.0)
        work = IndexOnlyScheduler().next_work(manager, cache, 1.0)
        assert work.force_strategy is JoinStrategy.INDEXED_JOIN
        assert work.query_ids == (1,)
        assert not work.share_io


class TestRoundRobin:
    def test_services_buckets_in_increasing_order_with_wraparound(self):
        manager, cache = make_environment()
        manager.add_query(1, {3: 10, 9: 10, 1: 10}, 0.0)
        scheduler = RoundRobinScheduler()
        order = []
        for _ in range(3):
            work = scheduler.next_work(manager, cache, 0.0)
            order.append(work.bucket_index)
            manager.drain_bucket(work.bucket_index, 1.0)
        assert order == [1, 3, 9]

    def test_wraps_to_lowest_pending_bucket(self):
        manager, cache = make_environment()
        manager.add_query(1, {9: 10}, 0.0)
        scheduler = RoundRobinScheduler()
        first = scheduler.next_work(manager, cache, 0.0)
        manager.drain_bucket(first.bucket_index, 1.0)
        manager.add_query(2, {1: 10}, 2.0)
        second = scheduler.next_work(manager, cache, 3.0)
        assert second.bucket_index == 1

    def test_shares_io(self):
        manager, cache = make_environment()
        manager.add_query(1, {4: 10}, 0.0)
        work = RoundRobinScheduler().next_work(manager, cache, 0.0)
        assert work.share_io
        assert work.query_ids is None

    def test_idle_returns_none(self):
        manager, cache = make_environment()
        assert RoundRobinScheduler().next_work(manager, cache, 0.0) is None


class TestLeastSharableFirst:
    def test_prefers_smallest_workload_queue(self):
        manager, cache = make_environment()
        manager.add_query(1, {2: 5_000}, 0.0)
        manager.add_query(2, {7: 10}, 0.0)
        work = LeastSharableFirstScheduler().next_work(manager, cache, 10.0)
        assert work.bucket_index == 7

    def test_ties_break_by_age_then_bucket(self):
        manager, cache = make_environment()
        manager.add_query(1, {2: 10}, 100.0)
        manager.add_query(2, {7: 10}, 0.0)
        work = LeastSharableFirstScheduler().next_work(manager, cache, 1_000.0)
        assert work.bucket_index == 7  # same size, older request wins

    def test_idle_returns_none(self):
        manager, cache = make_environment()
        assert LeastSharableFirstScheduler().next_work(manager, cache, 0.0) is None
