"""Tests for the hybrid join evaluator (strategy choice + spatial merge join)."""

import pytest

from repro.catalog.archive import ArchiveConfig, build_archive
from repro.catalog.generator import SkyGenerator, SkyGeneratorConfig
from repro.core.bucket_cache import BucketCacheManager
from repro.core.join_evaluator import HybridJoinEvaluator, JoinStrategy
from repro.core.metrics import CostModel
from repro.core.workload_manager import WorkloadEntry
from repro.federation.crossmatch import crossmatch_catalogs, to_crossmatch_objects
from repro.storage.bucket_store import BucketStore
from repro.storage.disk_model import calibrated_disk_for_bucket_read
from repro.storage.index import SpatialIndex
from repro.storage.partitioner import BucketPartitioner


def make_virtual_setup(cache_capacity=4):
    """Cost-model-only setup over a virtual (count-based) store."""
    cost = CostModel.paper_defaults()
    layout = BucketPartitioner(objects_per_bucket=10_000, bucket_megabytes=40.0).partition_density(
        8
    )
    store = BucketStore(layout, calibrated_disk_for_bucket_read(40.0, 1.2))
    cache = BucketCacheManager(store, capacity=cache_capacity)
    evaluator = HybridJoinEvaluator(cost, cache, index=SpatialIndex([]))
    return evaluator, layout, cache


def entries_for(counts, start_query=0):
    return [
        WorkloadEntry(query_id=start_query + i, object_count=count, enqueue_time_ms=0.0)
        for i, count in enumerate(counts)
    ]


class TestStrategyChoice:
    def test_small_cold_queue_uses_index(self):
        evaluator, layout, _cache = make_virtual_setup()
        strategy = evaluator.choose_strategy(100, 10_000, bucket_resident=False)
        assert strategy is JoinStrategy.INDEXED_JOIN

    def test_large_cold_queue_uses_scan(self):
        evaluator, _layout, _cache = make_virtual_setup()
        assert (
            evaluator.choose_strategy(1_000, 10_000, bucket_resident=False)
            is JoinStrategy.SEQUENTIAL_SCAN
        )

    def test_resident_bucket_always_scans(self):
        evaluator, _layout, _cache = make_virtual_setup()
        assert (
            evaluator.choose_strategy(10, 10_000, bucket_resident=True)
            is JoinStrategy.SEQUENTIAL_SCAN
        )

    def test_force_overrides_choice(self):
        evaluator, _layout, _cache = make_virtual_setup()
        assert (
            evaluator.choose_strategy(10, 10_000, False, force=JoinStrategy.SEQUENTIAL_SCAN)
            is JoinStrategy.SEQUENTIAL_SCAN
        )

    def test_hybrid_disabled_always_scans(self):
        cost = CostModel.paper_defaults()
        layout = BucketPartitioner().partition_density(4)
        store = BucketStore(layout, calibrated_disk_for_bucket_read(40.0, 1.2))
        evaluator = HybridJoinEvaluator(
            cost, BucketCacheManager(store), index=SpatialIndex([]), enable_hybrid=False
        )
        assert evaluator.choose_strategy(1, 10_000, False) is JoinStrategy.SEQUENTIAL_SCAN

    def test_threshold_defaults_to_cost_model_breakeven(self):
        evaluator, _layout, _cache = make_virtual_setup()
        assert evaluator.threshold_fraction == pytest.approx(
            CostModel.paper_defaults().breakeven_fraction()
        )

    def test_explicit_threshold_respected(self):
        cost = CostModel.paper_defaults()
        layout = BucketPartitioner().partition_density(4)
        store = BucketStore(layout, calibrated_disk_for_bucket_read(40.0, 1.2))
        evaluator = HybridJoinEvaluator(
            cost, BucketCacheManager(store), index=SpatialIndex([]), threshold_fraction=0.5
        )
        assert evaluator.choose_strategy(4_000, 10_000, False) is JoinStrategy.INDEXED_JOIN


class TestVirtualEvaluation:
    def test_scan_costs_tb_plus_tm_per_object(self):
        evaluator, layout, _cache = make_virtual_setup()
        result = evaluator.evaluate(layout[0], entries_for([600, 500]))
        assert result.strategy is JoinStrategy.SEQUENTIAL_SCAN
        assert result.io_cost_ms == pytest.approx(1200.0)
        assert result.match_cost_ms == pytest.approx(1100 * 0.13)
        assert result.objects_processed == 1100
        assert not result.cache_hit
        assert result.match_count > 0
        assert set(result.per_query_matches) == {0, 1}

    def test_second_scan_of_same_bucket_hits_cache(self):
        evaluator, layout, _cache = make_virtual_setup()
        evaluator.evaluate(layout[0], entries_for([600]))
        result = evaluator.evaluate(layout[0], entries_for([700], start_query=5))
        assert result.cache_hit
        assert result.io_cost_ms == 0.0

    def test_unshared_scan_bypasses_cache(self):
        evaluator, layout, cache = make_virtual_setup()
        first = evaluator.evaluate(layout[1], entries_for([900]), share_io=False)
        assert first.io_cost_ms == pytest.approx(1200.0)
        assert not cache.resident(1)
        second = evaluator.evaluate(layout[1], entries_for([900]), share_io=False)
        assert second.io_cost_ms == pytest.approx(1200.0)

    def test_indexed_evaluation_costs_probe_per_object(self):
        evaluator, layout, _cache = make_virtual_setup()
        result = evaluator.evaluate(layout[2], entries_for([50]))
        assert result.strategy is JoinStrategy.INDEXED_JOIN
        assert result.cost_ms == pytest.approx(50 * 4.2)
        assert result.match_cost_ms == 0.0

    def test_empty_entries_cost_nothing(self):
        evaluator, layout, _cache = make_virtual_setup()
        result = evaluator.evaluate(layout[0], [])
        assert result.cost_ms == 0.0
        assert result.objects_processed == 0

    def test_statistics_track_strategy_mix(self):
        evaluator, layout, _cache = make_virtual_setup()
        evaluator.evaluate(layout[0], entries_for([600]))
        evaluator.evaluate(layout[3], entries_for([10], start_query=9))
        stats = evaluator.statistics()
        assert stats["scan_services"] == 1
        assert stats["index_services"] == 1
        assert 0 < stats["index_service_fraction"] < 1

    def test_validation(self):
        cost = CostModel.paper_defaults()
        layout = BucketPartitioner().partition_density(2)
        store = BucketStore(layout, calibrated_disk_for_bucket_read(40.0, 1.2))
        cache = BucketCacheManager(store)
        with pytest.raises(ValueError):
            HybridJoinEvaluator(cost, cache, threshold_fraction=-0.1)
        with pytest.raises(ValueError):
            HybridJoinEvaluator(cost, cache, match_probability=1.5)


class TestFullFidelityJoin:
    @pytest.fixture(scope="class")
    def setup(self):
        generator = SkyGenerator(SkyGeneratorConfig(object_count=500, seed=21))
        base = generator.generate("sdss")
        companion = generator.derive_companion(
            base, "twomass", completeness=0.9, extra_fraction=0.05
        )
        archive = build_archive(
            "sdss",
            base,
            ArchiveConfig(objects_per_bucket=100, bucket_megabytes=4.0, target_bucket_read_s=0.2),
        )
        incoming = to_crossmatch_objects(list(companion)[:80], match_radius_arcsec=3.0)
        return archive, incoming, companion

    def test_merge_join_matches_reference_crossmatch(self, setup):
        archive, incoming, _companion = setup
        cost = CostModel.from_disk(archive.disk, bucket_megabytes=4.0, bucket_objects=100)
        cache = BucketCacheManager(archive.store, capacity=8)
        evaluator = HybridJoinEvaluator(cost, cache, index=archive.index)
        # Build the per-bucket workload and evaluate every touched bucket
        # with a forced sequential scan (full-fidelity path).
        from repro.core.preprocessor import QueryPreProcessor
        from repro.workload.query import CrossMatchQuery

        query = CrossMatchQuery(query_id=1, objects=tuple(incoming))
        assignments = QueryPreProcessor(archive.layout).assign(query)
        matched_pairs = set()
        for bucket_index, objects in assignments.items():
            entries = [WorkloadEntry(1, len(objects), 0.0, tuple(objects))]
            result = evaluator.evaluate(
                archive.layout[bucket_index], entries, force_strategy=JoinStrategy.SEQUENTIAL_SCAN
            )
            for pair in result.matches:
                matched_pairs.add((pair.workload_object.object_id, pair.catalog_object.object_id))
        reference = {
            (incoming_obj.object_id, catalog_obj.object_id)
            for incoming_obj, catalog_obj in crossmatch_catalogs(incoming, archive.catalog)
        }
        assert matched_pairs == reference
        assert matched_pairs  # the companion survey guarantees real matches

    def test_indexed_join_finds_the_same_matches(self, setup):
        archive, incoming, _companion = setup
        cost = CostModel.from_disk(archive.disk, bucket_megabytes=4.0, bucket_objects=100)
        cache = BucketCacheManager(archive.store, capacity=8)
        evaluator = HybridJoinEvaluator(cost, cache, index=archive.index)
        from repro.core.preprocessor import QueryPreProcessor
        from repro.workload.query import CrossMatchQuery

        query = CrossMatchQuery(query_id=2, objects=tuple(incoming))
        assignments = QueryPreProcessor(archive.layout).assign(query)
        indexed_pairs = set()
        for bucket_index, objects in assignments.items():
            entries = [WorkloadEntry(2, len(objects), 0.0, tuple(objects))]
            result = evaluator.evaluate(
                archive.layout[bucket_index], entries, force_strategy=JoinStrategy.INDEXED_JOIN
            )
            for pair in result.matches:
                indexed_pairs.add((pair.workload_object.object_id, pair.catalog_object.object_id))
        reference = {
            (incoming_obj.object_id, catalog_obj.object_id)
            for incoming_obj, catalog_obj in crossmatch_catalogs(incoming, archive.catalog)
        }
        assert indexed_pairs == reference
