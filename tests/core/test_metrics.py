"""Tests for the workload-throughput and aged-workload-throughput metrics."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.metrics import (
    CostModel,
    PAPER_TB_MS,
    PAPER_TM_MS,
    aged_workload_throughput,
    workload_throughput,
)
from repro.storage.disk_model import calibrated_disk_for_bucket_read


class TestCostModel:
    def test_paper_defaults(self):
        cost = CostModel.paper_defaults()
        assert cost.tb_ms == PAPER_TB_MS
        assert cost.tm_ms == PAPER_TM_MS

    def test_validation(self):
        with pytest.raises(ValueError):
            CostModel(tb_ms=0)
        with pytest.raises(ValueError):
            CostModel(tm_ms=-1)
        with pytest.raises(ValueError):
            CostModel(index_probe_ms=0)
        with pytest.raises(ValueError):
            CostModel(bucket_objects=0)

    def test_breakeven_is_about_three_percent(self):
        cost = CostModel.paper_defaults()
        # The paper reports the scan/index break-even near 3% of the bucket.
        assert 0.02 <= cost.breakeven_fraction() <= 0.04

    def test_breakeven_infinite_when_index_cheaper_than_memory(self):
        cost = CostModel(index_probe_ms=PAPER_TM_MS / 2)
        assert cost.breakeven_queue_objects() == float("inf")

    def test_scan_and_index_costs(self):
        cost = CostModel.paper_defaults()
        assert cost.scan_cost_ms(0, in_memory=True) == 0.0
        assert cost.scan_cost_ms(100, in_memory=True) == pytest.approx(13.0)
        assert cost.scan_cost_ms(100, in_memory=False) == pytest.approx(1213.0)
        assert cost.index_cost_ms(100) == pytest.approx(420.0)
        with pytest.raises(ValueError):
            cost.scan_cost_ms(-1, in_memory=True)
        with pytest.raises(ValueError):
            cost.index_cost_ms(-1)

    def test_from_disk_matches_paper_constants(self):
        disk = calibrated_disk_for_bucket_read(40.0, 1.2)
        cost = CostModel.from_disk(disk, bucket_megabytes=40.0)
        assert cost.tb_ms == pytest.approx(1200.0, rel=1e-6)
        assert cost.tm_ms == PAPER_TM_MS
        assert cost.index_probe_ms > 0


class TestWorkloadThroughput:
    def test_equation_one_values(self):
        cost = CostModel.paper_defaults()
        # Ut = W / (Tb*phi + Tm*W)
        assert workload_throughput(1000, False, cost) == pytest.approx(1000 / (1200 + 130))
        assert workload_throughput(1000, True, cost) == pytest.approx(1000 / 130)

    def test_empty_queue_has_zero_throughput(self):
        assert workload_throughput(0, True, CostModel.paper_defaults()) == 0.0

    def test_negative_queue_rejected(self):
        with pytest.raises(ValueError):
            workload_throughput(-1, True, CostModel.paper_defaults())

    @given(st.integers(min_value=1, max_value=10_000_000))
    def test_in_memory_always_at_least_as_good(self, queue):
        cost = CostModel.paper_defaults()
        assert workload_throughput(queue, True, cost) >= workload_throughput(queue, False, cost)

    @given(
        st.integers(min_value=1, max_value=1_000_000),
        st.integers(min_value=1, max_value=1_000_000),
    )
    def test_monotone_in_queue_size_when_on_disk(self, smaller, larger):
        cost = CostModel.paper_defaults()
        low, high = sorted((smaller, larger))
        assert workload_throughput(high, False, cost) >= workload_throughput(low, False, cost)

    @given(st.integers(min_value=1, max_value=10_000_000))
    def test_bounded_by_memory_matching_rate(self, queue):
        cost = CostModel.paper_defaults()
        assert workload_throughput(queue, False, cost) <= cost.max_workload_throughput + 1e-12
        assert workload_throughput(queue, True, cost) <= cost.max_workload_throughput + 1e-12


class TestAgedWorkloadThroughput:
    def test_alpha_zero_is_pure_contention(self):
        cost = CostModel.paper_defaults()
        ut = workload_throughput(500, False, cost)
        value = aged_workload_throughput(ut, 10_000.0, 0.0, cost=cost, max_age_ms=20_000.0)
        assert value == pytest.approx(ut / cost.max_workload_throughput)

    def test_alpha_one_is_pure_age(self):
        cost = CostModel.paper_defaults()
        ut = workload_throughput(500, False, cost)
        value = aged_workload_throughput(ut, 10_000.0, 1.0, cost=cost, max_age_ms=20_000.0)
        assert value == pytest.approx(0.5)

    def test_raw_combination_matches_equation_two(self):
        value = aged_workload_throughput(2.0, 100.0, 0.25, normalize=False)
        assert value == pytest.approx(2.0 * 0.75 + 100.0 * 0.25)

    def test_validation(self):
        cost = CostModel.paper_defaults()
        with pytest.raises(ValueError):
            aged_workload_throughput(1.0, 0.0, 1.5, cost=cost, max_age_ms=1.0)
        with pytest.raises(ValueError):
            aged_workload_throughput(1.0, -5.0, 0.5, cost=cost, max_age_ms=1.0)
        with pytest.raises(ValueError):
            aged_workload_throughput(1.0, 5.0, 0.5, cost=None, normalize=True)

    @given(
        st.floats(min_value=0.0, max_value=1.0),
        st.floats(min_value=0.0, max_value=100_000.0),
        st.integers(min_value=0, max_value=100_000),
    )
    def test_normalised_value_is_bounded(self, alpha, age, queue):
        cost = CostModel.paper_defaults()
        ut = workload_throughput(queue, False, cost)
        value = aged_workload_throughput(ut, age, alpha, cost=cost, max_age_ms=100_000.0)
        assert -1e-9 <= value <= 1.0 + 1e-9

    @given(st.floats(min_value=0.0, max_value=1.0))
    def test_older_requests_never_lower_the_score(self, alpha):
        cost = CostModel.paper_defaults()
        ut = workload_throughput(200, False, cost)
        younger = aged_workload_throughput(ut, 1_000.0, alpha, cost=cost, max_age_ms=50_000.0)
        older = aged_workload_throughput(ut, 30_000.0, alpha, cost=cost, max_age_ms=50_000.0)
        assert older >= younger - 1e-12
