"""Tests for the workload manager (queues, ages, query bookkeeping)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.workload_manager import WorkloadEntry, WorkloadManager, WorkloadQueue


class TestWorkloadEntry:
    def test_positive_object_count_required(self):
        with pytest.raises(ValueError):
            WorkloadEntry(query_id=1, object_count=0, enqueue_time_ms=0.0)


class TestWorkloadQueue:
    def test_aggregates_maintained_on_append(self):
        queue = WorkloadQueue(7)
        queue.append(WorkloadEntry(1, 10, 100.0))
        queue.append(WorkloadEntry(2, 5, 50.0))
        assert queue.total_objects == 15
        assert queue.oldest_enqueue_time_ms == 50.0
        assert queue.age_ms(150.0) == 100.0
        assert queue.query_ids == [1, 2]

    def test_remove_queries_recomputes_aggregates(self):
        queue = WorkloadQueue(7)
        queue.append(WorkloadEntry(1, 10, 100.0))
        queue.append(WorkloadEntry(2, 5, 50.0))
        removed = queue.remove_queries({2})
        assert [e.query_id for e in removed] == [2]
        assert queue.total_objects == 10
        assert queue.oldest_enqueue_time_ms == 100.0

    def test_drain_all_empties_queue(self):
        queue = WorkloadQueue(7)
        queue.append(WorkloadEntry(1, 10, 100.0))
        drained = queue.drain_all()
        assert len(drained) == 1
        assert not queue
        assert queue.total_objects == 0
        assert queue.age_ms(500.0) == 0.0
        with pytest.raises(ValueError):
            queue.oldest_enqueue_time_ms


class TestIntake:
    def test_add_query_with_counts_and_objects(self):
        manager = WorkloadManager()
        manager.add_query(1, {3: 10, 5: 20}, arrival_time_ms=100.0)
        assert manager.queue_size(3) == 10
        assert manager.queue_size(5) == 20
        assert manager.query_total_objects(1) == 30
        assert manager.remaining_buckets_for(1) == {3, 5}
        assert manager.query_arrival_ms(1) == 100.0

    def test_duplicate_query_rejected(self):
        manager = WorkloadManager()
        manager.add_query(1, {0: 1}, 0.0)
        with pytest.raises(ValueError):
            manager.add_query(1, {1: 1}, 0.0)

    def test_empty_assignment_rejected(self):
        with pytest.raises(ValueError):
            WorkloadManager().add_query(1, {}, 0.0)

    def test_zero_count_assignment_rejected(self):
        with pytest.raises(ValueError):
            WorkloadManager().add_query(1, {0: 0}, 0.0)


class TestSchedulerFacingState:
    def test_pending_buckets_and_state(self):
        manager = WorkloadManager()
        manager.add_query(1, {2: 5}, 1_000.0)
        manager.add_query(2, {2: 7, 9: 3}, 2_000.0)
        assert sorted(manager.pending_buckets()) == [2, 9]
        state = dict((b, (size, age)) for b, size, age in manager.pending_state(3_000.0))
        assert state[2] == (12, 2_000.0)
        assert state[9] == (3, 1_000.0)
        assert manager.max_pending_age_ms(3_000.0) == 2_000.0

    def test_oldest_age_for_unknown_bucket_is_zero(self):
        manager = WorkloadManager()
        assert manager.oldest_age_ms(42, 100.0) == 0.0
        assert manager.max_pending_age_ms(100.0) == 0.0

    def test_oldest_pending_query_follows_arrival_order(self):
        manager = WorkloadManager()
        manager.add_query(10, {0: 1}, 5.0)
        manager.add_query(11, {1: 1}, 10.0)
        assert manager.oldest_pending_query() == 10
        manager.drain_bucket(0, 20.0)
        assert manager.oldest_pending_query() == 11
        manager.drain_bucket(1, 30.0)
        assert manager.oldest_pending_query() is None

    def test_pending_queries_ordering(self):
        manager = WorkloadManager()
        manager.add_query(2, {0: 1}, 50.0)
        manager.add_query(1, {1: 1}, 10.0)
        assert manager.pending_queries() == [1, 2]


class TestService:
    def test_full_drain_completes_single_bucket_query(self):
        manager = WorkloadManager()
        manager.add_query(1, {4: 10}, 0.0)
        drained, completed = manager.drain_bucket(4, 250.0)
        assert [e.query_id for e in drained] == [1]
        assert completed == [1]
        assert manager.completed_count() == 1
        assert manager.completion_time_ms(1) == 250.0
        assert manager.response_time_ms(1) == 250.0
        assert not manager.has_pending_work()

    def test_query_completes_only_after_every_bucket(self):
        manager = WorkloadManager()
        manager.add_query(1, {0: 5, 1: 5, 2: 5}, 0.0)
        _, completed = manager.drain_bucket(0, 10.0)
        assert completed == []
        _, completed = manager.drain_bucket(1, 20.0)
        assert completed == []
        _, completed = manager.drain_bucket(2, 30.0)
        assert completed == [1]
        assert manager.response_time_ms(1) == 30.0

    def test_partial_drain_by_query_id(self):
        manager = WorkloadManager()
        manager.add_query(1, {0: 5}, 0.0)
        manager.add_query(2, {0: 7}, 1.0)
        drained, completed = manager.drain_bucket(0, 10.0, query_ids=[1])
        assert [e.query_id for e in drained] == [1]
        assert completed == [1]
        assert manager.queue_size(0) == 7
        assert manager.response_time_ms(2) is None

    def test_drain_unknown_bucket_is_noop(self):
        manager = WorkloadManager()
        assert manager.drain_bucket(99, 0.0) == ([], [])

    def test_total_pending_objects(self):
        manager = WorkloadManager()
        manager.add_query(1, {0: 5, 1: 3}, 0.0)
        assert manager.total_pending_objects() == 8
        manager.drain_bucket(0, 1.0)
        assert manager.total_pending_objects() == 3


class TestBucketMigration:
    def test_add_query_after_adoption_keeps_arrival_order_sorted(self):
        """Regression: a shard can adopt a *later* query via a stolen queue
        before its own staged share for an *earlier* query ingests; the
        earlier query must still come first in arrival order."""
        manager = WorkloadManager()
        manager.adopt_bucket(3, [WorkloadEntry(query_id=9, object_count=5, enqueue_time_ms=9.0)])
        manager.add_query(7, {1: 4}, 7.0)
        assert manager.oldest_pending_query() == 7
        assert manager.pending_queries() == [7, 9]

    def test_adopted_queries_interleave_with_local_arrivals(self):
        manager = WorkloadManager()
        manager.add_query(1, {0: 2}, 1.0)
        manager.adopt_bucket(5, [WorkloadEntry(query_id=4, object_count=3, enqueue_time_ms=4.0)])
        manager.add_query(2, {0: 2}, 2.0)
        manager.adopt_bucket(6, [WorkloadEntry(query_id=3, object_count=3, enqueue_time_ms=3.0)])
        assert manager.pending_queries() == [1, 2, 3, 4]
        # Drain in arrival order via the cursor.
        order = []
        while manager.has_pending_work():
            oldest = manager.oldest_pending_query()
            order.append(oldest)
            for bucket in list(manager.remaining_buckets_for(oldest)):
                manager.drain_bucket(bucket, 100.0, query_ids=[oldest])
        assert order == [1, 2, 3, 4]


class TestProperties:
    @given(
        st.lists(
            st.dictionaries(
                st.integers(min_value=0, max_value=20),
                st.integers(min_value=1, max_value=50),
                min_size=1,
                max_size=5,
            ),
            min_size=1,
            max_size=30,
        )
    )
    @settings(max_examples=50)
    def test_draining_everything_completes_every_query(self, footprints):
        manager = WorkloadManager()
        for query_id, footprint in enumerate(footprints):
            manager.add_query(query_id, footprint, float(query_id))
        total_objects = sum(sum(f.values()) for f in footprints)
        assert manager.total_pending_objects() == total_objects
        now = 1_000.0
        while manager.has_pending_work():
            bucket = manager.pending_buckets()[0]
            manager.drain_bucket(bucket, now)
            now += 1.0
        assert manager.completed_count() == len(footprints)
        assert manager.total_pending_objects() == 0
        assert sorted(manager.completed_queries()) == list(range(len(footprints)))
        assert all(manager.response_time_ms(q) is not None for q in range(len(footprints)))
