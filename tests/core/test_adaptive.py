"""Tests for the adaptive α controller, trade-off curves and saturation estimation."""

import pytest

from repro.core.adaptive import (
    AlphaController,
    SaturationEstimator,
    TradeoffCurve,
    TradeoffPoint,
)


def make_curve(saturation, points):
    curve = TradeoffCurve(saturation_qps=saturation)
    for alpha, throughput, response in points:
        curve.add(
            TradeoffPoint(alpha=alpha, throughput_qps=throughput, avg_response_time_s=response)
        )
    return curve


# A high-saturation curve where giving up throughput buys little response
# time, and a low-saturation curve where a small throughput sacrifice buys a
# large response-time improvement (the paper's Figure 4 shapes).
HIGH_CURVE = make_curve(
    0.5,
    [
        (0.0, 0.22, 300.0),
        (0.25, 0.20, 250.0),
        (0.5, 0.17, 240.0),
        (0.75, 0.15, 235.0),
        (1.0, 0.14, 230.0),
    ],
)
LOW_CURVE = make_curve(
    0.1,
    [
        (0.0, 0.105, 290.0),
        (0.25, 0.104, 220.0),
        (0.5, 0.103, 180.0),
        (0.75, 0.102, 150.0),
        (1.0, 0.10, 135.0),
    ],
)


class TestTradeoffPoint:
    def test_validation(self):
        with pytest.raises(ValueError):
            TradeoffPoint(alpha=1.5, throughput_qps=1.0, avg_response_time_s=1.0)
        with pytest.raises(ValueError):
            TradeoffPoint(alpha=0.5, throughput_qps=-1.0, avg_response_time_s=1.0)


class TestTradeoffCurve:
    def test_empty_curve_rejected(self):
        empty = TradeoffCurve(saturation_qps=0.2)
        with pytest.raises(ValueError):
            empty.max_throughput()
        with pytest.raises(ValueError):
            empty.select_alpha()

    def test_normalisation_divides_by_maxima(self):
        normalized = HIGH_CURVE.normalized()
        assert max(t for _a, t, _r in normalized) == pytest.approx(1.0)
        assert max(r for _a, _t, r in normalized) == pytest.approx(1.0)
        assert [a for a, _t, _r in normalized] == sorted(a for a, _t, _r in normalized)

    def test_selection_respects_tolerance_at_high_saturation(self):
        # Only alpha in {0, 0.25} keep throughput within 20% of the max.
        assert HIGH_CURVE.select_alpha(tolerance=0.2) == 0.25
        # A very strict tolerance forces the greedy scheduler.
        assert HIGH_CURVE.select_alpha(tolerance=0.05) == 0.0

    def test_selection_picks_large_alpha_at_low_saturation(self):
        # Every alpha is within tolerance, so the best response time wins.
        assert LOW_CURVE.select_alpha(tolerance=0.2) == 1.0

    def test_invalid_tolerance_rejected(self):
        with pytest.raises(ValueError):
            HIGH_CURVE.select_alpha(tolerance=1.0)


class TestSaturationEstimator:
    def test_rate_estimate_over_window(self):
        estimator = SaturationEstimator(window_s=100.0)
        for t in range(0, 50, 5):
            estimator.observe_arrival(float(t))
        assert estimator.rate_qps(now_s=50.0) == pytest.approx(10 / 50.0, rel=0.05)

    def test_old_arrivals_age_out_of_the_window(self):
        estimator = SaturationEstimator(window_s=10.0)
        estimator.observe_arrival(0.0)
        estimator.observe_arrival(1.0)
        estimator.observe_arrival(100.0)
        assert estimator.rate_qps(now_s=100.0) == pytest.approx(1 / 10.0, rel=0.2)

    def test_empty_estimator_reports_zero(self):
        assert SaturationEstimator().rate_qps() == 0.0

    def test_non_monotone_arrivals_rejected(self):
        estimator = SaturationEstimator()
        estimator.observe_arrival(10.0)
        with pytest.raises(ValueError):
            estimator.observe_arrival(5.0)

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            SaturationEstimator(window_s=0.0)


class TestAlphaController:
    def test_requires_curves(self):
        with pytest.raises(ValueError):
            AlphaController([])

    def test_picks_closest_curve(self):
        controller = AlphaController([LOW_CURVE, HIGH_CURVE], tolerance=0.2)
        assert controller.curve_for_saturation(0.12).saturation_qps == 0.1
        assert controller.curve_for_saturation(0.45).saturation_qps == 0.5

    def test_alpha_recommendation_varies_with_saturation(self):
        controller = AlphaController([LOW_CURVE, HIGH_CURVE], tolerance=0.2)
        assert controller.alpha_for_saturation(0.1) == 1.0
        assert controller.alpha_for_saturation(0.5) == 0.25
        # The paper's conclusion: increasing alpha becomes progressively more
        # attractive with less saturation.
        assert controller.alpha_for_saturation(0.1) > controller.alpha_for_saturation(0.5)

    def test_online_estimation_drives_alpha(self):
        controller = AlphaController([LOW_CURVE, HIGH_CURVE], tolerance=0.2)
        for t in range(20):
            controller.observe_arrival(t * 2.0)  # 0.5 q/s
        assert controller.current_alpha(now_s=40.0) == 0.25
