"""Tests for the synthetic sky generators."""

import pytest

from repro.catalog.generator import SURVEY_PROFILES, SkyGenerator, SkyGeneratorConfig
from repro.htm import ids as htm_ids


@pytest.fixture(scope="module")
def small_generator():
    return SkyGenerator(SkyGeneratorConfig(object_count=400, cluster_count=4, seed=7))


class TestConfigValidation:
    def test_invalid_object_count(self):
        with pytest.raises(ValueError):
            SkyGeneratorConfig(object_count=0)

    def test_invalid_cluster_fraction(self):
        with pytest.raises(ValueError):
            SkyGeneratorConfig(cluster_fraction=1.5)

    def test_invalid_footprint(self):
        with pytest.raises(ValueError):
            SkyGeneratorConfig(footprint_dec_limits=(50.0, 10.0))


class TestGeneration:
    def test_object_count_and_survey(self, small_generator):
        catalog = small_generator.generate("sdss")
        assert len(catalog) == 400
        assert all(obj.survey == "sdss" for obj in catalog)

    def test_relative_density_applies(self):
        generator = SkyGenerator(SkyGeneratorConfig(object_count=200, seed=3))
        twomass = generator.generate("twomass")
        expected = round(200 * SURVEY_PROFILES["twomass"]["relative_density"])
        assert len(twomass) == expected

    def test_objects_fall_inside_footprint(self, small_generator):
        low, high = small_generator.config.footprint_dec_limits
        catalog = small_generator.generate("sdss")
        assert all(low - 1e-9 <= obj.dec <= high + 1e-9 for obj in catalog)

    def test_htm_ids_at_requested_level(self, small_generator):
        catalog = small_generator.generate("sdss")
        assert all(
            htm_ids.htm_level(obj.htm_id) == small_generator.config.htm_level for obj in catalog
        )

    def test_generation_is_deterministic_per_seed(self):
        a = SkyGenerator(SkyGeneratorConfig(object_count=100, seed=42)).generate("sdss")
        b = SkyGenerator(SkyGeneratorConfig(object_count=100, seed=42)).generate("sdss")
        assert [o.htm_id for o in a] == [o.htm_id for o in b]

    def test_clustering_concentrates_objects(self):
        clustered = SkyGenerator(
            SkyGeneratorConfig(object_count=600, cluster_count=3, cluster_fraction=0.9, seed=11)
        ).generate("sdss")
        uniform = SkyGenerator(
            SkyGeneratorConfig(object_count=600, cluster_count=0, cluster_fraction=0.0, seed=11)
        ).generate("sdss")
        # Compare the number of distinct coarse (level-5) trixels touched:
        # a clustered sky occupies fewer of them.
        clustered_cells = {htm_ids.ancestor_at_level(o.htm_id, 5) for o in clustered}
        uniform_cells = {htm_ids.ancestor_at_level(o.htm_id, 5) for o in uniform}
        assert len(clustered_cells) < len(uniform_cells)


class TestCompanionSurveys:
    def test_companion_sees_mostly_the_same_sky(self, small_generator):
        base = small_generator.generate("sdss")
        companion = small_generator.derive_companion(
            base, "twomass", completeness=0.8, extra_fraction=0.1
        )
        assert 0.6 * len(base) <= len(companion) <= 1.1 * len(base)
        assert all(obj.survey == "twomass" for obj in companion)

    def test_completeness_bounds_checked(self, small_generator):
        base = small_generator.generate("sdss")
        with pytest.raises(ValueError):
            small_generator.derive_companion(base, "twomass", completeness=1.5)
        with pytest.raises(ValueError):
            small_generator.derive_companion(base, "twomass", extra_fraction=-0.1)

    def test_full_completeness_no_extras_preserves_count(self, small_generator):
        base = small_generator.generate("sdss")
        companion = small_generator.derive_companion(
            base, "usnob", completeness=1.0, extra_fraction=0.0
        )
        assert len(companion) == len(base)
