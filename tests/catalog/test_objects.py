"""Tests for celestial objects and catalog tables."""

import pytest

from repro.catalog.objects import CatalogTable, CelestialObject
from repro.htm.curve import HTMRange
from repro.htm.geometry import SkyPoint
from repro.htm.mesh import HTMMesh


def make_object(object_id, ra, dec, mesh=None, survey="sdss"):
    mesh = mesh or HTMMesh()
    return CelestialObject(
        object_id=object_id,
        ra=ra,
        dec=dec,
        htm_id=mesh.locate(SkyPoint(ra, dec), 14),
        survey=survey,
    )


class TestCelestialObject:
    def test_position_and_separation(self):
        mesh = HTMMesh()
        a = make_object(1, 10.0, 10.0, mesh)
        b = make_object(2, 10.0, 10.0 + 1.0 / 3600.0, mesh)
        assert a.position.ra == pytest.approx(10.0)
        assert a.separation_arcsec(b) == pytest.approx(1.0, rel=1e-5)
        assert a.separation_deg(b) == pytest.approx(1.0 / 3600.0, rel=1e-5)


class TestCatalogTable:
    def test_rows_are_sorted_by_htm_id(self):
        mesh = HTMMesh()
        objects = [make_object(i, ra, 5.0, mesh) for i, ra in enumerate((200.0, 10.0, 100.0))]
        table = CatalogTable("sdss", objects)
        ids = list(table.htm_ids)
        assert ids == sorted(ids)
        assert len(table) == 3

    def test_insert_preserves_order(self):
        mesh = HTMMesh()
        table = CatalogTable("sdss", [make_object(0, 10.0, 0.0, mesh)])
        table.insert(make_object(1, 300.0, 0.0, mesh))
        table.insert(make_object(2, 150.0, 0.0, mesh))
        ids = list(table.htm_ids)
        assert ids == sorted(ids)
        assert len(table) == 3

    def test_extend_resorts(self):
        mesh = HTMMesh()
        table = CatalogTable("sdss", [make_object(0, 10.0, 0.0, mesh)])
        table.extend([make_object(1, 340.0, 2.0, mesh), make_object(2, 170.0, -2.0, mesh)])
        ids = list(table.htm_ids)
        assert ids == sorted(ids)

    def test_range_scan_and_count(self):
        mesh = HTMMesh()
        objects = [make_object(i, 10.0 + 0.001 * i, 10.0, mesh) for i in range(20)]
        table = CatalogTable("sdss", objects)
        full = HTMRange(min(table.htm_ids), max(table.htm_ids))
        assert len(table.range_scan(full)) == 20
        assert table.count_range(full) == 20
        empty = HTMRange(0, 7)
        assert table.range_scan(empty) == []
        assert table.count_range(empty) == 0

    def test_cone_search_matches_separation(self):
        mesh = HTMMesh()
        center = SkyPoint(50.0, 20.0)
        near = make_object(0, 50.01, 20.0, mesh)
        far = make_object(1, 60.0, 20.0, mesh)
        table = CatalogTable("sdss", [near, far])
        found = table.cone_search(center, 0.1)
        assert [o.object_id for o in found] == [0]

    def test_from_positions_assigns_htm_ids(self):
        table = CatalogTable.from_positions("twomass", [(10.0, 10.0), (11.0, 11.0)], level=10)
        assert len(table) == 2
        assert all(obj.survey == "twomass" for obj in table)
        mesh = HTMMesh()
        assert table.rows[0].htm_id in (
            mesh.locate(SkyPoint(10.0, 10.0), 10),
            mesh.locate(SkyPoint(11.0, 11.0), 10),
        )

    def test_describe_empty_and_nonempty(self):
        assert CatalogTable("sdss").describe()["rows"] == 0
        mesh = HTMMesh()
        table = CatalogTable("sdss", [make_object(0, 1.0, 1.0, mesh)])
        summary = table.describe()
        assert summary["rows"] == 1
        assert summary["min_htm_id"] == summary["max_htm_id"]
